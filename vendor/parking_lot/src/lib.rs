//! Vendored minimal stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API:
//! `lock()` / `read()` / `write()` return guards directly, and a poisoned
//! std mutex (a thread panicked while holding it) is transparently
//! recovered — matching parking_lot, which has no poisoning at all.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::Duration;

/// A mutex with parking_lot's poison-free interface.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait*` can temporarily take the std guard.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Returns a mutable reference without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

/// A reader–writer lock with parking_lot's poison-free interface.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// Result of a timed wait on a [`Condvar`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable with parking_lot's `&mut guard` interface.
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Blocks until notified, atomically releasing the guard's mutex.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard taken during wait");
        guard.inner = Some(self.inner.wait(g).unwrap_or_else(PoisonError::into_inner));
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard taken during wait");
        let (g, result) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn mutex_basic_exclusion() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(5);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!((*r1, *r2), (5, 5));
        }
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let start = Instant::now();
        let r = cv.wait_for(&mut g, Duration::from_millis(20));
        assert!(r.timed_out());
        assert!(start.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn condvar_notify_wakes_waiter() {
        let shared = Arc::new((Mutex::new(false), Condvar::new()));
        let s2 = Arc::clone(&shared);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*s2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        let (m, cv) = &*shared;
        *m.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn poisoned_mutex_recovers() {
        let m = Arc::new(Mutex::new(1));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 1); // no poison propagation
    }
}
