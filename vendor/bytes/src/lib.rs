//! Vendored minimal stand-in for the `bytes` crate.
//!
//! The build environment has no access to a crates.io registry, so the
//! workspace vendors the small slice of the `bytes` API it actually uses:
//! [`Bytes`] as a cheaply cloneable, immutable, sliceable byte buffer.
//! Semantics match the real crate for that subset; the representation is
//! a reference-counted buffer plus a `(start, end)` window, with a
//! zero-copy fast path for `&'static` data.

#![forbid(unsafe_code)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// Backing storage of a [`Bytes`] value.
#[derive(Clone)]
enum Repr {
    /// Borrowed `'static` data — `Bytes::from_static` is zero-copy.
    Static(&'static [u8]),
    /// Shared owned data; clones bump the refcount only.
    Shared(Arc<[u8]>),
}

/// A cheaply cloneable, immutable slice of bytes.
pub struct Bytes {
    repr: Repr,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub const fn new() -> Self {
        Bytes {
            repr: Repr::Static(&[]),
            start: 0,
            end: 0,
        }
    }

    /// Wraps a static slice without copying.
    pub const fn from_static(data: &'static [u8]) -> Self {
        Bytes {
            repr: Repr::Static(data),
            start: 0,
            end: data.len(),
        }
    }

    /// Copies `data` into a new shared buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    fn backing(&self) -> &[u8] {
        match &self.repr {
            Repr::Static(s) => s,
            Repr::Shared(a) => a,
        }
    }

    /// Returns a sub-view of `self` without copying the data.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or inverted.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&i) => i,
            Bound::Excluded(&i) => i + 1,
            Bound::Unbounded => 0,
        };
        let finish = match range.end_bound() {
            Bound::Included(&i) => i + 1,
            Bound::Excluded(&i) => i,
            Bound::Unbounded => len,
        };
        assert!(
            begin <= finish && finish <= len,
            "slice out of bounds: {begin}..{finish} of {len}"
        );
        Bytes {
            repr: self.repr.clone(),
            start: self.start + begin,
            end: self.start + finish,
        }
    }

    /// Copies the view into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Clone for Bytes {
    fn clone(&self) -> Self {
        Bytes {
            repr: self.repr.clone(),
            start: self.start,
            end: self.end,
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.backing()[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            repr: Repr::Shared(Arc::from(v)),
            start: 0,
            end,
        }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(b: Box<[u8]>) -> Self {
        Bytes::from(b.into_vec())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_ref() == *other
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_ref().cmp(other.as_ref())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;

    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_ref().iter()
    }
}

/// Read access to a contiguous buffer (minimal subset of `bytes::Buf`).
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// Whether any bytes are left.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
}

/// Append access to a growable buffer (minimal subset of `bytes::BufMut`).
/// Integers are written big-endian, as in the real crate.
pub trait BufMut {
    /// Appends `src` verbatim.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.vec.extend_from_slice(src);
    }
}

/// A growable byte buffer that freezes into an immutable [`Bytes`].
#[derive(Debug, Default, Clone)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            vec: Vec::with_capacity(cap),
        }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Appends `src` verbatim.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.vec.extend_from_slice(src);
    }

    /// Converts into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.vec)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.vec
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(vec: Vec<u8>) -> Self {
        BytesMut { vec }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_roundtrip_is_zero_copy_window() {
        let b = Bytes::from_static(b"hello world");
        assert_eq!(b.len(), 11);
        assert_eq!(&b[..], b"hello world");
        let s = b.slice(6..);
        assert_eq!(s.as_ref(), b"world");
        let s2 = s.slice(..2);
        assert_eq!(s2.as_ref(), b"wo");
    }

    #[test]
    fn owned_clone_shares_storage() {
        let b = Bytes::from(vec![1u8, 2, 3, 4]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(c.slice(1..3).as_ref(), &[2, 3]);
    }

    #[test]
    fn equality_ignores_representation() {
        assert_eq!(Bytes::from_static(b"x"), Bytes::from(vec![b'x']));
        assert_ne!(Bytes::from_static(b"x"), Bytes::from_static(b"y"));
    }

    #[test]
    fn from_string_and_display_sources() {
        let b = Bytes::from(format!("{}:{}", 1, 2));
        assert_eq!(b.as_ref(), b"1:2");
    }

    #[test]
    #[should_panic(expected = "slice out of bounds")]
    fn out_of_bounds_slice_panics() {
        let b = Bytes::from_static(b"abc");
        let _ = b.slice(2..9);
    }
}
