//! Vendored minimal stand-in for `crossbeam-channel`.
//!
//! MPMC channels over a mutex-protected `VecDeque` with condition
//! variables — the subset of the crossbeam API this workspace uses:
//! [`unbounded`], [`bounded`], cloneable [`Sender`]/[`Receiver`], and the
//! blocking / timed / non-blocking receive calls with crossbeam's error
//! types. (`select!` is intentionally not provided; the one former use in
//! `ritas::node` was replaced by a single merged event channel.)

#![forbid(unsafe_code)]

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Error returned by [`Sender::send`] when all receivers are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

/// Error returned by [`Receiver::recv`] when the channel is empty and all
/// senders are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty, disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// All senders are gone and the channel is empty.
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The timeout elapsed with no message.
    Timeout,
    /// All senders are gone and the channel is empty.
    Disconnected,
}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Chan<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: Option<usize>,
}

impl<T> Chan<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// The sending half of a channel. Cloneable; the channel disconnects when
/// every `Sender` is dropped.
pub struct Sender<T> {
    chan: Arc<Chan<T>>,
}

/// The receiving half of a channel. Cloneable (MPMC); the channel
/// disconnects for senders when every `Receiver` is dropped.
pub struct Receiver<T> {
    chan: Arc<Chan<T>>,
}

/// Creates a channel of unlimited capacity.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    channel(None)
}

/// Creates a channel holding at most `cap` in-flight messages; sends block
/// while full.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    channel(Some(cap))
}

fn channel<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let chan = Arc::new(Chan {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        capacity,
    });
    (
        Sender {
            chan: Arc::clone(&chan),
        },
        Receiver { chan },
    )
}

impl<T> Sender<T> {
    /// Sends `value`, blocking while a bounded channel is full.
    ///
    /// # Errors
    ///
    /// [`SendError`] when every receiver has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut st = self.chan.lock();
        loop {
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            match self.chan.capacity {
                Some(cap) if st.queue.len() >= cap => {
                    st = self
                        .chan
                        .not_full
                        .wait(st)
                        .unwrap_or_else(PoisonError::into_inner);
                }
                _ => break,
            }
        }
        st.queue.push_back(value);
        drop(st);
        self.chan.not_empty.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.chan.lock().senders += 1;
        Sender {
            chan: Arc::clone(&self.chan),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.chan.lock();
        st.senders -= 1;
        let last = st.senders == 0;
        drop(st);
        if last {
            self.chan.not_empty.notify_all();
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> Receiver<T> {
    /// Receives a message, blocking until one is available.
    ///
    /// # Errors
    ///
    /// [`RecvError`] when the channel is empty and every sender is gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut st = self.chan.lock();
        loop {
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                self.chan.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvError);
            }
            st = self
                .chan
                .not_empty
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Receives a message, waiting at most `timeout`.
    ///
    /// # Errors
    ///
    /// [`RecvTimeoutError::Timeout`] on expiry,
    /// [`RecvTimeoutError::Disconnected`] when drained and senders are gone.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut st = self.chan.lock();
        loop {
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                self.chan.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _) = self
                .chan
                .not_empty
                .wait_timeout(st, remaining)
                .unwrap_or_else(PoisonError::into_inner);
            st = guard;
        }
    }

    /// Receives a message if one is immediately available.
    ///
    /// # Errors
    ///
    /// [`TryRecvError::Empty`] or [`TryRecvError::Disconnected`].
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut st = self.chan.lock();
        if let Some(v) = st.queue.pop_front() {
            drop(st);
            self.chan.not_full.notify_one();
            return Ok(v);
        }
        if st.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// A non-blocking iterator over currently available messages.
    pub fn try_iter(&self) -> TryIter<'_, T> {
        TryIter { receiver: self }
    }

    /// A blocking iterator that ends when the channel disconnects.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.chan.lock().queue.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.chan.lock().queue.is_empty()
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.chan.lock().receivers += 1;
        Receiver {
            chan: Arc::clone(&self.chan),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut st = self.chan.lock();
        st.receivers -= 1;
        let last = st.receivers == 0;
        // Upstream crossbeam discards queued messages once every receiver
        // is gone. Matching that matters beyond memory: a queued message
        // may own a reply `Sender`, and a caller blocked on the paired
        // `recv()` only wakes when that sender drops. Destructors run
        // outside the lock — a payload's drop may touch another channel.
        let orphaned = if last {
            std::mem::take(&mut st.queue)
        } else {
            VecDeque::new()
        };
        drop(st);
        if last {
            self.chan.not_full.notify_all();
        }
        drop(orphaned);
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

/// Iterator returned by [`Receiver::try_iter`].
pub struct TryIter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for TryIter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.receiver.try_recv().ok()
    }
}

/// Iterator returned by [`Receiver::iter`].
pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_fifo() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        let got: Vec<i32> = rx.try_iter().collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn bounded_blocks_until_drained() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let t = std::thread::spawn(move || tx.send(2).unwrap());
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
        t.join().unwrap();
    }

    #[test]
    fn disconnect_on_sender_drop() {
        let (tx, rx) = unbounded::<u8>();
        tx.send(9).unwrap();
        drop(tx);
        assert_eq!(rx.recv().unwrap(), 9);
        assert_eq!(rx.recv().unwrap_err(), RecvError);
        assert_eq!(rx.try_recv().unwrap_err(), TryRecvError::Disconnected);
    }

    #[test]
    fn disconnect_on_receiver_drop() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert_eq!(tx.send(1).unwrap_err(), SendError(1));
    }

    #[test]
    fn receiver_drop_discards_queued_messages() {
        // A queued message owning a reply sender must be destroyed when
        // the last receiver goes away, even while a sender handle keeps
        // the channel alive — otherwise the reply's receiver blocks
        // forever (the node runtime relies on this during shutdown).
        let (cmd_tx, cmd_rx) = unbounded::<Sender<u8>>();
        let (reply_tx, reply_rx) = bounded::<u8>(1);
        cmd_tx.send(reply_tx).unwrap();
        drop(cmd_rx);
        assert_eq!(reply_rx.recv().unwrap_err(), RecvError);
        // And the sender now sees the disconnect on its next send.
        let (other_tx, _other_rx) = bounded::<u8>(1);
        assert!(cmd_tx.send(other_tx).is_err());
    }

    #[test]
    fn recv_timeout_expires() {
        let (_tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)).unwrap_err(),
            RecvTimeoutError::Timeout
        );
    }

    #[test]
    fn recv_timeout_gets_late_message() {
        let (tx, rx) = unbounded();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            tx.send(7u8).unwrap();
        });
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), 7);
        t.join().unwrap();
    }

    #[test]
    fn mpmc_clone_both_halves() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        let rx2 = rx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        let a = rx.recv().unwrap();
        let b = rx2.recv().unwrap();
        let mut got = vec![a, b];
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn many_producers_one_consumer() {
        let (tx, rx) = unbounded();
        let handles: Vec<_> = (0..4)
            .map(|p| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..100 {
                        tx.send((p, i)).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(rx.iter().count(), 400);
    }
}
