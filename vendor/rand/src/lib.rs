//! Vendored minimal stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this crate provides
//! the small subset of the `rand` 0.8 API the workspace uses: [`RngCore`],
//! [`SeedableRng`], the [`Rng`] extension trait with `gen` / `gen_range`,
//! and [`rngs::StdRng`]. `StdRng` here is xoshiro256++ seeded via
//! SplitMix64 — a high-quality non-cryptographic generator; the only
//! cryptographic consumer in the workspace ([`SeededCoin`] in
//! `ritas-crypto`) documents that production deployments would swap in an
//! OS-entropy CSPRNG, and `from_entropy` does seed from OS entropy.
//!
//! [`SeededCoin`]: https://docs.rs/ritas-crypto

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of random `u32`/`u64` values (subset of `rand::RngCore`).
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Types that can be sampled uniformly from an RNG (stand-in for the
/// `Standard` distribution).
pub trait Standard: Sized {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}

impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u16
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that `Rng::gen_range` can sample from.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, bound)` via Lemire-style rejection (modulo bias
/// avoided by widening multiply).
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let (hi, lo) = {
            let wide = (x as u128) * (bound as u128);
            ((wide >> 64) as u64, wide as u64)
        };
        // Reject the biased low region.
        if lo >= bound || lo >= bound.wrapping_neg() % bound {
            return hi;
        }
    }
}

impl SampleRange<u64> for RangeInclusive<u64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> u64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        let span = hi - lo;
        if span == u64::MAX {
            return rng.next_u64();
        }
        lo + uniform_u64_below(rng, span + 1)
    }
}

impl SampleRange<u64> for Range<u64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> u64 {
        assert!(self.start < self.end, "empty range");
        self.start + uniform_u64_below(rng, self.end - self.start)
    }
}

impl SampleRange<usize> for Range<usize> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
        assert!(self.start < self.end, "empty range");
        (self.start as u64 + uniform_u64_below(rng, (self.end - self.start) as u64)) as usize
    }
}

impl SampleRange<usize> for RangeInclusive<usize> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
        ((*self.start() as u64)..=(*self.end() as u64)).sample_from(rng) as usize
    }
}

impl SampleRange<u32> for Range<u32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> u32 {
        assert!(self.start < self.end, "empty range");
        (self.start as u64 + uniform_u64_below(rng, (self.end - self.start) as u64)) as u32
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let unit = f64::sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

/// Convenience extension over [`RngCore`] (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from seeds (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates the RNG from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;

    /// Creates the RNG from OS-provided entropy.
    fn from_entropy() -> Self {
        // `RandomState` is seeded once per process from OS entropy and
        // perturbed per instance; hashing a counter yields a fresh,
        // unpredictable-to-outsiders 64-bit seed without `unsafe` or
        // platform syscall plumbing.
        use std::hash::{BuildHasher, Hasher};
        use std::sync::atomic::{AtomicU64, Ordering};
        static SALT: AtomicU64 = AtomicU64::new(0);
        let state = std::collections::hash_map::RandomState::new();
        let mut h = state.build_hasher();
        h.write_u64(SALT.fetch_add(1, Ordering::Relaxed));
        Self::seed_from_u64(h.finish())
    }
}

pub mod rngs {
    //! RNG implementations.

    use super::{RngCore, SeedableRng};

    /// SplitMix64 — used to expand a 64-bit seed into xoshiro state.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The workspace's standard RNG: xoshiro256++ (Blackman & Vigna).
    ///
    /// Unlike `rand`'s ChaCha-based `StdRng` this is not a CSPRNG; every
    /// use in this workspace is schedule/jitter randomness or explicitly
    /// seeded reproducible simulation, where statistical quality and
    /// replayability are what matter.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // Avoid the (vanishingly unlikely) all-zero state.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_runs_replay() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let av: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let bv: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(av, bv);
    }

    #[test]
    fn gen_range_inclusive_hits_bounds_only() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(5u64..=7);
            assert!((5..=7).contains(&v));
        }
        // Degenerate range.
        assert_eq!(rng.gen_range(9u64..=9), 9);
    }

    #[test]
    fn gen_range_f64_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let v: f64 = rng.gen_range(-0.25f64..0.25);
            assert!((-0.25..0.25).contains(&v));
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(5);
        let ones = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((4_000..6_000).contains(&ones), "ones = {ones}");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn from_entropy_instances_differ() {
        let mut a = StdRng::from_entropy();
        let mut b = StdRng::from_entropy();
        let av: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let bv: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        assert_ne!(av, bv);
    }
}
