//! Vendored minimal stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`proptest!`] macro, [`Strategy`] with `prop_map`,
//! `any::<T>()`, integer-range strategies, tuple strategies,
//! `collection::vec`, `option::of`, the `prop_assert*` / [`prop_assume!`]
//! macros and [`ProptestConfig::with_cases`].
//!
//! Differences from real proptest, by design:
//!
//! * cases are drawn from a **deterministic** RNG (seed overridable via
//!   `PROPTEST_SEED`), so CI runs are reproducible;
//! * no shrinking — a failing case panics with the values printed by the
//!   assertion itself;
//! * `prop_assert*` panic instead of returning `Err`, which is
//!   indistinguishable in test harness terms.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    //! The deterministic case generator.

    /// xorshift64* generator driving all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates the RNG from an explicit seed.
        pub fn from_seed(seed: u64) -> Self {
            TestRng {
                state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
            }
        }

        /// Creates the deterministic default RNG, honoring the
        /// `PROPTEST_SEED` environment variable when set.
        pub fn deterministic() -> Self {
            let seed = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(0x5249_5441_5354u64);
            Self::from_seed(seed)
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        /// Uniform value in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            // Widening-multiply mapping; bias is irrelevant for test-case
            // generation purposes.
            (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
        }
    }
}

use test_runner::TestRng;

/// Per-test configuration (subset of proptest's).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Types with a default "any value" strategy (subset of `Arbitrary`).
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The "any value of `T`" strategy.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive length bounds for a collection strategy, convertible
    /// from a fixed length or a (half-open / inclusive) range, matching
    /// the real crate's `SizeRange` conversions.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end.saturating_sub(1).max(r.start),
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: (*r.end()).max(*r.start()),
            }
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    /// Generates `Vec`s of `element` values with a length drawn from
    /// `len`.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.len.hi - self.len.lo) as u64 + 1;
            let n = self.len.lo + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use super::{Strategy, TestRng};

    /// Strategy returned by [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Generates `None` about a quarter of the time, `Some` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Asserts a property-test condition (panics on failure, like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::deterministic();
                for __case in 0..__config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                    let mut __run = || $body;
                    __run();
                }
            }
        )*
    };
}

pub mod prelude {
    //! One-stop imports for property tests.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::test_runner::TestRng::from_seed(1);
        for _ in 0..500 {
            let v = Strategy::generate(&(3u8..7), &mut rng);
            assert!((3..7).contains(&v));
            let w = Strategy::generate(&(10usize..=12), &mut rng);
            assert!((10..=12).contains(&w));
        }
    }

    #[test]
    fn vec_strategy_respects_len() {
        let mut rng = crate::test_runner::TestRng::from_seed(2);
        for _ in 0..200 {
            let v = Strategy::generate(&crate::collection::vec(any::<u8>(), 2..5), &mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn option_strategy_produces_both() {
        let mut rng = crate::test_runner::TestRng::from_seed(3);
        let vals: Vec<Option<u8>> = (0..100)
            .map(|_| Strategy::generate(&crate::option::of(any::<u8>()), &mut rng))
            .collect();
        assert!(vals.iter().any(Option::is_none));
        assert!(vals.iter().any(Option::is_some));
    }

    #[test]
    fn deterministic_across_runs() {
        let gen = |seed| {
            let mut rng = crate::test_runner::TestRng::from_seed(seed);
            (0..16).map(|_| rng.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(gen(9), gen(9));
        assert_ne!(gen(9), gen(10));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself works end to end, including prop_map,
        /// tuples and assume/assert.
        #[test]
        fn macro_end_to_end(
            v in crate::collection::vec(any::<u8>(), 0..10).prop_map(|v| v.len()),
            (a, b) in (0u8..5, 0u8..5),
            flag in any::<bool>(),
        ) {
            prop_assume!(a != 4);
            prop_assert!(v <= 10);
            prop_assert_eq!(a < 5 && b < 5, true);
            let _ = flag;
        }
    }
}
