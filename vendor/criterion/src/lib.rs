//! Vendored minimal stand-in for `criterion`.
//!
//! Provides just enough of the criterion API for the workspace's bench
//! targets to compile and produce useful numbers offline: benchmark
//! groups, `bench_function` / `bench_with_input`, `BenchmarkId`,
//! `Throughput`, and the `criterion_group!` / `criterion_main!` macros.
//! Measurement is a simple calibrated loop printing mean wall-clock time
//! per iteration (no statistics, plots or comparisons).

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id made of a parameter only.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Throughput annotation for a benchmark (reported alongside time).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// The timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (kept small here; affects iterations).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the measurement time budget (accepted, unused).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let label = format!("{}/{}", self.name, id);
        let (iters, elapsed) = run_calibrated(self.sample_size, |b| f(b));
        report(&label, iters, elapsed, self.throughput);
        let _ = &self.criterion;
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Calibrates an iteration count to a modest time budget, then measures.
fn run_calibrated<F: FnMut(&mut Bencher)>(sample_size: usize, mut f: F) -> (u64, Duration) {
    // One warmup iteration to estimate cost.
    let mut probe = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut probe);
    let per_iter = probe.elapsed.max(Duration::from_nanos(1));
    // Aim for ~sample_size iterations but cap the total budget at ~1s.
    let budget = Duration::from_millis(1000);
    let fit = (budget.as_nanos() / per_iter.as_nanos().max(1)) as u64;
    let iters = fit.clamp(1, sample_size as u64);
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    (b.iters, b.elapsed)
}

fn report(label: &str, iters: u64, elapsed: Duration, throughput: Option<Throughput>) {
    let per_iter_ns = elapsed.as_nanos() as f64 / iters.max(1) as f64;
    let mut line = format!("{label:<48} {:>12.0} ns/iter ({iters} iters)", per_iter_ns);
    if let Some(t) = throughput {
        let per_sec = match t {
            Throughput::Bytes(n) => format!(
                "{:.1} MiB/s",
                n as f64 / per_iter_ns * 1e9 / (1 << 20) as f64
            ),
            Throughput::Elements(n) => format!("{:.0} elem/s", n as f64 / per_iter_ns * 1e9),
        };
        line.push_str(&format!("  [{per_sec}]"));
    }
    println!("{line}");
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Applies CLI configuration (accepted, unused — keeps the
    /// `criterion_main!`-generated harness signature-compatible).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let label = id.to_string();
        let (iters, elapsed) = run_calibrated(10, |b| f(b));
        report(&label, iters, elapsed, None);
        self
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark harness entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        g.throughput(Throughput::Bytes(8));
        let mut ran = 0u32;
        g.bench_with_input(BenchmarkId::new("add", 8), &8u64, |b, &n| {
            b.iter(|| {
                ran += 1;
                n + 1
            })
        });
        g.finish();
        assert!(ran > 0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 4).to_string(), "f/4");
        assert_eq!(BenchmarkId::from_parameter(10).to_string(), "10");
    }
}
