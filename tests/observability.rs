//! Integration tests for the stack-wide observability layer: a 4-node
//! failure-free simulated run must light up every protocol layer's
//! counters, the ECHO traffic of one reliable broadcast must match the
//! protocol's fan-out shape, and a forced-divergence binary consensus
//! must record at least one coin flip.

use bytes::Bytes;
use ritas_sim::cluster::{Action, SimCluster, SimConfig};

const N: usize = 4;

/// Schedules a workload that touches every layer of the stack: atomic
/// broadcast (which drives RB, EB-VECT, MVC and BC underneath) plus a
/// standalone vector consensus.
fn full_stack_sim(seed: u64) -> SimCluster {
    let mut sim = SimCluster::new(SimConfig::paper_testbed(seed));
    for p in 0..N {
        sim.schedule(
            0,
            p,
            Action::AbBroadcast(Bytes::copy_from_slice(format!("m{p}").as_bytes())),
        );
        sim.schedule(
            1_000,
            p,
            Action::VcPropose {
                tag: 9,
                value: Bytes::copy_from_slice(format!("v{p}").as_bytes()),
            },
        );
    }
    sim.run();
    sim
}

#[test]
fn failure_free_run_reports_every_layer() {
    let sim = full_stack_sim(21);
    for p in 0..N {
        let snap = sim.metrics_snapshot(p);
        assert!(
            snap.all_layers_active(),
            "some layer stayed dark at process {p}:\n{}",
            snap.to_text()
        );
        // Every layer's headline counters are nonzero.
        for name in [
            "transport_frames_sent",
            "transport_frames_recv",
            "transport_bytes_sent",
            "transport_bytes_recv",
            "rb_init_recv",
            "rb_echo_recv",
            "rb_ready_recv",
            "rb_delivered",
            "eb_init_recv",
            "eb_vect_recv",
            "bc_started",
            "bc_decided",
            "mvc_started",
            "mvc_decided_value",
            "vc_started",
            "vc_decided",
            "ab_broadcast",
            "ab_delivered",
            "ab_agreements",
            "stack_frames_in",
        ] {
            assert!(
                snap.counter(name) > 0,
                "counter {name} is zero at process {p}:\n{}",
                snap.to_text()
            );
        }
        // The trace ring captured structured events with virtual-time
        // stamps, and both dump formats render.
        assert!(!snap.trace.is_empty(), "empty trace ring at {p}");
        assert!(snap.trace.iter().any(|e| e.timestamp > 0));
        assert!(snap.to_text().contains("ab_delivered"));
        assert!(snap.to_json().starts_with("{\"counters\":{"));
    }
}

#[test]
fn echo_counts_match_the_broadcast_fanout_shape() {
    // One reliable broadcast: the sender INITs to all n, then each of the
    // n processes broadcasts exactly one ECHO to all n. Over the wire
    // that is the classic n·(n−1) remote ECHOs; each process additionally
    // hears its own loopback copy, so every receiver counts exactly n.
    let mut sim = SimCluster::new(SimConfig::paper_testbed(3));
    sim.schedule(0, 0, Action::RbBroadcast(Bytes::from_static(b"echo-shape")));
    sim.run();
    let n = N as u64;
    for p in 0..N {
        assert_eq!(
            sim.metrics(p).rb_echo_recv.get(),
            n,
            "process {p} echo count"
        );
        assert_eq!(sim.metrics(p).rb_delivered.get(), 1);
    }
    let total: u64 = (0..N).map(|p| sim.metrics(p).rb_echo_recv.get()).sum();
    let remote = total - n; // subtract the n self-loopbacks
    assert_eq!(remote, n * (n - 1), "wire-level ECHO fan-out");
}

#[test]
fn forced_divergence_flips_at_least_one_coin() {
    // Force the §2.4 coin branch with a 4-process divergence schedule,
    // delivered by hand so the run is deterministic: process 0's step-1
    // view ends as a 2-2 tie (step-2 traffic arrives before its step-1
    // quorum completes, so delayed validation batch-accepts all four
    // step-2 values at once), producing a step-3 ⊥; combined with one
    // step-3 vote for each bit, no value reaches f+1 = 2 and the round
    // ends in a coin flip.
    use ritas::bc::{BcBody, BcMessage, BinaryConsensus, StepTransport};
    use ritas::Group;
    use ritas_crypto::DeterministicCoin;
    use ritas_metrics::{Layer, Metrics};

    let plain = |round: u32, step: u8, origin: usize, v: Option<bool>| BcMessage {
        round,
        step,
        origin,
        body: BcBody::Plain(v),
    };

    let g = Group::new(N).unwrap();
    let metrics = Metrics::new();
    let mut bc = BinaryConsensus::with_transport(
        g,
        0,
        Box::new(DeterministicCoin::new(5)),
        StepTransport::PlainFanout,
    );
    bc.set_metrics(metrics.clone());

    let _ = bc.propose(true).unwrap();
    let _ = bc.handle_message(0, plain(1, 1, 0, Some(true))); // own loopback
                                                              // Peers' step-2 values overtake their step-1 values (asynchrony):
                                                              // parked as pending until they become justifiable.
    let _ = bc.handle_message(1, plain(1, 2, 1, Some(true)));
    let _ = bc.handle_message(2, plain(1, 2, 2, Some(false)));
    let _ = bc.handle_message(3, plain(1, 2, 3, Some(false)));
    // Step-1 quorum completes (T, T, F → majority T), own step-2 follows.
    let _ = bc.handle_message(1, plain(1, 1, 1, Some(true)));
    let _ = bc.handle_message(2, plain(1, 1, 2, Some(false)));
    let _ = bc.handle_message(0, plain(1, 2, 0, Some(true))); // own loopback
                                                              // The fourth step-1 value makes the step-1 tally 2-2, which validates
                                                              // BOTH parked false step-2 values in one batch: step 2 fires on a
                                                              // 2-2 tie and process 0 goes to step 3 with ⊥.
    let _ = bc.handle_message(3, plain(1, 1, 3, Some(false)));
    let _ = bc.handle_message(0, plain(1, 3, 0, None)); // own ⊥ loopback
                                                        // One step-3 vote for each bit: {⊥, 1, 0} — nothing reaches f+1.
    let _ = bc.handle_message(1, plain(1, 3, 1, Some(true)));
    let _ = bc.handle_message(2, plain(1, 3, 2, Some(false)));

    assert!(
        metrics.bc_coin_flips.get() >= 1,
        "coin branch did not fire under forced divergence"
    );
    assert_eq!(bc.round(), 2, "the coin flip starts round 2");
    let snap = metrics.snapshot();
    assert!(snap.counter("bc_coin_flips") >= 1);
    assert!(
        snap.trace
            .iter()
            .any(|e| e.layer == Layer::Bc && e.kind == "coin-flip"),
        "no coin-flip trace event recorded"
    );
}

#[test]
fn full_stack_run_yields_complete_span_trees() {
    use ritas_metrics::{critical_paths, spans_from_jsonl, spans_to_jsonl, Layer};

    let sim = full_stack_sim(33);
    for p in 0..N {
        let snap = sim.metrics_snapshot(p);
        assert!(!snap.spans.is_empty(), "no spans recorded at process {p}");

        // Every layer of the stack opened at least one span, and the
        // workload's roots are present with children chained beneath them.
        for layer in [
            Layer::Rb,
            Layer::Eb,
            Layer::Bc,
            Layer::Mvc,
            Layer::Vc,
            Layer::Ab,
        ] {
            assert!(
                snap.spans.iter().any(|s| s.layer == layer),
                "no {} span at process {p}",
                layer.as_str()
            );
        }
        assert!(snap.spans.iter().any(|s| s.path == "ab:0"));
        assert!(snap.spans.iter().any(|s| s.path == "vc:9"));
        assert!(snap.spans.iter().any(|s| s.path.starts_with("ab:0/m:")));
        assert!(snap.spans.iter().any(|s| s.path.starts_with("ab:0/r:")));
        assert!(snap.spans.iter().any(|s| s.parent() == Some("vc:9")));

        // Virtual-time stamps: closes never precede opens, and every
        // a-broadcast message span closed when it was a-delivered.
        for s in &snap.spans {
            if let Some(close) = s.close {
                assert!(close >= s.open, "span {} closed before it opened", s.path);
            }
        }
        let msg_spans: Vec<_> = snap
            .spans
            .iter()
            .filter(|s| s.path.starts_with("ab:0/m:") && s.depth() == 2)
            .collect();
        assert_eq!(msg_spans.len(), N, "one message span per a-broadcast");
        assert!(msg_spans.iter().all(|s| s.close.is_some()));

        // Critical-path roll-up: one attribution per delivered message,
        // segments summing exactly to the recorded a-deliver latency.
        let paths = critical_paths(&snap.spans);
        assert_eq!(paths.len(), N, "one critical path per delivery at {p}");
        for cp in &paths {
            let sum: u64 = cp.segments.iter().map(|(_, ns)| ns).sum();
            assert_eq!(sum, cp.total_ns, "segments of {} do not sum", cp.path);
        }

        // The JSONL dump round-trips losslessly.
        let dump = spans_to_jsonl(&snap.spans);
        let back = spans_from_jsonl(&dump).expect("round-trip parse");
        assert_eq!(back, snap.spans);
    }
}

#[test]
fn node_runtime_snapshot_covers_transport_and_latency() {
    use ritas::node::{Node, SessionConfig};

    let nodes = Node::cluster(SessionConfig::new(N).unwrap()).unwrap();
    let mut handles = Vec::new();
    for node in nodes {
        handles.push(std::thread::spawn(move || {
            node.atomic_broadcast(Bytes::copy_from_slice(format!("n{}", node.id()).as_bytes()))
                .unwrap();
            for _ in 0..N {
                node.atomic_recv().unwrap();
            }
            let snap = node.metrics_snapshot();
            assert!(snap.counter("transport_frames_sent") > 0);
            assert!(snap.counter("transport_frames_recv") > 0);
            assert!(snap.counter("ab_delivered") >= N as u64);
            // The node's own message round-tripped, so the a-deliver
            // latency histogram has at least one observation.
            assert!(snap
                .histogram("ab_latency_ns")
                .is_some_and(|h| h.count >= 1));
            node.shutdown();
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
}
