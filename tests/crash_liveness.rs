//! Liveness of atomic broadcast across mid-protocol crashes, swept over
//! crash points (deterministic search for stuck states).

use bytes::Bytes;
use ritas::stack::Output;
use ritas::testing::Cluster;

fn delivered(cluster: &Cluster, p: usize) -> usize {
    cluster
        .outputs(p)
        .iter()
        .filter(|o| matches!(o, Output::AbDelivered { .. }))
        .count()
}

/// Survivors keep ordering after a peer crashes right after it delivered
/// its own message — the scenario that exposed the `send_all` early-abort
/// bug in the threaded runtime (see `tests/node_runtime.rs::
/// survivors_progress_after_a_node_departs` for the runtime-level twin).
#[test]
fn crash_after_own_delivery_liveness() {
    for seed in 0..10u64 {
        let mut cluster = Cluster::new(4, seed);
        for p in 0..4 {
            for k in 0..4 {
                let (_, s) = cluster
                    .stack_mut(p)
                    .ab_broadcast(0, Bytes::from(format!("c{p}-{k}")));
                cluster.absorb(p, s);
            }
        }
        cluster.run();
        let mut marker_ids = Vec::new();
        for p in 0..4 {
            let (id, s) = cluster
                .stack_mut(p)
                .ab_broadcast(0, Bytes::from(format!("m{p}")));
            marker_ids.push(id);
            cluster.absorb(p, s);
        }
        let own = marker_ids[1];
        loop {
            let done = cluster.outputs(1).iter().any(|o| {
                matches!(
                o, Output::AbDelivered { delivery, .. } if delivery.id == own)
            });
            if done {
                break;
            }
            assert!(
                cluster.step(),
                "seed {seed}: quiesced before p1 got its marker"
            );
        }
        cluster.crash(1);
        cluster.run();
        for p in [0usize, 2, 3] {
            let n = delivered(&cluster, p);
            assert_eq!(n, 20, "seed {seed}: survivor {p} delivered {n}/20");
        }
    }
}

#[test]
fn mid_stream_crash_liveness_sweep() {
    for seed in 0..3u64 {
        for crash_at in [0usize, 50, 150, 300, 600, 1200, 2500] {
            let mut cluster = Cluster::new(4, seed);
            for p in 0..4 {
                let (_, s) = cluster
                    .stack_mut(p)
                    .ab_broadcast(0, Bytes::from(format!("a{p}")));
                cluster.absorb(p, s);
            }
            for _ in 0..crash_at {
                if !cluster.step() {
                    break;
                }
            }
            cluster.crash(2);
            for p in [0usize, 1, 3] {
                let (_, s) = cluster
                    .stack_mut(p)
                    .ab_broadcast(0, Bytes::from(format!("b{p}")));
                cluster.absorb(p, s);
            }
            cluster.run();
            for p in [0usize, 1, 3] {
                let n = delivered(&cluster, p);
                assert_eq!(
                    n, 7,
                    "seed {seed} crash_at {crash_at}: survivor {p} delivered {n}/7"
                );
            }
        }
    }
}
