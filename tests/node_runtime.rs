//! End-to-end tests of the threaded node runtime over the authenticated
//! in-memory transport — the closest analogue to the paper's deployed
//! C library (§3).

use bytes::Bytes;
use ritas::node::{Node, NodeError, SessionConfig};
use std::time::Duration;

/// Runs `body` on every node of a fresh cluster, in parallel threads.
fn with_cluster<T: Send + 'static>(
    config: SessionConfig,
    body: impl Fn(Node) -> T + Send + Sync + Clone + 'static,
) -> Vec<T> {
    let nodes = Node::cluster(config).expect("cluster");
    let handles: Vec<_> = nodes
        .into_iter()
        .map(|node| {
            let body = body.clone();
            std::thread::spawn(move || body(node))
        })
        .collect();
    handles
        .into_iter()
        .map(|h| h.join().expect("join"))
        .collect()
}

#[test]
fn pipelined_reliable_broadcasts_arrive_in_per_sender_order() {
    let results = with_cluster(SessionConfig::new(4).unwrap(), |node| {
        if node.id() == 2 {
            for k in 0..20u32 {
                node.reliable_broadcast(Bytes::copy_from_slice(&k.to_be_bytes()))
                    .unwrap();
            }
        }
        let mut got = Vec::new();
        for _ in 0..20 {
            let (sender, payload) = node.rb_recv().unwrap();
            assert_eq!(sender, 2);
            got.push(u32::from_be_bytes(payload.as_ref().try_into().unwrap()));
        }
        node.shutdown();
        got
    });
    // Stack instance keys carry the sender's sequence number; deliveries
    // complete in arbitrary order across instances, but every node must
    // see each value exactly once.
    for got in results {
        let mut sorted = got.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }
}

#[test]
fn mixed_protocol_session() {
    let results = with_cluster(SessionConfig::new(4).unwrap(), |node| {
        // A consensus, a broadcast and an atomic broadcast in the same
        // session, like an application would.
        let bit = node.binary_consensus(10, node.id() != 3).unwrap();
        node.atomic_broadcast(Bytes::from(format!("from-{}", node.id())))
            .unwrap();
        if node.id() == 0 {
            node.echo_broadcast(Bytes::from_static(b"echo!")).unwrap();
        }
        let (eb_sender, eb_payload) = node.eb_recv().unwrap();
        let mut order = Vec::new();
        for _ in 0..4 {
            order.push(node.atomic_recv().unwrap().id);
        }
        node.shutdown();
        (bit, eb_sender, eb_payload, order)
    });
    let reference = results[0].clone();
    for r in &results {
        assert_eq!(r.0, reference.0, "bc decisions diverged");
        assert_eq!((r.1, r.2.as_ref()), (0, &b"echo!"[..]));
        assert_eq!(r.3, reference.3, "total order diverged");
    }
}

#[test]
fn consensus_with_divergent_proposals_still_agrees() {
    let results = with_cluster(SessionConfig::new(4).unwrap(), |node| {
        let v = node
            .multi_valued_consensus(5, Bytes::from(format!("proposal-{}", node.id())))
            .unwrap();
        node.shutdown();
        v
    });
    for r in &results {
        assert_eq!(*r, results[0], "mvc agreement violated");
    }
}

#[test]
fn unauthenticated_session_parity() {
    // The "without IPSec" configuration must be functionally identical.
    let results = with_cluster(
        SessionConfig::new(4).unwrap().without_authentication(),
        |node| {
            let v = node
                .multi_valued_consensus(1, Bytes::from_static(b"plain"))
                .unwrap();
            node.shutdown();
            v
        },
    );
    for r in results {
        assert_eq!(r.as_deref(), Some(&b"plain"[..]));
    }
}

#[test]
fn seven_node_cluster() {
    let results = with_cluster(SessionConfig::new(7).unwrap(), |node| {
        let d = node.binary_consensus(1, true).unwrap();
        node.shutdown();
        d
    });
    assert_eq!(results, vec![true; 7]);
}

#[test]
fn causal_adapter_over_live_cluster() {
    // A chat-like causality pattern: p1 replies only after delivering
    // p0's message. Every process runs the causal adapter over its
    // deliveries; the released order must respect the reply dependency
    // and be identical everywhere.
    use ritas::causal::CausalOrder;
    let nodes = Node::cluster(SessionConfig::new(4).unwrap()).unwrap();
    let handles: Vec<_> = nodes
        .into_iter()
        .map(|node| {
            std::thread::spawn(move || {
                let me = node.id();
                let mut causal = CausalOrder::new(4, me);
                if me == 0 {
                    node.atomic_broadcast(causal.wrap(b"question")).unwrap();
                }
                let mut released = Vec::new();
                while released.len() < 2 {
                    let d = node.atomic_recv().unwrap();
                    for (id, payload) in causal.push(d) {
                        // p1 replies as soon as it causally delivers the
                        // question.
                        if me == 1 && payload.as_ref() == b"question" {
                            node.atomic_broadcast(causal.wrap(b"answer")).unwrap();
                        }
                        released.push((id, payload));
                    }
                }
                node.shutdown();
                released
            })
        })
        .collect();
    let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    for r in &results {
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].1.as_ref(), b"question", "causality violated");
        assert_eq!(r[1].1.as_ref(), b"answer");
        assert_eq!(r, &results[0], "causal order diverged");
    }
}

#[test]
fn full_stack_over_real_tcp_with_real_hmacs() {
    // The complete paper deployment: protocol stack over TCP with the
    // AH-style authentication layer computing real HMAC-SHA-1-96 on
    // every frame — atomic broadcast and consensus end-to-end.
    let nodes = Node::tcp_cluster(SessionConfig::new(4).unwrap(), Duration::from_secs(10))
        .expect("tcp mesh");
    let handles: Vec<_> = nodes
        .into_iter()
        .map(|node| {
            std::thread::spawn(move || {
                let d = node.binary_consensus(1, true).unwrap();
                assert!(d);
                node.atomic_broadcast(Bytes::from(format!("tcp-{}", node.id())))
                    .unwrap();
                let mut order = Vec::new();
                for _ in 0..4 {
                    order.push(node.atomic_recv().unwrap().id);
                }
                node.shutdown();
                order
            })
        })
        .collect();
    let orders: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    for o in &orders {
        assert_eq!(o, &orders[0], "total order diverged over TCP");
    }
}

#[test]
fn metrics_endpoint_serves_prometheus_text_during_tcp_run() {
    use std::io::{Read, Write};

    // The deployed configuration: real TCP transport with the opt-in
    // observability endpoint enabled on every node.
    let config = SessionConfig::new(4).unwrap().with_metrics_endpoint();
    let nodes = Node::tcp_cluster(config, Duration::from_secs(10)).expect("tcp mesh");
    let addr = nodes[0]
        .metrics_addr()
        .expect("endpoint enabled via config");

    // Drive a round of atomic broadcasts so the scrape sees live data.
    let handles: Vec<_> = nodes
        .into_iter()
        .map(|node| {
            std::thread::spawn(move || {
                node.atomic_broadcast(Bytes::from(format!("scrape-{}", node.id())))
                    .unwrap();
                for _ in 0..4 {
                    node.atomic_recv().unwrap();
                }
                node
            })
        })
        .collect();
    let nodes: Vec<Node> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    // Scrape while the session is still live, like Prometheus would.
    let mut conn = std::net::TcpStream::connect(addr).expect("connect to /metrics");
    conn.write_all(b"GET /metrics HTTP/1.1\r\nHost: ritas\r\nConnection: close\r\n\r\n")
        .unwrap();
    let mut response = String::new();
    conn.read_to_string(&mut response).unwrap();

    assert!(
        response.starts_with("HTTP/1.1 200 OK"),
        "unexpected status line: {}",
        response.lines().next().unwrap_or("")
    );
    assert!(response.contains("Content-Type: text/plain; version=0.0.4"));
    let body = response
        .split_once("\r\n\r\n")
        .expect("header/body separator")
        .1;
    // Valid text exposition: every ritas_-prefixed sample has a TYPE line,
    // counters from the run are nonzero, and the per-layer latency
    // histogram exports cumulative buckets.
    assert!(body.contains("# TYPE ritas_ab_delivered counter"));
    assert!(body.contains("# TYPE ritas_ab_sent_pending gauge"));
    assert!(body.contains("# TYPE ritas_ab_latency_ns histogram"));
    assert!(body.contains("ritas_ab_latency_ns_bucket{le=\"+Inf\"}"));
    assert!(body.contains("ritas_ab_latency_ns_count"));
    let delivered = body
        .lines()
        .find_map(|l| l.strip_prefix("ritas_ab_delivered "))
        .and_then(|v| v.parse::<u64>().ok())
        .expect("ritas_ab_delivered sample");
    assert!(delivered >= 4, "scrape saw {delivered} deliveries");

    for node in nodes {
        node.shutdown();
    }
}

#[test]
fn tcp_delivery_resumes_after_link_sever_mid_run() {
    // Kill a live TCP socket mid-session: the session layer must
    // reconnect and retransmit, so a second wave of atomic broadcasts
    // still fully delivers and the runtime surfaces the outage as link
    // events rather than wedging.
    let (nodes, chaos) =
        Node::tcp_cluster_with_chaos(SessionConfig::new(4).unwrap(), Duration::from_secs(10))
            .expect("tcp mesh");

    // Wave 1: traffic flows on the healthy mesh.
    let handles: Vec<_> = nodes
        .into_iter()
        .map(|node| {
            std::thread::spawn(move || {
                node.atomic_broadcast(Bytes::from(format!("pre-{}", node.id())))
                    .unwrap();
                for _ in 0..4 {
                    node.atomic_recv_timeout(Duration::from_secs(30)).unwrap();
                }
                node
            })
        })
        .collect();
    let nodes: Vec<Node> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    // Sever the 0-1 link (forcibly, at the socket).
    chaos[0].kill_link(1);

    // Wave 2: deliveries must resume through the self-healed link, in
    // the same total order everywhere.
    let handles: Vec<_> = nodes
        .into_iter()
        .map(|node| {
            std::thread::spawn(move || {
                node.atomic_broadcast(Bytes::from(format!("post-{}", node.id())))
                    .unwrap();
                let mut ids = Vec::new();
                for _ in 0..4 {
                    let d = node
                        .atomic_recv_timeout(Duration::from_secs(30))
                        .expect("delivery stalled after link sever");
                    ids.push(d.id);
                }
                (node, ids)
            })
        })
        .collect();
    let (nodes, orders): (Vec<Node>, Vec<Vec<_>>) =
        handles.into_iter().map(|h| h.join().unwrap()).unzip();
    for o in &orders {
        assert_eq!(o, &orders[0], "total order diverged across the sever");
    }

    // The runtime observed the outage on the severed link.
    let events = nodes[0].take_link_events();
    assert!(
        events.iter().any(|e| e.peer == 1),
        "node 0 saw no link event for peer 1: {events:?}"
    );
    for node in nodes {
        node.shutdown();
    }
}

#[test]
fn survivors_progress_after_a_node_departs() {
    // Regression test: `send_all` used to abort on the first per-link
    // error, so once one node shut down (its endpoint dropped), every
    // broadcast silently stopped reaching higher-indexed peers and the
    // survivors' agreements hung forever.
    let nodes = Node::cluster(SessionConfig::new(4).unwrap()).unwrap();
    // Wave 1: everyone broadcasts, everyone receives.
    let handles: Vec<_> = nodes
        .into_iter()
        .map(|node| {
            std::thread::spawn(move || {
                node.atomic_broadcast(Bytes::from(format!("w1-{}", node.id())))
                    .unwrap();
                for _ in 0..4 {
                    node.atomic_recv().unwrap();
                }
                node
            })
        })
        .collect();
    let mut nodes: Vec<Node> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    // Node 1 departs (clean shutdown, endpoint dropped).
    let departing = nodes.remove(1);
    departing.shutdown();
    drop(departing);
    std::thread::sleep(Duration::from_millis(100));

    // Wave 2: the three survivors must still reach agreement.
    let handles: Vec<_> = nodes
        .into_iter()
        .map(|node| {
            std::thread::spawn(move || {
                node.atomic_broadcast(Bytes::from(format!("w2-{}", node.id())))
                    .unwrap();
                let mut ids = Vec::new();
                for _ in 0..3 {
                    let d = node
                        .atomic_recv_timeout(Duration::from_secs(30))
                        .expect("survivor starved after a peer departed");
                    ids.push(d.id);
                }
                node.shutdown();
                ids
            })
        })
        .collect();
    let orders: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    for o in &orders {
        assert_eq!(o, &orders[0], "survivor total order diverged");
    }
}

#[test]
fn atomic_recv_timeout_on_idle_session() {
    let nodes = Node::cluster(SessionConfig::new(4).unwrap()).unwrap();
    let err = nodes[0]
        .atomic_recv_timeout(Duration::from_millis(30))
        .unwrap_err();
    assert_eq!(err, NodeError::Timeout);
    for n in &nodes {
        n.shutdown();
    }
}

#[test]
fn shutdown_disconnects_pending_receivers() {
    let nodes = Node::cluster(SessionConfig::new(4).unwrap()).unwrap();
    let node = nodes.into_iter().next().unwrap();
    node.shutdown();
    // Give the worker a moment to exit, then every API call must fail
    // with Disconnected rather than hang.
    std::thread::sleep(Duration::from_millis(50));
    assert!(matches!(
        node.atomic_broadcast(Bytes::from_static(b"x")),
        Err(NodeError::Disconnected)
    ));
}
