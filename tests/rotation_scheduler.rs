//! Rotation-tier integration test: proactive recovery sweeps every
//! replica of a live service group, one ordered wipe slot at a time,
//! under sustained client load (DESIGN.md §9).
//!
//! The full cycle exercised here:
//!
//! 1. A 4-replica service group (`n = 4, f = 1`) applies client
//!    commands past the first snapshot boundary; every replica arms the
//!    rotation driver.
//! 2. The replicated scheduler grants wipe slots through the ordered
//!    log — at most one replica non-Live at any instant, checked
//!    empirically by a sampling monitor, not assumed.
//! 3. Each grant advances the transport key epoch at schedule time;
//!    after the sweep every replica seals traffic under refreshed keys.
//! 4. Each returnee broadcasts its own `WipeComplete` when it reaches
//!    Live, which closes the slot, clears the group's accumulated
//!    suspicion evidence against it, and opens the next slot.
//! 5. Exactly-once holds across all four wipe/rejoin boundaries: the
//!    replicated session table dedups retried `(client, seq)` pairs, so
//!    the audit must find zero duplicate applies anywhere.
//!
//! Timing-dependent (real threads over the in-memory hub).

use bytes::Bytes;
use ritas::codec::{Reader, WireError, Writer};
use ritas::node::{Node, SessionConfig};
use ritas::recovery::scheduler::RotationConfig;
use ritas::recovery::{RecoveryConfig, SnapshotState};
use ritas::service::{ClientId, CommandKind, ServiceConfig, ServiceError, ServiceReplica};
use ritas_metrics::SuspicionKind;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Replicated state that tallies applies per `(client, seq)`: any count
/// above 1 is a duplicate apply (same audit as the rejoin tier).
#[derive(Default, Clone)]
struct Audit {
    total: u64,
    applied: BTreeMap<(u64, u64), u64>,
}

impl SnapshotState for Audit {
    fn encode_snapshot(&self, w: &mut Writer) {
        w.u64(self.total);
        w.u64(self.applied.len() as u64);
        for (&(client, seq), &n) in &self.applied {
            w.u64(client).u64(seq).u64(n);
        }
    }

    fn decode_snapshot(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let total = r.u64("audit.total")?;
        let count = r.u64("audit.count")?;
        let mut applied = BTreeMap::new();
        for _ in 0..count {
            let client = r.u64("audit.client")?;
            let seq = r.u64("audit.seq")?;
            let n = r.u64("audit.n")?;
            applied.insert((client, seq), n);
        }
        Ok(Audit { total, applied })
    }
}

fn audit_apply(state: &mut Audit, client: ClientId, cmd: &[u8]) -> Bytes {
    let mut seq_bytes = [0u8; 8];
    seq_bytes.copy_from_slice(&cmd[..8]);
    let seq = u64::from_be_bytes(seq_bytes);
    *state.applied.entry((client, seq)).or_insert(0) += 1;
    state.total += 1;
    Bytes::from(state.total.to_be_bytes().to_vec())
}

fn audit_query(state: &Audit, _q: &[u8]) -> Bytes {
    Bytes::from(state.total.to_be_bytes().to_vec())
}

/// Coarser than the rejoin tier's config: under sustained load the
/// audit state grows continuously, and a rejoiner pulling tiny chunks
/// would chase a moving snapshot forever. 1 KiB chunks and wide fill
/// batches keep each transfer comfortably ahead of the load.
fn recovery_cfg() -> RecoveryConfig {
    RecoveryConfig {
        snapshot_every: 64,
        chunk_size: 1024,
        fill_batch: 256,
    }
}

/// A short quiet period keeps the sweep brisk; the defer threshold is
/// high enough that a clean run never defers (a deferral here would
/// mask a scheduling bug — the final state asserts zero).
fn rotation_cfg() -> RotationConfig {
    RotationConfig {
        period: Duration::from_millis(200),
        abort_after: Duration::from_secs(60),
        suspicion_defer_threshold: 1 << 20,
    }
}

fn service_cfg() -> ServiceConfig {
    ServiceConfig::default()
}

type Slots = Arc<Mutex<Vec<Option<Arc<ServiceReplica<Audit>>>>>>;

/// Arms the rotation driver: a slot grant lands on the channel and the
/// orchestrator below performs the crash/wipe/rejoin (in production the
/// callback would exec into a clean binary).
fn arm(replica: &Arc<ServiceReplica<Audit>>, id: usize, tx: &mpsc::Sender<(usize, u64)>) {
    let tx = tx.clone();
    replica.start_rotation(rotation_cfg(), move |epoch| {
        let _ = tx.send((id, epoch));
    });
}

/// Polls `cond` until it holds or `secs` elapse; panics with `what`.
fn wait_for(secs: u64, what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(secs);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// The acceptance scenario: a full proactive-recovery sweep of all four
/// replicas under sustained load, audited for exactly-once, liveness,
/// epoch refresh, and suspicion clearing.
#[test]
fn full_rotation_under_load_is_exactly_once() {
    let n = 4usize;
    let session = SessionConfig::new(n).unwrap();
    let (nodes, hub) = Node::cluster_with_hub(&session).unwrap();
    let (wipe_tx, wipe_rx) = mpsc::channel::<(usize, u64)>();

    let slots: Slots = Arc::new(Mutex::new(Vec::with_capacity(n)));
    {
        let mut s = slots.lock().unwrap();
        for (i, node) in nodes.into_iter().enumerate() {
            let replica = Arc::new(
                ServiceReplica::with_recovery(
                    node,
                    Audit::default(),
                    service_cfg(),
                    recovery_cfg(),
                    audit_apply,
                    audit_query,
                )
                .expect("valid recovery config"),
            );
            replica.metrics().set_tracing(false);
            arm(&replica, i, &wipe_tx);
            s.push(Some(replica));
        }
    }
    let at = |i: usize| -> Arc<ServiceReplica<Audit>> {
        slots.lock().unwrap()[i].clone().expect("replica live")
    };

    // Warm-up load; the sustained workers below push the group past the
    // seq-64 snapshot boundary, which is what arms the first grant (the
    // driver refuses to schedule its own wipe before a snapshot exists
    // to restore from).
    for seq in 1..=10 {
        at(0)
            .submit(
                1,
                seq,
                CommandKind::Apply,
                Bytes::from(seq.to_be_bytes().to_vec()),
                Duration::from_secs(30),
            )
            .expect("pre-load submit");
    }

    // Plant suspicion evidence against the first victim (slot cursor
    // starts at replica 0) on a survivor: its completed wipe-and-rejoin
    // must wipe that evidence — the returnee is a fresh incarnation.
    at(1).metrics().suspect(0, SuspicionKind::BadMac);
    assert!(at(1)
        .metrics()
        .suspicions()
        .iter()
        .any(|s| s.peer == 0 && s.count(SuspicionKind::BadMac) == 1));

    // The scheduler's core invariant, measured: never more than one
    // replica non-Live at any sampled instant.
    let stop = Arc::new(AtomicBool::new(false));
    let monitor = {
        let slots = Arc::clone(&slots);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut max_non_live = 0usize;
            while !stop.load(Ordering::Relaxed) {
                let holes = slots.lock().unwrap().iter().filter(|s| s.is_none()).count();
                max_non_live = max_non_live.max(holes);
                std::thread::sleep(Duration::from_millis(2));
            }
            max_non_live
        })
    };

    // Sustained load: two clients submitting continuously, retrying each
    // seq at whichever replicas are live until it lands. `Stale` means an
    // earlier attempt applied and the cached reply aged out — the write
    // landed exactly once.
    let workers: Vec<_> = (0..2)
        .map(|c| {
            let slots = Arc::clone(&slots);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let client = 100 + c as u64;
                let mut seq = 0u64;
                let mut ok = 0u64;
                let mut rr = c;
                while !stop.load(Ordering::Relaxed) {
                    seq += 1;
                    let payload = Bytes::from(seq.to_be_bytes().to_vec());
                    loop {
                        if stop.load(Ordering::Relaxed) {
                            return ok;
                        }
                        rr += 1;
                        let replica = {
                            let s = slots.lock().unwrap();
                            s[rr % s.len()].clone()
                        };
                        let Some(r) = replica else {
                            std::thread::sleep(Duration::from_millis(2));
                            continue;
                        };
                        match r.submit(
                            client,
                            seq,
                            CommandKind::Apply,
                            payload.clone(),
                            Duration::from_secs(5),
                        ) {
                            Ok(_) | Err(ServiceError::Stale) => {
                                ok += 1;
                                // Sustained but bounded: an unthrottled
                                // client in a debug build can outrun the
                                // state transfer it is racing.
                                std::thread::sleep(Duration::from_millis(10));
                                break;
                            }
                            Err(_) => std::thread::sleep(Duration::from_millis(5)),
                        }
                    }
                }
                ok
            })
        })
        .collect();

    // One full sweep, lock-step with the replicated log: each grant is
    // honoured with a crash + wipe, the returnee's own WipeComplete at
    // Live closes the slot, and only then does the next slot open.
    let mut rounds: Vec<(usize, u64)> = Vec::new();
    for round in 0..n {
        let (victim, epoch) = wipe_rx
            .recv_timeout(Duration::from_secs(120))
            .unwrap_or_else(|_| panic!("no wipe grant within 120 s after round {round}"));
        let old = slots.lock().unwrap()[victim]
            .take()
            .expect("granted replica is live");
        hub.crash(victim);
        old.shutdown();
        drop(old);

        let node = Node::rejoin(&session, &hub, victim).expect("rejoin node");
        let m = node.metrics().clone();
        m.set_tracing(false);
        let replica = Arc::new(
            ServiceReplica::rejoin(
                node,
                Audit::default(),
                service_cfg(),
                recovery_cfg(),
                None,
                audit_apply,
                audit_query,
            )
            .expect("valid recovery config"),
        );
        eprintln!("round {round}: wiped replica {victim} (epoch {epoch}), rejoining");
        wait_for(120, "returnee to reach Live", || {
            m.recovery_completed_total.get() == 1
        });
        eprintln!("round {round}: replica {victim} back to Live");
        arm(&replica, victim, &wipe_tx);
        slots.lock().unwrap()[victim] = Some(replica);
        rounds.push((victim, epoch));

        if round == 0 {
            // Replica 0's WipeComplete has been broadcast (it reached
            // Live); once ordered at replica 1, the planted evidence
            // must be gone — checked before replica 1's own slot opens.
            let survivor = at(1);
            wait_for(30, "suspicion evidence to clear", || {
                survivor
                    .metrics()
                    .suspicions()
                    .iter()
                    .all(|s| s.peer != 0 || s.count(SuspicionKind::BadMac) == 0)
            });
        }
    }

    stop.store(true, Ordering::Relaxed);
    let ok_total: u64 = workers.into_iter().map(|w| w.join().expect("worker")).sum();
    let max_non_live = monitor.join().expect("monitor");

    // Every replica rotated exactly once, in slot order.
    let victims: Vec<usize> = rounds.iter().map(|&(v, _)| v).collect();
    assert_eq!(
        victims,
        vec![0, 1, 2, 3],
        "slots must open in rotation order"
    );
    // Each grant carried a strictly later epoch.
    for w in rounds.windows(2) {
        assert!(w[1].1 > w[0].1, "epochs must advance: {rounds:?}");
    }
    assert!(ok_total > 0, "no client request succeeded during the sweep");
    assert!(
        max_non_live <= 1,
        "{max_non_live} replicas were non-Live at once"
    );

    // Converge and audit across the whole rotated group.
    let replicas: Vec<Arc<ServiceReplica<Audit>>> = (0..n).map(at).collect();
    for r in &replicas {
        r.barrier().unwrap();
    }
    let totals: Vec<u64> = replicas.iter().map(|r| r.read_state(|s| s.total)).collect();
    assert!(
        totals.windows(2).all(|w| w[0] == w[1]),
        "replicas diverged: {totals:?}"
    );
    for r in &replicas {
        let dups: Vec<((u64, u64), u64)> = r.read_state(|s| {
            s.applied
                .iter()
                .filter(|(_, &c)| c != 1)
                .map(|(&k, &c)| (k, c))
                .collect()
        });
        assert!(
            dups.is_empty(),
            "replica {} duplicate applies: {dups:?}",
            r.id()
        );
    }

    // Replicated scheduler bookkeeping: four completed rounds, an epoch
    // that kept pace, no deferrals, and every replica sealing under a
    // refreshed key (>= the round count; the next grant may already be
    // in flight, so no exact-equality check).
    let rot = replicas[0]
        .rotation_state()
        .expect("recovery-enabled replicas track rotation state");
    assert_eq!(rot.rounds_completed, n as u64, "rounds completed");
    assert_eq!(rot.deferrals, 0, "clean sweep must not defer");
    assert!(
        rot.epoch >= n as u64,
        "epoch {} after {n} rounds",
        rot.epoch
    );
    for r in &replicas {
        assert!(
            r.key_epoch() >= n as u64,
            "replica {} seals under stale epoch {}",
            r.id(),
            r.key_epoch()
        );
    }

    for r in &replicas {
        r.shutdown();
    }
}
