//! Experiment X7 — link chaos over the real TCP mesh.
//!
//! The paper (§2.1) *assumes* reliable point-to-point channels and
//! discharges the assumption onto TCP + IPSec. This test discharges it
//! onto our session layer instead, adversarially: a 4-node cluster runs
//! atomic broadcast while a chaos thread forcibly kills every live
//! socket of every link at least five times. The protocols above must
//! never notice — zero lost deliveries, zero duplicates, identical
//! total order on every node — and the observability layer must report
//! the carnage (`ritas_transport_reconnects_total > 0` on `/metrics`).

use bytes::Bytes;
use ritas::node::{Node, SessionConfig};
use std::time::Duration;

const N: usize = 4;
const MSGS_PER_NODE: usize = 10;
const KILL_ROUNDS: usize = 5;
const PAIRS: [(usize, usize); 6] = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];

#[test]
fn atomic_broadcast_survives_repeated_socket_kills_on_every_link() {
    let config = SessionConfig::new(N).unwrap().with_metrics_endpoint();
    let (nodes, chaos) =
        Node::tcp_cluster_with_chaos(config, Duration::from_secs(10)).expect("tcp mesh");
    let metrics_addr = nodes[0].metrics_addr().expect("metrics endpoint enabled");

    // The chaos thread: five rounds over all six links, each kill
    // severing the live socket (both directions) at the TCP level while
    // application traffic is in flight.
    let killer = std::thread::spawn(move || {
        for round in 0..KILL_ROUNDS {
            for (a, b) in PAIRS {
                chaos[a].kill_link(b);
                std::thread::sleep(Duration::from_millis(20 + (round as u64) * 5));
            }
        }
    });

    // Meanwhile every node atomically broadcasts a paced stream and
    // must a-deliver everyone's full stream.
    let total = N * MSGS_PER_NODE;
    let handles: Vec<_> = nodes
        .into_iter()
        .map(|node| {
            std::thread::spawn(move || {
                for k in 0..MSGS_PER_NODE {
                    node.atomic_broadcast(Bytes::from(format!("chaos-{}-{k}", node.id())))
                        .unwrap();
                    std::thread::sleep(Duration::from_millis(15));
                }
                let mut order = Vec::new();
                for i in 0..total {
                    let d = node
                        .atomic_recv_timeout(Duration::from_secs(60))
                        .unwrap_or_else(|e| {
                            panic!("node {} starved at delivery {i}: {e:?}", node.id())
                        });
                    order.push(d.id);
                }
                (node, order)
            })
        })
        .collect();
    let (nodes, orders): (Vec<Node>, Vec<Vec<_>>) =
        handles.into_iter().map(|h| h.join().unwrap()).unzip();
    killer.join().unwrap();

    // Zero loss, zero duplication: every node saw exactly `total`
    // distinct message ids...
    for (p, order) in orders.iter().enumerate() {
        let unique: std::collections::HashSet<_> = order.iter().collect();
        assert_eq!(
            unique.len(),
            total,
            "node {p} delivered a duplicate under link chaos"
        );
        // ...in the same total order everywhere.
        assert_eq!(order, &orders[0], "total order diverged at node {p}");
    }

    // The mesh actually went through reconnects and says so on /metrics.
    let body = scrape(metrics_addr);
    let reconnects = counter(&body, "ritas_transport_reconnects_total");
    assert!(reconnects > 0, "chaos run reported no reconnects:\n{body}");
    assert!(body.contains("# TYPE ritas_transport_reconnects_total counter"));
    assert!(body.contains("ritas_transport_links_up"));

    for node in nodes {
        node.shutdown();
    }
}

/// One Prometheus-style scrape of `addr`, returning the body.
fn scrape(addr: std::net::SocketAddr) -> String {
    use std::io::{Read, Write};
    let mut conn = std::net::TcpStream::connect(addr).expect("connect to /metrics");
    conn.write_all(b"GET /metrics HTTP/1.1\r\nHost: ritas\r\nConnection: close\r\n\r\n")
        .unwrap();
    let mut response = String::new();
    conn.read_to_string(&mut response).unwrap();
    response
        .split_once("\r\n\r\n")
        .expect("header/body separator")
        .1
        .to_string()
}

/// Extracts a plain counter sample from a text-exposition body.
fn counter(body: &str, name: &str) -> u64 {
    body.lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("no {name} sample in:\n{body}"))
}
