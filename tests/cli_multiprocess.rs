//! True multi-process deployment test: four separate OS processes run
//! the `ritas-node` binary over real TCP sockets, each atomically
//! broadcasting a burst, and every process must print the identical
//! total order.

use std::io::Read;
use std::net::TcpListener;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Reserves `n` distinct localhost ports by binding-and-dropping.
/// Slightly racy in principle; retried by the caller on failure.
fn free_ports(n: usize) -> Vec<u16> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().unwrap().port())
        .collect()
}

fn wait_with_timeout(child: &mut Child, deadline: Instant) -> Option<std::process::ExitStatus> {
    loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            return Some(status);
        }
        if Instant::now() > deadline {
            return None;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn run_cluster_once(burst: usize) -> Result<Vec<Vec<String>>, String> {
    let n = 4;
    let ports = free_ports(n);
    let peers: Vec<String> = ports.iter().map(|p| format!("127.0.0.1:{p}")).collect();
    let peers_arg = peers.join(",");
    let bin = env!("CARGO_BIN_EXE_ritas-node");

    let mut children: Vec<Child> = (0..n)
        .map(|me| {
            Command::new(bin)
                .args([
                    "--me",
                    &me.to_string(),
                    "--peers",
                    &peers_arg,
                    "--burst",
                    &burst.to_string(),
                    "--connect-timeout-secs",
                    "20",
                ])
                .stdout(Stdio::piped())
                .stderr(Stdio::null())
                .spawn()
                .expect("spawn ritas-node")
        })
        .collect();

    let deadline = Instant::now() + Duration::from_secs(60);
    let mut outputs = Vec::new();
    let mut failed = false;
    for child in &mut children {
        match wait_with_timeout(child, deadline) {
            Some(status) if status.success() => {}
            _ => {
                failed = true;
                let _ = child.kill();
            }
        }
    }
    for mut child in children {
        let mut out = String::new();
        if let Some(stdout) = child.stdout.as_mut() {
            let _ = stdout.read_to_string(&mut out);
        }
        let _ = child.wait();
        outputs.push(
            out.lines()
                .filter(|l| l.starts_with("DELIVER "))
                .map(|l| l.to_owned())
                .collect::<Vec<_>>(),
        );
    }
    if failed {
        return Err("a node did not exit cleanly (port race?)".into());
    }
    Ok(outputs)
}

#[test]
fn four_os_processes_agree_on_the_total_order() {
    let burst = 3;
    // The bind-and-drop port reservation can race with other tests or
    // system daemons; retry a couple of times before declaring failure.
    let mut last_err = String::new();
    for attempt in 0..3 {
        match run_cluster_once(burst) {
            Ok(outputs) => {
                for (me, out) in outputs.iter().enumerate() {
                    assert_eq!(
                        out.len(),
                        burst * 4,
                        "process {me} delivered {} of {} messages",
                        out.len(),
                        burst * 4
                    );
                }
                for me in 1..4 {
                    assert_eq!(
                        outputs[me], outputs[0],
                        "total order diverged between OS processes 0 and {me}"
                    );
                }
                return;
            }
            Err(e) => {
                last_err = format!("attempt {attempt}: {e}");
                std::thread::sleep(Duration::from_millis(200));
            }
        }
    }
    panic!("multi-process cluster failed: {last_err}");
}
