//! Property-based tests (proptest) on the stack's invariants:
//!
//! * wire codecs roundtrip for arbitrary values and never panic on
//!   arbitrary (hostile) input;
//! * binary consensus satisfies agreement + validity under arbitrary
//!   schedules, proposal mixes and coin seeds;
//! * atomic broadcast keeps its total order under random bursts;
//! * Bracha's validation rule never rejects a correct process's value;
//! * structurally valid but semantically conflicting (equivocated) BC
//!   tallies and EB hash-vectors are rejected without panics.
//!
//! Protocol-level properties are checked through the same
//! [`ritas::invariants::InvariantChecker`] the adversarial conformance
//! harness uses (see `tests/adversary_matrix.rs`), so the predicates
//! stay in one place.

#![allow(clippy::needless_range_loop)] // indexing by process id is idiomatic here

use bytes::Bytes;
use proptest::prelude::*;
use ritas::bc::validation::{
    majority, next_round_valid, step2_valid, step3_valid, strict_majority, Tally,
};
use ritas::codec::WireMessage;
use ritas::invariants::InvariantChecker;
use ritas::rb::RbMessage;
use ritas::stack::{InstanceKey, Output};
use ritas::testing::Cluster;

// ---------- codec properties ----------

fn arb_bytes(max: usize) -> impl Strategy<Value = Bytes> {
    proptest::collection::vec(any::<u8>(), 0..max).prop_map(Bytes::from)
}

proptest! {
    #[test]
    fn rb_message_roundtrips(payload in arb_bytes(200), tag in 0u8..3) {
        let msg = match tag {
            0 => RbMessage::Init(payload),
            1 => RbMessage::Echo(payload),
            _ => RbMessage::Ready(payload),
        };
        prop_assert_eq!(RbMessage::from_bytes(&msg.to_bytes()).unwrap(), msg);
    }

    #[test]
    fn instance_key_roundtrips(kind in 0u8..6, a in any::<u32>(), b in any::<u64>()) {
        let key = match kind {
            0 => InstanceKey::Rb { sender: a as usize % 1000, seq: b },
            1 => InstanceKey::Eb { sender: a as usize % 1000, seq: b },
            2 => InstanceKey::Bc { tag: b },
            3 => InstanceKey::Mvc { tag: b },
            4 => InstanceKey::Vc { tag: b },
            _ => InstanceKey::Ab { session: a },
        };
        prop_assert_eq!(InstanceKey::from_bytes(&key.to_bytes()).unwrap(), key);
    }

    /// Hostile input: arbitrary bytes must never panic any decoder.
    #[test]
    fn decoders_never_panic_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = RbMessage::from_bytes(&data);
        let _ = InstanceKey::from_bytes(&data);
        let _ = ritas::eb::EbMessage::from_bytes(&data);
        let _ = ritas::bc::BcMessage::from_bytes(&data);
        let _ = ritas::mvc::MvcMessage::from_bytes(&data);
        let _ = ritas::vc::VcMessage::from_bytes(&data);
        let _ = ritas::ab::AbMessage::from_bytes(&data);
    }

    /// A stack fed arbitrary frames from a "Byzantine" peer must not
    /// panic and must not deliver or send out of thin air. Frames whose
    /// tag happens to decode as `InstanceKey::Xfer` are routed verbatim
    /// to `Output::Xfer` by design — the recovery driver in `rsm`
    /// authenticates and validates them — but nothing else may surface.
    #[test]
    fn stack_survives_garbage_frames(frames in proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 0..120), 1..20)) {
        let mut cluster = Cluster::new(4, 99);
        for f in frames {
            let step = cluster.stack_mut(0).handle_frame(1, Bytes::from(f));
            for out in &step.outputs {
                prop_assert!(matches!(out, Output::Xfer { .. }));
            }
        }
    }
}

// ---------- Bracha validation soundness ----------

proptest! {
    /// Whatever a correct process derives from a snapshot of exactly `q`
    /// step-1 values must validate against any extension of that
    /// snapshot (monotonicity + soundness of `step2_valid`).
    #[test]
    fn step2_validation_sound(zeros in 0usize..8, extra_z in 0usize..4, extra_o in 0usize..4) {
        let q = 5; // n = 7, f = 2
        let zeros = zeros.min(q);
        let snapshot = Tally { zeros, ones: q - zeros, bottoms: 0 };
        let derived = majority(&snapshot);
        let extended = Tally {
            zeros: snapshot.zeros + extra_z,
            ones: snapshot.ones + extra_o,
            bottoms: 0,
        };
        prop_assert!(step2_valid(&extended, derived, q),
            "derived {derived} from {snapshot:?} rejected under {extended:?}");
    }

    #[test]
    fn step3_validation_sound(zeros in 0usize..8, extra_z in 0usize..4, extra_o in 0usize..4) {
        let q = 5;
        let zeros = zeros.min(q);
        let snapshot = Tally { zeros, ones: q - zeros, bottoms: 0 };
        let derived = strict_majority(&snapshot);
        let extended = Tally {
            zeros: snapshot.zeros + extra_z,
            ones: snapshot.ones + extra_o,
            bottoms: 0,
        };
        prop_assert!(step3_valid(&extended, derived, q));
    }

    #[test]
    fn next_round_validation_sound(zeros in 0usize..6, ones in 0usize..6, extra in 0usize..3) {
        let q = 5;
        let f = 2;
        prop_assume!(zeros + ones <= q);
        let snapshot = Tally { zeros, ones, bottoms: q - zeros - ones };
        // Values a correct process can carry into the next round.
        let candidates: Vec<bool> = if snapshot.zeros > f {
            vec![false]
        } else if snapshot.ones > f {
            vec![true]
        } else {
            vec![false, true]
        };
        let extended = Tally { bottoms: snapshot.bottoms + extra, ..snapshot };
        for v in candidates {
            prop_assert!(next_round_valid(&extended, v, q, f));
        }
    }
}

// ---------- protocol-level properties ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Binary consensus: agreement + validity for every proposal mix,
    /// schedule seed and crash pattern (at most one crash for n = 4).
    #[test]
    fn bc_agreement_and_validity(
        proposals in proptest::collection::vec(any::<bool>(), 4),
        seed in any::<u64>(),
        crash in proptest::option::of(0usize..4),
    ) {
        let mut cluster = Cluster::new(4, seed);
        if let Some(victim) = crash {
            cluster.crash(victim);
        }
        for p in 0..4 {
            if crash == Some(p) {
                continue;
            }
            let s = cluster.stack_mut(p).bc_propose(1, proposals[p]).unwrap();
            cluster.absorb(p, s);
        }
        cluster.run();

        let decisions: Vec<(usize, bool)> = (0..4)
            .filter(|p| crash != Some(*p))
            .filter_map(|p| {
                cluster.outputs(p).iter().find_map(|o| match o {
                    Output::BcDecided { decision, .. } => Some((p, *decision)),
                    _ => None,
                })
            })
            .collect();
        // All correct processes decide (termination with prob. 1; the
        // deterministic schedule makes it certain here)…
        prop_assert_eq!(decisions.len(), 4 - crash.iter().count());
        // …the same value (agreement)…
        let d0 = decisions[0].1;
        prop_assert!(decisions.iter().all(|(_, d)| *d == d0));
        // …and if all correct processes proposed v, the decision is v
        // (validity).
        let correct_proposals: Vec<bool> = (0..4)
            .filter(|p| crash != Some(*p))
            .map(|p| proposals[p])
            .collect();
        if correct_proposals.iter().all(|v| *v == correct_proposals[0]) {
            prop_assert_eq!(d0, correct_proposals[0]);
        }
    }

    /// Atomic broadcast total order under random bursts and schedules,
    /// checked through the shared invariants module (prefix-compatible
    /// orders, no duplicates, payload agreement + integrity).
    #[test]
    fn ab_total_order(
        counts in proptest::collection::vec(0usize..4, 4),
        seed in any::<u64>(),
    ) {
        let total: usize = counts.iter().sum();
        prop_assume!(total > 0);
        let mut cluster = Cluster::new(4, seed);
        let mut checker = InvariantChecker::new(4);
        for p in 0..4 {
            for k in 0..counts[p] {
                let payload = Bytes::from(format!("{p}:{k}"));
                let (id, s) = cluster.stack_mut(p).ab_broadcast(0, payload.clone());
                checker.expect_ab(id, payload);
                cluster.absorb(p, s);
            }
        }
        cluster.run();
        if let Err(v) = checker.check_cluster(&cluster) {
            prop_assert!(false, "safety violation: {}", v);
        }
        // Termination: every process a-delivered the whole burst (the
        // checker constrains safety only).
        for p in 0..4 {
            let delivered = cluster
                .outputs(p)
                .iter()
                .filter(|o| matches!(o, Output::AbDelivered { .. }))
                .count();
            prop_assert_eq!(delivered, total, "missing deliveries at {}", p);
        }
    }

    /// Multi-valued consensus decides a proposed value or ⊥ — never an
    /// invented value (validity) — with agreement and validity enforced
    /// by the shared invariants module.
    #[test]
    fn mvc_decides_proposed_or_bottom(
        values in proptest::collection::vec(0u8..4, 4),
        seed in any::<u64>(),
    ) {
        let mut cluster = Cluster::new(4, seed);
        let mut checker = InvariantChecker::new(4);
        for p in 0..4 {
            let value = Bytes::from(vec![values[p]]);
            let s = cluster
                .stack_mut(p)
                .mvc_propose(1, value.clone())
                .unwrap();
            checker.expect_mvc(1, p, Some(value));
            cluster.absorb(p, s);
        }
        cluster.run();
        if let Err(v) = checker.check_cluster(&cluster) {
            prop_assert!(false, "safety violation: {}", v);
        }
        for p in 0..4 {
            let decided = cluster
                .outputs(p)
                .iter()
                .any(|o| matches!(o, Output::MvcDecided { .. }));
            prop_assert!(decided, "process {} never decided", p);
        }
    }
}

// ---------- semantic equivocation (structurally valid conflicts) ----------

proptest! {
    /// An equivocated binary consensus value echoed by at most `f`
    /// processes — structurally a perfectly well-formed step value — must
    /// never pass the step-2/step-3 validation rules, whatever else the
    /// tally holds. (`q = 2f + 1` for the paper's `n = 3f + 1` groups, so
    /// any justifying subset needs more than `f` supporters.)
    #[test]
    fn minority_equivocated_value_never_validates(
        f in 1usize..4,
        support in 0usize..4,
        honest_extra in 0usize..12,
        bottoms in 0usize..4,
    ) {
        let q = 2 * f + 1;
        let support = support.min(f); // the lie's backers: at most f
        // Everyone else holds the honest value 1 (so the lie is 0): with
        // at most f < ⌈q/2⌉ backers, no q-subset makes the lie a
        // (strict) majority.
        let tally0 = Tally { zeros: support, ones: q + honest_extra, bottoms: 0 };
        prop_assert!(!step2_valid(&tally0, false, q));
        prop_assert!(!step3_valid(&tally0, Some(false), q));
        // Symmetrically with the lie being 1.
        let tally1 = Tally { zeros: q + honest_extra, ones: support, bottoms: 0 };
        prop_assert!(!step2_valid(&tally1, true, q));
        prop_assert!(!step3_valid(&tally1, Some(true), q));
        // With zero supporters and no ⊥ in sight, the lie cannot enter
        // the next round either (no adopt branch, no coin subset).
        if support == 0 && bottoms == 0 {
            let tally = Tally { zeros: q + honest_extra, ones: 0, bottoms: 0 };
            prop_assert!(!next_round_valid(&tally, true, q, f));
        }
    }

    /// Validation rules are total functions: arbitrary — including
    /// absurdly inflated, attacker-claimed — tallies never panic, for any
    /// plausible quorum size.
    #[test]
    fn validation_never_panics_on_conflicting_tallies(
        zeros in 0usize..1000,
        ones in 0usize..1000,
        bottoms in 0usize..1000,
        f in 1usize..8,
    ) {
        let q = 2 * f + 1;
        let t = Tally { zeros, ones, bottoms };
        for v in [false, true] {
            let _ = step2_valid(&t, v, q);
            let _ = step3_valid(&t, Some(v), q);
            let _ = next_round_valid(&t, v, q, f);
        }
        let _ = step3_valid(&t, None, q);
        let _ = majority(&t);
        let _ = strict_majority(&t);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Echo broadcast under hash-vector equivocation: the sender INITs
    /// `m1` to two correct receivers and `m2` to a third, then offers
    /// each side the best matrix column it can forge — its own (valid)
    /// row for the equivocated message padded with the honest rows,
    /// which only authenticate `m1`. The `f + 1` valid-MAC acceptance
    /// rule must confine delivery to `m1`: columns are structurally
    /// valid, the conflict is purely semantic, and rejection must be
    /// fault-flagged, never a panic.
    #[test]
    fn eb_hash_vector_equivocation_cannot_split(
        m1 in arb_bytes(64),
        m2 in arb_bytes(64),
        key_seed in any::<u64>(),
        odd_one_out in 1usize..4,
    ) {
        use ritas::eb::{EbMessage, EchoBroadcast};
        use ritas_crypto::{mac, KeyTable};

        prop_assume!(m1 != m2);
        let g = ritas::Group::new(4).unwrap();
        let table = KeyTable::dealer(4, key_seed);
        let mut receivers: Vec<EchoBroadcast> = (1..4)
            .map(|me| EchoBroadcast::new(g, me, 0, table.view_of(me)))
            .collect();

        // Equivocating INITs: `odd_one_out` hears m2, the others m1.
        let mut honest_rows: Vec<Option<Vec<_>>> = vec![None; 4];
        for me in 1..4 {
            let m = if me == odd_one_out { &m2 } else { &m1 };
            let step = receivers[me - 1].handle_message(0, EbMessage::Init(m.clone()));
            // The receiver answers with its VECT row over what it heard.
            if let Some(out) = step.messages.first() {
                if let EbMessage::Vect(row) = &out.message {
                    honest_rows[me] = Some(row.clone());
                }
            }
        }
        let row0_m1 = mac::hash_vector(&m1, &table.view_of(0));
        let row0_m2 = mac::hash_vector(&m2, &table.view_of(0));

        for me in 1..4 {
            let (own_row, m) = if me == odd_one_out {
                (&row0_m2, &m2)
            } else {
                (&row0_m1, &m1)
            };
            // Column for `me`: sender's own row over what it told `me`,
            // plus every honest row (which authenticates only m1).
            let column: Vec<Option<mac::MacTag>> = (0..4)
                .map(|i| {
                    if i == 0 {
                        Some(own_row[me])
                    } else {
                        honest_rows[i].as_ref().map(|row| row[me])
                    }
                })
                .collect();
            let step = receivers[me - 1].handle_message(0, EbMessage::Mat(column));
            if me == odd_one_out {
                // Only the sender's row vouches for m2: below f+1 = 2.
                prop_assert!(
                    step.outputs.is_empty(),
                    "equivocated {:?} delivered at {}", m, me
                );
                prop_assert!(!receivers[me - 1].is_delivered());
            } else {
                prop_assert_eq!(
                    step.outputs.clone(),
                    vec![m1.clone()],
                    "honest side failed to deliver at {}", me
                );
            }
        }
    }
}
