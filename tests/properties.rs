//! Property-based tests (proptest) on the stack's invariants:
//!
//! * wire codecs roundtrip for arbitrary values and never panic on
//!   arbitrary (hostile) input;
//! * binary consensus satisfies agreement + validity under arbitrary
//!   schedules, proposal mixes and coin seeds;
//! * atomic broadcast keeps its total order under random bursts;
//! * Bracha's validation rule never rejects a correct process's value.

#![allow(clippy::needless_range_loop)] // indexing by process id is idiomatic here

use bytes::Bytes;
use proptest::prelude::*;
use ritas::ab::MsgId;
use ritas::bc::validation::{
    majority, next_round_valid, step2_valid, step3_valid, strict_majority, Tally,
};
use ritas::codec::WireMessage;
use ritas::rb::RbMessage;
use ritas::stack::{InstanceKey, Output};
use ritas::testing::Cluster;

// ---------- codec properties ----------

fn arb_bytes(max: usize) -> impl Strategy<Value = Bytes> {
    proptest::collection::vec(any::<u8>(), 0..max).prop_map(Bytes::from)
}

proptest! {
    #[test]
    fn rb_message_roundtrips(payload in arb_bytes(200), tag in 0u8..3) {
        let msg = match tag {
            0 => RbMessage::Init(payload),
            1 => RbMessage::Echo(payload),
            _ => RbMessage::Ready(payload),
        };
        prop_assert_eq!(RbMessage::from_bytes(&msg.to_bytes()).unwrap(), msg);
    }

    #[test]
    fn instance_key_roundtrips(kind in 0u8..6, a in any::<u32>(), b in any::<u64>()) {
        let key = match kind {
            0 => InstanceKey::Rb { sender: a as usize % 1000, seq: b },
            1 => InstanceKey::Eb { sender: a as usize % 1000, seq: b },
            2 => InstanceKey::Bc { tag: b },
            3 => InstanceKey::Mvc { tag: b },
            4 => InstanceKey::Vc { tag: b },
            _ => InstanceKey::Ab { session: a },
        };
        prop_assert_eq!(InstanceKey::from_bytes(&key.to_bytes()).unwrap(), key);
    }

    /// Hostile input: arbitrary bytes must never panic any decoder.
    #[test]
    fn decoders_never_panic_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = RbMessage::from_bytes(&data);
        let _ = InstanceKey::from_bytes(&data);
        let _ = ritas::eb::EbMessage::from_bytes(&data);
        let _ = ritas::bc::BcMessage::from_bytes(&data);
        let _ = ritas::mvc::MvcMessage::from_bytes(&data);
        let _ = ritas::vc::VcMessage::from_bytes(&data);
        let _ = ritas::ab::AbMessage::from_bytes(&data);
    }

    /// A stack fed arbitrary frames from a "Byzantine" peer must not
    /// panic and must not produce outputs out of thin air.
    #[test]
    fn stack_survives_garbage_frames(frames in proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 0..120), 1..20)) {
        let mut cluster = Cluster::new(4, 99);
        for f in frames {
            let step = cluster.stack_mut(0).handle_frame(1, Bytes::from(f));
            prop_assert!(step.outputs.is_empty());
        }
    }
}

// ---------- Bracha validation soundness ----------

proptest! {
    /// Whatever a correct process derives from a snapshot of exactly `q`
    /// step-1 values must validate against any extension of that
    /// snapshot (monotonicity + soundness of `step2_valid`).
    #[test]
    fn step2_validation_sound(zeros in 0usize..8, extra_z in 0usize..4, extra_o in 0usize..4) {
        let q = 5; // n = 7, f = 2
        let zeros = zeros.min(q);
        let snapshot = Tally { zeros, ones: q - zeros, bottoms: 0 };
        let derived = majority(&snapshot);
        let extended = Tally {
            zeros: snapshot.zeros + extra_z,
            ones: snapshot.ones + extra_o,
            bottoms: 0,
        };
        prop_assert!(step2_valid(&extended, derived, q),
            "derived {derived} from {snapshot:?} rejected under {extended:?}");
    }

    #[test]
    fn step3_validation_sound(zeros in 0usize..8, extra_z in 0usize..4, extra_o in 0usize..4) {
        let q = 5;
        let zeros = zeros.min(q);
        let snapshot = Tally { zeros, ones: q - zeros, bottoms: 0 };
        let derived = strict_majority(&snapshot);
        let extended = Tally {
            zeros: snapshot.zeros + extra_z,
            ones: snapshot.ones + extra_o,
            bottoms: 0,
        };
        prop_assert!(step3_valid(&extended, derived, q));
    }

    #[test]
    fn next_round_validation_sound(zeros in 0usize..6, ones in 0usize..6, extra in 0usize..3) {
        let q = 5;
        let f = 2;
        prop_assume!(zeros + ones <= q);
        let snapshot = Tally { zeros, ones, bottoms: q - zeros - ones };
        // Values a correct process can carry into the next round.
        let candidates: Vec<bool> = if snapshot.zeros > f {
            vec![false]
        } else if snapshot.ones > f {
            vec![true]
        } else {
            vec![false, true]
        };
        let extended = Tally { bottoms: snapshot.bottoms + extra, ..snapshot };
        for v in candidates {
            prop_assert!(next_round_valid(&extended, v, q, f));
        }
    }
}

// ---------- protocol-level properties ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Binary consensus: agreement + validity for every proposal mix,
    /// schedule seed and crash pattern (at most one crash for n = 4).
    #[test]
    fn bc_agreement_and_validity(
        proposals in proptest::collection::vec(any::<bool>(), 4),
        seed in any::<u64>(),
        crash in proptest::option::of(0usize..4),
    ) {
        let mut cluster = Cluster::new(4, seed);
        if let Some(victim) = crash {
            cluster.crash(victim);
        }
        for p in 0..4 {
            if crash == Some(p) {
                continue;
            }
            let s = cluster.stack_mut(p).bc_propose(1, proposals[p]).unwrap();
            cluster.absorb(p, s);
        }
        cluster.run();

        let decisions: Vec<(usize, bool)> = (0..4)
            .filter(|p| crash != Some(*p))
            .filter_map(|p| {
                cluster.outputs(p).iter().find_map(|o| match o {
                    Output::BcDecided { decision, .. } => Some((p, *decision)),
                    _ => None,
                })
            })
            .collect();
        // All correct processes decide (termination with prob. 1; the
        // deterministic schedule makes it certain here)…
        prop_assert_eq!(decisions.len(), 4 - crash.iter().count());
        // …the same value (agreement)…
        let d0 = decisions[0].1;
        prop_assert!(decisions.iter().all(|(_, d)| *d == d0));
        // …and if all correct processes proposed v, the decision is v
        // (validity).
        let correct_proposals: Vec<bool> = (0..4)
            .filter(|p| crash != Some(*p))
            .map(|p| proposals[p])
            .collect();
        if correct_proposals.iter().all(|v| *v == correct_proposals[0]) {
            prop_assert_eq!(d0, correct_proposals[0]);
        }
    }

    /// Atomic broadcast total order under random bursts and schedules.
    #[test]
    fn ab_total_order(
        counts in proptest::collection::vec(0usize..4, 4),
        seed in any::<u64>(),
    ) {
        let total: usize = counts.iter().sum();
        prop_assume!(total > 0);
        let mut cluster = Cluster::new(4, seed);
        for p in 0..4 {
            for k in 0..counts[p] {
                let (_, s) = cluster
                    .stack_mut(p)
                    .ab_broadcast(0, Bytes::from(format!("{p}:{k}")));
                cluster.absorb(p, s);
            }
        }
        cluster.run();
        let order = |p: usize| -> Vec<MsgId> {
            cluster
                .outputs(p)
                .iter()
                .filter_map(|o| match o {
                    Output::AbDelivered { delivery, .. } => Some(delivery.id),
                    _ => None,
                })
                .collect()
        };
        let o0 = order(0);
        prop_assert_eq!(o0.len(), total, "missing deliveries");
        for p in 1..4 {
            prop_assert_eq!(order(p), o0.clone(), "order diverged at {}", p);
        }
        // No duplicates.
        let mut dedup = o0.clone();
        dedup.sort();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), o0.len());
    }

    /// Multi-valued consensus decides a proposed value or ⊥ — never an
    /// invented value (validity).
    #[test]
    fn mvc_decides_proposed_or_bottom(
        values in proptest::collection::vec(0u8..4, 4),
        seed in any::<u64>(),
    ) {
        let mut cluster = Cluster::new(4, seed);
        for p in 0..4 {
            let s = cluster
                .stack_mut(p)
                .mvc_propose(1, Bytes::from(vec![values[p]]))
                .unwrap();
            cluster.absorb(p, s);
        }
        cluster.run();
        let mut decisions = Vec::new();
        for p in 0..4 {
            let d = cluster.outputs(p).iter().find_map(|o| match o {
                Output::MvcDecided { decision, .. } => Some(decision.clone()),
                _ => None,
            });
            let d = d.expect("every process decides");
            if let Some(v) = &d {
                prop_assert!(
                    values.contains(&v[0]),
                    "decided a value nobody proposed"
                );
            }
            decisions.push(d);
        }
        for d in &decisions {
            prop_assert_eq!(d, &decisions[0], "agreement violated");
        }
    }
}
