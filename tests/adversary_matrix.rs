//! Adversarial conformance matrix (headline suite).
//!
//! Runs every built-in Byzantine strategy against every delivery
//! schedule over a battery of seeds at `n = 4, f = 1`, with process 3
//! corrupt and the paper's safety predicates (RB/EB agreement &
//! integrity, BC/MVC/VC agreement & validity, AB total order — see
//! `ritas::invariants`) checked after **every** scheduler step.
//!
//! Any violation panics with a single-line replay command that
//! reproduces the run bit-for-bit:
//!
//! ```text
//! cargo run --release -p ritas-sim --bin adversary_explorer -- \
//!     --n 4 --strategies <s> --schedules <sch> --seed-base <seed> \
//!     --seeds 1 --max-steps <budget>
//! ```
//!
//! One `#[test]` per strategy so the matrix parallelizes across test
//! threads; together they cover the full 6 × 3 × 8 cross-product.

use ritas::adversary::explorer::{run_spec, shrink, sweep, RunSpec, SweepConfig};
use ritas::adversary::StrategyKind;
use ritas::testing::Schedule;

/// Seeds per (strategy, schedule) cell.
const SEEDS: u64 = 8;

/// Per-run scheduler step budget; the workload drains far below this
/// (≈6k steps), so the budget only bounds runaway livelock.
const MAX_STEPS: u64 = 200_000;

/// Runs one strategy across the full schedule × seed slice and panics
/// with replay commands on any safety violation.
fn run_strategy_matrix(strategy: StrategyKind) {
    let report = sweep(&SweepConfig {
        n: 4,
        strategies: vec![strategy],
        schedules: Schedule::ALL.to_vec(),
        seeds: (0..SEEDS).collect(),
        max_steps: MAX_STEPS,
        shrink: true,
    });
    assert_eq!(
        report.runs,
        3 * SEEDS,
        "matrix slice did not cover every (schedule, seed) cell"
    );
    assert!(
        report.total_steps > 3 * SEEDS * 100,
        "workload barely ran ({} steps) — harness wiring is broken",
        report.total_steps
    );
    if !report.violations.is_empty() {
        let mut msg = format!(
            "{} safety violation(s) under strategy {strategy}:\n",
            report.violations.len()
        );
        for v in &report.violations {
            msg.push_str(&format!(
                "  [{} × {} × seed {}] step {}: {}\n    replay: {}\n",
                v.spec.strategy, v.spec.schedule, v.spec.seed, v.step, v.violation, v.replay
            ));
        }
        panic!("{msg}");
    }
}

#[test]
fn matrix_equivocate() {
    run_strategy_matrix(StrategyKind::Equivocate);
}

#[test]
fn matrix_silence() {
    run_strategy_matrix(StrategyKind::Silence);
}

#[test]
fn matrix_biased_coin() {
    run_strategy_matrix(StrategyKind::BiasedCoin);
}

#[test]
fn matrix_conflicting_vectors() {
    run_strategy_matrix(StrategyKind::ConflictingVectors);
}

#[test]
fn matrix_stale_replay() {
    run_strategy_matrix(StrategyKind::StaleReplay);
}

#[test]
fn matrix_random_mutation() {
    run_strategy_matrix(StrategyKind::RandomMutation);
}

/// The whole point of the harness: identical specs reproduce identical
/// runs, step for step — otherwise replay commands would be worthless.
#[test]
fn runs_replay_bit_for_bit() {
    for strategy in StrategyKind::ALL {
        let spec = RunSpec {
            n: 4,
            strategy,
            schedule: Schedule::Random,
            seed: 99,
            max_steps: MAX_STEPS,
        };
        let a = run_spec(&spec);
        let b = run_spec(&spec);
        assert_eq!(a.steps, b.steps, "{strategy}: step counts diverged");
        assert_eq!(
            a.violation, b.violation,
            "{strategy}: outcomes diverged between identical specs"
        );
    }
}

/// Exercises the violation-reporting path end to end without weakening
/// any real validation rule: a run cut off after a handful of steps
/// must leave the budget exhausted (not drained), and the shrinker plus
/// replay command must be stable and self-describing.
#[test]
fn budget_cutoff_and_replay_formatting() {
    let spec = RunSpec {
        n: 4,
        strategy: StrategyKind::Equivocate,
        schedule: Schedule::Fifo,
        seed: 7,
        max_steps: 25,
    };
    let out = run_spec(&spec);
    assert_eq!(out.steps, 25, "budget should cut the run off");
    assert!(out.violation.is_none());
    let cmd = spec.replay_command();
    for needle in [
        "adversary_explorer",
        "--strategies equivocate",
        "--schedules fifo",
        "--seed-base 7",
        "--max-steps 25",
    ] {
        assert!(cmd.contains(needle), "{cmd:?} missing {needle:?}");
    }
}

/// Drives the shrinker against a synthetic always-violating predicate by
/// checking its contract on a clean spec: when no budget in range
/// violates, `shrink` converges to the top of the range; on a violating
/// spec (see the mutation-testing procedure in tests/README.md) it
/// converges to the first violating step because predicates are checked
/// after every step.
#[test]
fn shrinker_converges_on_clean_runs() {
    let spec = RunSpec {
        n: 4,
        strategy: StrategyKind::Silence,
        schedule: Schedule::Lifo,
        seed: 3,
        max_steps: 64,
    };
    assert!(run_spec(&spec).violation.is_none());
    // With no violation anywhere in [1, 64], binary search must land on
    // the upper bound without panicking or looping.
    assert_eq!(shrink(&spec, 64), 64);
}
