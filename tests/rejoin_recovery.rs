//! Recovery-tier integration tests: kill/wipe/rejoin of a service
//! replica under client load, with a Byzantine peer serving corrupt
//! snapshot chunks.
//!
//! The scenario from the recovery design (DESIGN.md §8):
//!
//! 1. A 4-replica service group (`n = 4, f = 1`) applies client
//!    commands with snapshotting active; one replica is fail-stopped
//!    **and wiped** mid-load.
//! 2. The survivors keep ordering (`n - f` alive). The wiped replica
//!    rejoins from nothing but the session config: it pulls snapshot
//!    manifests from `2f+1` peers, accepts at `f+1` matching digests,
//!    downloads chunks with per-chunk Merkle proofs, replays the fill
//!    stream, and bridges onto the live a-delivery stream.
//! 3. One surviving peer is Byzantine: it serves bit-flipped snapshot
//!    chunk bytes. The rejoiner must detect every corrupt chunk by its
//!    Merkle proof, count the evidence in the suspicion table, and
//!    fetch the chunk from an honest holder instead.
//! 4. Exactly-once must hold *through* the snapshot boundary: a
//!    `(client, seq)` applied before the wipe and retried after the
//!    rejoin is answered from the restored session table — applied
//!    once, globally, ever.
//!
//! Timing-dependent (real threads over the in-memory hub).

use bytes::Bytes;
use ritas::codec::{Reader, WireError, Writer};
use ritas::node::{Node, SessionConfig};
use ritas::recovery::{milestones, RecoveryConfig, SnapshotState};
use ritas::service::{ClientId, CommandKind, ServiceConfig, ServiceReplica};
use ritas_metrics::{FlightKind, Metrics, SuspicionKind};
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// CI forensics: when `RITAS_FORENSICS_DIR` is set, any panic (i.e.
/// any failed assertion) dumps the rejoiner's flight ring
/// (`flight-<tag>.bin`, via the metrics crate's panic hook) and its
/// span tree (`spans-<tag>.jsonl`) into that directory, so the
/// `rejoin-smoke` CI job can upload a post-mortem of the wiped
/// replica. A no-op when the variable is unset.
fn arm_forensics(m: &Metrics, tag: &str) {
    let Ok(dir) = std::env::var("RITAS_FORENSICS_DIR") else {
        return;
    };
    ritas_metrics::flight::register_dump(&dir, tag, m.clone());
    let (m, dir2, tag) = (m.clone(), dir.clone(), tag.to_string());
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let path = std::path::Path::new(&dir2).join(format!("spans-{tag}.jsonl"));
        let _ = std::fs::write(path, ritas_metrics::spans_to_jsonl(&m.spans()));
        prev(info);
    }));
}

/// Replicated state that tallies applies per `(client, seq)` so the
/// tests can audit exactly-once directly against the replicated state
/// — any count above 1 is a duplicate apply.
///
/// The snapshot encoding is canonical by construction: `BTreeMap`
/// iteration is sorted, and every field is fixed-width, so equal
/// states encode to equal bytes on every replica.
#[derive(Default, Clone)]
struct Audit {
    total: u64,
    applied: BTreeMap<(u64, u64), u64>,
}

impl SnapshotState for Audit {
    fn encode_snapshot(&self, w: &mut Writer) {
        w.u64(self.total);
        w.u64(self.applied.len() as u64);
        for (&(client, seq), &n) in &self.applied {
            w.u64(client).u64(seq).u64(n);
        }
    }

    fn decode_snapshot(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let total = r.u64("audit.total")?;
        let count = r.u64("audit.count")?;
        let mut applied = BTreeMap::new();
        for _ in 0..count {
            let client = r.u64("audit.client")?;
            let seq = r.u64("audit.seq")?;
            let n = r.u64("audit.n")?;
            applied.insert((client, seq), n);
        }
        Ok(Audit { total, applied })
    }
}

fn audit_apply(state: &mut Audit, client: ClientId, cmd: &[u8]) -> Bytes {
    let mut seq_bytes = [0u8; 8];
    seq_bytes.copy_from_slice(&cmd[..8]);
    let seq = u64::from_be_bytes(seq_bytes);
    *state.applied.entry((client, seq)).or_insert(0) += 1;
    state.total += 1;
    Bytes::from(state.total.to_be_bytes().to_vec())
}

fn audit_query(state: &Audit, _q: &[u8]) -> Bytes {
    Bytes::from(state.total.to_be_bytes().to_vec())
}

fn recovery_cfg() -> RecoveryConfig {
    RecoveryConfig {
        snapshot_every: 8,
        chunk_size: 64,
        fill_batch: 64,
    }
}

fn service_cfg() -> ServiceConfig {
    ServiceConfig {
        session_capacity: 64,
    }
}

fn build(node: Node) -> ServiceReplica<Audit> {
    ServiceReplica::with_recovery(
        node,
        Audit::default(),
        service_cfg(),
        recovery_cfg(),
        audit_apply,
        audit_query,
    )
    .expect("valid recovery config")
}

const SUBMIT_TIMEOUT: Duration = Duration::from_secs(30);

/// Submits `(client, seq)` at `at` and returns the reply.
fn submit(at: &ServiceReplica<Audit>, client: ClientId, seq: u64) -> Bytes {
    at.submit(
        client,
        seq,
        CommandKind::Apply,
        Bytes::from(seq.to_be_bytes().to_vec()),
        SUBMIT_TIMEOUT,
    )
    .expect("submit")
}

/// Asserts every replica's audited apply counts are exactly 1 and the
/// totals agree — the cross-replica duplicate-apply census.
fn assert_no_duplicate_applies(replicas: &[&ServiceReplica<Audit>], expect_total: u64) {
    for r in replicas {
        let (total, dups) = r.read_state(|s| {
            let dups: Vec<_> = s
                .applied
                .iter()
                .filter(|(_, &n)| n != 1)
                .map(|(&k, &n)| (k, n))
                .collect();
            (s.total, dups)
        });
        assert_eq!(total, expect_total, "replica {} total", r.id());
        assert!(
            dups.is_empty(),
            "replica {} duplicate applies: {dups:?}",
            r.id()
        );
    }
}

/// The acceptance scenario: wipe a replica mid-load, rejoin it through
/// state transfer while one chunk server is Byzantine, and audit
/// exactly-once across the snapshot boundary.
#[test]
fn rejoin_under_load_with_byzantine_chunk_server() {
    let config = SessionConfig::new(4).unwrap();
    let (nodes, hub) = Node::cluster_with_hub(&config).unwrap();
    let mut replicas: Vec<_> = nodes.into_iter().map(build).collect();

    // Pre-crash load: 30 commands from the load client plus one probe
    // command whose retry will cross the wipe. 31 applies put every
    // replica past the seq-24 snapshot boundary with a state large
    // enough to span many 64-byte Merkle chunks, so the Byzantine
    // server below is guaranteed to be consulted first for some chunk.
    for seq in 1..=30 {
        submit(&replicas[0], 1, seq);
    }
    let probe_reply = submit(&replicas[1], 7, 5);

    // Peer 1 turns Byzantine on the transfer path only: it serves
    // bit-flipped snapshot chunks but participates honestly in
    // ordering (its manifest is honest too, so the rejoiner will list
    // it as a chunk holder and catch the corruption by Merkle proof).
    replicas[1].set_chunk_tamper(true);

    // Fail-stop and wipe replica 3.
    hub.crash(3);
    let victim = replicas.pop().unwrap();
    drop(victim);

    // The survivors keep ordering while the victim is down.
    for seq in 31..=50 {
        submit(&replicas[0], 1, seq);
    }

    // Rejoin from nothing but the session config.
    let node = Node::rejoin(&config, &hub, 3).unwrap();
    let m = node.metrics().clone();
    arm_forensics(&m, "byzantine-rejoin");
    let rejoined = ServiceReplica::rejoin(
        node,
        Audit::default(),
        service_cfg(),
        recovery_cfg(),
        None,
        audit_apply,
        audit_query,
    )
    .expect("valid recovery config");

    // Keep the stream moving while the transfer runs.
    for seq in 51..=60 {
        submit(&replicas[0], 1, seq);
    }

    let deadline = Instant::now() + Duration::from_secs(60);
    while m.recovery_completed_total.get() != 1 {
        assert!(
            Instant::now() < deadline,
            "rejoin stuck: phase={} fetched={} rejected={}",
            m.recovery_phase.get(),
            m.recovery_chunks_fetched.get(),
            m.recovery_chunk_proof_rejected.get()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(m.recovery_phase.get(), 0, "back to Live");
    assert!(
        m.flight()
            .events()
            .iter()
            .any(|e| e.kind == FlightKind::Recovery && e.a == milestones::LIVE),
        "LIVE milestone recorded"
    );

    // The Byzantine chunk server was caught: Merkle proofs rejected
    // its bytes and the evidence landed in the suspicion table.
    assert!(
        m.recovery_chunk_proof_rejected.get() > 0,
        "no corrupt chunk was ever detected"
    );
    assert!(
        m.suspicions()
            .iter()
            .any(|s| s.peer == 1 && s.count(SuspicionKind::BadChunk) > 0),
        "tampering peer not flagged: {:?}",
        m.suspicions()
    );
    assert!(m.recovery_chunks_fetched.get() > 0, "no chunks verified");

    // Exactly-once across the snapshot boundary: the probe command was
    // applied before the wipe; retrying it at the *rejoined* replica
    // must answer from the restored session table with the original
    // reply, not apply it again.
    let retry_reply = submit(&rejoined, 7, 5);
    assert_eq!(retry_reply, probe_reply, "retry must return cached reply");

    // Converge and audit: equal totals, zero duplicate applies
    // anywhere, and the rejoined replica's snapshot digest matches a
    // survivor's at the same boundary.
    let all: Vec<&ServiceReplica<Audit>> = replicas.iter().chain([&rejoined]).collect();
    for r in &all {
        r.barrier().unwrap();
    }
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let totals: Vec<u64> = all.iter().map(|r| r.read_state(|s| s.total)).collect();
        let d0 = replicas[0].snapshot_digest();
        let dr = rejoined.snapshot_digest();
        if totals.iter().all(|&t| t == 61) && d0.is_some() && d0 == dr {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "post-rejoin convergence failed: totals={totals:?} d0={d0:?} dr={dr:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_no_duplicate_applies(&all, 61);
    for r in &all {
        r.shutdown();
    }
}

/// A rejoiner holding a stale local snapshot only downloads the chunks
/// that changed: Merkle anti-entropy proves the unchanged subtrees
/// equal and reuses the local bytes.
#[test]
fn rejoin_with_stale_snapshot_reuses_chunks() {
    let config = SessionConfig::new(4).unwrap();
    let (nodes, hub) = Node::cluster_with_hub(&config).unwrap();
    let mut replicas: Vec<_> = nodes.into_iter().map(build).collect();

    // Load past two snapshot boundaries, then wait for the victim's
    // own seq-16 snapshot: those bytes survive the crash as its stale
    // local image.
    for seq in 1..=20 {
        submit(&replicas[0], 1, seq);
    }
    for r in &replicas {
        r.barrier().unwrap();
    }
    let deadline = Instant::now() + Duration::from_secs(30);
    let stale = loop {
        if let Some(bytes) = replicas[3].latest_snapshot_bytes() {
            break bytes;
        }
        assert!(Instant::now() < deadline, "victim never snapshotted");
        std::thread::sleep(Duration::from_millis(10));
    };

    hub.crash(3);
    let victim = replicas.pop().unwrap();
    drop(victim);

    // A little more load: the peers' newest snapshot moves past the
    // stale one, but most of the audit entries — and so most chunks —
    // are unchanged.
    for seq in 21..=25 {
        submit(&replicas[0], 1, seq);
    }

    let node = Node::rejoin(&config, &hub, 3).unwrap();
    let m = node.metrics().clone();
    arm_forensics(&m, "stale-rejoin");
    let rejoined = ServiceReplica::rejoin(
        node,
        Audit::default(),
        service_cfg(),
        recovery_cfg(),
        Some(stale),
        audit_apply,
        audit_query,
    )
    .expect("valid recovery config");

    let deadline = Instant::now() + Duration::from_secs(60);
    while m.recovery_completed_total.get() != 1 {
        assert!(
            Instant::now() < deadline,
            "rejoin stuck: phase={} reused={}",
            m.recovery_phase.get(),
            m.recovery_chunks_reused.get()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(
        m.recovery_chunks_reused.get() > 0,
        "anti-entropy never reused a stale chunk (fetched={})",
        m.recovery_chunks_fetched.get()
    );

    let all: Vec<&ServiceReplica<Audit>> = replicas.iter().chain([&rejoined]).collect();
    for r in &all {
        r.barrier().unwrap();
    }
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let totals: Vec<u64> = all.iter().map(|r| r.read_state(|s| s.total)).collect();
        if totals.iter().all(|&t| t == 25) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "post-rejoin convergence failed: totals={totals:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_no_duplicate_applies(&all, 25);
    for r in &all {
        r.shutdown();
    }
}
