//! Cross-crate integration tests: the full protocol stack driven through
//! the deterministic cluster under different group sizes, schedules and
//! faultloads.

use bytes::Bytes;
use ritas::stack::{InstanceKey, Output, Stack, StackConfig};
use ritas::testing::{Cluster, Schedule};
use ritas::Group;
use ritas_crypto::KeyTable;

fn ab_order(cluster: &Cluster, p: usize) -> Vec<ritas::ab::MsgId> {
    cluster
        .outputs(p)
        .iter()
        .filter_map(|o| match o {
            Output::AbDelivered { delivery, .. } => Some(delivery.id),
            _ => None,
        })
        .collect()
}

#[test]
fn full_stack_smoke_all_protocols_n4() {
    let mut cluster = Cluster::new(4, 1);
    // Run one instance of every protocol concurrently, interleaved.
    let (_k, s) = cluster.stack_mut(0).rb_broadcast(Bytes::from_static(b"rb"));
    cluster.absorb(0, s);
    let (_k, s) = cluster.stack_mut(1).eb_broadcast(Bytes::from_static(b"eb"));
    cluster.absorb(1, s);
    for p in 0..4 {
        let s = cluster.stack_mut(p).bc_propose(1, p % 2 == 0).unwrap();
        cluster.absorb(p, s);
        let s = cluster
            .stack_mut(p)
            .mvc_propose(1, Bytes::from_static(b"mvc-value"))
            .unwrap();
        cluster.absorb(p, s);
        let s = cluster
            .stack_mut(p)
            .vc_propose(1, Bytes::from(format!("vc{p}")))
            .unwrap();
        cluster.absorb(p, s);
        let (_, s) = cluster
            .stack_mut(p)
            .ab_broadcast(0, Bytes::from(format!("ab{p}")));
        cluster.absorb(p, s);
    }
    cluster.run();

    for p in 0..4 {
        let outs = cluster.outputs(p);
        assert!(
            outs.iter().any(|o| matches!(o, Output::RbDelivered { .. })),
            "rb at {p}"
        );
        assert!(
            outs.iter().any(|o| matches!(o, Output::EbDelivered { .. })),
            "eb at {p}"
        );
        assert!(
            outs.iter().any(|o| matches!(o, Output::BcDecided { .. })),
            "bc at {p}"
        );
        assert!(
            outs.iter().any(|o| matches!(o, Output::MvcDecided { .. })),
            "mvc at {p}"
        );
        assert!(
            outs.iter().any(|o| matches!(o, Output::VcDecided { .. })),
            "vc at {p}"
        );
        assert_eq!(ab_order(&cluster, p).len(), 4, "ab at {p}");
    }
    // Agreement across processes for each consensus.
    let bc0 = cluster.outputs(0).iter().find_map(|o| match o {
        Output::BcDecided { decision, .. } => Some(*decision),
        _ => None,
    });
    let order0 = ab_order(&cluster, 0);
    for p in 1..4 {
        let bcp = cluster.outputs(p).iter().find_map(|o| match o {
            Output::BcDecided { decision, .. } => Some(*decision),
            _ => None,
        });
        assert_eq!(bcp, bc0, "bc agreement at {p}");
        assert_eq!(ab_order(&cluster, p), order0, "ab order at {p}");
    }
}

#[test]
fn seven_processes_two_crashes() {
    // n = 7 tolerates f = 2; crash two processes.
    let mut cluster = Cluster::new(7, 5);
    cluster.crash(5);
    cluster.crash(6);
    for p in 0..5 {
        let s = cluster
            .stack_mut(p)
            .mvc_propose(9, Bytes::from_static(b"survivors"))
            .unwrap();
        cluster.absorb(p, s);
    }
    cluster.run();
    for p in 0..5 {
        assert!(
            cluster.outputs(p).iter().any(|o| matches!(
                o,
                Output::MvcDecided { decision: Some(v), .. } if v.as_ref() == b"survivors"
            )),
            "process {p} missing decision"
        );
    }
}

#[test]
fn ten_processes_atomic_broadcast_total_order() {
    let mut cluster = Cluster::new(10, 7);
    for p in 0..10 {
        let (_, s) = cluster
            .stack_mut(p)
            .ab_broadcast(0, Bytes::from(format!("n10-{p}")));
        cluster.absorb(p, s);
    }
    cluster.run();
    let order0 = ab_order(&cluster, 0);
    assert_eq!(order0.len(), 10);
    for p in 1..10 {
        assert_eq!(ab_order(&cluster, p), order0, "order diverged at {p}");
    }
}

#[test]
fn adversarial_lifo_schedule_preserves_agreement() {
    for seed in [1u64, 2, 3] {
        let mut cluster = Cluster::new(4, seed);
        cluster.set_schedule(Schedule::Lifo);
        for p in 0..4 {
            let s = cluster.stack_mut(p).bc_propose(2, p < 2).unwrap();
            cluster.absorb(p, s);
        }
        cluster.run();
        let decisions: Vec<Option<bool>> = (0..4)
            .map(|p| {
                cluster.outputs(p).iter().find_map(|o| match o {
                    Output::BcDecided { decision, .. } => Some(*decision),
                    _ => None,
                })
            })
            .collect();
        assert!(decisions[0].is_some(), "seed {seed}: no decision");
        assert!(
            decisions.iter().all(|d| *d == decisions[0]),
            "seed {seed}: disagreement {decisions:?}"
        );
    }
}

#[test]
fn byzantine_stack_cannot_break_atomic_broadcast() {
    // Build a cluster where process 3's stack runs the paper's §4.2
    // Byzantine strategy inside its AB agreement.
    let n = 4;
    let seed = 11;
    let group = Group::new(n).unwrap();
    let table = KeyTable::dealer(n, seed);
    let stacks: Vec<Stack> = (0..n)
        .map(|me| {
            let config = StackConfig {
                ab: ritas::ab::AbConfig {
                    byzantine_bottom: me == 3,
                    ..Default::default()
                },
                ..Default::default()
            };
            Stack::with_config(
                group,
                me,
                table.view_of(me),
                seed ^ (me as u64) << 8,
                config,
            )
        })
        .collect();
    let mut cluster = Cluster::with_stacks(stacks, seed);
    for p in 0..4 {
        let (_, s) = cluster
            .stack_mut(p)
            .ab_broadcast(0, Bytes::from(format!("byz{p}")));
        cluster.absorb(p, s);
    }
    cluster.run();
    let order0 = ab_order(&cluster, 0);
    assert_eq!(order0.len(), 4, "attack blocked deliveries");
    for p in 1..3 {
        assert_eq!(
            ab_order(&cluster, p),
            order0,
            "order diverged at correct {p}"
        );
    }
}

#[test]
fn multiple_concurrent_consensus_instances() {
    let mut cluster = Cluster::new(4, 21);
    for tag in 0..8u64 {
        for p in 0..4 {
            let s = cluster
                .stack_mut(p)
                .mvc_propose(tag, Bytes::from(format!("v{tag}")))
                .unwrap();
            cluster.absorb(p, s);
        }
    }
    cluster.run();
    for p in 0..4 {
        for tag in 0..8u64 {
            assert!(
                cluster.outputs(p).iter().any(|o| matches!(
                    o,
                    Output::MvcDecided { key: InstanceKey::Mvc { tag: t }, decision: Some(v) }
                        if *t == tag && v.as_ref() == format!("v{tag}").as_bytes()
                )),
                "process {p} missing decision for tag {tag}"
            );
        }
    }
}

#[test]
fn extreme_delay_is_harmless() {
    // The asynchronous model's promise is about *delay*, not loss: a
    // process whose entire inbound traffic is withheld until the others
    // have decided and halted still decides afterwards, and nobody waits
    // for it meanwhile. This is the model-faithful version of "a
    // partition that heals" — reliable channels buffer, they never drop
    // (TCP retransmits; the cluster's hold/release does the same).
    for seed in [9u64, 10, 11] {
        let mut cluster = Cluster::new(4, seed);
        cluster.hold(3);
        for p in 0..4 {
            let s = cluster.stack_mut(p).bc_propose(4, p != 2).unwrap();
            cluster.absorb(p, s);
        }
        cluster.run();
        // The three connected processes decided without p3.
        let decided = |c: &Cluster, p: usize| {
            c.outputs(p).iter().find_map(|o| match o {
                Output::BcDecided { decision, .. } => Some(*decision),
                _ => None,
            })
        };
        let d0 = decided(&cluster, 0).expect("p0 decided during the delay");
        for p in 1..3 {
            assert_eq!(decided(&cluster, p), Some(d0), "seed {seed}");
        }
        assert_eq!(decided(&cluster, 3), None, "p3 decided without input?!");
        // Release the backlog: p3 catches up and agrees.
        cluster.release(3);
        cluster.run();
        assert_eq!(
            decided(&cluster, 3),
            Some(d0),
            "seed {seed}: p3 never caught up"
        );
    }
}

#[test]
fn vector_consensus_survives_bottom_rounds() {
    // With four distinct proposals and adversarial (LIFO/random)
    // schedules, the eager round-0 snapshots can differ across processes,
    // making the round-0 MVC decide ⊥ and forcing a retry with a larger
    // wait threshold. Whatever happens, agreement and validity must hold;
    // this test also hunts for at least one multi-round execution so the
    // retry path is actually exercised.
    let mut saw_retry = false;
    for seed in 0..30u64 {
        let mut cluster = Cluster::new(4, seed);
        if seed % 2 == 0 {
            cluster.set_schedule(Schedule::Lifo);
        }
        for p in 0..4 {
            let s = cluster
                .stack_mut(p)
                .vc_propose(1, Bytes::from(format!("r{seed}p{p}")))
                .unwrap();
            cluster.absorb(p, s);
        }
        cluster.run();
        let mut vectors = Vec::new();
        for p in 0..4 {
            let v = cluster.outputs(p).iter().find_map(|o| match o {
                Output::VcDecided { vector, .. } => Some(vector.clone()),
                _ => None,
            });
            vectors.push(v.unwrap_or_else(|| panic!("seed {seed}: p{p} undecided")));
            if cluster.stack_mut(p).vc_round(1).unwrap_or(0) > 0 {
                saw_retry = true;
            }
        }
        assert!(
            vectors.iter().all(|v| *v == vectors[0]),
            "seed {seed}: agreement violated"
        );
    }
    assert!(
        saw_retry,
        "no schedule exercised the multi-round (bottom) path; widen the seed range"
    );
}

#[test]
fn ooc_messages_survive_late_joiner() {
    // Process 3 proposes long after the others have finished their
    // traffic; the stack's out-of-context table must hold everything.
    let mut cluster = Cluster::new(4, 31);
    for p in 0..3 {
        let s = cluster
            .stack_mut(p)
            .mvc_propose(4, Bytes::from_static(b"early"))
            .unwrap();
        cluster.absorb(p, s);
    }
    cluster.run();
    assert!(cluster.stack_mut(3).ooc_len() > 0);
    let s = cluster
        .stack_mut(3)
        .mvc_propose(4, Bytes::from_static(b"late"))
        .unwrap();
    cluster.absorb(3, s);
    cluster.run();
    for p in 0..4 {
        assert!(
            cluster.outputs(p).iter().any(|o| matches!(
                o,
                Output::MvcDecided { decision: Some(v), .. } if v.as_ref() == b"early"
            )),
            "process {p}"
        );
    }
}
