//! Reproduction acceptance tests: the paper's qualitative claims (§4.3)
//! checked against the calibrated simulator. These are the automated
//! counterparts of Table 1 and Figures 4–7; the bench binaries print the
//! full artifacts.

use ritas_sim::harness::{
    run_agreement_cost, run_burst_once, run_stack_latency, ProtocolUnderTest,
};
use ritas_sim::Faultload;

#[test]
fn table1_layer_ordering_and_overhead_band() {
    let rows = run_stack_latency(8, 2006);
    let get = |p: ProtocolUnderTest| rows.iter().find(|r| r.protocol == p).unwrap();
    let eb = get(ProtocolUnderTest::EchoBroadcast);
    let rb = get(ProtocolUnderTest::ReliableBroadcast);
    let bc = get(ProtocolUnderTest::BinaryConsensus);
    let mvc = get(ProtocolUnderTest::MultiValuedConsensus);
    let vc = get(ProtocolUnderTest::VectorConsensus);
    let ab = get(ProtocolUnderTest::AtomicBroadcast);

    // Layer ordering (Table 1).
    assert!(eb.with_ipsec_us < rb.with_ipsec_us);
    assert!(rb.with_ipsec_us < bc.with_ipsec_us);
    assert!(bc.with_ipsec_us < mvc.with_ipsec_us);
    assert!(mvc.with_ipsec_us < vc.with_ipsec_us);
    assert!(mvc.with_ipsec_us < ab.with_ipsec_us);

    // The paper's interdependency observations: an atomic broadcast
    // spends roughly 2/3 of its time in multi-valued consensus; a
    // multi-valued consensus roughly half in binary consensus; vector
    // consensus roughly 3/4 in multi-valued consensus.
    let frac = mvc.with_ipsec_us / ab.with_ipsec_us;
    assert!((0.5..0.95).contains(&frac), "MVC/AB = {frac:.2}");
    let frac = bc.with_ipsec_us / mvc.with_ipsec_us;
    assert!((0.4..0.85).contains(&frac), "BC/MVC = {frac:.2}");
    let frac = mvc.with_ipsec_us / vc.with_ipsec_us;
    assert!((0.6..0.98).contains(&frac), "MVC/VC = {frac:.2}");

    // IPSec overheads within (a tolerant version of) the paper's band.
    // Vector consensus is excluded: its latency occasionally includes a
    // second agreement round, and that variance dwarfs the AH delta at
    // this sample count (the paper averaged 100 runs).
    for r in &rows {
        if r.protocol == ProtocolUnderTest::VectorConsensus {
            continue;
        }
        let ovh = r.overhead_pct();
        assert!(
            (2.0..70.0).contains(&ovh),
            "{:?}: overhead {ovh:.1}% out of band",
            r.protocol
        );
    }
}

#[test]
fn fig4_latency_linear_and_throughput_plateaus() {
    // Latency roughly linear in burst size: doubling the burst must not
    // much more than double the latency once past the agreement floor.
    let (_, l250, _) = run_burst_once(Faultload::FailureFree, 10, 250, 1);
    let (_, l500, _) = run_burst_once(Faultload::FailureFree, 10, 500, 1);
    let ratio = l500 as f64 / l250 as f64;
    assert!((1.5..2.5).contains(&ratio), "latency ratio {ratio:.2}");

    // Throughput plateaus decrease with message size.
    let tput = |m: usize| {
        let (k, ns, _) = run_burst_once(Faultload::FailureFree, m, 500, 2);
        k as f64 / (ns as f64 / 1e9)
    };
    let t10 = tput(10);
    let t1k = tput(1000);
    let t10k = tput(10_000);
    assert!(
        t10 > t1k && t1k > t10k,
        "plateaus: {t10:.0} > {t1k:.0} > {t10k:.0}"
    );
    // Rough magnitude check against the paper's Tmax values (721 / 465 /
    // 81 msgs/s): within a factor of 2.5.
    assert!((300.0..1800.0).contains(&t10), "t10 = {t10:.0}");
    assert!((190.0..1200.0).contains(&t1k), "t1k = {t1k:.0}");
    assert!((32.0..210.0).contains(&t10k), "t10k = {t10k:.0}");
}

#[test]
fn fig5_fail_stop_not_slower() {
    // §4.2: with one crashed process there is less contention, so the
    // fail-stop faultload is at least as fast as failure-free.
    let mut wins = 0;
    for seed in 0..3 {
        let (_, ff, _) = run_burst_once(Faultload::FailureFree, 100, 120, seed);
        let (_, fs, _) = run_burst_once(Faultload::FailStop { victim: 3 }, 100, 120, seed);
        if fs <= ff {
            wins += 1;
        }
        assert!(
            (fs as f64) < (ff as f64) * 1.15,
            "seed {seed}: fail-stop {fs} ≫ failure-free {ff}"
        );
    }
    assert!(wins >= 2, "fail-stop should usually be faster");
}

#[test]
fn fig6_byzantine_immunity() {
    for seed in 0..3 {
        let (_, ff, _) = run_burst_once(Faultload::FailureFree, 10, 100, seed);
        let (k, byz, _) = run_burst_once(Faultload::Byzantine { attacker: 3 }, 10, 100, seed);
        assert_eq!(k, 100, "deliveries lost under attack");
        let ratio = byz as f64 / ff as f64;
        assert!(
            (0.8..1.3).contains(&ratio),
            "seed {seed}: attack changed performance by {ratio:.2}x"
        );
    }
}

#[test]
fn fig7_agreement_cost_declines_exponentially() {
    let points = run_agreement_cost(&[4, 40, 400], 7);
    assert!(
        points[0].agreement_pct > 80.0,
        "burst 4: {:.1}%",
        points[0].agreement_pct
    );
    assert!(
        points[1].agreement_pct < points[0].agreement_pct / 1.3,
        "no decline at 40"
    );
    assert!(
        points[2].agreement_pct < 25.0,
        "burst 400 still agreement-heavy: {:.1}%",
        points[2].agreement_pct
    );
}

#[test]
fn consensus_decides_in_one_round_under_all_faultloads() {
    // §4.3: "the binary consensus always terminated within one round",
    // even under the Byzantine faultload.
    for faultload in [
        Faultload::FailureFree,
        Faultload::FailStop { victim: 3 },
        Faultload::Byzantine { attacker: 3 },
    ] {
        let config = ritas_sim::SimConfig::paper_testbed(99).with_faultload(faultload);
        let mut sim = ritas_sim::SimCluster::new(config);
        for p in faultload.senders(4) {
            sim.schedule(
                0,
                p,
                ritas_sim::cluster::Action::AbBroadcast(bytes::Bytes::from_static(b"round-check")),
            );
        }
        sim.run();
        let observer = sim.observer();
        let stats = sim.stack(observer).ab_stats(0).expect("ab session");
        assert!(stats.delivered > 0, "{faultload:?}: nothing delivered");
        assert_eq!(
            stats.bc_rounds_max, 1,
            "{faultload:?}: binary consensus needed {} rounds",
            stats.bc_rounds_max
        );
        assert_eq!(
            stats.bottom_agreements, 0,
            "{faultload:?}: multi-valued consensus decided ⊥"
        );
    }
}

#[test]
fn two_agreements_per_burst() {
    // §4.2 "Relative Cost of Agreement": an entire burst is delivered
    // with about two agreements.
    let (_, _, agreements) = run_burst_once(Faultload::FailureFree, 10, 400, 5);
    assert!(
        (1..=3).contains(&agreements),
        "expected ~2 agreements, got {agreements}"
    );
}
