//! Service-tier integration tests: the intrusion-tolerant client
//! front-end (`ritas-service`) over a real `n = 4, f = 1` replica group
//! with TCP client connections.
//!
//! Three properties from the paper's service model are checked here:
//!
//! 1. **Exactly-once** — a client retry of an in-flight request is
//!    answered from the session table, never applied twice, and the
//!    dedup path is observable through metrics.
//! 2. **`f+1`-vote reply masking** — one Byzantine replica returning
//!    corrupted (but correctly MAC'd) replies is outvoted by `f+1`
//!    byte-identical replies from correct replicas.
//! 3. **Bounded sessions** — the session table's LRU eviction never
//!    evicts a live in-flight request; when every slot is pinned the
//!    front-end sheds load with `Busy` and clients retry through.
//!
//! Timing-dependent (real threads, real sockets at the client edge).

use bytes::Bytes;
use ritas::adversary::FrameMutator;
use ritas::node::{Node, SessionConfig};
use ritas::service::{ServiceConfig, ServiceReplica};
use ritas_crypto::ClientKeyDealer;
use ritas_metrics::Metrics;
use ritas_service::client::{ClientConfig, ServiceClient};
use ritas_service::server::{ServerConfig, ServiceServer};
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Replicated state that tallies applies per `(client, seq)` so every
/// test can audit exactly-once directly against the replicated state.
#[derive(Default, Clone)]
struct Tally {
    total: u64,
    applied: HashMap<(u64, u64), u64>,
}

fn tally_apply(state: &mut Tally, client: u64, cmd: &[u8]) -> Bytes {
    let mut seq_bytes = [0u8; 8];
    seq_bytes.copy_from_slice(&cmd[..8]);
    let seq = u64::from_be_bytes(seq_bytes);
    *state.applied.entry((client, seq)).or_insert(0) += 1;
    state.total += 1;
    Bytes::from(state.total.to_be_bytes().to_vec())
}

fn tally_query(state: &Tally, _q: &[u8]) -> Bytes {
    Bytes::from(state.total.to_be_bytes().to_vec())
}

/// Spawns a 4-replica group (in-memory replica mesh, TCP client edge)
/// and returns the front-ends plus the shared client key seed.
/// `apply_delay` artificially stretches every apply — used to keep
/// in-flight pins alive long enough for admission pressure to be
/// deterministic rather than a race against the optimizer.
fn cluster(config: ServiceConfig, apply_delay: Duration) -> (Vec<ServiceServer<Tally>>, u64) {
    let session = SessionConfig::new(4).expect("n=4");
    let key_seed = session.client_key_seed();
    let dealer = ClientKeyDealer::new(key_seed);
    let servers = Node::cluster(session)
        .expect("cluster")
        .into_iter()
        .map(|node| {
            let replica = Arc::new(ServiceReplica::new(
                node,
                Tally::default(),
                config.clone(),
                move |state: &mut Tally, client, cmd: &[u8]| {
                    if !apply_delay.is_zero() {
                        std::thread::sleep(apply_delay);
                    }
                    tally_apply(state, client, cmd)
                },
                tally_query,
            ));
            ServiceServer::spawn(replica, dealer, ServerConfig::default()).expect("front-end")
        })
        .collect();
    (servers, key_seed)
}

fn addrs_of(servers: &[ServiceServer<Tally>]) -> Vec<SocketAddr> {
    servers.iter().map(|s| s.addr()).collect()
}

/// Command payload: 8-byte request index, then filler.
fn payload(i: u64) -> Bytes {
    let mut v = vec![0u8; 24];
    v[..8].copy_from_slice(&i.to_be_bytes());
    Bytes::from(v)
}

/// Settles all replicas, then returns the summed duplicate-apply count
/// (Σ per-key `count − 1`) across every replica — the measured
/// exactly-once check.
fn duplicate_applies(servers: &[ServiceServer<Tally>]) -> u64 {
    for s in servers {
        let _ = s.replica().barrier();
    }
    servers
        .iter()
        .map(|s| {
            s.replica()
                .read_state(|st| st.applied.values().map(|c| c - 1).sum::<u64>())
        })
        .sum()
}

fn shutdown(mut servers: Vec<ServiceServer<Tally>>) {
    for s in &mut servers {
        s.replica().shutdown();
        s.shutdown();
    }
}

/// Every replica corrupts the *first* reply it sends for any given
/// `(client, seq)` — so the first vote round can never reach `f+1`
/// matching votes (all its replies are distinct garbage) and the client
/// must retry, deterministically, independent of scheduling or build
/// profile. The retry re-sends the same sequence number; it must be
/// answered from the session table (serving cache or in-flight wait),
/// and the replicated state must show exactly one apply.
#[test]
fn client_retry_is_applied_exactly_once() {
    let (servers, key_seed) = cluster(ServiceConfig::default(), Duration::ZERO);
    for (i, server) in servers.iter().enumerate() {
        let seen = Mutex::new(std::collections::HashSet::new());
        server.set_reply_tamper(move |req, payload| {
            if seen.lock().unwrap().insert((req.client, req.seq)) {
                // First sight: a per-replica lie (valid MAC, wrong bytes).
                Bytes::from(format!("corrupt-{i}"))
            } else {
                payload
            }
        });
    }
    let metrics = Metrics::new();
    let mut client = ServiceClient::new(
        7,
        addrs_of(&servers),
        ClientConfig {
            key_seed,
            request_timeout: Duration::from_millis(700),
            max_attempts: 6,
            backoff: Duration::from_millis(20),
            metrics: metrics.clone(),
            ..ClientConfig::default()
        },
    );

    let reply = client.invoke(payload(1)).expect("invoke through retries");
    assert_eq!(reply.as_ref(), 1u64.to_be_bytes(), "first apply replies 1");
    client.shutdown();

    let snap = metrics.snapshot();
    let retries = snap
        .counters
        .get("service_client_retries")
        .copied()
        .unwrap_or(0);
    assert!(retries >= 1, "the corrupted first round must force a retry");

    // The retries were served from the session table, not re-applied.
    let dedup: u64 = servers
        .iter()
        .map(|s| {
            let m = s.replica().metrics();
            m.service_dedup_hits.get() + m.service_dup_apply_skipped.get()
        })
        .sum();
    assert!(dedup >= 1, "retry must be visible as a dedup hit");
    assert_eq!(duplicate_applies(&servers), 0, "retry applied twice");
    shutdown(servers);
}

/// One Byzantine front-end rewrites every successful reply payload with
/// a seeded bit-flip (the MAC is computed *after* tampering, so the lie
/// is cryptographically valid — only the `f+1` vote can reject it). The
/// client must still get every answer right, from the `f+1` correct
/// byte-identical replies.
#[test]
fn byzantine_replica_replies_are_outvoted() {
    let (servers, key_seed) = cluster(ServiceConfig::default(), Duration::ZERO);
    let tampered = Arc::new(AtomicU64::new(0));
    {
        let mutator = Mutex::new(FrameMutator::new(0xBAD));
        let tampered = Arc::clone(&tampered);
        servers[0].set_reply_tamper(move |_req, payload| {
            tampered.fetch_add(1, Ordering::Relaxed);
            mutator.lock().unwrap().flip_bit(payload)
        });
    }

    let mut client = ServiceClient::new(
        11,
        addrs_of(&servers),
        ClientConfig {
            key_seed,
            ..ClientConfig::default()
        },
    );
    // Enough requests that the rotating fan-out contacts the Byzantine
    // replica repeatedly; the reply (the running total) is deterministic
    // for a single client, so every vote has a known right answer.
    for i in 1..=8u64 {
        let reply = client.invoke(payload(i)).expect("masked invoke");
        assert_eq!(
            reply.as_ref(),
            i.to_be_bytes(),
            "corrupted reply won the vote at request {i}"
        );
    }
    client.shutdown();

    assert!(
        tampered.load(Ordering::Relaxed) >= 1,
        "the Byzantine replica was never consulted — the test proved nothing"
    );
    assert_eq!(duplicate_applies(&servers), 0);
    shutdown(servers);
}

/// Exactly-once **across a batch boundary**: the same `(client, seq)`
/// is submitted concurrently at two *different* replicas. The AB layer
/// only ever packs one sender's queue into a batch, so the two copies
/// travel in two distinct batches by construction — the ordered stream
/// contains the duplicate at two positions, in different batches, and
/// the replicated session table must skip the second one at every
/// replica. Concurrent filler traffic at both submitters makes the
/// batches non-trivial, so the duplicate crosses a real batch boundary
/// rather than riding in two singleton batches.
#[test]
fn retry_across_batch_boundary_applies_once() {
    let (servers, _key_seed) = cluster(ServiceConfig::default(), Duration::ZERO);
    let t = Duration::from_secs(20);
    let start = Arc::new(std::sync::Barrier::new(10));

    // Filler: 4 unique clients per submitter replica, racing the
    // duplicate pair into the same batching window.
    let mut workers: Vec<_> = (0..8u64)
        .map(|i| {
            let r = Arc::clone(servers[(i % 2) as usize].replica());
            let start = Arc::clone(&start);
            std::thread::spawn(move || {
                start.wait();
                r.submit(
                    200 + i,
                    1,
                    ritas::service::CommandKind::Apply,
                    payload(1),
                    t,
                )
                .map(|_| ())
            })
        })
        .collect();
    // The duplicate pair: same (client, seq) at replicas 0 and 1. Each
    // replica's serving table has no in-flight pin for it, so both
    // submit into the ordered stream.
    let dup: Vec<_> = [0usize, 1]
        .into_iter()
        .map(|replica| {
            let r = Arc::clone(servers[replica].replica());
            let start = Arc::clone(&start);
            std::thread::spawn(move || {
                start.wait();
                r.submit(99, 1, ritas::service::CommandKind::Apply, payload(1), t)
            })
        })
        .collect();
    let mut replies = Vec::new();
    for h in dup {
        replies.push(h.join().expect("dup submitter").expect("dup reply"));
    }
    assert_eq!(
        replies[0], replies[1],
        "both copies of (99, 1) must observe the same reply"
    );
    for w in workers.drain(..) {
        w.join().expect("filler").expect("filler reply");
    }

    // Both copies entered the ordered stream (in two different batches —
    // they have different senders) and exactly one applied.
    let skipped: u64 = servers
        .iter()
        .map(|s| s.replica().metrics().service_dup_apply_skipped.get())
        .sum();
    assert!(
        skipped >= 1,
        "the ordered duplicate must be skipped, not silently absent"
    );
    assert_eq!(duplicate_applies(&servers), 0, "cross-batch dedup failed");

    // Per-key audit: (99, 1) applied exactly once at every replica.
    for s in &servers {
        let count = s
            .replica()
            .read_state(|st| st.applied.get(&(99, 1)).copied().unwrap_or(0));
        assert_eq!(count, 1, "replica applied (99, 1) {count} times");
    }

    // The batched path was actually exercised: batches were formed and
    // every replica agrees on the batch count it delivered locally.
    let (stats, _, _) = servers[0]
        .replica()
        .ab_debug()
        .expect("node alive")
        .expect("ab session exists");
    assert!(stats.batches >= 1, "no batch was ever flushed");
    shutdown(servers);
}

/// With a session table far smaller than the client population, eviction
/// pressure is constant — but live in-flight requests are pinned and the
/// front-end sheds the overflow with `Busy` instead of evicting them.
/// Every client must still complete, and every client's request must
/// actually reach the replicated state.
///
/// Note the scope: the *exactly-once dedup window* equals the table
/// capacity (see `DESIGN.md` §6) — a deliberately undersized table like
/// this one sheds load correctly but cannot remember completed sessions
/// long enough to absorb every duplicate ordered copy, which is why the
/// zero-duplicate audits live in the tests above (and in the loadgen)
/// at default capacity. What must hold at *any* capacity is what this
/// test checks: no live in-flight request is ever evicted, so every
/// admitted request completes and replies stay correct.
#[test]
fn session_bound_sheds_load_without_evicting_in_flight() {
    // Each apply holds its in-flight pin ≥ 25 ms, and a barrier fires
    // all 12 clients at once — so some replica must see > 4 admission
    // attempts while all 4 slots are still pinned, whatever the build
    // profile's speed.
    let (servers, key_seed) = cluster(
        ServiceConfig {
            session_capacity: 4,
        },
        Duration::from_millis(25),
    );
    let addrs = addrs_of(&servers);
    let start = Arc::new(std::sync::Barrier::new(12));

    let workers: Vec<_> = (0..12u64)
        .map(|c| {
            let addrs = addrs.clone();
            let start = Arc::clone(&start);
            std::thread::spawn(move || {
                let mut client = ServiceClient::new(
                    100 + c,
                    addrs,
                    ClientConfig {
                        key_seed,
                        max_attempts: 60,
                        backoff: Duration::from_millis(5),
                        ..ClientConfig::default()
                    },
                );
                start.wait();
                let reply = client.invoke(payload(1));
                client.shutdown();
                reply
            })
        })
        .collect();
    let mut ok = 0;
    for w in workers {
        if w.join().expect("client thread").is_ok() {
            ok += 1;
        }
    }
    assert_eq!(ok, 12, "every client must get through the Busy shedding");

    // The bound actually engaged: some requests were shed with Busy
    // instead of evicting a pinned in-flight slot.
    let busy: u64 = servers
        .iter()
        .map(|s| s.replica().metrics().service_busy_rejected.get())
        .sum();
    assert!(busy >= 1, "12 clients through 4 slots must shed some load");

    // No in-flight request was evicted: every admitted request reached
    // the replicated state (an evicted pin would strand its waiter and
    // fail that client's invoke above).
    for s in &servers {
        let _ = s.replica().barrier();
    }
    let distinct = servers[0].replica().read_state(|st| st.applied.len());
    assert_eq!(distinct, 12, "every client's request must have applied");
    shutdown(servers);
}
