//! Systematic fault-matrix coverage: every consensus/ordering protocol ×
//! every fault class, asserting the protocol's safety properties among
//! the correct processes. The fault classes:
//!
//! * **crash** — one process silent from the start (fail-stop);
//! * **strategy** — one process running the paper's §4.2 Byzantine
//!   proposal strategy through the real code paths;
//! * **wire** — one process whose frames are randomly dropped,
//!   duplicated, bit-flipped or replaced with garbage (an arbitrary-bytes
//!   adversary at the transport boundary);
//! * **flap** — no process is faulty, but point-to-point links keep
//!   going dark mid-protocol and healing with their traffic intact (the
//!   harness twin of TCP socket kills absorbed by the session layer's
//!   reconnect + retransmit, experiment X7). All four processes must
//!   uphold the protocol properties.

use bytes::Bytes;
use ritas::ab::MsgId;
use ritas::stack::{Output, Stack, StackConfig};
use ritas::testing::Cluster;
use ritas::Group;
use ritas_crypto::KeyTable;

#[derive(Debug, Clone, Copy, PartialEq)]
enum Fault {
    Crash,
    Strategy,
    Wire,
    Flap,
}

const FAULTY: usize = 3;

/// Builds a 4-process cluster with `fault` applied to process 3.
fn cluster(fault: Fault, seed: u64) -> Cluster {
    let group = Group::new(4).unwrap();
    let table = KeyTable::dealer(4, seed);
    let stacks: Vec<Stack> = (0..4)
        .map(|me| {
            let config = StackConfig {
                ab: ritas::ab::AbConfig {
                    byzantine_bottom: fault == Fault::Strategy && me == FAULTY,
                    ..Default::default()
                },
                ..Default::default()
            };
            Stack::with_config(
                group,
                me,
                table.view_of(me),
                seed ^ ((me as u64) << 16),
                config,
            )
        })
        .collect();
    let mut c = Cluster::with_stacks(stacks, seed);
    match fault {
        Fault::Crash => c.crash(FAULTY),
        Fault::Wire => c.corrupt(FAULTY),
        Fault::Strategy | Fault::Flap => {}
    }
    c
}

/// The processes whose properties the matrix asserts: everyone but the
/// faulty process — and under `Flap` there is no faulty process, so all
/// four must behave.
fn correct(fault: Fault) -> impl Iterator<Item = usize> {
    (0..4).filter(move |p| fault == Fault::Flap || *p != FAULTY)
}

fn faults() -> [Fault; 4] {
    [Fault::Crash, Fault::Strategy, Fault::Wire, Fault::Flap]
}

/// Drains the cluster. Under `Flap`, execution is interleaved with
/// sever/heal cycles walking all six links twice: each round blacks out
/// one link for up to 60 deliveries, heals it (re-queuing the buffered
/// frames), runs another 60, then moves to the next link. Every link is
/// healed before the final drain, matching the model's eventual-delivery
/// guarantee.
fn run_with_fault(c: &mut Cluster, fault: Fault) {
    if fault != Fault::Flap {
        c.run();
        return;
    }
    const PAIRS: [(usize, usize); 6] = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];
    for round in 0..12 {
        let (a, b) = PAIRS[round % PAIRS.len()];
        c.sever_link(a, b);
        for _ in 0..60 {
            if !c.step() {
                break;
            }
        }
        c.heal_link(a, b);
        for _ in 0..60 {
            if !c.step() {
                break;
            }
        }
    }
    c.run();
}

#[test]
fn binary_consensus_fault_matrix() {
    for fault in faults() {
        for seed in [1u64, 2] {
            let mut c = cluster(fault, seed);
            for p in 0..4 {
                if fault == Fault::Crash && p == FAULTY {
                    continue;
                }
                // Strategy attacker: always proposes 0 (§4.2).
                let value = !(fault == Fault::Strategy && p == FAULTY);
                let s = c.stack_mut(p).bc_propose(1, value).unwrap();
                c.absorb(p, s);
            }
            run_with_fault(&mut c, fault);
            let mut decisions = Vec::new();
            for p in correct(fault) {
                let d = c.outputs(p).iter().find_map(|o| match o {
                    Output::BcDecided { decision, .. } => Some(*decision),
                    _ => None,
                });
                decisions.push(d.unwrap_or_else(|| panic!("{fault:?}/{seed}: p{p} undecided")));
            }
            assert!(
                decisions.iter().all(|d| *d == decisions[0]),
                "{fault:?}/{seed}: agreement violated"
            );
            if fault != Fault::Wire {
                // All correct proposed true → validity forces true.
                // (Wire-corrupted process also proposed true but its
                // traffic is garbage; validity over correct still holds.)
                assert!(decisions[0], "{fault:?}/{seed}: validity violated");
            }
        }
    }
}

#[test]
fn multi_valued_consensus_fault_matrix() {
    for fault in faults() {
        for seed in [3u64, 4] {
            let mut c = cluster(fault, seed);
            for p in 0..4 {
                if fault == Fault::Crash && p == FAULTY {
                    continue;
                }
                let s = if fault == Fault::Strategy && p == FAULTY {
                    c.stack_mut(p).mvc_propose_bottom(1).unwrap()
                } else {
                    c.stack_mut(p)
                        .mvc_propose(1, Bytes::from_static(b"V"))
                        .unwrap()
                };
                c.absorb(p, s);
            }
            run_with_fault(&mut c, fault);
            let mut decisions = Vec::new();
            for p in correct(fault) {
                let d = c.outputs(p).iter().find_map(|o| match o {
                    Output::MvcDecided { decision, .. } => Some(decision.clone()),
                    _ => None,
                });
                decisions.push(d.unwrap_or_else(|| panic!("{fault:?}/{seed}: p{p} undecided")));
            }
            assert!(
                decisions.iter().all(|d| *d == decisions[0]),
                "{fault:?}/{seed}: agreement violated"
            );
            // Validity: the decision is the correct processes' common
            // value or ⊥ — never an invented value.
            if let Some(v) = &decisions[0] {
                assert_eq!(v.as_ref(), b"V", "{fault:?}/{seed}: invented value");
            }
        }
    }
}

#[test]
fn vector_consensus_fault_matrix() {
    for fault in faults() {
        for seed in [5u64, 6] {
            let mut c = cluster(fault, seed);
            for p in 0..4 {
                if fault == Fault::Crash && p == FAULTY {
                    continue;
                }
                let s = c
                    .stack_mut(p)
                    .vc_propose(1, Bytes::from(format!("p{p}")))
                    .unwrap();
                c.absorb(p, s);
            }
            run_with_fault(&mut c, fault);
            let mut vectors = Vec::new();
            for p in correct(fault) {
                let v = c.outputs(p).iter().find_map(|o| match o {
                    Output::VcDecided { vector, .. } => Some(vector.clone()),
                    _ => None,
                });
                vectors.push(v.unwrap_or_else(|| panic!("{fault:?}/{seed}: p{p} undecided")));
            }
            assert!(
                vectors.iter().all(|v| *v == vectors[0]),
                "{fault:?}/{seed}: agreement violated"
            );
            let v = &vectors[0];
            // Vector validity: correct entries match real proposals and
            // at least f+1 entries are present.
            assert!(
                v.iter().flatten().count() >= 2,
                "{fault:?}/{seed}: too sparse"
            );
            for p in correct(fault) {
                if let Some(entry) = &v[p] {
                    assert_eq!(entry.as_ref(), format!("p{p}").as_bytes());
                }
            }
        }
    }
}

#[test]
fn atomic_broadcast_fault_matrix() {
    for fault in faults() {
        for seed in [7u64, 8] {
            let mut c = cluster(fault, seed);
            let mut expected = 0;
            for p in 0..4 {
                if fault == Fault::Crash && p == FAULTY {
                    continue;
                }
                // The wire-corrupted process's own broadcasts may or may
                // not survive its mangled frames; don't count them.
                if fault == Fault::Wire && p == FAULTY {
                    continue;
                }
                let (_, s) = c.stack_mut(p).ab_broadcast(0, Bytes::from(format!("m{p}")));
                c.absorb(p, s);
                expected += 1;
            }
            run_with_fault(&mut c, fault);
            let order = |p: usize| -> Vec<MsgId> {
                c.outputs(p)
                    .iter()
                    .filter_map(|o| match o {
                        Output::AbDelivered { delivery, .. } => Some(delivery.id),
                        _ => None,
                    })
                    .collect()
            };
            let correct_ids: Vec<usize> = correct(fault).collect();
            let o0 = order(correct_ids[0]);
            assert!(
                o0.len() >= expected,
                "{fault:?}/{seed}: only {} of {expected} delivered",
                o0.len()
            );
            for &p in &correct_ids[1..] {
                assert_eq!(order(p), o0, "{fault:?}/{seed}: order diverged at p{p}");
            }
        }
    }
}
