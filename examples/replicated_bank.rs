//! A BFT replicated bank built with the [`ritas::rsm::Replica`] state
//! machine wrapper — the high-level application API: deterministic apply
//! function in, linearizable replicated service out, tolerating one
//! arbitrary replica out of four.
//!
//! Run with: `cargo run --example replicated_bank`
//!
//! Four replicas process concurrent transfers; `submit_sync` + `barrier`
//! give each client read-your-writes and a linearization point, and the
//! final balances agree everywhere (money is conserved despite racing
//! withdrawals).

use bytes::Bytes;
use ritas::node::{Node, SessionConfig};
use ritas::rsm::Replica;
use std::collections::BTreeMap;

type Accounts = BTreeMap<String, i64>;

/// Command format: "transfer <from> <to> <amount>"; applied only if the
/// source stays non-negative — deterministically, so every replica makes
/// the same accept/reject decision.
fn apply(state: &mut Accounts, _submitter: usize, cmd: &[u8]) {
    let Ok(s) = std::str::from_utf8(cmd) else {
        return;
    };
    let mut parts = s.split_whitespace();
    if parts.next() != Some("transfer") {
        return;
    }
    let (Some(from), Some(to), Some(amount)) = (parts.next(), parts.next(), parts.next()) else {
        return;
    };
    let Ok(amount) = amount.parse::<i64>() else {
        return;
    };
    if amount <= 0 {
        return;
    }
    let balance = state.get(from).copied().unwrap_or(0);
    if balance >= amount {
        *state.entry(from.to_owned()).or_insert(0) -= amount;
        *state.entry(to.to_owned()).or_insert(0) += amount;
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let nodes = Node::cluster(SessionConfig::new(4)?)?;
    let mut initial = Accounts::new();
    initial.insert("alice".into(), 100);
    initial.insert("bob".into(), 100);

    let replicas: Vec<Replica<Accounts>> = nodes
        .into_iter()
        .map(|node| Replica::new(node, initial.clone(), apply))
        .collect();

    // Every replica races to drain alice's account: only the transfers
    // the agreed order admits can succeed — money is never created.
    let mut handles = Vec::new();
    for replica in replicas {
        handles.push(std::thread::spawn(
            move || -> Result<_, ritas::node::NodeError> {
                let me = replica.id();
                for k in 0..4 {
                    replica.submit(Bytes::from(format!("transfer alice p{me} {}", 20 + k)))?;
                }
                // Read-your-writes, then wait until all 16 racing transfers
                // are ordered (everyone's last command applied implies ours;
                // we poll the conserved total for the others).
                replica.submit_sync(Bytes::from(format!("transfer bob p{me} 10")))?;
                replica.barrier()?;
                let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
                let accounts = loop {
                    let snapshot = replica.read(|s| s.clone());
                    let alice = snapshot.get("alice").copied().unwrap_or(0);
                    let settled = alice < 20; // can't afford any pending transfer
                    if settled || std::time::Instant::now() > deadline {
                        break snapshot;
                    }
                    std::thread::sleep(std::time::Duration::from_millis(5));
                };
                replica.shutdown();
                Ok((me, accounts))
            },
        ));
    }

    let mut results: Vec<_> = handles
        .into_iter()
        .map(|h| h.join().expect("thread panicked"))
        .collect::<Result<_, _>>()?;
    results.sort_by_key(|(me, _)| *me);

    println!("Final balances (identical at every replica):");
    for (name, balance) in &results[0].1 {
        println!("  {name:>6}: {balance}");
    }
    let total: i64 = results[0].1.values().sum();
    println!("  total: {total}");

    for (me, accounts) in &results {
        assert_eq!(accounts, &results[0].1, "replica p{me} diverged");
    }
    assert_eq!(total, 200, "money was created or destroyed!");
    println!("\nAll replicas agree; 200 units conserved under racing withdrawals. ✔");
    Ok(())
}
