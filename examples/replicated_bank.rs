//! A replicated bank driven by real intrusion-tolerant clients over TCP —
//! the "asynchronous service" of the paper's title, end to end: clients
//! fan requests to `2f+1` replicas, atomic broadcast totally orders the
//! transfers, every replica applies them deterministically, and the
//! client accepts an answer only once `f+1` replicas return the exact
//! same bytes. Invariants (no negative balances, money conservation)
//! hold at every replica because all replicas see the same order.
//!
//! Run with: `cargo run --example replicated_bank`
//!
//! The session layer also gives exactly-once semantics: a client retry
//! of an already-ordered transfer hits the replicated session table and
//! returns the cached reply instead of moving the money twice.

use bytes::Bytes;
use ritas::node::{Node, SessionConfig};
use ritas::service::{ServiceConfig, ServiceReplica};
use ritas_crypto::ClientKeyDealer;
use ritas_service::client::{ClientConfig, ServiceClient};
use ritas_service::server::{ServerConfig, ServiceServer};
use std::collections::BTreeMap;
use std::sync::Arc;

/// The replicated application state: account balances.
type Accounts = BTreeMap<String, i64>;

/// Applies one `transfer <from> <to> <amount>` command. Rejecting
/// overdrafts is part of the deterministic state machine, so all
/// replicas reject exactly the same transfers — and reply with the
/// same bytes, which is what the client's `f+1` vote checks.
fn apply(accounts: &mut Accounts, _client: u64, cmd: &[u8]) -> Bytes {
    let Ok(s) = std::str::from_utf8(cmd) else {
        return Bytes::from_static(b"ERR utf8");
    };
    let mut parts = s.split_whitespace();
    let (Some("transfer"), Some(from), Some(to), Some(amount)) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return Bytes::from_static(b"ERR parse");
    };
    let Ok(amount) = amount.parse::<i64>() else {
        return Bytes::from_static(b"ERR amount");
    };
    let balance = accounts.get(from).copied().unwrap_or(0);
    if amount <= 0 || balance < amount {
        return Bytes::from(format!("DENIED {from}={balance}"));
    }
    *accounts.entry(from.to_owned()).or_insert(0) -= amount;
    *accounts.entry(to.to_owned()).or_insert(0) += amount;
    Bytes::from(format!(
        "OK {from}={} {to}={}",
        accounts[from], accounts[to]
    ))
}

/// Answers `balance <acct>` queries (optimistic `f+1`-matching read).
fn query(accounts: &Accounts, q: &[u8]) -> Bytes {
    let Ok(s) = std::str::from_utf8(q) else {
        return Bytes::from_static(b"ERR utf8");
    };
    match s.strip_prefix("balance ") {
        Some(acct) => Bytes::from(accounts.get(acct).copied().unwrap_or(0).to_string()),
        None => Bytes::from_static(b"ERR parse"),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Four replicas tolerate f = 1 Byzantine failure. Seed both accounts
    // in the initial state so conservation is checkable: total is 200.
    let initial: Accounts = [("alice".to_owned(), 100), ("bob".to_owned(), 100)]
        .into_iter()
        .collect();
    let session = SessionConfig::new(4)?;
    let key_seed = session.client_key_seed();
    let dealer = ClientKeyDealer::new(key_seed);
    let mut servers: Vec<ServiceServer<Accounts>> = Node::cluster(session)?
        .into_iter()
        .map(|node| {
            let replica = Arc::new(ServiceReplica::new(
                node,
                initial.clone(),
                ServiceConfig::default(),
                apply,
                query,
            ));
            ServiceServer::spawn(replica, dealer, ServerConfig::default()).expect("front-end")
        })
        .collect();
    let addrs: Vec<_> = servers.iter().map(|s| s.addr()).collect();

    // Two tellers race transfers in both directions. Some may be DENIED
    // depending on the agreed order — but deterministically so: every
    // replica denies the same ones.
    let mut workers = Vec::new();
    for (client_id, transfers) in [
        (
            1u64,
            vec![
                "transfer alice bob 30",
                "transfer alice bob 90",
                "transfer alice bob 10",
            ],
        ),
        (
            2u64,
            vec!["transfer bob alice 50", "transfer bob alice 120"],
        ),
    ] {
        let addrs = addrs.clone();
        workers.push(std::thread::spawn(move || {
            let mut client = ServiceClient::new(
                client_id,
                addrs,
                ClientConfig {
                    key_seed,
                    ..ClientConfig::default()
                },
            );
            for t in transfers {
                let reply = client.invoke(Bytes::from_static(t.as_bytes())).unwrap();
                println!(
                    "teller {client_id}: {t:<24} -> {}",
                    String::from_utf8_lossy(&reply)
                );
            }
            // Read the final balances through the voted read path.
            let alice: i64 = String::from_utf8_lossy(
                &client.read(Bytes::from_static(b"balance alice")).unwrap(),
            )
            .parse()
            .unwrap();
            let bob: i64 =
                String::from_utf8_lossy(&client.read(Bytes::from_static(b"balance bob")).unwrap())
                    .parse()
                    .unwrap();
            client.shutdown();
            (alice, bob)
        }));
    }
    let views: Vec<_> = workers
        .into_iter()
        .map(|w| w.join().expect("teller thread"))
        .collect();

    println!("\nTeller views after settling:");
    for (i, (alice, bob)) in views.iter().enumerate() {
        println!("  teller {}: alice={alice} bob={bob}", i + 1);
    }

    // Settle every replica past the last ordered command, then audit.
    for s in &mut servers {
        s.replica().barrier().ok();
    }
    let reference = servers[0].replica().read_state(|a| a.clone());
    for (i, s) in servers.iter().enumerate() {
        let accounts = s.replica().read_state(|a| a.clone());
        let total: i64 = accounts.values().sum();
        assert_eq!(total, 200, "replica p{i} lost or created money!");
        assert!(
            accounts.values().all(|&b| b >= 0),
            "replica p{i} overdrafted an account!"
        );
        assert_eq!(accounts, reference, "replica p{i} diverged!");
    }
    println!("\nFinal balances (identical at every replica):");
    for (acct, balance) in &reference {
        println!("  {acct}: {balance}");
    }
    for s in &mut servers {
        s.replica().shutdown();
        s.shutdown();
    }
    println!("\nMoney conserved (total = 200) at all 4 replicas. ✔");
    Ok(())
}
