//! The paper's actual deployment shape: the RITAS stack over **real TCP
//! sockets** with the AH-style authentication layer computing real
//! HMAC-SHA-1-96 on every frame — TCP for reliability, MACs for
//! integrity, exactly the §2.1 reliable channel.
//!
//! Run with: `cargo run --example tcp_cluster`
//!
//! All four endpoints live in this OS process for the demo, but each
//! speaks length-prefixed frames over a genuine localhost socket; for a
//! multi-host deployment, establish `TcpEndpoint`s with your address
//! list and hand them to `Node::spawn`.

use bytes::Bytes;
use ritas::node::{Node, SessionConfig};
use std::time::{Duration, Instant};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Establishing a 4-process TCP mesh on localhost…");
    let started = Instant::now();
    let nodes = Node::tcp_cluster(SessionConfig::new(4)?, Duration::from_secs(10))?;
    println!(
        "  mesh up in {:?} (6 connections, all frames HMAC-sealed)",
        started.elapsed()
    );

    let mut handles = Vec::new();
    for node in nodes {
        handles.push(std::thread::spawn(
            move || -> Result<_, ritas::node::NodeError> {
                let me = node.id();
                // One consensus and a few atomic broadcasts per process.
                let elected = node.binary_consensus(1, me % 2 == 0)?;
                for k in 0..3 {
                    node.atomic_broadcast(Bytes::from(format!("p{me}-msg{k}")))?;
                }
                let mut order = Vec::new();
                for _ in 0..12 {
                    order.push(node.atomic_recv()?.id);
                }
                node.shutdown();
                Ok((me, elected, order))
            },
        ));
    }

    let mut results: Vec<_> = handles
        .into_iter()
        .map(|h| h.join().expect("thread panicked"))
        .collect::<Result<_, _>>()?;
    results.sort_by_key(|(me, ..)| *me);

    let (_, elected0, order0) = &results[0];
    for (me, elected, order) in &results {
        assert_eq!(elected, elected0, "consensus diverged at p{me}");
        assert_eq!(order, order0, "total order diverged at p{me}");
    }

    println!("\nConsensus decision (same at all 4 processes): {elected0}");
    println!(
        "Total order over TCP ({} messages): identical everywhere. ✔",
        order0.len()
    );
    println!("Elapsed: {:?}", started.elapsed());
    Ok(())
}
