//! Intrusion-tolerant sensor snapshot with **vector consensus**: four
//! monitoring stations agree on a common vector of readings, of which at
//! least f+1 are guaranteed to come from correct stations — even if one
//! station lies or stays silent.
//!
//! Run with: `cargo run --example sensor_snapshot`
//!
//! This is the classic use case for vector consensus (interactive
//! consistency): a downstream controller can apply any deterministic
//! fusion rule (median, trimmed mean…) to the agreed vector and every
//! correct station computes the same fused value.

use bytes::Bytes;
use ritas::node::{Node, SessionConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let nodes = Node::cluster(SessionConfig::new(4)?)?;

    // Station 3 is compromised and reports a wild value, trying to skew
    // the fused reading.
    let readings = [21.4f64, 21.9, 21.6, 999.0];

    let mut handles = Vec::new();
    for node in nodes {
        let my_reading = readings[node.id()];
        handles.push(std::thread::spawn(
            move || -> Result<_, ritas::node::NodeError> {
                let proposal = Bytes::from(my_reading.to_be_bytes().to_vec());
                let vector = node.vector_consensus(1, proposal)?;
                node.shutdown();
                Ok((node.id(), vector))
            },
        ));
    }

    let mut results: Vec<_> = handles
        .into_iter()
        .map(|h| h.join().expect("thread panicked"))
        .collect::<Result<_, _>>()?;
    results.sort_by_key(|(me, _)| *me);

    // Decode each station's agreed view.
    let decode = |vector: &[Option<Bytes>]| -> Vec<Option<f64>> {
        vector
            .iter()
            .map(|slot| {
                slot.as_ref()
                    .and_then(|b| <[u8; 8]>::try_from(b.as_ref()).ok())
                    .map(f64::from_be_bytes)
            })
            .collect()
    };

    let reference = decode(&results[0].1);
    println!("Agreed snapshot vector (identical at every correct station):");
    for (i, r) in reference.iter().enumerate() {
        match r {
            Some(v) => println!("  station {i}: {v:>8.1}"),
            None => println!("  station {i}:        ⊥ (no value agreed)"),
        }
    }
    for (me, vector) in &results {
        assert_eq!(decode(vector), reference, "station {me} disagreed");
    }

    // Deterministic fusion: the median of the agreed readings is immune
    // to a single outlier because >= f+1 entries come from correct
    // stations and every correct station fuses the same vector.
    let mut values: Vec<f64> = reference.iter().flatten().copied().collect();
    values.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = values[values.len() / 2];
    println!("\nFused (median) temperature: {median:.1} °C");
    assert!(
        values.len() >= 2,
        "vector consensus guarantees >= f+1 entries"
    );
    assert!((20.0..25.0).contains(&median), "outlier skewed the median!");
    println!("The compromised station could not skew the fused reading. ✔");
    Ok(())
}
