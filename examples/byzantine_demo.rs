//! The paper's Byzantine faultload, live: one process permanently
//! attacks the consensus layers while the others order a burst of
//! messages — and neither correctness nor performance suffers (§4.2,
//! Figure 6).
//!
//! Run with: `cargo run --release --example byzantine_demo`
//!
//! The demo uses the calibrated discrete-event simulator so the attack
//! runs deterministically and the virtual-time cost of the attack can be
//! compared with a failure-free baseline of the same seed.

use bytes::Bytes;
use ritas::stack::Output;
use ritas_sim::cluster::{Action, SimCluster, SimConfig};
use ritas_sim::Faultload;

fn run(faultload: Faultload, seed: u64) -> (Vec<Vec<(usize, u64)>>, f64, u32) {
    let config = SimConfig::paper_testbed(seed).with_faultload(faultload);
    let mut sim = SimCluster::new(config);
    // Every participant (including the attacker — its payloads are
    // legitimate, its attack is at the consensus layer) broadcasts 10
    // messages.
    for p in faultload.senders(4) {
        for k in 0..10u64 {
            sim.schedule(0, p, Action::AbBroadcast(Bytes::from(format!("m{p}:{k}"))));
        }
    }
    sim.run();

    let orders: Vec<Vec<(usize, u64)>> = (0..4)
        .map(|p| {
            sim.outputs(p)
                .iter()
                .filter_map(|(_, o)| match o {
                    Output::AbDelivered { delivery, .. } => {
                        Some((delivery.id.sender, delivery.id.rbid))
                    }
                    _ => None,
                })
                .collect()
        })
        .collect();
    let observer = sim.observer();
    let last_ms = sim
        .ab_delivery_times(observer)
        .last()
        .map(|ns| *ns as f64 / 1e6)
        .unwrap_or(0.0);
    let bc_rounds = sim
        .stack(observer)
        .ab_stats(0)
        .map(|s| s.bc_rounds_max)
        .unwrap_or(0);
    (orders, last_ms, bc_rounds)
}

fn main() {
    let seed = 2006; // DSN 2006

    println!("Baseline: failure-free burst of 40 messages (4 senders x 10)…");
    let (ff_orders, ff_ms, ff_rounds) = run(Faultload::FailureFree, seed);
    println!(
        "  delivered {} messages in {:.1} ms of virtual time (max BC rounds: {ff_rounds})",
        ff_orders[0].len(),
        ff_ms
    );

    println!();
    println!("Attack: process 3 runs the paper's Byzantine strategy —");
    println!("  * always proposes 0 at the binary consensus layer,");
    println!("  * proposes the default value ⊥ in the MVC INIT and VECT messages,");
    println!("  trying to force correct processes to abort every agreement.");
    let (byz_orders, byz_ms, byz_rounds) = run(Faultload::Byzantine { attacker: 3 }, seed);
    println!(
        "  delivered {} messages in {:.1} ms of virtual time (max BC rounds: {byz_rounds})",
        byz_orders[0].len(),
        byz_ms
    );

    // Agreement among the correct processes (0, 1, 2).
    for p in 1..3 {
        assert_eq!(
            byz_orders[p], byz_orders[0],
            "total order diverged at correct process {p}"
        );
    }
    assert_eq!(byz_orders[0].len(), 40, "messages lost under attack");

    let slowdown = byz_ms / ff_ms;
    println!();
    println!("Result: identical total order at every correct process. ✔");
    println!(
        "Performance under attack: {:.2}x the failure-free baseline \
         (the paper found the protocols 'basically immune').",
        slowdown
    );
    assert!(
        slowdown < 1.5,
        "the Byzantine process should not be able to slow the protocols much"
    );
}
