//! A Byzantine-fault-tolerant replicated key-value store built on atomic
//! broadcast — the state machine replication pattern the paper's
//! introduction motivates (consensus ⇔ atomic broadcast ⇔ replicated
//! state machines).
//!
//! Run with: `cargo run --example replicated_kv`
//!
//! Every replica submits `SET`/`DEL` commands through atomic broadcast
//! and applies them in delivery order. Because delivery order is
//! identical everywhere, all replicas end in the same state — without
//! any leader, lock service or timing assumption, and tolerating one
//! arbitrary (Byzantine) replica out of four.

use bytes::Bytes;
use ritas::node::{Node, SessionConfig};
use std::collections::BTreeMap;

/// Commands understood by the replicated store.
#[derive(Debug, Clone)]
enum Command {
    Set { key: String, value: String },
    Del { key: String },
}

impl Command {
    fn encode(&self) -> Bytes {
        let s = match self {
            Command::Set { key, value } => format!("SET {key}={value}"),
            Command::Del { key } => format!("DEL {key}"),
        };
        Bytes::from(s)
    }

    fn decode(raw: &[u8]) -> Option<Command> {
        let s = std::str::from_utf8(raw).ok()?;
        if let Some(rest) = s.strip_prefix("SET ") {
            let (key, value) = rest.split_once('=')?;
            Some(Command::Set {
                key: key.to_owned(),
                value: value.to_owned(),
            })
        } else {
            s.strip_prefix("DEL ").map(|key| Command::Del {
                key: key.to_owned(),
            })
        }
    }
}

/// A deterministic state machine: applies commands in delivery order.
#[derive(Debug, Default, PartialEq, Eq)]
struct Store {
    map: BTreeMap<String, String>,
}

impl Store {
    fn apply(&mut self, cmd: &Command) {
        match cmd {
            Command::Set { key, value } => {
                self.map.insert(key.clone(), value.clone());
            }
            Command::Del { key } => {
                self.map.remove(key);
            }
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let nodes = Node::cluster(SessionConfig::new(4)?)?;

    // Conflicting writes from different replicas: without total order,
    // replicas could disagree on the final value of "leader" and on
    // whether "tmp" survives.
    let workloads: [Vec<Command>; 4] = [
        vec![
            Command::Set {
                key: "leader".into(),
                value: "p0".into(),
            },
            Command::Set {
                key: "tmp".into(),
                value: "scratch".into(),
            },
        ],
        vec![Command::Set {
            key: "leader".into(),
            value: "p1".into(),
        }],
        vec![Command::Del { key: "tmp".into() }],
        vec![
            Command::Set {
                key: "leader".into(),
                value: "p3".into(),
            },
            Command::Set {
                key: "epoch".into(),
                value: "7".into(),
            },
        ],
    ];
    let total: usize = workloads.iter().map(Vec::len).sum();

    let mut handles = Vec::new();
    for node in nodes {
        let my_cmds = workloads[node.id()].clone();
        handles.push(std::thread::spawn(
            move || -> Result<_, Box<ritas::node::NodeError>> {
                for cmd in &my_cmds {
                    node.atomic_broadcast(cmd.encode())?;
                }
                let mut store = Store::default();
                let mut log = Vec::new();
                for _ in 0..total {
                    let delivery = node.atomic_recv()?;
                    if let Some(cmd) = Command::decode(&delivery.payload) {
                        store.apply(&cmd);
                        log.push(format!("{cmd:?}"));
                    }
                }
                node.shutdown();
                Ok((node.id(), store, log))
            },
        ));
    }

    let mut results: Vec<_> = handles
        .into_iter()
        .map(|h| h.join().expect("thread panicked"))
        .collect::<Result<_, _>>()?;
    results.sort_by_key(|(me, ..)| *me);

    println!("Applied command log (identical on every replica):");
    for line in &results[0].2 {
        println!("  {line}");
    }
    println!("\nFinal replicated state:");
    for (k, v) in &results[0].1.map {
        println!("  {k} = {v}");
    }

    let reference = &results[0].1;
    for (me, store, _) in &results {
        assert_eq!(store, reference, "replica p{me} diverged!");
    }
    println!("\nAll 4 replicas converged to the same state. ✔");
    Ok(())
}
