//! A Byzantine-fault-tolerant replicated key-value store, served to real
//! clients over TCP — the state machine replication pattern the paper's
//! introduction motivates (consensus ⇔ atomic broadcast ⇔ replicated
//! state machines), completed by the service tier: clients fan each
//! request to `2f+1` replicas and accept a result only at `f+1`
//! byte-identical replies, so no single replica is ever trusted.
//!
//! Run with: `cargo run --example replicated_kv`
//!
//! Every command is ordered through atomic broadcast and applied in
//! delivery order at all four replicas; because delivery order is
//! identical everywhere, all replicas end in the same state — without
//! any leader, lock service or timing assumption, tolerating one
//! arbitrary (Byzantine) replica out of four. The clients talk the
//! HMAC-authenticated service protocol: `SET`/`DEL` go through the
//! ordered write path, `GET` through the optimistic `f+1`-matching read.

use bytes::Bytes;
use ritas::node::{Node, SessionConfig};
use ritas::service::{ServiceConfig, ServiceReplica};
use ritas_crypto::ClientKeyDealer;
use ritas_service::client::{ClientConfig, ServiceClient};
use ritas_service::server::{ServerConfig, ServiceServer};
use std::collections::BTreeMap;
use std::sync::Arc;

/// The replicated state: an ordered map, applied deterministically.
type Store = BTreeMap<String, String>;

/// Applies one text command (`SET k=v` / `DEL k`), returning the reply
/// the client will vote on. Determinism is what makes the vote work:
/// every correct replica produces byte-identical replies.
fn apply(store: &mut Store, _client: u64, cmd: &[u8]) -> Bytes {
    let Ok(s) = std::str::from_utf8(cmd) else {
        return Bytes::from_static(b"ERR utf8");
    };
    if let Some(rest) = s.strip_prefix("SET ") {
        if let Some((key, value)) = rest.split_once('=') {
            store.insert(key.to_owned(), value.to_owned());
            return Bytes::from_static(b"OK");
        }
    } else if let Some(key) = s.strip_prefix("DEL ") {
        store.remove(key);
        return Bytes::from_static(b"OK");
    }
    Bytes::from_static(b"ERR parse")
}

/// Answers a `GET k` query from the current state (optimistic read path;
/// the client falls back to an ordered read when replicas diverge).
fn query(store: &Store, q: &[u8]) -> Bytes {
    let Ok(s) = std::str::from_utf8(q) else {
        return Bytes::from_static(b"ERR utf8");
    };
    match s.strip_prefix("GET ").and_then(|k| store.get(k)) {
        Some(v) => Bytes::from(v.clone()),
        None => Bytes::new(),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Four replicas (f = 1) on an in-memory mesh, each with a TCP
    // service front-end clients connect to.
    let session = SessionConfig::new(4)?;
    let key_seed = session.client_key_seed();
    let dealer = ClientKeyDealer::new(key_seed);
    let mut servers: Vec<ServiceServer<Store>> = Node::cluster(session)?
        .into_iter()
        .map(|node| {
            let replica = Arc::new(ServiceReplica::new(
                node,
                Store::new(),
                ServiceConfig::default(),
                apply,
                query,
            ));
            ServiceServer::spawn(replica, dealer, ServerConfig::default()).expect("front-end")
        })
        .collect();
    let addrs: Vec<_> = servers.iter().map(|s| s.addr()).collect();

    // Two independent clients race conflicting writes. The total order
    // decides who wins "leader"; both clients then observe the same
    // winner.
    let mut workers = Vec::new();
    for (client_id, cmds) in [
        (
            1u64,
            vec!["SET leader=alpha", "SET tmp=scratch", "SET epoch=7"],
        ),
        (2u64, vec!["SET leader=beta", "DEL tmp"]),
    ] {
        let addrs = addrs.clone();
        workers.push(std::thread::spawn(move || {
            let mut client = ServiceClient::new(
                client_id,
                addrs,
                ClientConfig {
                    key_seed,
                    ..ClientConfig::default()
                },
            );
            for cmd in cmds {
                let reply = client.invoke(Bytes::from_static(cmd.as_bytes())).unwrap();
                println!("client {client_id}: {cmd:<18} -> {:?}", reply.as_ref());
            }
            // Read back through the f+1-vote read path.
            let leader = client.read(Bytes::from_static(b"GET leader")).unwrap();
            let tmp = client.read(Bytes::from_static(b"GET tmp")).unwrap();
            client.shutdown();
            (
                String::from_utf8_lossy(&leader).into_owned(),
                String::from_utf8_lossy(&tmp).into_owned(),
            )
        }));
    }
    let views: Vec<_> = workers
        .into_iter()
        .map(|w| w.join().expect("client thread"))
        .collect();

    println!("\nClient views after settling:");
    for (i, (leader, tmp)) in views.iter().enumerate() {
        println!("  client {}: leader={leader:?} tmp={tmp:?}", i + 1);
    }

    // Both clients read the same agreed leader; whoever it is, it is one
    // of the two candidates, and every replica agrees.
    assert_eq!(views[0].0, views[1].0, "clients saw different leaders");
    assert!(["alpha", "beta"].contains(&views[0].0.as_str()));

    for s in &mut servers {
        s.replica().barrier().ok();
    }
    let reference = servers[0].replica().read_state(|s| s.clone());
    for (i, s) in servers.iter().enumerate() {
        assert_eq!(
            s.replica().read_state(|st| st.clone()),
            reference,
            "replica p{i} diverged!"
        );
    }
    println!("\nFinal replicated state (identical at every replica):");
    for (k, v) in &reference {
        println!("  {k} = {v}");
    }
    for s in &mut servers {
        s.replica().shutdown();
        s.shutdown();
    }
    println!("\nAll 4 replicas converged; clients agreed through f+1 votes. ✔");
    Ok(())
}
