//! Quickstart: four intrusion-tolerant processes totally ordering
//! messages with atomic broadcast.
//!
//! Run with: `cargo run --example quickstart`
//!
//! Each process runs in its own thread (its protocol stack in yet
//! another, as in the paper's C implementation), connected by an
//! in-memory reliable channel sealed with the AH-style authentication
//! layer. Every process a-broadcasts one message; all four observe the
//! identical delivery order — even though they start concurrently and
//! the network interleaves arbitrarily.

use bytes::Bytes;
use ritas::node::{Node, SessionConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Configure a session for n = 4 processes (tolerates f = 1
    //    Byzantine process). Keys are dealt from the session seed, as by
    //    the paper's trusted dealer.
    let config = SessionConfig::new(4)?;
    let nodes = Node::cluster(config)?;

    // 2. Each process broadcasts one message and collects the total order.
    let mut handles = Vec::new();
    for node in nodes {
        handles.push(std::thread::spawn(
            move || -> Result<_, ritas::node::NodeError> {
                let me = node.id();
                node.atomic_broadcast(Bytes::from(format!("greetings from p{me}")))?;

                let mut order = Vec::new();
                for _ in 0..4 {
                    let delivery = node.atomic_recv()?;
                    order.push((
                        delivery.id,
                        String::from_utf8_lossy(&delivery.payload).into_owned(),
                    ));
                }
                node.shutdown();
                Ok((me, order))
            },
        ));
    }

    // 3. Verify every process delivered the same messages in the same
    //    order — the total order property.
    let mut results: Vec<_> = handles
        .into_iter()
        .map(|h| h.join().expect("thread panicked"))
        .collect::<Result<_, _>>()?;
    results.sort_by_key(|(me, _)| *me);

    println!("Total order observed by each process:");
    for (me, order) in &results {
        let rendered: Vec<String> = order
            .iter()
            .map(|(id, text)| format!("[p{}#{}: {text}]", id.sender, id.rbid))
            .collect();
        println!("  p{me}: {}", rendered.join(" "));
    }

    let reference = &results[0].1;
    assert!(
        results.iter().all(|(_, order)| order == reference),
        "total order violated!"
    );
    println!("\nAll 4 processes agree on the order. ✔");
    Ok(())
}
