//! `ritas-node` — run one RITAS process over real TCP.
//!
//! The deployable face of the library: each OS process (or host) runs one
//! instance; together they form an intrusion-tolerant atomic broadcast
//! group exactly as the paper's C library would be deployed.
//!
//! ```text
//! ritas-node --me <id> --peers <addr0,addr1,...> [options]
//!
//!   --me <id>              this process's index into the peer list
//!   --peers <a0,a1,...>    listen/dial addresses of ALL processes
//!   --seed <n>             key-dealer master seed (default 42; must match
//!                          across the group — a stand-in for real key
//!                          distribution)
//!   --no-auth              disable the AH-style authentication layer
//!   --burst <k>            non-interactive: a-broadcast k messages, wait
//!                          for everyone's, print `DELIVER <sender> <rbid>
//!                          <payload>` lines, then exit
//!   --connect-timeout-secs <s>   mesh establishment timeout (default 30)
//! ```
//!
//! Without `--burst`, runs interactively: every stdin line is atomically
//! broadcast; deliveries are printed as they arrive in the total order.

use bytes::Bytes;
use ritas::node::Node;
use ritas::stack::Stack;
use ritas::Group;
use ritas_crypto::KeyTable;
use ritas_transport::{AuthConfig, AuthenticatedTransport, TcpEndpoint};
use std::io::BufRead;
use std::net::{SocketAddr, TcpListener};
use std::time::Duration;

struct Args {
    me: usize,
    peers: Vec<SocketAddr>,
    seed: u64,
    auth: bool,
    burst: Option<usize>,
    connect_timeout: Duration,
}

fn parse_args() -> Result<Args, String> {
    let mut me: Option<usize> = None;
    let mut peers: Vec<SocketAddr> = Vec::new();
    let mut seed = 42u64;
    let mut auth = true;
    let mut burst = None;
    let mut connect_timeout = Duration::from_secs(30);

    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    let next = |i: &mut usize| -> Result<String, String> {
        *i += 1;
        argv.get(*i - 1)
            .cloned()
            .ok_or_else(|| "missing argument value".to_owned())
    };
    while i < argv.len() {
        let flag = argv[i].clone();
        i += 1;
        match flag.as_str() {
            "--me" => me = Some(next(&mut i)?.parse().map_err(|e| format!("--me: {e}"))?),
            "--peers" => {
                peers = next(&mut i)?
                    .split(',')
                    .map(|s| s.parse().map_err(|e| format!("--peers: {e}")))
                    .collect::<Result<_, _>>()?;
            }
            "--seed" => seed = next(&mut i)?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--no-auth" => auth = false,
            "--burst" => burst = Some(next(&mut i)?.parse().map_err(|e| format!("--burst: {e}"))?),
            "--connect-timeout-secs" => {
                connect_timeout = Duration::from_secs(
                    next(&mut i)?
                        .parse()
                        .map_err(|e| format!("--connect-timeout-secs: {e}"))?,
                )
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    let me = me.ok_or("--me is required")?;
    if peers.len() < 4 {
        return Err("--peers needs at least 4 addresses (n >= 3f+1, f >= 1)".into());
    }
    if me >= peers.len() {
        return Err("--me out of range of --peers".into());
    }
    Ok(Args {
        me,
        peers,
        seed,
        auth,
        burst,
        connect_timeout,
    })
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("usage: ritas-node --me <id> --peers <a0,a1,...> [--seed n] [--no-auth] [--burst k]");
            std::process::exit(2);
        }
    };
    if let Err(e) = run(args) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn run(args: Args) -> Result<(), Box<dyn std::error::Error>> {
    let n = args.peers.len();
    let group = Group::new(n)?;
    let table = KeyTable::dealer(n, args.seed);

    eprintln!("[p{}] binding {}", args.me, args.peers[args.me]);
    let listener = TcpListener::bind(args.peers[args.me])?;
    eprintln!("[p{}] establishing mesh with {} peers…", args.me, n - 1);
    let endpoint = TcpEndpoint::establish(args.me, listener, &args.peers, args.connect_timeout)?;
    eprintln!("[p{}] mesh up (auth: {})", args.me, args.auth);

    let stack = Stack::new(
        group,
        args.me,
        table.view_of(args.me),
        args.seed
            .wrapping_mul(0xA076_1D64_78BD_642F)
            .wrapping_add(args.me as u64),
    );
    let node = if args.auth {
        Node::spawn(
            AuthenticatedTransport::new(endpoint, AuthConfig::from_key_table(&table, args.me)),
            stack,
        )
    } else {
        Node::spawn(endpoint, stack)
    };

    match args.burst {
        Some(k) => run_burst(&node, args.me, n, k),
        None => run_interactive(&node, args.me),
    }
}

/// Scripted mode: broadcast `k` messages, collect everyone's, print the
/// total order, exit 0.
fn run_burst(node: &Node, me: usize, n: usize, k: usize) -> Result<(), Box<dyn std::error::Error>> {
    for i in 0..k {
        node.atomic_broadcast(Bytes::from(format!("p{me}:{i}")))?;
    }
    let expected = k * n;
    for _ in 0..expected {
        let d = node.atomic_recv()?;
        println!(
            "DELIVER {} {} {}",
            d.id.sender,
            d.id.rbid,
            String::from_utf8_lossy(&d.payload)
        );
    }
    // Give laggards a moment to finish pulling our frames before the
    // process (and its sockets) disappears.
    std::thread::sleep(Duration::from_millis(300));
    node.shutdown();
    Ok(())
}

/// Interactive mode: stdin lines are broadcast; deliveries stream to
/// stdout in total order.
fn run_interactive(node: &Node, me: usize) -> Result<(), Box<dyn std::error::Error>> {
    eprintln!("[p{me}] interactive: type a line to a-broadcast it (EOF to quit)");
    std::thread::scope(|scope| -> Result<(), Box<dyn std::error::Error>> {
        scope.spawn(|| loop {
            match node.atomic_recv() {
                Ok(d) => println!(
                    "[from p{} #{}] {}",
                    d.id.sender,
                    d.id.rbid,
                    String::from_utf8_lossy(&d.payload)
                ),
                Err(_) => return,
            }
        });
        for line in std::io::stdin().lock().lines() {
            let line = line?;
            if line.is_empty() {
                continue;
            }
            node.atomic_broadcast(Bytes::from(line))?;
        }
        std::thread::sleep(Duration::from_millis(500));
        node.shutdown();
        Ok(())
    })
}
