//! Umbrella crate for the RITAS reproduction workspace.
//!
//! Re-exports the member crates so the examples and integration tests at
//! the repository root can reach everything through one dependency:
//!
//! * [`ritas`] — the protocol stack (reliable/echo broadcast, binary,
//!   multi-valued and vector consensus, atomic broadcast);
//! * [`ritas_crypto`] — the signature-free crypto substrate;
//! * [`ritas_transport`] — reliable channels (in-memory hub + AH layer);
//! * [`ritas_sim`] — the calibrated discrete-event evaluation harness.
//!
//! See `README.md` for the project tour and `DESIGN.md` /
//! `EXPERIMENTS.md` for the reproduction methodology and results.

#![forbid(unsafe_code)]

pub use ritas;
pub use ritas_crypto;
pub use ritas_sim;
pub use ritas_transport;
