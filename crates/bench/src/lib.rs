//! Rendering helpers shared by the benchmark binaries.
//!
//! Each binary in `src/bin/` regenerates one artifact of the paper's
//! evaluation (Table 1, Figures 4–7) or one ablation from `DESIGN.md`,
//! printing the same rows/series the paper reports plus the paper's own
//! numbers for side-by-side comparison.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ritas_sim::harness::{BurstSeries, StackLatencyRow};
use ritas_sim::Faultload;

/// The paper's Table 1 values: (label, with-IPSec µs, without-IPSec µs,
/// overhead %).
pub const PAPER_TABLE1: [(&str, f64, f64, f64); 6] = [
    ("Echo Broadcast", 1724.0, 1497.0, 15.0),
    ("Reliable Broadcast", 2134.0, 1641.0, 30.0),
    ("Binary Consensus", 8922.0, 6816.0, 30.0),
    ("Multi-valued Consensus", 16359.0, 11186.0, 46.0),
    ("Vector Consensus", 20673.0, 15382.0, 34.0),
    ("Atomic Broadcast", 23744.0, 18604.0, 27.0),
];

/// Paper burst-of-1000 reference numbers per faultload:
/// (message size, latency ms, max throughput msg/s).
pub const PAPER_FIG4_FAILURE_FREE: [(usize, f64, f64); 4] = [
    (10, 1386.0, 721.0),
    (100, 1539.0, 650.0),
    (1000, 2150.0, 465.0),
    (10_000, 12340.0, 81.0),
];

/// Figure 5 (fail-stop) reference numbers.
pub const PAPER_FIG5_FAIL_STOP: [(usize, f64, f64); 4] = [
    (10, 988.0, 858.0),
    (100, 1164.0, 621.0),
    (1000, 1607.0, 834.0),
    (10_000, 8655.0, 115.0),
];

/// Figure 6 (Byzantine) reference numbers.
pub const PAPER_FIG6_BYZANTINE: [(usize, f64, f64); 4] = [
    (10, 1404.0, 711.0),
    (100, 1576.0, 634.0),
    (1000, 2175.0, 460.0),
    (10_000, 12347.0, 81.0),
];

/// Renders Table 1 with the paper's values alongside.
pub fn render_table1(rows: &[StackLatencyRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<24} | {:>10} {:>10} {:>6} | {:>10} {:>10} {:>6}\n",
        "", "measured", "", "", "paper", "", ""
    ));
    out.push_str(&format!(
        "{:<24} | {:>10} {:>10} {:>6} | {:>10} {:>10} {:>6}\n",
        "Protocol", "w/ (us)", "w/o (us)", "ovh%", "w/ (us)", "w/o (us)", "ovh%"
    ));
    out.push_str(&"-".repeat(100));
    out.push('\n');
    for r in rows {
        let paper = PAPER_TABLE1
            .iter()
            .find(|(label, ..)| *label == r.protocol.label());
        let (pw, pwo, po) = paper
            .map(|(_, a, b, c)| (*a, *b, *c))
            .unwrap_or((0.0, 0.0, 0.0));
        out.push_str(&format!(
            "{:<24} | {:>10.0} {:>10.0} {:>5.0}% | {:>10.0} {:>10.0} {:>5.0}%\n",
            r.protocol.label(),
            r.with_ipsec_us,
            r.without_ipsec_us,
            r.overhead_pct(),
            pw,
            pwo,
            po
        ));
    }
    out
}

/// Renders a figure's latency and throughput series.
pub fn render_burst_series(series: &[BurstSeries], paper_1000: &[(usize, f64, f64)]) -> String {
    let mut out = String::new();
    for s in series {
        out.push_str(&format!(
            "--- message size {} bytes ({} faultload) ---\n",
            s.msg_size,
            s.faultload.label()
        ));
        out.push_str(&format!(
            "{:>8} {:>14} {:>18} {:>12}\n",
            "burst", "latency (ms)", "throughput (msg/s)", "agreements"
        ));
        for p in &s.points {
            out.push_str(&format!(
                "{:>8} {:>14.1} {:>18.0} {:>12.1}\n",
                p.burst, p.latency_ms, p.throughput_msgs_per_sec, p.agreements
            ));
        }
        if let Some((_, pl, pt)) = paper_1000.iter().find(|(m, ..)| *m == s.msg_size) {
            out.push_str(&format!(
                "  paper @ burst 1000: latency {pl:.0} ms, Tmax {pt:.0} msg/s\n"
            ));
        }
        out.push('\n');
    }
    out
}

/// Common CLI arguments of the figure binaries.
#[derive(Debug, Clone)]
pub struct FigureArgs {
    /// Runs averaged per point (paper: 10).
    pub runs: usize,
    /// Base seed.
    pub seed: u64,
    /// Reduced parameter grid for smoke runs.
    pub quick: bool,
    /// Write an aggregated [`ritas_metrics::MetricsSnapshot`] JSON dump
    /// of the whole run to this path.
    pub metrics_json: Option<String>,
    /// Write a per-instance span dump (JSONL, one span per line; see
    /// [`write_span_dump`]) to this path.
    pub span_json: Option<String>,
    /// Write per-replica span dumps (`{prefix}-{p}.jsonl`, one file per
    /// simulated process; see [`write_cluster_span_dumps`]) for
    /// `ritas-trace --cluster`.
    pub cluster_span_json: Option<String>,
    /// Override the binary's default faultload (spec syntax of
    /// [`Faultload::from_str`], e.g. `link-flap:0-1:4000000:1000000`),
    /// so simulated chaos runs are comparable with the real TCP mesh's.
    pub faultload: Option<Faultload>,
}

/// Parses `--runs N --seed S --quick --metrics-json PATH --span-json
/// PATH --cluster-span-json PREFIX --faultload SPEC` from
/// `std::env::args`.
///
/// # Panics
///
/// Panics on unknown arguments or non-numeric values (these are
/// developer-facing binaries).
pub fn parse_figure_args() -> FigureArgs {
    let mut out = FigureArgs {
        runs: 3,
        seed: 42,
        quick: false,
        metrics_json: None,
        span_json: None,
        cluster_span_json: None,
        faultload: None,
    };
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--runs" => {
                out.runs = args[i + 1].parse().expect("numeric --runs");
                i += 2;
            }
            "--seed" => {
                out.seed = args[i + 1].parse().expect("numeric --seed");
                i += 2;
            }
            "--quick" => {
                out.quick = true;
                i += 1;
            }
            "--metrics-json" => {
                out.metrics_json = Some(args[i + 1].clone());
                i += 2;
            }
            "--span-json" => {
                out.span_json = Some(args[i + 1].clone());
                i += 2;
            }
            "--cluster-span-json" => {
                out.cluster_span_json = Some(args[i + 1].clone());
                i += 2;
            }
            "--faultload" => {
                out.faultload = Some(args[i + 1].parse().unwrap_or_else(|e| panic!("{e}")));
                i += 2;
            }
            other => panic!("unknown argument {other}"),
        }
    }
    out
}

/// Runs one dedicated simulated burst under `faultload` and writes the
/// observer's span tree (virtual-time open/close per protocol instance)
/// as JSONL to `path`, readable by the `ritas-trace` binary.
///
/// This is a *separate* traced run, not a dump of the figure runs: span
/// paths are per-process, so the trace needs each simulated process to
/// own a private registry. Call this **before** [`MetricsDump::from_arg`]
/// — once the ambient registry is installed all processes share it and
/// their same-named spans would collide.
///
/// # Panics
///
/// Panics when the path is not writable or the traced run fails to
/// deliver (developer-facing binaries).
pub fn write_span_dump(path: &str, seed: u64, faultload: Faultload) {
    use ritas_sim::cluster::{Action, SimCluster, SimConfig};

    let config = SimConfig::paper_testbed(seed).with_faultload(faultload);
    let n = config.n;
    let mut sim = SimCluster::new(config);
    let payload = bytes::Bytes::from(vec![0x5a; 100]);
    let senders = faultload.senders(n);
    for &p in &senders {
        for _ in 0..4 {
            sim.schedule(0, p, Action::AbBroadcast(payload.clone()));
        }
    }
    sim.run();
    let observer = sim.observer();
    let snap = sim.metrics_snapshot(observer);
    let delivered = sim
        .stack(observer)
        .ab_stats(0)
        .map(|s| s.delivered)
        .unwrap_or(0);
    assert_eq!(
        delivered,
        4 * senders.len() as u64,
        "traced run did not deliver the full burst"
    );
    std::fs::write(path, ritas_metrics::spans_to_jsonl(&snap.spans))
        .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    eprintln!(
        "span dump written to {path} ({} spans from traced observer {observer})",
        snap.spans.len()
    );
}

/// Runs one dedicated simulated burst under `faultload` and writes
/// **every** process's span tree as `{prefix}-{p}.jsonl` — the n-file
/// input of `ritas-trace --cluster`, whose cross-replica correlation
/// needs each replica's private view of the same instances. Same
/// ambient-registry caveat as [`write_span_dump`].
///
/// # Panics
///
/// Panics when a path is not writable or the traced run fails to
/// deliver (developer-facing binaries).
pub fn write_cluster_span_dumps(prefix: &str, seed: u64, faultload: Faultload) {
    use ritas_sim::cluster::{Action, SimCluster, SimConfig};

    let config = SimConfig::paper_testbed(seed).with_faultload(faultload);
    let n = config.n;
    let mut sim = SimCluster::new(config);
    let payload = bytes::Bytes::from(vec![0x5a; 100]);
    let senders = faultload.senders(n);
    for &p in &senders {
        for _ in 0..4 {
            sim.schedule(0, p, Action::AbBroadcast(payload.clone()));
        }
    }
    sim.run();
    let observer = sim.observer();
    let delivered = sim
        .stack(observer)
        .ab_stats(0)
        .map(|s| s.delivered)
        .unwrap_or(0);
    assert_eq!(
        delivered,
        4 * senders.len() as u64,
        "traced cluster run did not deliver the full burst"
    );
    for p in 0..n {
        let path = format!("{prefix}-{p}.jsonl");
        let spans = sim.metrics_snapshot(p).spans;
        std::fs::write(&path, ritas_metrics::spans_to_jsonl(&spans))
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    }
    eprintln!(
        "cluster span dumps written to {prefix}-{{0..{}}}.jsonl",
        n - 1
    );
}

/// Collects every simulated process's protocol metrics over the whole
/// lifetime of a benchmark binary and writes one aggregated
/// [`ritas_metrics::MetricsSnapshot`] JSON dump at the end.
///
/// Construct it (from the `--metrics-json` argument) **before** running
/// any experiment: it installs the process-wide ambient registry that
/// every subsequently created `SimCluster` records into.
#[derive(Debug)]
pub struct MetricsDump {
    path: String,
    metrics: ritas_metrics::Metrics,
}

impl MetricsDump {
    /// Installs the ambient registry when `--metrics-json PATH` was
    /// given; `None` (no-op) otherwise.
    pub fn from_arg(path: Option<String>) -> Option<MetricsDump> {
        let path = path?;
        let metrics = ritas_metrics::Metrics::new();
        ritas_sim::cluster::install_ambient_metrics(metrics.clone());
        Some(MetricsDump { path, metrics })
    }

    /// Writes the aggregated snapshot as JSON.
    ///
    /// # Panics
    ///
    /// Panics when the path is not writable (developer-facing binaries).
    pub fn write(self) {
        let snap = self.metrics.snapshot();
        if let Some(h) = snap.histogram("ab_latency_ns").filter(|h| h.count > 0) {
            eprintln!(
                "a-deliver latency across all runs: p50 {:.2} ms, p99 {:.2} ms over {} sample(s)",
                h.percentile(50.0) as f64 / 1e6,
                h.percentile(99.0) as f64 / 1e6,
                h.count
            );
        }
        std::fs::write(&self.path, snap.to_json())
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", self.path));
        eprintln!("metrics snapshot written to {}", self.path);
    }
}

/// The burst sizes used by the figure binaries (paper: up to 1000).
pub fn default_bursts() -> Vec<usize> {
    vec![4, 8, 16, 40, 100, 250, 500, 1000]
}

/// The message sizes of Figures 4–6.
pub fn default_msg_sizes() -> Vec<usize> {
    vec![10, 100, 1000, 10_000]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ritas_sim::harness::ProtocolUnderTest;

    #[test]
    fn table_rendering_includes_paper_columns() {
        let rows = vec![ritas_sim::harness::StackLatencyRow {
            protocol: ProtocolUnderTest::ReliableBroadcast,
            with_ipsec_us: 2000.0,
            without_ipsec_us: 1500.0,
        }];
        let s = render_table1(&rows);
        assert!(s.contains("Reliable Broadcast"));
        assert!(s.contains("2134")); // paper reference value
        assert!(s.contains("33%")); // measured overhead
    }

    #[test]
    fn defaults_are_sane() {
        assert!(default_bursts().contains(&1000));
        assert_eq!(default_msg_sizes().len(), 4);
    }
}
