//! Regenerates **Table 1** of the paper: average latency for isolated
//! executions of each protocol, with and without the channel
//! authentication ("IPSec") layer, plus the overhead column.
//!
//! Usage: `cargo run -p ritas-bench --bin table1 [--samples N] [--seed S]
//! [--metrics-json PATH]`

use ritas_bench::{render_table1, MetricsDump};
use ritas_sim::harness::run_stack_latency;

fn main() {
    let mut samples = 20usize;
    let mut seed = 42u64;
    let mut metrics_json = None;
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--samples" => {
                samples = args[i + 1].parse().expect("numeric --samples");
                i += 2;
            }
            "--seed" => {
                seed = args[i + 1].parse().expect("numeric --seed");
                i += 2;
            }
            "--metrics-json" => {
                metrics_json = Some(args[i + 1].clone());
                i += 2;
            }
            other => panic!("unknown argument {other}"),
        }
    }
    let dump = MetricsDump::from_arg(metrics_json);

    eprintln!("Table 1: {samples} isolated executions per protocol per mode (seed {seed})");
    let rows = run_stack_latency(samples, seed);
    print!("{}", render_table1(&rows));
    println!();
    println!(
        "Interdependencies (paper §4.1): MVC/BC = {:.2} (paper ~1.8 w/), VC/MVC = {:.2} \
         (paper ~1.26), AB/MVC = {:.2} (paper ~1.45)",
        rows[3].with_ipsec_us / rows[2].with_ipsec_us,
        rows[4].with_ipsec_us / rows[3].with_ipsec_us,
        rows[5].with_ipsec_us / rows[3].with_ipsec_us,
    );
    if let Some(dump) = dump {
        dump.write();
    }
}
