//! **Ablation A1** (DESIGN.md): the transport used for binary consensus
//! step broadcasts.
//!
//! The paper (§2.4) describes binary consensus over "the underlying
//! reliable broadcast", yet reports one-round decisions as "three
//! communication steps" — suggesting an optimized single fan-out per
//! step protected by Bracha's validation rule. This ablation quantifies
//! the difference:
//!
//! * `ReliableBroadcast` — a full Bracha broadcast per step (safe against
//!   Byzantine equivocation inside a step);
//! * `PlainFanout` — one authenticated fan-out per step (crash-fault safe
//!   only; validation alone does not prevent equivocation splits).
//!
//! Usage: `cargo run --release -p ritas-bench --bin ablation_bc_transport
//! [--runs N] [--seed S]`

use ritas::bc::StepTransport;
use ritas::mvc::MvcConfig;
use ritas_bench::{parse_figure_args, MetricsDump};
use ritas_sim::harness::stack_latency::{measure_with_config, ProtocolUnderTest};
use ritas_sim::stats::mean;
use ritas_sim::SimConfig;

fn main() {
    let args = parse_figure_args();
    let dump = MetricsDump::from_arg(args.metrics_json.clone());
    let samples = args.runs.max(5);
    println!(
        "{:>4} {:>24} {:>14} {:>10}",
        "n", "step transport", "latency (us)", "vs rbc"
    );
    for n in [4usize, 7, 10] {
        let mut base = 0.0;
        for transport in [StepTransport::ReliableBroadcast, StepTransport::PlainFanout] {
            let us: Vec<f64> = (0..samples)
                .map(|i| {
                    let seed = args
                        .seed
                        .wrapping_add(i as u64 * 7919)
                        .wrapping_add(n as u64);
                    let config = SimConfig::paper_testbed(seed)
                        .with_n(n)
                        .with_mvc(MvcConfig {
                            bc_transport: transport,
                            ..MvcConfig::default()
                        });
                    measure_with_config(ProtocolUnderTest::BinaryConsensus, config, seed) as f64
                        / 1000.0
                })
                .collect();
            let m = mean(&us);
            if matches!(transport, StepTransport::ReliableBroadcast) {
                base = m;
            }
            println!(
                "{:>4} {:>24} {:>14.0} {:>9.2}x",
                n,
                format!("{transport:?}"),
                m,
                m / base
            );
        }
    }
    println!();
    println!(
        "note: PlainFanout tolerates crash faults only; the library default is ReliableBroadcast"
    );
    if let Some(dump) = dump {
        dump.write();
    }
}
