//! **bench_gate** — the CI perf-regression comparator for
//! `BENCH_service.json`.
//!
//! Compares a freshly measured loadgen report against the committed
//! baseline (`results/BENCH_service.baseline.json`) and exits non-zero
//! when steady-state throughput regressed or tail latency inflated
//! beyond tolerance:
//!
//! ```text
//! bench_gate <baseline.json> <current.json> \
//!     [--max-ops-drop 0.20] [--max-p99-rise 0.30] [--max-ttl-rise 0.50]
//! ```
//!
//! * ops/s may drop at most `max-ops-drop` (fraction) below baseline;
//! * p99 latency may rise at most `max-p99-rise` (fraction) above
//!   baseline;
//! * when **both** reports carry a positive `time_to_live_ms` (recovery
//!   and rotation episodes), it may rise at most `max-ttl-rise` above
//!   baseline — wipe-and-rejoin getting slower is a regression too.
//!   Reports without the field (plain throughput runs) skip this check;
//! * `duplicate_applies` must be 0 in the current report — a perf gate
//!   must never wave through a correctness regression.
//!
//! The parser is a deliberately tiny field extractor over the flat JSON
//! object loadgen emits (no nested objects, no arrays, no string
//! escapes), so the gate has zero dependencies and its logic is unit
//! tested offline.

use std::process::ExitCode;

/// Extracts the numeric value of `"key":<number>` from a flat JSON
/// object. Returns `None` when the key is absent or its value is not a
/// bare JSON number.
fn field(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let start = json.find(&needle)? + needle.len();
    let rest = &json[start..];
    let end = rest
        .find(|c: char| !matches!(c, '0'..='9' | '.' | '-' | '+' | 'e' | 'E'))
        .unwrap_or(rest.len());
    if end == 0 {
        return None;
    }
    rest[..end].parse().ok()
}

/// One parsed loadgen report: just the fields the gate judges.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Report {
    throughput_rps: f64,
    latency_p99_ns: f64,
    duplicate_applies: f64,
    /// Wipe-to-Live wall time of a recovery/rotation episode. `None` for
    /// plain throughput runs (and for `null`/never-reached sentinels —
    /// loadgen already exits nonzero on those).
    time_to_live_ms: Option<f64>,
}

#[derive(Debug, PartialEq)]
enum ParseError {
    Missing(&'static str),
}

impl core::fmt::Display for ParseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ParseError::Missing(k) => write!(f, "missing or non-numeric field {k:?}"),
        }
    }
}

fn parse_report(json: &str) -> Result<Report, ParseError> {
    Ok(Report {
        throughput_rps: field(json, "throughput_rps")
            .ok_or(ParseError::Missing("throughput_rps"))?,
        latency_p99_ns: field(json, "latency_p99_ns")
            .ok_or(ParseError::Missing("latency_p99_ns"))?,
        duplicate_applies: field(json, "duplicate_applies")
            .ok_or(ParseError::Missing("duplicate_applies"))?,
        time_to_live_ms: field(json, "time_to_live_ms").filter(|&v| v > 0.0),
    })
}

/// The gate verdict: every violated constraint, human-readable. Empty
/// means pass.
fn judge(
    baseline: &Report,
    current: &Report,
    max_ops_drop: f64,
    max_p99_rise: f64,
    max_ttl_rise: f64,
) -> Vec<String> {
    let mut violations = Vec::new();
    let ops_floor = baseline.throughput_rps * (1.0 - max_ops_drop);
    if current.throughput_rps < ops_floor {
        violations.push(format!(
            "throughput regressed: {:.1} ops/s < floor {:.1} ops/s \
             (baseline {:.1}, tolerance -{:.0}%)",
            current.throughput_rps,
            ops_floor,
            baseline.throughput_rps,
            max_ops_drop * 100.0
        ));
    }
    let p99_ceiling = baseline.latency_p99_ns * (1.0 + max_p99_rise);
    if current.latency_p99_ns > p99_ceiling {
        violations.push(format!(
            "p99 latency inflated: {:.2} ms > ceiling {:.2} ms \
             (baseline {:.2} ms, tolerance +{:.0}%)",
            current.latency_p99_ns / 1e6,
            p99_ceiling / 1e6,
            baseline.latency_p99_ns / 1e6,
            max_p99_rise * 100.0
        ));
    }
    if let (Some(base_ttl), Some(cur_ttl)) = (baseline.time_to_live_ms, current.time_to_live_ms) {
        let ttl_ceiling = base_ttl * (1.0 + max_ttl_rise);
        if cur_ttl > ttl_ceiling {
            violations.push(format!(
                "time-to-Live inflated: {cur_ttl:.0} ms > ceiling {ttl_ceiling:.0} ms \
                 (baseline {base_ttl:.0} ms, tolerance +{:.0}%)",
                max_ttl_rise * 100.0
            ));
        }
    }
    if current.duplicate_applies != 0.0 {
        violations.push(format!(
            "exactly-once violated: duplicate_applies = {}",
            current.duplicate_applies
        ));
    }
    violations
}

fn main() -> ExitCode {
    let mut paths = Vec::new();
    let mut max_ops_drop = 0.20;
    let mut max_p99_rise = 0.30;
    let mut max_ttl_rise = 0.50;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut val = |what: &str| -> f64 {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {what}"))
                .parse()
                .unwrap_or_else(|_| panic!("non-numeric value for {what}"))
        };
        match arg.as_str() {
            "--max-ops-drop" => max_ops_drop = val("--max-ops-drop"),
            "--max-p99-rise" => max_p99_rise = val("--max-p99-rise"),
            "--max-ttl-rise" => max_ttl_rise = val("--max-ttl-rise"),
            other => paths.push(other.to_string()),
        }
    }
    let [baseline_path, current_path] = paths.as_slice() else {
        eprintln!(
            "usage: bench_gate <baseline.json> <current.json> \
             [--max-ops-drop F] [--max-p99-rise F] [--max-ttl-rise F]"
        );
        return ExitCode::from(2);
    };
    let read = |path: &str| -> String {
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
    };
    let baseline = match parse_report(&read(baseline_path)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench_gate: baseline {baseline_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let current = match parse_report(&read(current_path)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench_gate: current {current_path}: {e}");
            return ExitCode::from(2);
        }
    };
    println!(
        "bench_gate: baseline {:.1} ops/s p99 {:.2} ms | current {:.1} ops/s p99 {:.2} ms",
        baseline.throughput_rps,
        baseline.latency_p99_ns / 1e6,
        current.throughput_rps,
        current.latency_p99_ns / 1e6,
    );
    let violations = judge(
        &baseline,
        &current,
        max_ops_drop,
        max_p99_rise,
        max_ttl_rise,
    );
    if violations.is_empty() {
        println!("bench_gate: PASS");
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("bench_gate: FAIL: {v}");
        }
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(ops: f64, p99: f64, dups: f64) -> Report {
        Report {
            throughput_rps: ops,
            latency_p99_ns: p99,
            duplicate_applies: dups,
            time_to_live_ms: None,
        }
    }

    fn report_ttl(ops: f64, p99: f64, dups: f64, ttl: f64) -> Report {
        Report {
            time_to_live_ms: Some(ttl),
            ..report(ops, p99, dups)
        }
    }

    #[test]
    fn field_extraction() {
        let json = r#"{"bench":"service_loadgen","throughput_rps":2816.4,
                       "latency_p99_ns":47700000,"duplicate_applies":0}"#;
        assert_eq!(field(json, "throughput_rps"), Some(2816.4));
        assert_eq!(field(json, "latency_p99_ns"), Some(47_700_000.0));
        assert_eq!(field(json, "duplicate_applies"), Some(0.0));
        assert_eq!(field(json, "absent"), None);
        // A non-numeric value must not parse as a number.
        assert_eq!(field(json, "bench"), None);
    }

    #[test]
    fn field_handles_scientific_and_negative() {
        assert_eq!(field(r#"{"x":1.5e3}"#, "x"), Some(1500.0));
        assert_eq!(field(r#"{"x":-2}"#, "x"), Some(-2.0));
    }

    #[test]
    fn parse_report_requires_all_fields() {
        let ok = r#"{"throughput_rps":100.0,"latency_p99_ns":5,"duplicate_applies":0}"#;
        assert!(parse_report(ok).is_ok());
        let missing = r#"{"throughput_rps":100.0,"duplicate_applies":0}"#;
        assert_eq!(
            parse_report(missing),
            Err(ParseError::Missing("latency_p99_ns"))
        );
    }

    #[test]
    fn gate_passes_within_tolerance() {
        let base = report(1000.0, 100e6, 0.0);
        // 15% ops drop and 25% p99 rise: inside the default tolerances.
        let cur = report(850.0, 125e6, 0.0);
        assert!(judge(&base, &cur, 0.20, 0.30, 0.50).is_empty());
    }

    #[test]
    fn gate_fails_on_ops_drop() {
        let base = report(1000.0, 100e6, 0.0);
        let cur = report(799.0, 100e6, 0.0);
        let v = judge(&base, &cur, 0.20, 0.30, 0.50);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("throughput regressed"), "{v:?}");
    }

    #[test]
    fn gate_fails_on_p99_rise() {
        let base = report(1000.0, 100e6, 0.0);
        let cur = report(1000.0, 131e6, 0.0);
        let v = judge(&base, &cur, 0.20, 0.30, 0.50);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("p99 latency inflated"), "{v:?}");
    }

    #[test]
    fn gate_fails_on_duplicate_applies() {
        let base = report(1000.0, 100e6, 0.0);
        let cur = report(5000.0, 10e6, 1.0);
        let v = judge(&base, &cur, 0.20, 0.30, 0.50);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("exactly-once violated"), "{v:?}");
    }

    #[test]
    fn gate_improvements_always_pass() {
        let base = report(1000.0, 100e6, 0.0);
        let cur = report(10_000.0, 10e6, 0.0);
        assert!(judge(&base, &cur, 0.20, 0.30, 0.50).is_empty());
    }

    #[test]
    fn gate_reports_every_violation() {
        let base = report(1000.0, 100e6, 0.0);
        let cur = report(1.0, 500e6, 2.0);
        assert_eq!(judge(&base, &cur, 0.20, 0.30, 0.50).len(), 3);
    }

    #[test]
    fn loadgen_shaped_report_roundtrips() {
        // The exact shape loadgen emits (single line, many fields).
        let json = "{\"bench\":\"service_loadgen\",\"n\":4,\"f\":1,\"clients\":32,\
                    \"requests_per_client\":50,\"warmup_per_client\":5,\"rate_rps\":0,\
                    \"value_size\":64,\"tcp\":false,\"chaos\":false,\"seed\":7,\
                    \"requests_ok\":1600,\"wall_ms\":500,\"throughput_rps\":3200.0,\
                    \"latency_p50_ns\":9000000,\"latency_p99_ns\":21000000,\
                    \"client_retries\":0,\"vote_failures\":0,\"dedup_hits\":12,\
                    \"applied_distinct\":1760,\"duplicate_applies\":0}";
        let r = parse_report(json).unwrap();
        assert_eq!(r.throughput_rps, 3200.0);
        assert_eq!(r.latency_p99_ns, 21_000_000.0);
        assert_eq!(r.duplicate_applies, 0.0);
        assert_eq!(r.time_to_live_ms, None);
    }

    #[test]
    fn ttl_parses_and_skips_sentinels() {
        let episode = r#"{"throughput_rps":100.0,"latency_p99_ns":5,
                          "duplicate_applies":0,"time_to_live_ms":350}"#;
        assert_eq!(parse_report(episode).unwrap().time_to_live_ms, Some(350.0));
        // `null` (plain run) and `-1` (never reached Live — loadgen
        // already exited nonzero) both mean "nothing to compare".
        let plain = r#"{"throughput_rps":100.0,"latency_p99_ns":5,
                        "duplicate_applies":0,"time_to_live_ms":null}"#;
        assert_eq!(parse_report(plain).unwrap().time_to_live_ms, None);
        let dead = r#"{"throughput_rps":100.0,"latency_p99_ns":5,
                       "duplicate_applies":0,"time_to_live_ms":-1}"#;
        assert_eq!(parse_report(dead).unwrap().time_to_live_ms, None);
    }

    #[test]
    fn gate_fails_on_ttl_rise() {
        let base = report_ttl(1000.0, 100e6, 0.0, 200.0);
        let cur = report_ttl(1000.0, 100e6, 0.0, 301.0);
        let v = judge(&base, &cur, 0.20, 0.30, 0.50);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("time-to-Live inflated"), "{v:?}");
        // Inside tolerance passes.
        let ok = report_ttl(1000.0, 100e6, 0.0, 299.0);
        assert!(judge(&base, &ok, 0.20, 0.30, 0.50).is_empty());
    }

    #[test]
    fn gate_skips_ttl_when_either_side_lacks_it() {
        // Old baseline without the field vs a new episode report (and
        // vice versa): backward compatible, no violation.
        let base = report(1000.0, 100e6, 0.0);
        let cur = report_ttl(1000.0, 100e6, 0.0, 10_000.0);
        assert!(judge(&base, &cur, 0.20, 0.30, 0.50).is_empty());
        assert!(judge(&cur, &base, 0.20, 0.30, 0.50).is_empty());
    }
}
