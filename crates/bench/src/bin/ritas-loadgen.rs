//! **ritas-loadgen** — the service-tier load generator that seeds the
//! bench trajectory for the client front-end.
//!
//! Spins up a full `n = 4, f = 1` replica group with a TCP service
//! front-end per replica, drives it with concurrent intrusion-tolerant
//! clients (`2f+1` fan-out, `f+1`-vote reply masking), and reports
//! throughput plus end-to-end client latency percentiles.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p ritas-bench --bin ritas-loadgen -- \
//!     [--clients N] [--requests M] [--warmup W] [--rate R]
//!     [--value-size B] [--tcp] [--chaos] [--seed S] [--json]
//! ```
//!
//! * `--clients` — concurrent closed-loop clients (default 4);
//! * `--requests` — steady-state requests per client (default 50);
//! * `--warmup` — warm-up requests per client excluded from every
//!   aggregate (default 5): connection setup, session establishment and
//!   first-ever AB instances are not steady state. All clients finish
//!   their warm-up and rendezvous on a barrier before the measured
//!   window opens;
//! * `--rate` — total open-loop request rate in req/s (0 = closed loop);
//! * `--value-size` — request payload bytes (default 64);
//! * `--tcp` — replica mesh over real TCP sessions (default: in-memory
//!   hub mesh with TCP only at the client edge);
//! * `--chaos` — implies `--tcp`; kills one replica↔replica socket
//!   mid-run and lets the session layer resume it (the CI smoke's
//!   fault);
//! * `--kill-replica N@T` — hub mesh only: `T` milliseconds into the
//!   measured window, fail-stop **and wipe** replica `N` (its state and
//!   front-end are destroyed), then rejoin it through snapshot transfer +
//!   Merkle anti-entropy while the load keeps running. The JSON report
//!   gains `time_to_live_ms` — wall time from the rejoin call to the
//!   replica reaching the `Live` recovery phase;
//! * `--rotate R` — hub mesh only, exclusive with the flags above: run
//!   `R` proactive-recovery rounds under sustained in-process load. The
//!   replicated rotation coordinator grants wipe slots one replica at a
//!   time; each granted victim is crashed, wiped and rejoined through
//!   state transfer while the other replicas keep serving. Emits the
//!   `BENCH_rotation.json` artifact: per-round `ttl_ms`, aggregate
//!   `time_to_live_ms`, `final_epoch` and the measured `max_non_live`
//!   and `duplicate_applies` invariants;
//! * `--json` — emit a JSON report on stdout (the `BENCH_service.json`
//!   artifact).
//!
//! The replicated state counts applies per `(client, seq)`, so the
//! report's `duplicate_applies` field is a *measured* exactly-once
//! check, not an assumption — it must be 0 under retries, failover and
//! chaos alike.

use bytes::Bytes;
use ritas::codec::{Reader, WireError, Writer};
use ritas::node::{Node, SessionConfig};
use ritas::recovery::scheduler::RotationConfig;
use ritas::recovery::{RecoveryConfig, SnapshotState};
use ritas::service::{CommandKind, ServiceConfig, ServiceError, ServiceReplica};
use ritas_crypto::ClientKeyDealer;
use ritas_metrics::Metrics;
use ritas_service::client::{ClientConfig, ServiceClient};
use ritas_service::server::{ServerConfig, ServiceServer};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Replicated loadgen state: the running counter clients read back, plus
/// the per-`(client, seq)` apply tally behind the exactly-once check.
#[derive(Default)]
struct LoadState {
    total: u64,
    applied: HashMap<(u64, u64), u64>,
}

fn load_apply(state: &mut LoadState, client: u64, cmd: &[u8]) -> Bytes {
    // Payload layout: 8-byte seq, then filler value bytes.
    let mut seq_bytes = [0u8; 8];
    seq_bytes.copy_from_slice(&cmd[..8]);
    let seq = u64::from_be_bytes(seq_bytes);
    *state.applied.entry((client, seq)).or_insert(0) += 1;
    state.total += 1;
    Bytes::from(state.total.to_be_bytes().to_vec())
}

fn load_query(state: &LoadState, _q: &[u8]) -> Bytes {
    Bytes::from(state.total.to_be_bytes().to_vec())
}

impl SnapshotState for LoadState {
    fn encode_snapshot(&self, w: &mut Writer) {
        w.u64(self.total);
        w.u64(self.applied.len() as u64);
        // HashMap iteration order is not canonical: sort for a
        // deterministic digest.
        let mut entries: Vec<_> = self.applied.iter().map(|(&k, &v)| (k, v)).collect();
        entries.sort_unstable();
        for ((client, seq), n) in entries {
            w.u64(client).u64(seq).u64(n);
        }
    }

    fn decode_snapshot(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let total = r.u64("load.total")?;
        let count = r.u64("load.count")?;
        let mut applied = HashMap::new();
        for _ in 0..count {
            let client = r.u64("load.client")?;
            let seq = r.u64("load.seq")?;
            let n = r.u64("load.n")?;
            applied.insert((client, seq), n);
        }
        Ok(LoadState { total, applied })
    }
}

/// Snapshot cadence for `--kill-replica` runs: frequent enough that a
/// short run has a snapshot to transfer, big enough chunks to keep the
/// Merkle tree shallow.
fn recovery_cfg() -> RecoveryConfig {
    RecoveryConfig {
        snapshot_every: 64,
        chunk_size: 1024,
        fill_batch: 256,
    }
}

struct Args {
    clients: usize,
    requests: usize,
    warmup: usize,
    rate: f64,
    value_size: usize,
    tcp: bool,
    chaos: bool,
    kill_replica: Option<(usize, u64)>,
    rotate: usize,
    seed: u64,
    json: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        clients: 4,
        requests: 50,
        warmup: 5,
        rate: 0.0,
        value_size: 64,
        tcp: false,
        chaos: false,
        kill_replica: None,
        rotate: 0,
        seed: 7,
        json: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |what: &str| -> String {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {what}"))
        };
        match flag.as_str() {
            "--clients" => args.clients = val("--clients").parse().expect("--clients"),
            "--requests" => args.requests = val("--requests").parse().expect("--requests"),
            "--warmup" => args.warmup = val("--warmup").parse().expect("--warmup"),
            "--rate" => args.rate = val("--rate").parse().expect("--rate"),
            "--value-size" => args.value_size = val("--value-size").parse().expect("--value-size"),
            "--seed" => args.seed = val("--seed").parse().expect("--seed"),
            "--tcp" => args.tcp = true,
            "--chaos" => {
                args.tcp = true;
                args.chaos = true;
            }
            "--kill-replica" => {
                let spec = val("--kill-replica");
                let (n, t) = spec
                    .split_once('@')
                    .unwrap_or_else(|| panic!("--kill-replica expects N@T_MS, got {spec:?}"));
                args.kill_replica = Some((
                    n.parse().expect("--kill-replica replica id"),
                    t.parse().expect("--kill-replica kill time (ms)"),
                ));
            }
            "--rotate" => args.rotate = val("--rotate").parse().expect("--rotate"),
            "--json" => args.json = true,
            other => panic!("unknown flag {other} (see the module docs for usage)"),
        }
    }
    args
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn main() {
    let args = parse_args();
    let n = 4;

    if args.rotate > 0 {
        assert!(
            !args.tcp && args.kill_replica.is_none(),
            "--rotate is its own episode on the in-memory hub mesh; \
             drop --tcp/--chaos/--kill-replica"
        );
        run_rotation_episode(&args);
        return;
    }

    let session = SessionConfig::new(n)
        .expect("n=4 is a valid group")
        .with_master_seed(args.seed);
    let key_seed = session.client_key_seed();
    let dealer = ClientKeyDealer::new(key_seed);

    if let Some((victim, _)) = args.kill_replica {
        assert!(
            !args.tcp,
            "--kill-replica needs the in-memory hub mesh (rejoin is not wired \
             into the TCP mesh); drop --tcp/--chaos"
        );
        assert!(victim < n, "--kill-replica id out of range (n = {n})");
    }
    let (nodes, chaos, hub) = if args.tcp {
        let (nodes, handles) =
            Node::tcp_cluster_with_chaos(session.clone(), Duration::from_secs(10))
                .expect("tcp mesh");
        (nodes, Some(handles), None)
    } else if args.kill_replica.is_some() {
        let (nodes, hub) = Node::cluster_with_hub(&session).expect("hub mesh");
        (nodes, None, Some(hub))
    } else {
        (
            Node::cluster(session.clone()).expect("hub mesh"),
            None,
            None,
        )
    };

    let mut servers: Vec<ServiceServer<LoadState>> = nodes
        .into_iter()
        .map(|node| {
            // A --kill-replica run needs the recovery pipeline on every
            // replica: survivors snapshot and serve state transfer.
            let replica = Arc::new(if args.kill_replica.is_some() {
                ServiceReplica::with_recovery(
                    node,
                    LoadState::default(),
                    ServiceConfig::default(),
                    recovery_cfg(),
                    load_apply,
                    load_query,
                )
                .expect("valid recovery config")
            } else {
                ServiceReplica::new(
                    node,
                    LoadState::default(),
                    ServiceConfig::default(),
                    load_apply,
                    load_query,
                )
            });
            // This is a throughput benchmark: spans and trace events are
            // allocation-heavy observability, and on a saturated machine
            // recording them costs ~30% of the measured capacity. All
            // counters (including the exactly-once audit) stay live.
            replica.metrics().set_tracing(false);
            ServiceServer::spawn(replica, dealer, ServerConfig::default()).expect("front-end")
        })
        .collect();
    let addrs: Vec<std::net::SocketAddr> = servers.iter().map(|s| s.addr()).collect();

    // One shared client-side metrics registry, so retries/vote-failures
    // aggregate across all clients.
    let client_metrics = Metrics::new();
    client_metrics.set_tracing(false);

    // Link chaos: kill one replica↔replica socket a moment into the run;
    // the session layer must resume it without the clients noticing more
    // than latency.
    if args.chaos {
        let handles = chaos.expect("chaos implies tcp");
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(400));
            let killed = handles[0].kill_link(1);
            eprintln!("chaos: killed link 0->1 = {killed}");
        });
    }

    let per_client_rate = if args.rate > 0.0 {
        args.rate / args.clients as f64
    } else {
        0.0
    };
    // All clients finish warm-up, then rendezvous here with the main
    // thread so the steady-state clock starts exactly when every client
    // enters its measured window — warm-up requests (connection setup,
    // session establishment, first AB instances) never count.
    let steady = Arc::new(std::sync::Barrier::new(args.clients + 1));
    let workers: Vec<_> = (0..args.clients)
        .map(|c| {
            let addrs = addrs.clone();
            let metrics = client_metrics.clone();
            let requests = args.requests;
            let warmup = args.warmup;
            let value_size = args.value_size;
            let steady = Arc::clone(&steady);
            std::thread::spawn(move || {
                let mut client = ServiceClient::new(
                    1000 + c as u64,
                    addrs,
                    ClientConfig {
                        key_seed,
                        metrics,
                        ..ClientConfig::default()
                    },
                );
                let mut latencies = Vec::with_capacity(requests);
                let mut ok = 0usize;
                let pace = if per_client_rate > 0.0 {
                    Some(Duration::from_secs_f64(1.0 / per_client_rate))
                } else {
                    None
                };
                for i in 0..warmup {
                    // Warm-up leg: same request shape, aggregates ignored.
                    let mut payload = vec![0u8; 8 + value_size];
                    payload[..8].copy_from_slice(&(i as u64 + 1).to_be_bytes());
                    let _ = client.invoke(Bytes::from(payload));
                }
                steady.wait();
                for i in 0..requests {
                    // seq occupies the first 8 payload bytes; the client
                    // library allocates the session seq itself, so mirror
                    // it: our per-client request index is unique too
                    // (continuing past the warm-up leg).
                    let mut payload = vec![0u8; 8 + value_size];
                    payload[..8].copy_from_slice(&((warmup + i) as u64 + 1).to_be_bytes());
                    let t0 = Instant::now();
                    if client.invoke(Bytes::from(payload)).is_ok() {
                        ok += 1;
                        latencies.push(t0.elapsed().as_nanos() as u64);
                    }
                    if let Some(gap) = pace {
                        let next = t0 + gap;
                        if let Some(sleep) = next.checked_duration_since(Instant::now()) {
                            std::thread::sleep(sleep);
                        }
                    }
                }
                client.shutdown();
                (ok, latencies)
            })
        })
        .collect();

    steady.wait();
    let started = Instant::now();

    // The recovery episode: fail-stop + wipe the victim T ms into the
    // measured window, then rejoin it via state transfer while the
    // clients keep hammering the survivors. A watcher thread stamps the
    // moment the rejoiner reaches Live so worker joins don't skew the
    // time-to-Live measurement.
    let mut rejoined: Option<Arc<ServiceReplica<LoadState>>> = None;
    let mut live_watcher = None;
    if let Some((victim, at_ms)) = args.kill_replica {
        let hub = hub.as_ref().expect("kill-replica runs on the hub mesh");
        std::thread::sleep(Duration::from_millis(at_ms));
        eprintln!("kill-replica: crashing and wiping replica {victim}");
        hub.crash(victim);
        let mut s = servers.remove(victim);
        s.replica().shutdown();
        s.shutdown();
        drop(s);
        let rejoin_started = Instant::now();
        let node = Node::rejoin(&session, hub, victim).expect("rejoin node");
        let m = node.metrics().clone();
        m.set_tracing(false);
        let replica = Arc::new(
            ServiceReplica::rejoin(
                node,
                LoadState::default(),
                ServiceConfig::default(),
                recovery_cfg(),
                None,
                load_apply,
                load_query,
            )
            .expect("valid recovery config"),
        );
        live_watcher = Some(std::thread::spawn(move || {
            let deadline = Instant::now() + Duration::from_secs(120);
            while m.recovery_completed_total.get() != 1 {
                if Instant::now() > deadline {
                    return None;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            Some(rejoin_started.elapsed())
        }));
        rejoined = Some(replica);
    }

    let mut ok_total = 0usize;
    let mut latencies: Vec<u64> = Vec::new();
    for w in workers {
        let (ok, mut lat) = w.join().expect("client worker");
        ok_total += ok;
        latencies.append(&mut lat);
    }
    let wall = started.elapsed();

    // Settle the tail, then audit the replicated exactly-once tally on
    // every replica. The tally covers warm-up requests too: exactly-once
    // is a correctness property of the whole run, not just the measured
    // window.
    let time_to_live = live_watcher.map(|w| w.join().expect("live watcher"));
    let mut duplicate_applies = 0u64;
    let mut applied_distinct = 0u64;
    let replicas: Vec<Arc<ServiceReplica<LoadState>>> = servers
        .iter()
        .map(|s| Arc::clone(s.replica()))
        .chain(rejoined.iter().cloned())
        .collect();
    for r in &replicas {
        let _ = r.barrier();
    }
    for (i, r) in replicas.iter().enumerate() {
        let (dups, distinct) = r.read_state(|st| {
            (
                st.applied.values().map(|c| c - 1).sum::<u64>(),
                st.applied.len() as u64,
            )
        });
        if i == 0 {
            applied_distinct = distinct;
        }
        duplicate_applies += dups;
    }

    latencies.sort_unstable();
    let p50 = percentile(&latencies, 0.50);
    let p99 = percentile(&latencies, 0.99);
    let throughput = ok_total as f64 / wall.as_secs_f64();
    let snap = client_metrics.snapshot();
    let retries = snap
        .counters
        .get("service_client_retries")
        .copied()
        .unwrap_or(0);
    let vote_failures = snap
        .counters
        .get("service_client_vote_failures")
        .copied()
        .unwrap_or(0);
    let dedup_hits: u64 = replicas
        .iter()
        .map(|r| r.metrics().service_dedup_hits.get())
        .sum();

    if args.json {
        println!(
            "{{\"bench\":\"service_loadgen\",\"n\":{n},\"f\":1,\"clients\":{},\"requests_per_client\":{},\
             \"warmup_per_client\":{},\
             \"rate_rps\":{},\"value_size\":{},\"tcp\":{},\"chaos\":{},\"seed\":{},\
             \"requests_ok\":{ok_total},\"wall_ms\":{},\"throughput_rps\":{:.1},\
             \"latency_p50_ns\":{p50},\"latency_p99_ns\":{p99},\
             \"client_retries\":{retries},\"vote_failures\":{vote_failures},\
             \"dedup_hits\":{dedup_hits},\"applied_distinct\":{applied_distinct},\
             \"duplicate_applies\":{duplicate_applies},\
             \"kill_replica\":{},\"time_to_live_ms\":{}}}",
            args.clients,
            args.requests,
            args.warmup,
            args.rate,
            args.value_size,
            args.tcp,
            args.chaos,
            args.seed,
            wall.as_millis(),
            throughput,
            match args.kill_replica {
                Some((v, t)) => format!("\"{v}@{t}\""),
                None => "null".to_string(),
            },
            match time_to_live {
                Some(Some(d)) => d.as_millis().to_string(),
                Some(None) => "-1".to_string(), // never reached Live
                None => "null".to_string(),
            },
        );
    } else {
        println!(
            "ritas-loadgen: n={n} f=1, {} clients x {} requests (+{} warm-up)",
            args.clients, args.requests, args.warmup
        );
        println!(
            "  mesh:               {}",
            if args.tcp { "tcp" } else { "in-memory hub" }
        );
        println!(
            "  ok/total:           {ok_total}/{}",
            args.clients * args.requests
        );
        println!("  wall:               {:.2} s", wall.as_secs_f64());
        println!("  throughput:         {throughput:.1} req/s");
        println!("  e2e p50:            {:.2} ms", p50 as f64 / 1e6);
        println!("  e2e p99:            {:.2} ms", p99 as f64 / 1e6);
        println!("  client retries:     {retries}");
        println!("  vote failures:      {vote_failures}");
        println!("  server dedup hits:  {dedup_hits}");
        println!("  duplicate applies:  {duplicate_applies} (exactly-once check)");
        if let Some((v, t)) = args.kill_replica {
            match time_to_live {
                Some(Some(d)) => println!(
                    "  time to Live:       {:.2} s (replica {v} wiped at +{t} ms)",
                    d.as_secs_f64()
                ),
                _ => println!("  time to Live:       NEVER (replica {v} wiped at +{t} ms)"),
            }
        }
    }

    let mut failures = Vec::new();
    if duplicate_applies != 0 {
        failures.push(format!(
            "{duplicate_applies} duplicate applies (exactly-once violated)"
        ));
    }
    if ok_total == 0 {
        failures.push("no request succeeded".to_string());
    }
    if matches!(time_to_live, Some(None)) {
        failures.push("wiped replica never reached Live".to_string());
    }
    drop(replicas);
    if let Some(r) = &rejoined {
        r.shutdown();
    }
    for mut s in servers {
        s.replica().shutdown();
        s.shutdown();
    }
    if !failures.is_empty() {
        eprintln!("FAIL: {}", failures.join("; "));
        std::process::exit(1);
    }
}

/// Rotation tuning for `--rotate` runs: a short quiet period keeps the
/// episode brisk; the defer threshold is high enough that a clean run
/// never defers (a deferral here would mask a scheduling bug, and the
/// report surfaces the count so the gate can see it).
fn rotation_cfg() -> RotationConfig {
    RotationConfig {
        period: Duration::from_millis(250),
        abort_after: Duration::from_secs(60),
        suspicion_defer_threshold: 1 << 20,
    }
}

/// Live replica slots for the rotation episode: `None` marks "currently
/// wiped and rejoining".
type RotationSlots = Arc<Mutex<Vec<Option<Arc<ServiceReplica<LoadState>>>>>>;

/// Arms the rotation driver on `replica`: when the replicated scheduler
/// grants this replica's wipe slot, the driver fires `on_wipe` and the
/// orchestrator thread in [`run_rotation_episode`] performs the actual
/// crash/wipe/rejoin (in production the callback would exec into a clean
/// binary; a bench process stands in for itself).
fn arm_rotation(
    replica: &Arc<ServiceReplica<LoadState>>,
    id: usize,
    wipe_tx: &mpsc::Sender<(usize, u64)>,
) {
    let tx = wipe_tx.clone();
    replica.start_rotation(rotation_cfg(), move |epoch| {
        let _ = tx.send((id, epoch));
    });
}

/// The `--rotate R` episode: proactive recovery of `R` replicas, one
/// ordered slot at a time, under sustained load.
///
/// No TCP edge here: the service front-end binds ephemeral ports, so a
/// fully rotated group could never resurrect a client-visible address.
/// Load is driven in-process through [`ServiceReplica::submit`] instead —
/// the write path under test (session dedup, atomic broadcast, apply) is
/// identical either way.
fn run_rotation_episode(args: &Args) {
    let n = 4usize;
    let session = SessionConfig::new(n)
        .expect("n=4 is a valid group")
        .with_master_seed(args.seed);
    let (nodes, hub) = Node::cluster_with_hub(&session).expect("hub mesh");
    let (wipe_tx, wipe_rx) = mpsc::channel::<(usize, u64)>();

    // Load workers route around a wiped slot's hole; the monitor thread
    // measures that it is never wider than one replica — the scheduler's
    // core invariant, checked empirically rather than assumed.
    let slots: RotationSlots = Arc::new(Mutex::new(Vec::with_capacity(n)));
    {
        let mut s = slots.lock().unwrap();
        for (i, node) in nodes.into_iter().enumerate() {
            let replica = Arc::new(
                ServiceReplica::with_recovery(
                    node,
                    LoadState::default(),
                    ServiceConfig::default(),
                    recovery_cfg(),
                    load_apply,
                    load_query,
                )
                .expect("valid recovery config"),
            );
            replica.metrics().set_tracing(false);
            arm_rotation(&replica, i, &wipe_tx);
            s.push(Some(replica));
        }
    }

    let stop = Arc::new(AtomicBool::new(false));
    let monitor = {
        let slots = Arc::clone(&slots);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut max_non_live = 0usize;
            while !stop.load(Ordering::Relaxed) {
                let holes = slots.lock().unwrap().iter().filter(|s| s.is_none()).count();
                max_non_live = max_non_live.max(holes);
                std::thread::sleep(Duration::from_millis(2));
            }
            max_non_live
        })
    };

    let started = Instant::now();
    let workers: Vec<_> = (0..args.clients)
        .map(|c| {
            let slots = Arc::clone(&slots);
            let stop = Arc::clone(&stop);
            let value_size = args.value_size;
            std::thread::spawn(move || {
                let client = 1000 + c as u64;
                let mut seq = 0u64;
                let mut ok = 0u64;
                let mut latencies: Vec<u64> = Vec::new();
                let mut rr = c; // stagger round-robin starting points
                while !stop.load(Ordering::Relaxed) {
                    seq += 1;
                    let mut payload = vec![0u8; 8 + value_size];
                    payload[..8].copy_from_slice(&seq.to_be_bytes());
                    let payload = Bytes::from(payload);
                    // Retry each seq until it lands: the *replicated*
                    // session table makes retried (client, seq) pairs
                    // exactly-once, which is what the audit below
                    // measures across every wipe/rejoin boundary.
                    let t0 = Instant::now();
                    loop {
                        if stop.load(Ordering::Relaxed) {
                            return (ok, latencies);
                        }
                        rr += 1;
                        let replica = {
                            let s = slots.lock().unwrap();
                            s[rr % s.len()].clone()
                        };
                        let Some(r) = replica else {
                            std::thread::sleep(Duration::from_millis(2));
                            continue;
                        };
                        match r.submit(
                            client,
                            seq,
                            CommandKind::Apply,
                            payload.clone(),
                            Duration::from_secs(5),
                        ) {
                            Ok(_) => {
                                ok += 1;
                                latencies.push(t0.elapsed().as_nanos() as u64);
                                break;
                            }
                            // Stale means an earlier attempt applied and
                            // the cached reply already aged out: the
                            // write landed exactly once.
                            Err(ServiceError::Stale) => {
                                ok += 1;
                                break;
                            }
                            Err(_) => std::thread::sleep(Duration::from_millis(5)),
                        }
                    }
                }
                (ok, latencies)
            })
        })
        .collect();

    // Orchestrate the rounds in lock-step with the replicated log: a
    // slot grant arrives on the channel, the victim is crashed and
    // wiped, the rejoiner broadcasts its own WipeComplete when it
    // reaches Live, and only then does the coordinator open the next
    // slot — so waiting for Live here never races the next grant.
    let mut rounds: Vec<(usize, u64, u128)> = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    while rounds.len() < args.rotate {
        let (victim, epoch) = match wipe_rx.recv_timeout(Duration::from_secs(120)) {
            Ok(grant) => grant,
            Err(_) => {
                failures.push(format!(
                    "rotation stalled: no wipe grant within 120 s after round {}",
                    rounds.len()
                ));
                break;
            }
        };
        eprintln!("rotation: slot granted, wiping replica {victim} (epoch {epoch})");
        let old = slots.lock().unwrap()[victim]
            .take()
            .expect("granted replica is live");
        hub.crash(victim);
        old.shutdown();
        drop(old);
        let t0 = Instant::now();
        let node = Node::rejoin(&session, &hub, victim).expect("rejoin node");
        let m = node.metrics().clone();
        m.set_tracing(false);
        let replica = Arc::new(
            ServiceReplica::rejoin(
                node,
                LoadState::default(),
                ServiceConfig::default(),
                recovery_cfg(),
                None,
                load_apply,
                load_query,
            )
            .expect("valid recovery config"),
        );
        let deadline = Instant::now() + Duration::from_secs(120);
        while m.recovery_completed_total.get() != 1 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        if m.recovery_completed_total.get() != 1 {
            failures.push(format!(
                "replica {victim} never reached Live after its wipe"
            ));
            break;
        }
        let ttl_ms = t0.elapsed().as_millis();
        eprintln!("rotation: replica {victim} back to Live in {ttl_ms} ms");
        arm_rotation(&replica, victim, &wipe_tx);
        slots.lock().unwrap()[victim] = Some(replica);
        rounds.push((victim, epoch, ttl_ms));
    }

    stop.store(true, Ordering::Relaxed);
    let mut ok_total = 0u64;
    let mut latencies: Vec<u64> = Vec::new();
    for w in workers {
        let (ok, mut lat) = w.join().expect("load worker");
        ok_total += ok;
        latencies.append(&mut lat);
    }
    let wall = started.elapsed();
    let max_non_live = monitor.join().expect("monitor thread");

    // Exactly-once audit plus scheduler/epoch bookkeeping across the
    // whole group (every replica, including each rejoiner).
    // A failed round leaves its slot vacant; audit the replicas that are
    // live (the failure is already recorded above and fails the run).
    let replicas: Vec<Arc<ServiceReplica<LoadState>>> = slots
        .lock()
        .unwrap()
        .iter()
        .filter_map(|s| s.as_ref().map(Arc::clone))
        .collect();
    for r in &replicas {
        let _ = r.barrier();
    }
    let mut duplicate_applies = 0u64;
    let mut applied_distinct = 0u64;
    for (i, r) in replicas.iter().enumerate() {
        let (dups, distinct) = r.read_state(|st| {
            (
                st.applied.values().map(|c| c - 1).sum::<u64>(),
                st.applied.len() as u64,
            )
        });
        if i == 0 {
            applied_distinct = distinct;
        }
        duplicate_applies += dups;
    }
    let rot = replicas[0]
        .rotation_state()
        .expect("recovery-enabled replicas track rotation state");
    let key_epochs: Vec<u64> = replicas.iter().map(|r| r.key_epoch()).collect();
    let epochs_adopted: u64 = replicas
        .iter()
        .map(|r| r.metrics().transport_epoch_adopted.get())
        .sum();

    latencies.sort_unstable();
    let p50 = percentile(&latencies, 0.50);
    let p99 = percentile(&latencies, 0.99);
    let throughput = ok_total as f64 / wall.as_secs_f64();
    let mean_ttl = if rounds.is_empty() {
        0
    } else {
        rounds.iter().map(|r| r.2).sum::<u128>() / rounds.len() as u128
    };

    if duplicate_applies != 0 {
        failures.push(format!(
            "{duplicate_applies} duplicate applies (exactly-once violated)"
        ));
    }
    if ok_total == 0 {
        failures.push("no request succeeded".to_string());
    }
    if max_non_live > 1 {
        failures.push(format!(
            "{max_non_live} replicas were non-Live at once (rotation overlap)"
        ));
    }
    if rot.epoch < rounds.len() as u64 {
        failures.push(format!(
            "epoch {} did not keep pace with {} completed rounds",
            rot.epoch,
            rounds.len()
        ));
    }
    // Post-rotation traffic must be sealed under refreshed keys on every
    // replica: each completed round advanced the epoch at schedule time,
    // so after the barrier no transport may still seal below the round
    // count. (No exact-equality check: the next round's grant may already
    // be in flight when we sample.)
    if key_epochs.iter().any(|&e| e < rounds.len() as u64) {
        failures.push(format!(
            "transport epochs {key_epochs:?} lag the {} completed rounds",
            rounds.len()
        ));
    }

    if args.json {
        let detail: Vec<String> = rounds
            .iter()
            .map(|(v, e, t)| format!("{{\"victim\":{v},\"epoch\":{e},\"ttl_ms\":{t}}}"))
            .collect();
        println!(
            "{{\"bench\":\"rotation\",\"n\":{n},\"f\":1,\"clients\":{},\"rounds\":{},\
             \"seed\":{},\"requests_ok\":{ok_total},\"wall_ms\":{},\
             \"throughput_rps\":{throughput:.1},\
             \"latency_p50_ns\":{p50},\"latency_p99_ns\":{p99},\
             \"applied_distinct\":{applied_distinct},\
             \"duplicate_applies\":{duplicate_applies},\
             \"time_to_live_ms\":{mean_ttl},\"max_non_live\":{max_non_live},\
             \"final_epoch\":{},\"rounds_completed\":{},\"deferrals\":{},\
             \"epochs_adopted\":{epochs_adopted},\
             \"rounds_detail\":[{}]}}",
            args.clients,
            rounds.len(),
            args.seed,
            wall.as_millis(),
            rot.epoch,
            rot.rounds_completed,
            rot.deferrals,
            detail.join(","),
        );
    } else {
        println!(
            "ritas-loadgen --rotate: n={n} f=1, {} rounds, {} in-process clients",
            rounds.len(),
            args.clients
        );
        println!("  wall:               {:.2} s", wall.as_secs_f64());
        println!("  throughput:         {throughput:.1} req/s");
        println!("  e2e p50:            {:.2} ms", p50 as f64 / 1e6);
        println!("  e2e p99:            {:.2} ms", p99 as f64 / 1e6);
        println!("  mean time to Live:  {mean_ttl} ms");
        println!("  max non-Live:       {max_non_live} (must be <= 1)");
        println!(
            "  final epoch:        {} ({} rounds, {} deferrals)",
            rot.epoch, rot.rounds_completed, rot.deferrals
        );
        println!("  duplicate applies:  {duplicate_applies} (exactly-once check)");
        for (v, e, t) in &rounds {
            println!("    round: replica {v} epoch {e} time-to-Live {t} ms");
        }
    }

    for r in &replicas {
        r.shutdown();
    }
    if !failures.is_empty() {
        eprintln!("FAIL: {}", failures.join("; "));
        std::process::exit(1);
    }
}
