//! Regenerates **Figure 6**: atomic broadcast burst latency and
//! throughput with the Byzantine faultload — one process permanently
//! attacks the consensus layers (always proposes 0 in binary consensus,
//! proposes ⊥ in the multi-valued consensus INIT and VECT messages).
//!
//! The expected outcome (paper §4.2): performance "basically immune" —
//! the curves coincide with the failure-free ones, and every consensus
//! still decides in one round.
//!
//! Usage: `cargo run --release -p ritas-bench --bin fig6_byzantine
//! [--runs N] [--seed S] [--quick] [--faultload SPEC]`

use ritas_bench::{
    default_bursts, default_msg_sizes, parse_figure_args, render_burst_series, MetricsDump,
    PAPER_FIG6_BYZANTINE,
};
use ritas_sim::harness::run_ab_burst;
use ritas_sim::Faultload;

fn main() {
    let args = parse_figure_args();
    let faultload = args
        .faultload
        .unwrap_or(Faultload::Byzantine { attacker: 3 });
    if let Some(path) = &args.span_json {
        ritas_bench::write_span_dump(path, args.seed, faultload);
    }
    let dump = MetricsDump::from_arg(args.metrics_json.clone());
    let bursts = if args.quick {
        vec![4, 16, 100]
    } else {
        default_bursts()
    };
    let sizes = if args.quick {
        vec![10, 1000]
    } else {
        default_msg_sizes()
    };
    eprintln!(
        "Figure 6 (Byzantine): {} runs per point, seed {}",
        args.runs, args.seed
    );
    let series = run_ab_burst(faultload, &sizes, &bursts, args.runs, args.seed);
    print!("{}", render_burst_series(&series, &PAPER_FIG6_BYZANTINE));
    if let Some(dump) = dump {
        dump.write();
    }
}
