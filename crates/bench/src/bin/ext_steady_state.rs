//! **Extension X7b**: open-loop (steady-state) load on atomic broadcast.
//!
//! The paper's Figures 4–6 are closed-loop bursts; real services see a
//! continuous arrival rate. This sweep offers messages at fixed rates
//! around the measured `T_max` plateau (~1000 msg/s for 10-byte messages
//! in our calibration) and reports the delivery-latency distribution:
//! flat below saturation, exploding above — the queueing knee that tells
//! a deployer the service's safe operating region.
//!
//! Usage: `cargo run --release -p ritas-bench --bin ext_steady_state
//! [--seed S]`

use ritas_bench::{parse_figure_args, MetricsDump};
use ritas_sim::harness::run_steady_state;

fn main() {
    let args = parse_figure_args();
    let dump = MetricsDump::from_arg(args.metrics_json.clone());
    let window_ms = if args.quick { 80 } else { 200 };
    println!(
        "{:>14} {:>10} {:>12} {:>14} {:>14}",
        "rate (msg/s)", "offered", "delivered", "mean lat (ms)", "p99 lat (ms)"
    );
    for rate in [100.0, 300.0, 600.0, 900.0, 1200.0, 1800.0, 3000.0] {
        let p = run_steady_state(rate, window_ms, args.seed);
        println!(
            "{:>14.0} {:>10} {:>12} {:>14.1} {:>14.1}",
            p.offered_rate, p.offered, p.delivered, p.mean_latency_ms, p.p99_latency_ms
        );
    }
    println!();
    println!(
        "latency stays near the isolated-instance floor below the Figure-4 plateau\n\
         (~1000 msg/s at this calibration) and grows without bound past it."
    );
    if let Some(dump) = dump {
        dump.write();
    }
}
