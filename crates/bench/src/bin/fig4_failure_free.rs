//! Regenerates **Figure 4**: atomic broadcast burst latency and
//! throughput with the failure-free faultload, one curve per message
//! size (10 B, 100 B, 1 KB, 10 KB).
//!
//! Usage: `cargo run --release -p ritas-bench --bin fig4_failure_free
//! [--runs N] [--seed S] [--quick] [--faultload SPEC]` — `--faultload`
//! (e.g. `link-flap:0-1:4000000:1000000`) overrides the default
//! failure-free load, making simulated link-chaos runs comparable with
//! the real TCP mesh's (experiment X7).

use ritas_bench::{
    default_bursts, default_msg_sizes, parse_figure_args, render_burst_series, MetricsDump,
    PAPER_FIG4_FAILURE_FREE,
};
use ritas_sim::harness::run_ab_burst;
use ritas_sim::Faultload;

fn main() {
    let args = parse_figure_args();
    let faultload = args.faultload.unwrap_or(Faultload::FailureFree);
    if let Some(path) = &args.span_json {
        ritas_bench::write_span_dump(path, args.seed, faultload);
    }
    if let Some(prefix) = &args.cluster_span_json {
        ritas_bench::write_cluster_span_dumps(prefix, args.seed, faultload);
    }
    let dump = MetricsDump::from_arg(args.metrics_json.clone());
    let bursts = if args.quick {
        vec![4, 16, 100]
    } else {
        default_bursts()
    };
    let sizes = if args.quick {
        vec![10, 1000]
    } else {
        default_msg_sizes()
    };
    eprintln!(
        "Figure 4 (failure-free): {} runs per point, seed {}",
        args.runs, args.seed
    );
    let series = run_ab_burst(faultload, &sizes, &bursts, args.runs, args.seed);
    print!("{}", render_burst_series(&series, &PAPER_FIG4_FAILURE_FREE));
    if let Some(dump) = dump {
        dump.write();
    }
}
