//! Regenerates **Figure 7**: the relative cost of agreement — the share
//! of all reliable/echo broadcasts spent on the agreement machinery,
//! versus burst size (failure-free, 10-byte messages).
//!
//! Expected shape (paper §4.2): "for small burst sizes, the cost of
//! agreement is high — in a burst of 4 messages it represents about 92%
//! of all broadcasts. This number, however, drops exponentially, reaching
//! as low as 2.4% for a burst size of 1000 messages."
//!
//! Usage: `cargo run --release -p ritas-bench --bin fig7_agreement_cost
//! [--seed S] [--quick]`

use ritas_bench::{parse_figure_args, MetricsDump};
use ritas_sim::harness::run_agreement_cost;

fn main() {
    let args = parse_figure_args();
    if let Some(path) = &args.span_json {
        let faultload = args.faultload.unwrap_or_default();
        ritas_bench::write_span_dump(path, args.seed, faultload);
    }
    let dump = MetricsDump::from_arg(args.metrics_json.clone());
    let bursts: Vec<usize> = if args.quick {
        vec![4, 40, 200]
    } else {
        vec![4, 8, 16, 40, 100, 250, 500, 1000]
    };
    eprintln!("Figure 7 (relative cost of agreement), seed {}", args.seed);
    let points = run_agreement_cost(&bursts, args.seed);
    println!(
        "{:>8} {:>12} {:>12} {:>12}",
        "burst", "payload", "agreement", "agreement %"
    );
    for p in &points {
        println!(
            "{:>8} {:>12} {:>12} {:>11.1}%",
            p.burst, p.payload_broadcasts, p.agreement_broadcasts, p.agreement_pct
        );
    }
    println!();
    println!("paper: ~92% at burst 4, dropping exponentially to 2.4% at burst 1000");
    if let Some(dump) = dump {
        dump.write();
    }
}
