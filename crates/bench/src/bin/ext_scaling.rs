//! **Extension X3**: scaling beyond the paper's `n = 4` testbed.
//!
//! The paper evaluates only the minimum resilient group. This experiment
//! sweeps `n ∈ {4, 7, 10, 13}` (f = 1, 2, 3, 4) and reports isolated
//! latencies of the key layers plus atomic broadcast burst throughput —
//! quantifying the O(n²)/O(n³) message-complexity growth a deployer
//! would face.
//!
//! Usage: `cargo run --release -p ritas-bench --bin ext_scaling
//! [--runs N] [--seed S]`

use bytes::Bytes;
use ritas_bench::{parse_figure_args, MetricsDump};
use ritas_sim::cluster::{Action, SimCluster, SimConfig};
use ritas_sim::harness::{measure_with_config, ProtocolUnderTest};
use ritas_sim::stats::mean;

fn burst_throughput(n: usize, burst: usize, seed: u64) -> f64 {
    let config = SimConfig::paper_testbed(seed).with_n(n);
    let mut sim = SimCluster::new(config);
    let share = burst / n;
    for p in 0..n {
        for _ in 0..share {
            sim.schedule(0, p, Action::AbBroadcast(Bytes::from_static(b"0123456789")));
        }
    }
    sim.run();
    let times = sim.ab_delivery_times(sim.observer());
    assert_eq!(times.len(), share * n);
    (share * n) as f64 / (*times.last().unwrap() as f64 / 1e9)
}

fn main() {
    let args = parse_figure_args();
    let dump = MetricsDump::from_arg(args.metrics_json.clone());
    let samples = args.runs.max(5);
    println!(
        "{:>4} {:>3} {:>10} {:>10} {:>10} {:>14}",
        "n", "f", "RB (us)", "BC (us)", "AB (us)", "AB tput (m/s)"
    );
    for n in [4usize, 7, 10, 13] {
        let lat = |protocol: ProtocolUnderTest| {
            let us: Vec<f64> = (0..samples)
                .map(|i| {
                    let seed = args.seed.wrapping_add(i as u64 * 2903 + n as u64);
                    let config = SimConfig::paper_testbed(seed).with_n(n);
                    measure_with_config(protocol, config, seed) as f64 / 1000.0
                })
                .collect();
            mean(&us)
        };
        let rb = lat(ProtocolUnderTest::ReliableBroadcast);
        let bc = lat(ProtocolUnderTest::BinaryConsensus);
        let ab = lat(ProtocolUnderTest::AtomicBroadcast);
        let tput = burst_throughput(n, 120, args.seed);
        println!(
            "{:>4} {:>3} {:>10.0} {:>10.0} {:>10.0} {:>14.0}",
            n,
            (n - 1) / 3,
            rb,
            bc,
            ab,
            tput
        );
    }
    println!();
    println!(
        "reliable broadcast grows ~O(n) in latency (fan-out serialization), binary\n\
         consensus ~O(n^2) (n broadcasts per step over n-sized RBCs), and burst\n\
         throughput falls accordingly — the cost of optimal resilience at scale."
    );
    if let Some(dump) = dump {
        dump.write();
    }
}
