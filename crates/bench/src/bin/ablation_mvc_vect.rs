//! **Ablation A2** (DESIGN.md): echo broadcast vs reliable broadcast for
//! the multi-valued consensus `VECT` messages.
//!
//! This is precisely the optimization the paper claims over the original
//! Correia et al. protocol ("the use of echo broadcast instead of
//! reliable broadcast at a specific point", §2.5). The ablation measures
//! what it buys at different group sizes.
//!
//! Usage: `cargo run --release -p ritas-bench --bin ablation_mvc_vect
//! [--runs N] [--seed S]`

use ritas::mvc::{MvcConfig, VectTransport};
use ritas_bench::{parse_figure_args, MetricsDump};
use ritas_sim::harness::stack_latency::{measure_with_config, ProtocolUnderTest};
use ritas_sim::stats::mean;
use ritas_sim::SimConfig;

fn main() {
    let args = parse_figure_args();
    let dump = MetricsDump::from_arg(args.metrics_json.clone());
    let samples = args.runs.max(5);
    println!(
        "{:>4} {:>18} {:>14} {:>12}",
        "n", "VECT transport", "latency (us)", "vs reliable"
    );
    for n in [4usize, 7, 10] {
        let mut reliable = 0.0;
        for transport in [VectTransport::Reliable, VectTransport::Echo] {
            let us: Vec<f64> = (0..samples)
                .map(|i| {
                    let seed = args
                        .seed
                        .wrapping_add(i as u64 * 104729)
                        .wrapping_add(n as u64);
                    let config = SimConfig::paper_testbed(seed)
                        .with_n(n)
                        .with_mvc(MvcConfig {
                            vect_transport: transport,
                            ..MvcConfig::default()
                        });
                    measure_with_config(ProtocolUnderTest::MultiValuedConsensus, config, seed)
                        as f64
                        / 1000.0
                })
                .collect();
            let m = mean(&us);
            if matches!(transport, VectTransport::Reliable) {
                reliable = m;
            }
            println!(
                "{:>4} {:>18} {:>14.0} {:>11.2}x",
                n,
                format!("{transport:?}"),
                m,
                m / reliable
            );
        }
    }
    println!();
    println!("paper's claim: echo broadcast is the cheaper transport for VECT");
    if let Some(dump) = dump {
        dump.write();
    }
}
