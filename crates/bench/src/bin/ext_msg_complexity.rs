//! **Extension X5**: message complexity of one isolated instance of each
//! protocol — measured point-to-point frames (including self-delivery)
//! against the closed-form counts for the broadcast primitives.
//!
//! Closed forms (n processes, failure-free, counting every point-to-point
//! frame incl. loopback):
//!
//! * reliable broadcast: `n + 2n²` (1 INIT fan-out + n ECHO + n READY);
//! * echo broadcast: `3n` (INIT fan-out + n VECT unicasts + n MAT
//!   unicasts);
//! * binary consensus (RBC per step): `3 · n · (n + 2n²)` per round, and
//!   a decided instance runs exactly one extra round so that laggards can
//!   finish — two rounds total in the failure-free unanimous case;
//! * the composites stack these plus their own traffic.
//!
//! Usage: `cargo run --release -p ritas-bench --bin ext_msg_complexity
//! [--metrics-json PATH]`

use bytes::Bytes;
use ritas::stack::Output;
use ritas::testing::Cluster;
use ritas_metrics::Metrics;

fn frames_for(metrics: &Metrics, run: impl FnOnce(&mut Cluster)) -> u64 {
    let mut cluster = Cluster::new(4, 1);
    for p in 0..4 {
        cluster.stack_mut(p).set_metrics(metrics.clone());
    }
    run(&mut cluster);
    cluster.run();
    cluster.delivered_frames()
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let metrics_json = argv
        .iter()
        .position(|a| a == "--metrics-json")
        .map(|i| argv[i + 1].clone());
    // One registry shared by all processes of all runs below.
    let metrics = Metrics::new();
    let n = 4u64;
    let rb_theory = n + 2 * n * n;
    let eb_theory = 3 * n;
    let bc_theory = 3 * n * rb_theory;

    let rb = frames_for(&metrics, |c| {
        let (_, s) = c
            .stack_mut(0)
            .rb_broadcast(Bytes::from_static(b"0123456789"));
        c.absorb(0, s);
    });
    let eb = frames_for(&metrics, |c| {
        let (_, s) = c
            .stack_mut(0)
            .eb_broadcast(Bytes::from_static(b"0123456789"));
        c.absorb(0, s);
    });
    let bc = frames_for(&metrics, |c| {
        for p in 0..4 {
            let s = c.stack_mut(p).bc_propose(1, true).unwrap();
            c.absorb(p, s);
        }
    });
    let mvc = frames_for(&metrics, |c| {
        for p in 0..4 {
            let s = c
                .stack_mut(p)
                .mvc_propose(1, Bytes::from_static(b"0123456789"))
                .unwrap();
            c.absorb(p, s);
        }
    });
    let vc = frames_for(&metrics, |c| {
        for p in 0..4 {
            let s = c
                .stack_mut(p)
                .vc_propose(1, Bytes::from_static(b"0123456789"))
                .unwrap();
            c.absorb(p, s);
        }
    });
    let ab = frames_for(&metrics, |c| {
        let (_, s) = c
            .stack_mut(0)
            .ab_broadcast(0, Bytes::from_static(b"0123456789"));
        c.absorb(0, s);
        // Verify the instance completes.
        c.run();
        assert!(c
            .outputs(0)
            .iter()
            .any(|o| matches!(o, Output::AbDelivered { .. })));
    });

    println!("message complexity per isolated instance, n = 4, failure-free\n");
    println!("{:<24} {:>10} {:>12}", "protocol", "frames", "closed form");
    println!("{:<24} {:>10} {:>12}", "Echo Broadcast", eb, eb_theory);
    println!("{:<24} {:>10} {:>12}", "Reliable Broadcast", rb, rb_theory);
    // A decided instance participates for one extra round (so laggards
    // can finish), hence exactly twice the single-round closed form.
    println!(
        "{:<24} {:>10} {:>12}",
        "Binary Consensus",
        bc,
        2 * bc_theory
    );
    println!("{:<24} {:>10} {:>12}", "Multi-valued Consensus", mvc, "-");
    println!("{:<24} {:>10} {:>12}", "Vector Consensus", vc, "-");
    println!("{:<24} {:>10} {:>12}", "Atomic Broadcast", ab, "-");
    println!();
    println!(
        "the O(n³)-per-round binary consensus dominates every composite — which is\n\
         why the paper's 'dilute agreements across a burst' observation (Figure 7)\n\
         matters so much in practice."
    );

    assert_eq!(rb, rb_theory, "reliable broadcast frame count drifted");
    assert_eq!(eb, eb_theory, "echo broadcast frame count drifted");
    assert_eq!(bc, 2 * bc_theory, "binary consensus frame count drifted");

    if let Some(path) = metrics_json {
        std::fs::write(&path, metrics.snapshot().to_json())
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        eprintln!("metrics snapshot written to {path}");
    }
}
