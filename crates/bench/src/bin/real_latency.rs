//! **Extension X7a**: real wall-clock latencies of the actual Rust
//! implementation — the Table 1 protocols measured end-to-end through
//! the threaded `Node` runtime, over the in-memory hub and over real
//! localhost TCP (both with real HMAC authentication).
//!
//! These are *our* numbers on *this* machine, not a model of the 2006
//! testbed: they show what the implementation costs today (typically two
//! to three orders of magnitude below the paper's hardware).
//!
//! Usage: `cargo run --release -p ritas-bench --bin real_latency
//! [--runs N] [--metrics-json PATH] [--span-json PATH]` — the first flag
//! writes node 0's runtime metrics snapshot from the final measured run
//! (real transport counters and a-deliver latency histogram included);
//! the second writes node 0's span dump (JSONL, one span per line) for
//! the `ritas-trace` viewer.

use bytes::Bytes;
use ritas::node::{Node, SessionConfig};
use ritas_metrics::MetricsSnapshot;
use ritas_sim::stats::mean;
use std::time::{Duration, Instant};

#[derive(Clone, Copy, Debug, PartialEq)]
enum Proto {
    Rb,
    Eb,
    Bc,
    Mvc,
    Vc,
    Ab,
}

impl Proto {
    const ALL: [Proto; 6] = [
        Proto::Eb,
        Proto::Rb,
        Proto::Bc,
        Proto::Mvc,
        Proto::Vc,
        Proto::Ab,
    ];

    fn label(self) -> &'static str {
        match self {
            Proto::Eb => "Echo Broadcast",
            Proto::Rb => "Reliable Broadcast",
            Proto::Bc => "Binary Consensus",
            Proto::Mvc => "Multi-valued Consensus",
            Proto::Vc => "Vector Consensus",
            Proto::Ab => "Atomic Broadcast",
        }
    }
}

/// Runs one isolated instance across a fresh 4-node cluster; returns the
/// wall-clock latency observed at node 0.
fn measure(proto: Proto, nodes: Vec<Node>, tag: u64) -> (Duration, MetricsSnapshot) {
    let payload = Bytes::from_static(b"0123456789");
    let start = Instant::now();
    let handles: Vec<_> = nodes
        .into_iter()
        .map(|node| {
            let payload = payload.clone();
            std::thread::spawn(move || {
                let me = node.id();
                match proto {
                    Proto::Rb => {
                        if me == 0 {
                            node.reliable_broadcast(payload).unwrap();
                        }
                        node.rb_recv().unwrap();
                    }
                    Proto::Eb => {
                        if me == 0 {
                            node.echo_broadcast(payload).unwrap();
                        }
                        node.eb_recv().unwrap();
                    }
                    Proto::Bc => {
                        node.binary_consensus(tag, true).unwrap();
                    }
                    Proto::Mvc => {
                        node.multi_valued_consensus(tag, payload).unwrap();
                    }
                    Proto::Vc => {
                        node.vector_consensus(tag, payload).unwrap();
                    }
                    Proto::Ab => {
                        if me == 0 {
                            node.atomic_broadcast(payload).unwrap();
                        }
                        node.atomic_recv().unwrap();
                    }
                }
                let elapsed = start.elapsed();
                let snap = (me == 0).then(|| node.metrics_snapshot());
                node.shutdown();
                (me, elapsed, snap)
            })
        })
        .collect();
    let mut at0 = Duration::ZERO;
    let mut snap0 = None;
    for h in handles {
        let (me, elapsed, snap) = h.join().unwrap();
        if me == 0 {
            at0 = elapsed;
            snap0 = snap;
        }
    }
    (at0, snap0.expect("node 0 always participates"))
}

fn main() {
    let mut runs = 10usize;
    let argv: Vec<String> = std::env::args().collect();
    if let Some(i) = argv.iter().position(|a| a == "--runs") {
        runs = argv[i + 1].parse().expect("numeric --runs");
    }
    let metrics_json = argv
        .iter()
        .position(|a| a == "--metrics-json")
        .map(|i| argv[i + 1].clone());
    let span_json = argv
        .iter()
        .position(|a| a == "--span-json")
        .map(|i| argv[i + 1].clone());
    let mut last_snapshot: Option<MetricsSnapshot> = None;

    println!(
        "{:<24} {:>16} {:>16}   (paper testbed w/: µs)",
        "protocol", "hub+auth (µs)", "tcp+auth (µs)"
    );
    let paper = [1724.0, 2134.0, 8922.0, 16359.0, 20673.0, 23744.0];
    for (idx, proto) in Proto::ALL.into_iter().enumerate() {
        let mut sample = |tcp: bool| -> f64 {
            let us: Vec<f64> = (0..runs)
                .map(|i| {
                    let config = SessionConfig::new(4)
                        .unwrap()
                        .with_master_seed(100 + i as u64);
                    let nodes = if tcp {
                        Node::tcp_cluster(config, Duration::from_secs(10)).unwrap()
                    } else {
                        Node::cluster(config).unwrap()
                    };
                    let (latency, snap) = measure(proto, nodes, 1);
                    last_snapshot = Some(snap);
                    latency.as_secs_f64() * 1e6
                })
                .collect();
            mean(&us)
        };
        let hub = sample(false);
        let tcp = sample(true);
        println!(
            "{:<24} {:>16.0} {:>16.0}   ({:.0})",
            proto.label(),
            hub,
            tcp,
            paper[idx]
        );
    }
    println!();
    if let Some(h) = last_snapshot
        .as_ref()
        .and_then(|s| s.histogram("ab_latency_ns"))
        .filter(|h| h.count > 0)
    {
        println!(
            "a-deliver latency (node 0, final tcp run): p50 {:.0} µs, p99 {:.0} µs over {} sample(s)",
            h.percentile(50.0) as f64 / 1e3,
            h.percentile(99.0) as f64 / 1e3,
            h.count
        );
    }
    println!(
        "same layer ordering as Table 1, roughly 3x faster than the paper's 500 MHz\n\
         testbed even over real sockets and with thread-per-node scheduling overhead;\n\
         the pure protocol compute is far cheaper still (see `cargo bench`)."
    );
    if let (Some(path), Some(snap)) = (metrics_json, last_snapshot.as_ref()) {
        std::fs::write(&path, snap.to_json())
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        eprintln!("metrics snapshot written to {path}");
    }
    // The last measured run is Atomic Broadcast over real TCP, so node
    // 0's spans carry wall-clock times from a live deployment transport.
    if let (Some(path), Some(snap)) = (span_json, last_snapshot.as_ref()) {
        std::fs::write(&path, ritas_metrics::spans_to_jsonl(&snap.spans))
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        eprintln!("span dump written to {path} ({} spans)", snap.spans.len());
    }
}
