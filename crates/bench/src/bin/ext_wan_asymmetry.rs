//! **Extension X2**: testing the paper's closing conjecture of §4.2 —
//!
//! > "In a more asymmetrical environment, like a WAN, it is not
//! > guaranteed that this result [all consensus deciding in one round]
//! > can be reproduced."
//!
//! We sweep per-link propagation asymmetry from the calibrated LAN
//! (uniform 35 µs) up to WAN-like spreads (tens of milliseconds,
//! different per link) and measure, over many seeded runs of an atomic
//! broadcast workload: the rate of one-round binary consensus decisions,
//! the number of ⊥ (aborted) agreements, and the burst latency.
//!
//! Usage: `cargo run --release -p ritas-bench --bin ext_wan_asymmetry
//! [--runs N] [--seed S]`

use bytes::Bytes;
use ritas_bench::{parse_figure_args, MetricsDump};
use ritas_sim::cluster::{Action, SimCluster, SimConfig};

struct Row {
    label: &'static str,
    spread: Option<(u64, u64)>,
}

fn main() {
    let args = parse_figure_args();
    let dump = MetricsDump::from_arg(args.metrics_json.clone());
    let runs = args.runs.max(10);
    let profiles = [
        Row {
            label: "LAN (uniform 35us)",
            spread: None,
        },
        Row {
            label: "campus (0.1-1ms)",
            spread: Some((100_000, 1_000_000)),
        },
        Row {
            label: "metro (1-10ms)",
            spread: Some((1_000_000, 10_000_000)),
        },
        Row {
            label: "WAN (10-80ms)",
            spread: Some((10_000_000, 80_000_000)),
        },
    ];

    println!(
        "{:<22} {:>14} {:>16} {:>14}",
        "topology", "1-round rate", "bottom-agreem.", "latency (ms)"
    );
    for profile in &profiles {
        let mut one_round = 0u32;
        let mut total_instances = 0u32;
        let mut bottoms = 0u64;
        let mut latency_ms = 0.0f64;
        for i in 0..runs {
            let seed = args.seed.wrapping_add(i as u64 * 6151);
            let mut config = SimConfig::paper_testbed(seed);
            if let Some((lo, hi)) = profile.spread {
                config = config.with_wan_spread(lo, hi);
            }
            let mut sim = SimCluster::new(config);
            for p in 0..4 {
                for k in 0..5u64 {
                    sim.schedule(0, p, Action::AbBroadcast(Bytes::from(format!("w{p}:{k}"))));
                }
            }
            sim.run();
            let observer = sim.observer();
            let stats = sim.stack(observer).ab_stats(0).expect("session");
            assert_eq!(stats.delivered, 20, "deliveries lost");
            total_instances += 1;
            if stats.bc_rounds_max <= 1 {
                one_round += 1;
            }
            bottoms += stats.bottom_agreements;
            latency_ms += *sim.ab_delivery_times(observer).last().unwrap() as f64 / 1e6;
        }
        println!(
            "{:<22} {:>13.0}% {:>16} {:>14.1}",
            profile.label,
            100.0 * one_round as f64 / total_instances as f64,
            bottoms,
            latency_ms / runs as f64,
        );
    }
    println!();
    println!(
        "reading: on the symmetric LAN no agreement ever aborts; as per-link asymmetry\n\
         grows, processes snapshot different views, the multi-valued consensus starts\n\
         deciding ⊥ and rounds must be retried — the cost the paper's §4.2 conjecture\n\
         anticipated for WANs. (Binary consensus itself still usually decides in one\n\
         round: divergent views make correct processes propose a unanimous 0.)\n\
         Correctness never degrades: every run delivered all 20 messages in an\n\
         identical order."
    );
    if let Some(dump) = dump {
        dump.write();
    }
}
