//! Span-trace viewer: renders per-instance waterfalls and critical-path
//! summaries from a span dump (JSONL, one span per line) written by the
//! figure binaries' or `real_latency`'s `--span-json PATH` flag.
//!
//! Usage: `ritas-trace <span.jsonl> [--max-instances N]`
//!
//! Exit codes: `0` trace rendered, `1` empty or inconsistent trace,
//! `2` unreadable or malformed input.

use ritas_metrics::{critical_paths, spans_from_jsonl, SpanRecord};
use std::collections::BTreeMap;
use std::process::ExitCode;

/// Waterfall bar width, characters.
const BAR_WIDTH: usize = 40;

fn fmt_ns(ns: u64) -> String {
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.1} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// One `[  ███  ]` bar positioning the span inside its root's lifetime.
fn bar(span: &SpanRecord, t0: u64, range: u64) -> String {
    let scale = |t: u64| -> usize {
        (((t.saturating_sub(t0)) as u128 * BAR_WIDTH as u128) / range.max(1) as u128) as usize
    };
    let start = scale(span.open).min(BAR_WIDTH);
    let end = match span.close {
        Some(c) => scale(c).clamp(start, BAR_WIDTH),
        None => BAR_WIDTH,
    };
    let mut out = String::with_capacity(BAR_WIDTH + 2);
    out.push('[');
    for i in 0..BAR_WIDTH {
        if i >= start && (i < end || i == start) {
            out.push('#');
        } else {
            out.push(' ');
        }
    }
    out.push(if span.close.is_some() { ']' } else { '>' });
    out
}

fn render_waterfall(roots: &BTreeMap<&str, Vec<&SpanRecord>>, max_instances: usize) {
    for (shown, (root, spans)) in roots.iter().enumerate() {
        if shown >= max_instances {
            println!(
                "... {} more instance tree(s) (raise --max-instances to see them)",
                roots.len() - max_instances
            );
            break;
        }
        let t0 = spans.iter().map(|s| s.open).min().unwrap_or(0);
        let t1 = spans
            .iter()
            .map(|s| s.close.unwrap_or(s.open))
            .max()
            .unwrap_or(t0);
        let range = t1.saturating_sub(t0);
        println!("{root}  (window {})", fmt_ns(range));
        for span in spans {
            let indent = "  ".repeat(span.depth() - 1);
            let duration = match span.duration() {
                Some(d) => fmt_ns(d),
                None => "open".to_string(),
            };
            let notes: String = span
                .annotations
                .iter()
                .map(|n| format!(" @{}={}", n.kind.as_str(), n.value))
                .collect();
            println!(
                "  {} {:<28} {:>12} {}{}",
                bar(span, t0, range),
                format!("{indent}{}", span.leaf()),
                duration,
                span.layer.as_str(),
                notes
            );
        }
        println!();
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().collect();
    let mut input = None;
    let mut max_instances = 8usize;
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--max-instances" => {
                max_instances = argv[i + 1].parse().expect("numeric --max-instances");
                i += 2;
            }
            flag if flag.starts_with("--") => {
                eprintln!("unknown argument {flag}");
                return ExitCode::from(2);
            }
            path => {
                input = Some(path.to_string());
                i += 1;
            }
        }
    }
    let Some(input) = input else {
        eprintln!("usage: ritas-trace <span.jsonl> [--max-instances N]");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(&input) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {input}: {e}");
            return ExitCode::from(2);
        }
    };
    let spans = match spans_from_jsonl(&text) {
        Ok(s) => s,
        Err((line, e)) => {
            eprintln!("{input}:{line}: {e}");
            return ExitCode::from(2);
        }
    };
    if spans.is_empty() {
        eprintln!("{input}: no spans (empty trace)");
        return ExitCode::from(1);
    }

    // Group by root instance, children sorted under their parents.
    let mut roots: BTreeMap<&str, Vec<&SpanRecord>> = BTreeMap::new();
    for span in &spans {
        let root = span.path.split('/').next().unwrap_or(&span.path);
        roots.entry(root).or_default().push(span);
    }
    for spans in roots.values_mut() {
        spans.sort_by(|a, b| a.path.cmp(&b.path).then(a.open.cmp(&b.open)));
    }

    let closed = spans.iter().filter(|s| s.close.is_some()).count();
    println!(
        "{} spans ({} closed, {} open) across {} instance trees\n",
        spans.len(),
        closed,
        spans.len() - closed,
        roots.len()
    );
    render_waterfall(&roots, max_instances);

    let paths = critical_paths(&spans);
    if paths.is_empty() {
        println!("no completed a-broadcast messages: no critical paths to attribute");
        return ExitCode::SUCCESS;
    }
    println!("critical paths ({} a-delivered messages):", paths.len());
    let mut consistent = true;
    for cp in &paths {
        let (dominant, _) = cp.dominant();
        println!(
            "  {}  total {}  dominant: {} ({:.0}%)",
            cp.path,
            fmt_ns(cp.total_ns),
            dominant,
            cp.share(dominant)
        );
        for (label, ns) in &cp.segments {
            if *ns == 0 {
                continue;
            }
            let pct = *ns as f64 * 100.0 / cp.total_ns.max(1) as f64;
            println!("    {label:<12} {:>12}  {pct:>5.1}%", fmt_ns(*ns));
        }
        let sum: u64 = cp.segments.iter().map(|(_, ns)| ns).sum();
        if sum != cp.total_ns {
            println!(
                "    !! segments sum to {} but the span recorded {}",
                fmt_ns(sum),
                fmt_ns(cp.total_ns)
            );
            consistent = false;
        }
    }
    if !consistent {
        eprintln!("critical-path segments do not sum to their span durations");
        return ExitCode::from(1);
    }
    println!("\nall critical-path breakdowns sum exactly to their a-deliver latency");
    ExitCode::SUCCESS
}
