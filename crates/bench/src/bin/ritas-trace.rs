//! Span-trace viewer: renders per-instance waterfalls and critical-path
//! summaries from a span dump (JSONL, one span per line) written by the
//! figure binaries' or `real_latency`'s `--span-json PATH` flag.
//!
//! Usage:
//! `ritas-trace <span.jsonl> [--max-instances N] [--strict]`
//! `ritas-trace --cluster <spans-0.jsonl> <spans-1.jsonl> ... [--max-events N] [--strict]`
//!
//! In `--cluster` mode the positional files are per-replica dumps of the
//! *same* run, in replica-id order (`--cluster-span-json` of the figure
//! binaries writes them). The report estimates pairwise clock skew from
//! matched send/receive span opens, attributes every RB/EB echo quorum
//! and BC round to the replica whose message closed it, aggregates the
//! coin-round distribution, and prints a bounded merged timeline — it
//! exits 1 when the dumps contain no quorum-arrival rows at all.
//!
//! `--strict` turns unknown critical-path segment labels (segments not
//! in `ritas_metrics::CRITICAL_PATH_SEGMENTS`) from warnings into
//! failures, so a newly added segment cannot be silently dropped.
//!
//! Exit codes: `0` trace rendered, `1` empty or inconsistent trace,
//! `2` unreadable or malformed input.

use ritas_metrics::cluster::{
    coin_distribution, estimate_skews, laggard_counts, merge_timeline, quorum_rows, ReplicaTrace,
    TimelineWhat,
};
use ritas_metrics::{critical_paths, spans_from_jsonl, SpanRecord, CRITICAL_PATH_SEGMENTS};
use std::collections::BTreeMap;
use std::process::ExitCode;

/// Waterfall bar width, characters.
const BAR_WIDTH: usize = 40;

fn fmt_ns(ns: u64) -> String {
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.1} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// One `[  ███  ]` bar positioning the span inside its root's lifetime.
fn bar(span: &SpanRecord, t0: u64, range: u64) -> String {
    let scale = |t: u64| -> usize {
        (((t.saturating_sub(t0)) as u128 * BAR_WIDTH as u128) / range.max(1) as u128) as usize
    };
    let start = scale(span.open).min(BAR_WIDTH);
    let end = match span.close {
        Some(c) => scale(c).clamp(start, BAR_WIDTH),
        None => BAR_WIDTH,
    };
    let mut out = String::with_capacity(BAR_WIDTH + 2);
    out.push('[');
    for i in 0..BAR_WIDTH {
        if i >= start && (i < end || i == start) {
            out.push('#');
        } else {
            out.push(' ');
        }
    }
    out.push(if span.close.is_some() { ']' } else { '>' });
    out
}

fn render_waterfall(roots: &BTreeMap<&str, Vec<&SpanRecord>>, max_instances: usize) {
    for (shown, (root, spans)) in roots.iter().enumerate() {
        if shown >= max_instances {
            println!(
                "... {} more instance tree(s) (raise --max-instances to see them)",
                roots.len() - max_instances
            );
            break;
        }
        let t0 = spans.iter().map(|s| s.open).min().unwrap_or(0);
        let t1 = spans
            .iter()
            .map(|s| s.close.unwrap_or(s.open))
            .max()
            .unwrap_or(t0);
        let range = t1.saturating_sub(t0);
        println!("{root}  (window {})", fmt_ns(range));
        for span in spans {
            let indent = "  ".repeat(span.depth() - 1);
            let duration = match span.duration() {
                Some(d) => fmt_ns(d),
                None => "open".to_string(),
            };
            let notes: String = span
                .annotations
                .iter()
                .map(|n| format!(" @{}={}", n.kind.as_str(), n.value))
                .collect();
            println!(
                "  {} {:<28} {:>12} {}{}",
                bar(span, t0, range),
                format!("{indent}{}", span.leaf()),
                duration,
                span.layer.as_str(),
                notes
            );
        }
        println!();
    }
}

/// Warns on critical-path segment labels outside the canonical
/// [`CRITICAL_PATH_SEGMENTS`] set; returns how many unknown labels were
/// seen (under `--strict` any is fatal — a renamed or newly added
/// segment must be registered, not silently dropped).
fn warn_unknown_segments(paths: &[ritas_metrics::CriticalPath]) -> usize {
    let mut unknown = 0;
    for cp in paths {
        for (label, _) in &cp.segments {
            if !CRITICAL_PATH_SEGMENTS.contains(label) {
                eprintln!(
                    "warning: {}: unknown critical-path segment {label:?} \
                     (not in CRITICAL_PATH_SEGMENTS)",
                    cp.path
                );
                unknown += 1;
            }
        }
    }
    unknown
}

fn load_spans(input: &str) -> Result<Vec<SpanRecord>, ExitCode> {
    let text = match std::fs::read_to_string(input) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {input}: {e}");
            return Err(ExitCode::from(2));
        }
    };
    match spans_from_jsonl(&text) {
        Ok(s) => Ok(s),
        Err((line, e)) => {
            eprintln!("{input}:{line}: {e}");
            Err(ExitCode::from(2))
        }
    }
}

/// The `--cluster` report: skew table, quorum attribution, laggard
/// ranking, coin distribution, merged timeline, per-replica
/// critical-path consistency.
fn run_cluster(files: &[String], max_events: usize, strict: bool) -> ExitCode {
    let mut traces = Vec::new();
    for (replica, file) in files.iter().enumerate() {
        let spans = match load_spans(file) {
            Ok(s) => s,
            Err(code) => return code,
        };
        eprintln!("replica {replica}: {} spans from {file}", spans.len());
        traces.push(ReplicaTrace {
            replica: replica as u32,
            spans,
        });
    }

    let skews = estimate_skews(&traces);
    println!("clock skew vs replica 0:");
    for s in &skews {
        println!(
            "  replica {}  offset {:>12}  interval [{}, {}]  {} sample(s)",
            s.replica,
            format!("{} ns", s.offset_ns),
            s.lo,
            s.hi,
            s.samples
        );
    }

    let rows = quorum_rows(&traces, &skews);
    if rows.is_empty() {
        eprintln!("no quorum-arrival annotations in any dump: nothing to attribute");
        return ExitCode::from(1);
    }
    println!(
        "\nquorum arrivals ({} rows): who closed each quorum",
        rows.len()
    );
    let mut by_path: BTreeMap<&str, Vec<&ritas_metrics::cluster::QuorumRow>> = BTreeMap::new();
    for r in &rows {
        by_path.entry(&r.path).or_default().push(r);
    }
    for (path, rs) in &by_path {
        let mut line = format!("  {path}: ");
        for (i, r) in rs.iter().enumerate() {
            if i > 0 {
                line.push_str(", ");
            }
            match r.round {
                Some(round) => line.push_str(&format!(
                    "r{round} by {} (obs {})",
                    r.completed_by, r.observer
                )),
                None => line.push_str(&format!(
                    "quorum by {} (obs {})",
                    r.completed_by, r.observer
                )),
            }
        }
        println!("{line}");
    }
    println!("\nlaggard ranking (times a replica was the last arrival):");
    let mut laggards: Vec<(u32, u64)> = laggard_counts(&rows).into_iter().collect();
    laggards.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    for (peer, n) in &laggards {
        println!("  replica {peer}: {n}");
    }

    let coin = coin_distribution(&traces);
    println!("\ncoin rounds (decided BC instances by rounds needed):");
    for (rounds, instances) in &coin.rounds_histogram {
        println!("  {rounds} round(s): {instances} instance(s)");
    }
    println!(
        "  {} coin flip(s), {} came up 1",
        coin.coin_flips, coin.coin_ones
    );

    let timeline = merge_timeline(&traces, &skews);
    let shown = timeline.len().min(max_events);
    println!(
        "\nmerged timeline (first {shown} of {} events):",
        timeline.len()
    );
    for ev in &timeline[..shown] {
        let what = match &ev.what {
            TimelineWhat::Open => "open".to_string(),
            TimelineWhat::Close => "close".to_string(),
            TimelineWhat::Note(n) => format!("@{}={}", n.kind.as_str(), n.value),
        };
        println!(
            "  {:>12} ns  r{}  {:<32} {}",
            ev.t, ev.replica, ev.path, what
        );
    }

    // Per-replica critical paths must still sum exactly — correlation
    // reads the same spans, so a broken sum invalidates the report.
    let mut consistent = true;
    let mut unknown = 0;
    println!("\nper-replica critical paths:");
    for t in &traces {
        let paths = critical_paths(&t.spans);
        unknown += warn_unknown_segments(&paths);
        let mut bad = 0;
        for cp in &paths {
            let sum: u64 = cp.segments.iter().map(|(_, ns)| ns).sum();
            if sum != cp.total_ns {
                bad += 1;
                consistent = false;
            }
        }
        println!(
            "  replica {}: {} a-delivered message(s), {} inconsistent",
            t.replica,
            paths.len(),
            bad
        );
    }
    if !consistent {
        eprintln!("critical-path segments do not sum to their span durations");
        return ExitCode::from(1);
    }
    if strict && unknown > 0 {
        eprintln!("--strict: {unknown} unknown critical-path segment label(s)");
        return ExitCode::from(1);
    }
    println!("\nall per-replica critical-path breakdowns sum exactly to their a-deliver latency");
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().collect();
    let mut inputs: Vec<String> = Vec::new();
    let mut max_instances = 8usize;
    let mut max_events = 40usize;
    let mut cluster = false;
    let mut strict = false;
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--max-instances" => {
                max_instances = argv[i + 1].parse().expect("numeric --max-instances");
                i += 2;
            }
            "--max-events" => {
                max_events = argv[i + 1].parse().expect("numeric --max-events");
                i += 2;
            }
            "--cluster" => {
                cluster = true;
                i += 1;
            }
            "--strict" => {
                strict = true;
                i += 1;
            }
            flag if flag.starts_with("--") => {
                eprintln!("unknown argument {flag}");
                return ExitCode::from(2);
            }
            path => {
                inputs.push(path.to_string());
                i += 1;
            }
        }
    }
    if cluster {
        if inputs.len() < 2 {
            eprintln!(
                "usage: ritas-trace --cluster <spans-0.jsonl> <spans-1.jsonl> ... \
                 [--max-events N] [--strict]"
            );
            return ExitCode::from(2);
        }
        return run_cluster(&inputs, max_events, strict);
    }
    let [input] = inputs.as_slice() else {
        eprintln!("usage: ritas-trace <span.jsonl> [--max-instances N] [--strict]");
        return ExitCode::from(2);
    };
    let spans = match load_spans(input) {
        Ok(s) => s,
        Err(code) => return code,
    };
    if spans.is_empty() {
        eprintln!("{input}: no spans (empty trace)");
        return ExitCode::from(1);
    }

    // Group by root instance, children sorted under their parents.
    let mut roots: BTreeMap<&str, Vec<&SpanRecord>> = BTreeMap::new();
    for span in &spans {
        let root = span.path.split('/').next().unwrap_or(&span.path);
        roots.entry(root).or_default().push(span);
    }
    for spans in roots.values_mut() {
        spans.sort_by(|a, b| a.path.cmp(&b.path).then(a.open.cmp(&b.open)));
    }

    let closed = spans.iter().filter(|s| s.close.is_some()).count();
    println!(
        "{} spans ({} closed, {} open) across {} instance trees\n",
        spans.len(),
        closed,
        spans.len() - closed,
        roots.len()
    );
    render_waterfall(&roots, max_instances);

    let paths = critical_paths(&spans);
    if paths.is_empty() {
        println!("no completed a-broadcast messages: no critical paths to attribute");
        return ExitCode::SUCCESS;
    }
    println!("critical paths ({} a-delivered messages):", paths.len());
    let unknown = warn_unknown_segments(&paths);
    let mut consistent = true;
    for cp in &paths {
        let (dominant, _) = cp.dominant();
        println!(
            "  {}  total {}  dominant: {} ({:.0}%)",
            cp.path,
            fmt_ns(cp.total_ns),
            dominant,
            cp.share(dominant)
        );
        for (label, ns) in &cp.segments {
            if *ns == 0 {
                continue;
            }
            let pct = *ns as f64 * 100.0 / cp.total_ns.max(1) as f64;
            println!("    {label:<12} {:>12}  {pct:>5.1}%", fmt_ns(*ns));
        }
        let sum: u64 = cp.segments.iter().map(|(_, ns)| ns).sum();
        if sum != cp.total_ns {
            println!(
                "    !! segments sum to {} but the span recorded {}",
                fmt_ns(sum),
                fmt_ns(cp.total_ns)
            );
            consistent = false;
        }
    }
    if !consistent {
        eprintln!("critical-path segments do not sum to their span durations");
        return ExitCode::from(1);
    }
    if strict && unknown > 0 {
        eprintln!("--strict: {unknown} unknown critical-path segment label(s)");
        return ExitCode::from(1);
    }
    println!("\nall critical-path breakdowns sum exactly to their a-deliver latency");
    ExitCode::SUCCESS
}
