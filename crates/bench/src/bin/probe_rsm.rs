//! Protocol-side ordering throughput probe: closed-loop
//! `ServiceReplica::submit` against a 4-replica in-process cluster,
//! without the service front-end (no sockets, no reply voting, one
//! submit leg per request instead of the client's f+1 fan-out).
//!
//! This isolates the cost of the replication pipeline itself — queue →
//! batch dissemination → agreement → apply — so batching changes can be
//! measured without the client edge in the numerator. Usage:
//!
//! ```text
//! probe_rsm [clients] [requests-per-client]
//! ```
//!
//! Prints ops/s plus the broadcast-queue flush counters and the lead
//! replica's AB debug stats (batches, agreements, round).
use bytes::Bytes;
use ritas::node::{Node, SessionConfig};
use ritas::service::{CommandKind, ServiceConfig, ServiceReplica};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    let clients: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(32);
    let reqs: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(50);
    let nodes = Node::cluster(SessionConfig::new(4).unwrap()).unwrap();
    let replicas: Vec<_> = nodes
        .into_iter()
        .map(|n| {
            let r = Arc::new(ServiceReplica::new(
                n,
                0u64,
                ServiceConfig::default(),
                |c, _cl, _cmd| {
                    *c += 1;
                    Bytes::from(c.to_be_bytes().to_vec())
                },
                |c, _q| Bytes::from(c.to_be_bytes().to_vec()),
            ));
            // Throughput probe: keep counters, skip span/trace recording.
            r.metrics().set_tracing(false);
            r
        })
        .collect();
    let t0 = Instant::now();
    let hs: Vec<_> = (0..clients)
        .map(|c| {
            let r = Arc::clone(&replicas[c % 4]);
            std::thread::spawn(move || {
                for i in 0..reqs {
                    r.submit(
                        c as u64,
                        i as u64 + 1,
                        CommandKind::Apply,
                        Bytes::from_static(b"x"),
                        Duration::from_secs(30),
                    )
                    .unwrap();
                }
            })
        })
        .collect();
    for h in hs {
        h.join().unwrap();
    }
    let wall = t0.elapsed();
    println!(
        "{} reqs in {:?} = {:.0} ops/s",
        clients * reqs,
        wall,
        (clients * reqs) as f64 / wall.as_secs_f64()
    );
    let snap = replicas[0].metrics().snapshot();
    for k in [
        "ab_batches",
        "ab_delivered",
        "ab_flush_size",
        "ab_flush_age",
        "ab_flush_idle",
    ] {
        if let Some(v) = snap.counters.get(k) {
            println!("{k}: {v}");
        }
    }
    if let Ok(Some((stats, round, pending))) = replicas[0].ab_debug() {
        println!("stats: {stats:?} round={round} pending={pending}");
    }
    for r in &replicas {
        r.shutdown();
    }
}
