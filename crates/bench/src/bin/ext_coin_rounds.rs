//! **Extension X4**: empirical round distribution of randomized binary
//! consensus — Ben-Or local coins vs Rabin-style shared coins (the two
//! approaches the paper's related work contrasts, §5).
//!
//! The worst-case expectation of the local-coin protocol is O(2^(n-f))
//! rounds, yet the paper observed one round under realistic conditions.
//! This experiment measures the decided-round histogram over many seeded
//! runs with *divergent* proposals (the hard case: unanimity decides in
//! round 1 regardless of coins), for both coin schemes.
//!
//! Usage: `cargo run --release -p ritas-bench --bin ext_coin_rounds
//! [--runs N] [--seed S]`

use ritas::stack::CoinPolicy;
use ritas_bench::{parse_figure_args, MetricsDump};
use ritas_sim::cluster::{Action, SimCluster, SimConfig};

fn run_round(policy: CoinPolicy, seed: u64) -> u32 {
    let config = SimConfig::paper_testbed(seed).with_coin(policy);
    let mut sim = SimCluster::new(config);
    for p in 0..4 {
        // Divergent proposals: 2 vs 2 — no initial majority.
        sim.schedule(
            0,
            p,
            Action::BcPropose {
                tag: 1,
                value: p % 2 == 0,
            },
        );
    }
    sim.run();
    let observer = sim.observer();
    sim.stack(observer)
        .bc_decided_round(1)
        .expect("consensus terminated")
}

fn main() {
    let args = parse_figure_args();
    let dump = MetricsDump::from_arg(args.metrics_json.clone());
    let runs = args.runs.max(100);
    println!("binary consensus decided-round distribution, {runs} runs, split 2-2 proposals\n");
    for (label, policy) in [
        ("Ben-Or local coins", CoinPolicy::Local),
        ("Rabin shared coins", CoinPolicy::Shared { dealer_seed: 77 }),
    ] {
        let mut histogram = std::collections::BTreeMap::<u32, u32>::new();
        for i in 0..runs {
            let r = run_round(policy, args.seed.wrapping_add(i as u64 * 131));
            *histogram.entry(r).or_insert(0) += 1;
        }
        let mean: f64 = histogram
            .iter()
            .map(|(r, c)| *r as f64 * *c as f64)
            .sum::<f64>()
            / runs as f64;
        let max = *histogram.keys().max().unwrap();
        print!("{label:<22} mean {mean:.2} rounds, max {max}  |");
        for (r, c) in &histogram {
            print!(" r{r}:{c}");
        }
        println!();
    }
    println!();
    println!(
        "the paper's observation holds: despite the 2^(n-f) worst case, realistic\n\
         schedules decide almost always in round 1 even for split proposals, because\n\
         symmetric delivery makes the step-1 majority common; the shared coin removes\n\
         the residual multi-round tail."
    );
    if let Some(dump) = dump {
        dump.write();
    }
}
