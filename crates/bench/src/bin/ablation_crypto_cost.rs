//! **Ablation A3** (DESIGN.md): signature-free MACs vs a SINTRA-style
//! public-key stack.
//!
//! Related work (§5): SINTRA's protocols "depend heavily on public-key
//! cryptography primitives like digital and threshold signatures" and
//! achieved ~1.45 atomic msgs/s on a LAN, versus RITAS's hundreds. This
//! ablation applies an RSA-era per-message signing/verification cost to
//! the same protocols, quantifying what the paper's signature-freedom
//! property buys.
//!
//! Usage: `cargo run --release -p ritas-bench --bin ablation_crypto_cost
//! [--runs N] [--seed S]`

use ritas_bench::{parse_figure_args, MetricsDump};
use ritas_sim::harness::stack_latency::{measure_with_config, ProtocolUnderTest};
use ritas_sim::stats::mean;
use ritas_sim::{Calibration, SimConfig};

fn main() {
    let args = parse_figure_args();
    let dump = MetricsDump::from_arg(args.metrics_json.clone());
    let samples = args.runs.max(3);
    println!(
        "{:<24} {:>16} {:>18} {:>10}",
        "protocol", "MAC stack (us)", "PK stack (us)", "slowdown"
    );
    for protocol in [
        ProtocolUnderTest::ReliableBroadcast,
        ProtocolUnderTest::BinaryConsensus,
        ProtocolUnderTest::AtomicBroadcast,
    ] {
        let run = |cal: Calibration, salt: u64| -> f64 {
            let us: Vec<f64> = (0..samples)
                .map(|i| {
                    let seed = args.seed.wrapping_add(i as u64 * 31 + salt);
                    let config = SimConfig::paper_testbed(seed).with_calibration(cal);
                    measure_with_config(protocol, config, seed) as f64 / 1000.0
                })
                .collect();
            mean(&us)
        };
        let mac = run(Calibration::default(), 0);
        let pk = run(Calibration::default().with_public_key_costs(), 1);
        println!(
            "{:<24} {:>16.0} {:>18.0} {:>9.1}x",
            protocol.label(),
            mac,
            pk,
            pk / mac
        );
    }
    println!();
    println!("paper §5: SINTRA (public-key, Java) ~1.45 atomic msgs/s vs RITAS ~721 msgs/s");
    if let Some(dump) = dump {
        dump.write();
    }
}
