//! Criterion benchmarks for the reliable-channel substrate: raw hub vs
//! real TCP, plain vs AH-authenticated — the per-frame cost floor under
//! everything the stack does.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ritas_crypto::KeyTable;
use ritas_transport::{AuthConfig, AuthenticatedTransport, Hub, TcpEndpoint, Transport};
use std::hint::black_box;
use std::time::Duration;

fn roundtrip<T: Transport>(a: &T, b: &T, payload: &Bytes) {
    a.send(1, payload.clone()).unwrap();
    let (_, p) = b.recv().unwrap();
    black_box(p);
}

fn bench_hub(c: &mut Criterion) {
    let mut g = c.benchmark_group("hub_oneway");
    for size in [80usize, 1024] {
        let payload = Bytes::from(vec![0x5au8; size]);
        g.throughput(Throughput::Bytes(size as u64));

        let mut hub = Hub::new(2);
        let eps = hub.take_endpoints();
        g.bench_with_input(BenchmarkId::new("plain", size), &payload, |bch, p| {
            bch.iter(|| roundtrip(&eps[0], &eps[1], p))
        });

        let table = KeyTable::dealer(2, 1);
        let mut hub = Hub::new(2);
        let mut eps = hub.take_endpoints().into_iter();
        let a =
            AuthenticatedTransport::new(eps.next().unwrap(), AuthConfig::from_key_table(&table, 0));
        let b =
            AuthenticatedTransport::new(eps.next().unwrap(), AuthConfig::from_key_table(&table, 1));
        g.bench_with_input(BenchmarkId::new("ah_sealed", size), &payload, |bch, p| {
            bch.iter(|| roundtrip(&a, &b, p))
        });
    }
    g.finish();
}

fn bench_tcp(c: &mut Criterion) {
    let mut g = c.benchmark_group("tcp_oneway");
    g.sample_size(30);
    for size in [80usize, 1024] {
        let payload = Bytes::from(vec![0x5au8; size]);
        g.throughput(Throughput::Bytes(size as u64));

        let eps = TcpEndpoint::ephemeral_mesh(2, Duration::from_secs(10)).unwrap();
        g.bench_with_input(BenchmarkId::new("plain", size), &payload, |bch, p| {
            bch.iter(|| roundtrip(&eps[0], &eps[1], p))
        });

        let table = KeyTable::dealer(2, 2);
        let mut eps = TcpEndpoint::ephemeral_mesh(2, Duration::from_secs(10))
            .unwrap()
            .into_iter();
        let a =
            AuthenticatedTransport::new(eps.next().unwrap(), AuthConfig::from_key_table(&table, 0));
        let b =
            AuthenticatedTransport::new(eps.next().unwrap(), AuthConfig::from_key_table(&table, 1));
        g.bench_with_input(BenchmarkId::new("ah_sealed", size), &payload, |bch, p| {
            bch.iter(|| roundtrip(&a, &b, p))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_hub, bench_tcp);
criterion_main!(benches);
