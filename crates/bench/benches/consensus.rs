//! Criterion benchmarks for the consensus layers (Table 1, rows 3–5,
//! wall-clock counterpart): one full instance across all `n` processes
//! on the deterministic cluster.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ritas::stack::Output;
use ritas::testing::Cluster;
use std::hint::black_box;

fn run_bc(n: usize, seed: u64) -> bool {
    let mut cluster = Cluster::new(n, seed);
    for p in 0..n {
        let step = cluster.stack_mut(p).bc_propose(1, true).unwrap();
        cluster.absorb(p, step);
    }
    cluster.run();
    cluster
        .outputs(0)
        .iter()
        .any(|o| matches!(o, Output::BcDecided { decision: true, .. }))
}

fn run_mvc(n: usize, seed: u64) -> bool {
    let mut cluster = Cluster::new(n, seed);
    for p in 0..n {
        let step = cluster
            .stack_mut(p)
            .mvc_propose(1, Bytes::from_static(b"0123456789"))
            .unwrap();
        cluster.absorb(p, step);
    }
    cluster.run();
    cluster
        .outputs(0)
        .iter()
        .any(|o| matches!(o, Output::MvcDecided { .. }))
}

fn run_vc(n: usize, seed: u64) -> bool {
    let mut cluster = Cluster::new(n, seed);
    for p in 0..n {
        let step = cluster
            .stack_mut(p)
            .vc_propose(1, Bytes::from_static(b"0123456789"))
            .unwrap();
        cluster.absorb(p, step);
    }
    cluster.run();
    cluster
        .outputs(0)
        .iter()
        .any(|o| matches!(o, Output::VcDecided { .. }))
}

fn bench_consensus(c: &mut Criterion) {
    let mut g = c.benchmark_group("consensus_instance");
    g.sample_size(20);
    for n in [4usize, 7] {
        g.bench_with_input(BenchmarkId::new("binary", n), &n, |b, &n| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                assert!(black_box(run_bc(n, seed)))
            })
        });
        g.bench_with_input(BenchmarkId::new("multi_valued", n), &n, |b, &n| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                assert!(black_box(run_mvc(n, seed)))
            })
        });
        g.bench_with_input(BenchmarkId::new("vector", n), &n, |b, &n| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                assert!(black_box(run_vc(n, seed)))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_consensus);
criterion_main!(benches);
