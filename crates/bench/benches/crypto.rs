//! Criterion benchmarks for the signature-free crypto substrate.
//!
//! The paper's performance argument rests on symmetric cryptography
//! being "several orders of magnitude" faster than public-key
//! operations; these benches pin the absolute cost of our from-scratch
//! primitives (hashing, HMAC, the `H(m ‖ s_ij)` MAC and the echo
//! broadcast hash vector).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ritas_crypto::{mac, Digest, Hmac, KeyTable, Sha1, Sha256};
use std::hint::black_box;

fn bench_hashes(c: &mut Criterion) {
    let mut g = c.benchmark_group("hash");
    for size in [64usize, 1024, 16 * 1024] {
        let data = vec![0xabu8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::new("sha256", size), &data, |b, d| {
            b.iter(|| Sha256::digest(black_box(d)))
        });
        g.bench_with_input(BenchmarkId::new("sha1", size), &data, |b, d| {
            b.iter(|| Sha1::digest(black_box(d)))
        });
    }
    g.finish();
}

fn bench_macs(c: &mut Criterion) {
    let table = KeyTable::dealer(4, 7);
    let key = table.shared_key(0, 1).unwrap();
    let keys = table.view_of(0);
    let msg = vec![0x5au8; 80]; // a typical RITAS frame

    let mut g = c.benchmark_group("mac");
    g.throughput(Throughput::Bytes(msg.len() as u64));
    g.bench_function("paper_mac_h_m_s", |b| {
        b.iter(|| mac::authenticate(black_box(&msg), &key))
    });
    g.bench_function("hmac_sha1_ah", |b| {
        b.iter(|| Hmac::<Sha1>::mac(key.as_ref(), black_box(&msg)))
    });
    g.bench_function("echo_hash_vector_n4", |b| {
        b.iter(|| mac::hash_vector(black_box(&msg), &keys))
    });
    g.finish();
}

criterion_group!(benches, bench_hashes, bench_macs);
criterion_main!(benches);
