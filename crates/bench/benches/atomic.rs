//! Criterion benchmarks for atomic broadcast (Figures 4–7, wall-clock
//! counterpart): full bursts through the deterministic cluster and the
//! discrete-event simulator.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ritas::stack::Output;
use ritas::testing::Cluster;
use ritas_sim::harness::{run_agreement_cost_once as agreement_cost_once, run_burst_once};
use ritas_sim::Faultload;
use std::hint::black_box;

fn run_ab_burst_cluster(n: usize, burst_per_process: usize, seed: u64) -> usize {
    let mut cluster = Cluster::new(n, seed);
    for p in 0..n {
        for k in 0..burst_per_process {
            let (_, step) = cluster
                .stack_mut(p)
                .ab_broadcast(0, Bytes::from(format!("m{p}:{k}")));
            cluster.absorb(p, step);
        }
    }
    cluster.run();
    cluster
        .outputs(0)
        .iter()
        .filter(|o| matches!(o, Output::AbDelivered { .. }))
        .count()
}

fn bench_ab_cluster(c: &mut Criterion) {
    let mut g = c.benchmark_group("atomic_broadcast_burst");
    g.sample_size(10);
    for burst in [1usize, 5, 25] {
        g.bench_with_input(
            BenchmarkId::from_parameter(burst * 4),
            &burst,
            |b, &burst| {
                let mut seed = 0;
                b.iter(|| {
                    seed += 1;
                    let delivered = run_ab_burst_cluster(4, burst, seed);
                    assert_eq!(delivered, burst * 4);
                    black_box(delivered)
                })
            },
        );
    }
    g.finish();
}

fn bench_simulated_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulated_artifacts");
    g.sample_size(10);
    // One Figure-4-style point (failure-free, 10 B, burst 40).
    g.bench_function("fig4_point_burst40", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(run_burst_once(Faultload::FailureFree, 10, 40, seed))
        })
    });
    // One Figure-6-style point under the Byzantine faultload.
    g.bench_function("fig6_point_burst40", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(run_burst_once(
                Faultload::Byzantine { attacker: 3 },
                10,
                40,
                seed,
            ))
        })
    });
    // One Figure-7-style point.
    g.bench_function("fig7_point_burst40", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(agreement_cost_once(40, seed))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_ab_cluster, bench_simulated_figures);
criterion_main!(benches);
