//! Criterion benchmarks for the broadcast primitives (Table 1, rows 1–2,
//! wall-clock counterpart).
//!
//! These measure the real execution cost of one full protocol instance —
//! all `n` state machines plus message routing — on the deterministic
//! in-memory cluster. They complement the `table1` binary, which
//! regenerates the paper's *virtual-time* latencies.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ritas::stack::Output;
use ritas::testing::Cluster;
use std::hint::black_box;

fn run_rb(n: usize, seed: u64, payload: &Bytes) -> usize {
    let mut cluster = Cluster::new(n, seed);
    let (_k, step) = cluster.stack_mut(0).rb_broadcast(payload.clone());
    cluster.absorb(0, step);
    cluster.run();
    (0..n)
        .filter(|p| {
            cluster
                .outputs(*p)
                .iter()
                .any(|o| matches!(o, Output::RbDelivered { .. }))
        })
        .count()
}

fn run_eb(n: usize, seed: u64, payload: &Bytes) -> usize {
    let mut cluster = Cluster::new(n, seed);
    let (_k, step) = cluster.stack_mut(0).eb_broadcast(payload.clone());
    cluster.absorb(0, step);
    cluster.run();
    (0..n)
        .filter(|p| {
            cluster
                .outputs(*p)
                .iter()
                .any(|o| matches!(o, Output::EbDelivered { .. }))
        })
        .count()
}

fn bench_broadcasts(c: &mut Criterion) {
    let payload = Bytes::from_static(b"0123456789");
    let mut g = c.benchmark_group("broadcast_instance");
    for n in [4usize, 7, 10] {
        g.bench_with_input(BenchmarkId::new("reliable", n), &n, |b, &n| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                black_box(run_rb(n, seed, &payload))
            })
        });
        g.bench_with_input(BenchmarkId::new("echo", n), &n, |b, &n| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                black_box(run_eb(n, seed, &payload))
            })
        });
    }
    g.finish();
}

fn bench_payload_sizes(c: &mut Criterion) {
    let mut g = c.benchmark_group("reliable_broadcast_payload");
    for size in [10usize, 1000, 10_000] {
        let payload = Bytes::from(vec![0u8; size]);
        g.bench_with_input(BenchmarkId::from_parameter(size), &payload, |b, p| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                black_box(run_rb(4, seed, p))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_broadcasts, bench_payload_sizes);
criterion_main!(benches);
