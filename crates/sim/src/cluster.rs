//! The discrete-event loop driving the protocol stacks over the LAN
//! model.
//!
//! A [`SimCluster`] owns one [`Stack`] per process, a virtual clock and
//! an event queue. Frames emitted by a stack are scheduled through the
//! [`LanModel`] (transmit serialization → propagation → receive
//! serialization) and handed back to the destination stack at their
//! virtual delivery time. The single-threaded nature of the paper's
//! implementation is modeled faithfully: the deferred agreement rounds of
//! atomic broadcast are driven whenever a host's receive queue drains
//! (see `ritas::ab::AbConfig::eager_rounds`).

use crate::calibration::Calibration;
use crate::faults::Faultload;
use crate::lan::{LanModel, Ns};
use crate::stats::{classify_broadcast_init, NetCounters, Purpose};
use bytes::Bytes;
use ritas::config::Group;
use ritas::stack::{Output, Stack, StackConfig, StackStep};
use ritas::step::Target;
use ritas::ProcessId;
use ritas_crypto::KeyTable;
use ritas_metrics::{Metrics, MetricsSnapshot};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::OnceLock;

/// A process-wide registry shared by every process of every
/// [`SimCluster`] created after installation (see
/// [`install_ambient_metrics`]).
static AMBIENT_METRICS: OnceLock<Metrics> = OnceLock::new();

/// Installs a process-wide metrics registry: every process of every
/// `SimCluster` created afterwards records into it, aggregating a whole
/// multi-run experiment into one snapshot. The benchmark binaries use
/// this for their `--metrics-json` dumps. Without it each process gets
/// a private registry (the default the tests rely on). Returns `false`
/// if a registry was already installed (first install wins).
pub fn install_ambient_metrics(metrics: Metrics) -> bool {
    AMBIENT_METRICS.set(metrics).is_ok()
}

/// Configuration of a simulated run.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Number of processes.
    pub n: usize,
    /// Seed controlling keys, coins, jitter — a run is a pure function
    /// of its config.
    pub seed: u64,
    /// Whether the AH-style channel authentication is on ("with IPSec").
    pub authenticated: bool,
    /// The LAN/CPU cost model.
    pub calibration: Calibration,
    /// The faultload (§4.2).
    pub faultload: Faultload,
    /// Multi-valued consensus / binary consensus transports.
    pub mvc: ritas::mvc::MvcConfig,
    /// When set, per-link propagation is drawn uniformly (seeded) from
    /// this `(min, max)` ns range instead of the calibrated switch
    /// latency — a WAN-like asymmetric topology (extension experiment
    /// probing the paper's §4.2 conjecture).
    pub wan_spread_ns: Option<(u64, u64)>,
    /// Coin scheme for standalone binary consensus instances.
    pub coin: ritas::stack::CoinPolicy,
}

impl SimConfig {
    /// The paper's testbed defaults: `n = 4`, authenticated, calibrated
    /// LAN, failure-free.
    pub fn paper_testbed(seed: u64) -> Self {
        SimConfig {
            n: 4,
            seed,
            authenticated: true,
            calibration: Calibration::default(),
            faultload: Faultload::FailureFree,
            mvc: ritas::mvc::MvcConfig::default(),
            wan_spread_ns: None,
            coin: ritas::stack::CoinPolicy::Local,
        }
    }

    /// Switches to an asymmetric WAN-like topology: per-link propagation
    /// drawn uniformly from `lo..=hi` nanoseconds (symmetric per pair).
    pub fn with_wan_spread(mut self, lo: u64, hi: u64) -> Self {
        self.wan_spread_ns = Some((lo, hi));
        self
    }

    /// Sets the coin scheme for standalone binary consensus instances.
    pub fn with_coin(mut self, coin: ritas::stack::CoinPolicy) -> Self {
        self.coin = coin;
        self
    }

    /// Turns channel authentication off ("without IPSec").
    pub fn without_auth(mut self) -> Self {
        self.authenticated = false;
        self
    }

    /// Sets the group size (ablations beyond the paper's `n = 4`).
    pub fn with_n(mut self, n: usize) -> Self {
        self.n = n;
        self
    }

    /// Sets the consensus-layer transports.
    pub fn with_mvc(mut self, mvc: ritas::mvc::MvcConfig) -> Self {
        self.mvc = mvc;
        self
    }

    /// Replaces the LAN cost model.
    pub fn with_calibration(mut self, c: Calibration) -> Self {
        self.calibration = c;
        self
    }

    /// Sets the faultload.
    pub fn with_faultload(mut self, f: Faultload) -> Self {
        self.faultload = f;
        self
    }
}

/// A service request scheduled into the simulation.
#[derive(Debug, Clone)]
pub enum Action {
    /// `ritas_ab_bcast` on session 0.
    AbBroadcast(Bytes),
    /// `ritas_rb_bcast`.
    RbBroadcast(Bytes),
    /// `ritas_eb_bcast`.
    EbBroadcast(Bytes),
    /// `ritas_bc` propose.
    BcPropose {
        /// Instance tag.
        tag: u64,
        /// Proposed bit.
        value: bool,
    },
    /// `ritas_mvc` propose.
    MvcPropose {
        /// Instance tag.
        tag: u64,
        /// Proposed value.
        value: Bytes,
    },
    /// The §4.2 Byzantine proposal at the MVC layer.
    MvcProposeBottom {
        /// Instance tag.
        tag: u64,
    },
    /// `ritas_vc` propose.
    VcPropose {
        /// Instance tag.
        tag: u64,
        /// Proposed value.
        value: Bytes,
    },
}

/// A seeded symmetric per-pair propagation matrix in `lo..=hi` ns.
#[allow(clippy::needless_range_loop)] // index pairs (i, j) are link endpoints
fn wan_matrix(n: usize, lo: u64, hi: u64, seed: u64) -> Vec<Vec<Ns>> {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut m = vec![vec![0u64; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let d = if hi > lo { rng.gen_range(lo..=hi) } else { lo };
            m[i][j] = d;
            m[j][i] = d;
        }
    }
    m
}

#[derive(Debug)]
enum EventKind {
    /// Frame reached the destination NIC; receive processing begins.
    Arrive {
        from: ProcessId,
        to: ProcessId,
        frame: Bytes,
    },
    /// Frame handed to the destination protocol stack.
    Deliver {
        from: ProcessId,
        to: ProcessId,
        frame: Bytes,
    },
    /// An application service request fires.
    Invoke { p: ProcessId, action: Action },
    /// A wiped process rejoins: its stack is rebuilt from scratch
    /// (see [`Faultload::Wipe`]).
    Reset { p: ProcessId },
}

#[derive(Debug)]
struct Event {
    time: Ns,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// The simulator.
///
/// # Example
///
/// One reliable broadcast on the paper's calibrated testbed; virtual-time
/// latency comes out in the low milliseconds, as in Table 1:
///
/// ```
/// use ritas_sim::cluster::{Action, SimCluster, SimConfig};
/// use ritas::stack::Output;
/// use bytes::Bytes;
///
/// let mut sim = SimCluster::new(SimConfig::paper_testbed(42));
/// sim.schedule(0, 0, Action::RbBroadcast(Bytes::from_static(b"0123456789")));
/// sim.run();
/// let (t, _) = sim
///     .first_output(1, |o| matches!(o, Output::RbDelivered { .. }))
///     .expect("delivered");
/// assert!((500_000..10_000_000).contains(&t), "latency {t} ns");
/// ```
#[derive(Debug)]
pub struct SimCluster {
    config: SimConfig,
    stacks: Vec<Stack>,
    lan: LanModel,
    events: BinaryHeap<Reverse<Event>>,
    seq: u64,
    now: Ns,
    /// Frames queued at each host (arrived, not yet delivered); when it
    /// drains the host's agreement task is polled.
    pending_rx: Vec<usize>,
    outputs: Vec<Vec<(Ns, Output)>>,
    counters: NetCounters,
    /// Per-process observability registries (shared with the stacks).
    metrics: Vec<Metrics>,
    /// Process at which broadcast instances are counted (one INIT per
    /// instance arrives at each host; we observe host `observer`).
    observer: ProcessId,
    /// Last arrival time per directed link, used to keep a flapping link
    /// FIFO: a frame held by an outage must not be overtaken by a frame
    /// sent just after the window (the real session layer retransmits in
    /// order). Only populated under [`Faultload::LinkFlap`].
    flap_fifo: std::collections::HashMap<(ProcessId, ProcessId), Ns>,
}

/// Builds process `me`'s protocol stack from nothing but the run
/// configuration — used both at cluster construction and when a
/// [`Faultload::Wipe`] victim rejoins with zero state.
fn fresh_stack(config: &SimConfig, group: Group, table: &KeyTable, me: ProcessId) -> Stack {
    let stack_config = StackConfig {
        ab: ritas::ab::AbConfig {
            mvc: config.mvc,
            byzantine_bottom: config.faultload.is_byzantine(me),
            eager_rounds: false,
            // Paper-faithful per-message dissemination: the
            // simulator reproduces Figures 4–7
            // instance-for-instance, so batching stays off.
            batch: ritas::ab::BatchPolicy::immediate(),
        },
        consensus: config.mvc,
        eager_vc_rounds: false,
        coin: config.coin,
    };
    Stack::with_config(
        group,
        me,
        table.view_of(me),
        config.seed.wrapping_mul(0xD6E8_FEB8_6659_FD93) ^ ((me as u64) << 24),
        stack_config,
    )
}

impl SimCluster {
    /// Builds a simulated cluster.
    ///
    /// # Panics
    ///
    /// Panics if `config.n < 4`.
    pub fn new(config: SimConfig) -> Self {
        let group = Group::new(config.n).expect("n >= 4");
        let table = KeyTable::dealer(config.n, config.seed);
        let metrics: Vec<Metrics> = (0..config.n)
            .map(|_| AMBIENT_METRICS.get().cloned().unwrap_or_else(Metrics::new))
            .collect();
        let stacks = (0..config.n)
            .map(|me| {
                let mut stack = fresh_stack(&config, group, &table, me);
                stack.set_metrics(metrics[me].clone());
                stack
            })
            .collect();
        // The observer must be a live, correct process (a wipe victim
        // loses its state mid-run, so it cannot observe either). Under
        // Rotation every process is wiped at some point; the observer
        // stays process 0, so rotation experiments place slot 0 away
        // from the traffic they measure.
        let wipe_victim = config.faultload.wipe_rejoin_at().map(|(v, _)| v);
        let observer = (0..config.n)
            .find(|p| {
                config.faultload.participates(*p)
                    && !config.faultload.is_byzantine(*p)
                    && Some(*p) != wipe_victim
            })
            .expect("at least one correct process");
        let mut lan = LanModel::new(
            config.n,
            config.calibration,
            config.authenticated,
            config.seed ^ 0x51AB,
        );
        if let Some((lo, hi)) = config.wan_spread_ns {
            lan.set_propagation_matrix(wan_matrix(config.n, lo, hi, config.seed ^ 0x3A9));
        }
        let mut sim = SimCluster {
            lan,
            stacks,
            events: BinaryHeap::new(),
            seq: 0,
            now: 0,
            pending_rx: vec![0; config.n],
            outputs: vec![Vec::new(); config.n],
            counters: NetCounters::default(),
            metrics,
            observer,
            flap_fifo: std::collections::HashMap::new(),
            config,
        };
        // One rebuild per dark window: the single victim under Wipe,
        // every process in turn under Rotation.
        for (victim, at) in sim.config.faultload.resets(sim.config.n) {
            sim.push(at, EventKind::Reset { p: victim });
        }
        sim
    }

    /// The virtual clock, nanoseconds.
    pub fn now(&self) -> Ns {
        self.now
    }

    /// A live correct process suitable for measurements.
    pub fn observer(&self) -> ProcessId {
        self.observer
    }

    /// Network counters accumulated so far.
    pub fn counters(&self) -> NetCounters {
        self.counters
    }

    /// The outputs of process `p`, with their virtual delivery times.
    pub fn outputs(&self, p: ProcessId) -> &[(Ns, Output)] {
        &self.outputs[p]
    }

    /// Direct access to a stack (statistics inspection).
    pub fn stack(&self, p: ProcessId) -> &Stack {
        &self.stacks[p]
    }

    /// Process `p`'s observability registry. Trace events carry virtual-
    /// time timestamps.
    pub fn metrics(&self, p: ProcessId) -> &Metrics {
        &self.metrics[p]
    }

    /// Freezes process `p`'s metrics into a [`MetricsSnapshot`].
    pub fn metrics_snapshot(&self, p: ProcessId) -> MetricsSnapshot {
        self.metrics[p].snapshot()
    }

    /// Schedules a service request at virtual time `t`.
    ///
    /// # Panics
    ///
    /// Panics when targeting a crashed process.
    pub fn schedule(&mut self, t: Ns, p: ProcessId, action: Action) {
        assert!(
            self.config.faultload.participates(p),
            "cannot invoke a crashed process"
        );
        assert!(
            !self.config.faultload.wiped(p, t),
            "cannot invoke a process inside its wipe window"
        );
        self.push(t, EventKind::Invoke { p, action });
    }

    fn push(&mut self, time: Ns, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.events.push(Reverse(Event { time, seq, kind }));
    }

    /// Feeds a stack step's messages into the network and records its
    /// outputs.
    fn absorb(&mut self, p: ProcessId, step: StackStep) {
        let now = self.now;
        for out in step.messages {
            match out.target {
                Target::All => {
                    for to in 0..self.config.n {
                        self.send_frame(now, p, to, out.message.clone());
                    }
                }
                Target::One(to) => self.send_frame(now, p, to, out.message.clone()),
            }
        }
        for o in step.outputs {
            self.outputs[p].push((now, o));
        }
    }

    fn classify(&mut self, frame: &Bytes) {
        match classify_broadcast_init(frame) {
            Some(Purpose::Payload) => self.counters.payload_broadcasts += 1,
            Some(Purpose::Agreement) => self.counters.agreement_broadcasts += 1,
            Some(Purpose::Standalone) => self.counters.standalone_broadcasts += 1,
            None => {}
        }
    }

    fn send_frame(&mut self, mut now: Ns, from: ProcessId, to: ProcessId, frame: Bytes) {
        // A timing attacker (Faultload::Slow) holds its frames back.
        now += self.config.faultload.send_delay(from);
        self.metrics[from].transport_frames_sent.inc();
        self.metrics[from]
            .transport_bytes_sent
            .add(frame.len() as u64);
        if to == from {
            // Loopback: no NIC involvement (doesn't count as network
            // traffic, but broadcast instances are still classified so
            // the observer counts its own broadcasts exactly once).
            if to == self.observer {
                self.classify(&frame);
            }
            let t = self.lan.loopback(now);
            self.pending_rx[from] += 1;
            self.push(t, EventKind::Deliver { from, to, frame });
            return;
        }
        let tx = self.lan.transmit(now, from, to, frame.len());
        // A flapping link (Faultload::LinkFlap) holds frames that land in
        // an outage window until the link resumes — delay, not loss,
        // mirroring the real mesh's self-healing session layer. Arrivals
        // are clamped monotone per link so the held frames keep FIFO
        // order, exactly as in-order retransmission would deliver them.
        let mut arrival = self.config.faultload.flap_arrival(from, to, tx.arrival);
        if matches!(self.config.faultload, Faultload::LinkFlap { .. }) {
            let last = self.flap_fifo.entry((from, to)).or_insert(0);
            arrival = arrival.max(*last);
            *last = arrival;
        }
        self.push(arrival, EventKind::Arrive { from, to, frame });
    }

    /// Runs until the event queue is empty.
    ///
    /// # Panics
    ///
    /// Panics after 200 million events (runaway guard).
    pub fn run(&mut self) {
        let mut processed: u64 = 0;
        while let Some(Reverse(ev)) = self.events.pop() {
            processed += 1;
            assert!(processed < 200_000_000, "runaway simulation");
            debug_assert!(ev.time >= self.now, "time went backwards");
            self.now = ev.time;
            match ev.kind {
                EventKind::Arrive { from, to, frame } => {
                    if !self.config.faultload.participates(to)
                        || self.config.faultload.wiped(to, ev.time)
                    {
                        continue; // frames into a crashed host vanish
                    }
                    self.counters.frames += 1;
                    self.counters.wire_bytes += self
                        .config
                        .calibration
                        .wire_size(frame.len(), self.config.authenticated)
                        as u64;
                    if to == self.observer {
                        self.classify(&frame);
                    }
                    let done = self.lan.receive(ev.time, to, frame.len());
                    self.pending_rx[to] += 1;
                    self.push(done, EventKind::Deliver { from, to, frame });
                }
                EventKind::Deliver { from, to, frame } => {
                    if !self.config.faultload.participates(to) {
                        continue;
                    }
                    if self.config.faultload.wiped(to, ev.time) {
                        // Arrived just before the crash, would have been
                        // processed inside the window: lost with the host.
                        self.pending_rx[to] -= 1;
                        continue;
                    }
                    self.pending_rx[to] -= 1;
                    // Trace events carry the virtual delivery time.
                    self.metrics[to].set_time(ev.time);
                    self.metrics[to].transport_frames_recv.inc();
                    self.metrics[to]
                        .transport_bytes_recv
                        .add(frame.len() as u64);
                    let step = self.stacks[to].handle_frame(from, frame);
                    self.absorb(to, step);
                    // Single-threaded model: once the inbound queue is
                    // drained, the protocol thread continues its deferred
                    // agreement task.
                    if self.pending_rx[to] == 0 {
                        let step = self.stacks[to].poll_all();
                        self.absorb(to, step);
                    }
                }
                EventKind::Invoke { p, action } => {
                    self.metrics[p].set_time(ev.time);
                    let step = self.invoke(p, action);
                    self.absorb(p, step);
                }
                EventKind::Reset { p } => {
                    // The wiped process returns: same identity and keys,
                    // zero protocol state. Whatever was queued for the
                    // old incarnation died with it at the crash edge.
                    let group = Group::new(self.config.n).expect("n >= 4");
                    let table = KeyTable::dealer(self.config.n, self.config.seed);
                    let mut stack = fresh_stack(&self.config, group, &table, p);
                    stack.set_metrics(self.metrics[p].clone());
                    self.stacks[p] = stack;
                }
            }
        }
    }

    fn invoke(&mut self, p: ProcessId, action: Action) -> StackStep {
        let stack = &mut self.stacks[p];
        match action {
            Action::AbBroadcast(payload) => stack.ab_broadcast(0, payload).1,
            Action::RbBroadcast(payload) => stack.rb_broadcast(payload).1,
            Action::EbBroadcast(payload) => stack.eb_broadcast(payload).1,
            Action::BcPropose { tag, value } => {
                stack.bc_propose(tag, value).expect("unique tag per run")
            }
            Action::MvcPropose { tag, value } => {
                stack.mvc_propose(tag, value).expect("unique tag per run")
            }
            Action::MvcProposeBottom { tag } => {
                stack.mvc_propose_bottom(tag).expect("unique tag per run")
            }
            Action::VcPropose { tag, value } => {
                stack.vc_propose(tag, value).expect("unique tag per run")
            }
        }
    }

    /// The virtual times at which process `p` a-delivered messages, in
    /// delivery order.
    pub fn ab_delivery_times(&self, p: ProcessId) -> Vec<Ns> {
        self.outputs[p]
            .iter()
            .filter(|(_, o)| matches!(o, Output::AbDelivered { .. }))
            .map(|(t, _)| *t)
            .collect()
    }

    /// The first output of `p` matching `pred`, with its time.
    pub fn first_output(
        &self,
        p: ProcessId,
        pred: impl Fn(&Output) -> bool,
    ) -> Option<(Ns, &Output)> {
        self.outputs[p]
            .iter()
            .find(|(_, o)| pred(o))
            .map(|(t, o)| (*t, o))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rb_broadcast_delivers_with_latency() {
        let mut sim = SimCluster::new(SimConfig::paper_testbed(1));
        sim.schedule(0, 0, Action::RbBroadcast(Bytes::from_static(b"0123456789")));
        sim.run();
        for p in 0..4 {
            let (t, _) = sim
                .first_output(p, |o| matches!(o, Output::RbDelivered { .. }))
                .unwrap_or_else(|| panic!("process {p} delivered nothing"));
            assert!(t > 0, "virtual time advanced");
            assert!(t < 50_000_000, "delivery within 50 ms of virtual time");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut sim = SimCluster::new(SimConfig::paper_testbed(seed));
            sim.schedule(0, 0, Action::RbBroadcast(Bytes::from_static(b"d")));
            sim.run();
            sim.first_output(0, |o| matches!(o, Output::RbDelivered { .. }))
                .unwrap()
                .0
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn auth_adds_latency() {
        let latency = |auth: bool| {
            let config = if auth {
                SimConfig::paper_testbed(3)
            } else {
                SimConfig::paper_testbed(3).without_auth()
            };
            let mut sim = SimCluster::new(config);
            sim.schedule(0, 0, Action::RbBroadcast(Bytes::from_static(b"0123456789")));
            sim.run();
            sim.first_output(1, |o| matches!(o, Output::RbDelivered { .. }))
                .unwrap()
                .0
        };
        assert!(latency(true) > latency(false));
    }

    #[test]
    fn bc_decides_in_simulation() {
        let mut sim = SimCluster::new(SimConfig::paper_testbed(7));
        for p in 0..4 {
            sim.schedule(
                0,
                p,
                Action::BcPropose {
                    tag: 1,
                    value: true,
                },
            );
        }
        sim.run();
        for p in 0..4 {
            let (_, o) = sim
                .first_output(p, |o| matches!(o, Output::BcDecided { .. }))
                .expect("decided");
            assert!(matches!(o, Output::BcDecided { decision: true, .. }));
        }
    }

    #[test]
    fn ab_burst_delivers_everything_in_order() {
        let mut sim = SimCluster::new(SimConfig::paper_testbed(9));
        for p in 0..4 {
            for k in 0..5 {
                sim.schedule(
                    1000 * k as u64,
                    p,
                    Action::AbBroadcast(Bytes::copy_from_slice(format!("m{p}:{k}").as_bytes())),
                );
            }
        }
        sim.run();
        let ids = |p: usize| -> Vec<ritas::ab::MsgId> {
            sim.outputs(p)
                .iter()
                .filter_map(|(_, o)| match o {
                    Output::AbDelivered { delivery, .. } => Some(delivery.id),
                    _ => None,
                })
                .collect()
        };
        let order0 = ids(0);
        assert_eq!(order0.len(), 20);
        for p in 1..4 {
            assert_eq!(ids(p), order0, "order diverged at {p}");
        }
    }

    #[test]
    fn fail_stop_crashed_process_is_silent() {
        let config = SimConfig::paper_testbed(11).with_faultload(Faultload::FailStop { victim: 3 });
        let mut sim = SimCluster::new(config);
        for p in 0..3 {
            sim.schedule(0, p, Action::AbBroadcast(Bytes::from_static(b"x")));
        }
        sim.run();
        assert!(sim.outputs(3).is_empty());
        assert_eq!(sim.ab_delivery_times(0).len(), 3);
    }

    #[test]
    fn wipe_rejoin_keeps_the_correct_majority_live() {
        // A stream of atomic broadcasts from process 0 spans the
        // victim's dark window: crash at 2 ms, amnesiac comeback at
        // 30 ms. The correct majority (n − f = 3) must a-deliver every
        // message as if nothing happened, and the returnee — zero
        // protocol state, no recovery pipeline in the protocol-layer
        // sim — must be tolerated like any other single fault.
        let wipe = Faultload::Wipe {
            victim: 3,
            down_from_ns: 2_000_000,
            down_until_ns: 30_000_000,
        };
        let config = SimConfig::paper_testbed(17).with_faultload(wipe);
        let mut sim = SimCluster::new(config);
        let k = 8u64;
        for i in 0..k {
            sim.schedule(
                i * 4_000_000,
                0,
                Action::AbBroadcast(Bytes::from(format!("wipe-{i}"))),
            );
        }
        sim.run();
        assert_ne!(sim.observer(), 3, "observer must not be the victim");
        for p in 0..3 {
            assert_eq!(sim.ab_delivery_times(p).len(), k as usize, "process {p}");
        }
        // The wiped process misses deliveries: protocol-layer catch-up
        // alone is impossible, which is exactly why the recovery
        // pipeline (snapshots + state transfer) exists above this sim.
        assert!(
            sim.ab_delivery_times(3).len() < k as usize,
            "an amnesiac rejoiner cannot have caught up by itself"
        );
    }

    #[test]
    fn rotation_keeps_a_quorum_live_through_a_full_cycle() {
        // Proactive recovery sweeps all four processes, one 25 ms dark
        // window per 150 ms slot: p0 [2,27), p1 [152,177), p2 [302,327),
        // p3 [452,477) ms. A broadcast stream from process 0 — whose own
        // slot closes before its first send — runs across p1's window.
        // An AB instance in this calibration concludes in ~21 ms, well
        // inside one slot, so every instance begins while a full-state
        // quorum (n − f = 3) is live and must conclude. The burst ends
        // before p2's slot: once two processes have rotated, only two
        // full-state members remain and protocol-layer catch-up alone
        // cannot rebuild the quorum — that is the recovery pipeline's
        // job (snapshots + state transfer, exercised above this sim),
        // same caveat as the wipe test's amnesiac returnee.
        let rotation = Faultload::Rotation {
            start_ns: 2_000_000,
            interval_ns: 150_000_000,
            down_ns: 25_000_000,
        };
        // The scheduler invariant, by construction of the faultload:
        // never two dark processes at once (sampled densely over the
        // whole cycle).
        for t in (0..600_000_000u64).step_by(500_000) {
            let dark = (0..4).filter(|&p| rotation.wiped(p, t)).count();
            assert!(dark <= 1, "{dark} processes dark at t = {t} ns");
        }
        let config = SimConfig::paper_testbed(19).with_faultload(rotation);
        let mut sim = SimCluster::new(config);
        let k = 8u64;
        for i in 0..k {
            sim.schedule(
                40_000_000 + i * 20_000_000,
                0,
                Action::AbBroadcast(Bytes::from(format!("rot-{i}"))),
            );
        }
        sim.run();
        // The run spans the full rotation: the last returnee (p3) was
        // rebuilt before the event queue drained.
        assert!(
            sim.now() >= 477_000_000,
            "cycle incomplete at {}",
            sim.now()
        );
        // The observer rotated before the burst: a rebuilt sender must
        // still a-deliver the entire stream.
        assert_eq!(sim.observer(), 0);
        assert_eq!(sim.ab_delivery_times(0).len(), k as usize);
        // p2 and p3 rotate after the stream concludes, so they deliver
        // everything first; p1 goes dark mid-stream and misses the
        // instances in flight across (and concluded after) its window.
        for p in 2..4 {
            assert_eq!(sim.ab_delivery_times(p).len(), k as usize, "process {p}");
        }
        let got = sim.ab_delivery_times(1).len();
        assert!(
            (1..k as usize).contains(&got),
            "mid-stream returnee delivered {got} of {k}"
        );
        // The group as a whole never loses quorum: ≥ 3 full-state
        // deliveries per message.
        let total: usize = (0..4).map(|p| sim.ab_delivery_times(p).len()).sum();
        assert!(
            total >= 3 * k as usize,
            "quorum lost during rotation: {total} total deliveries"
        );
    }

    #[test]
    fn byzantine_attacker_does_not_stop_deliveries() {
        let config =
            SimConfig::paper_testbed(13).with_faultload(Faultload::Byzantine { attacker: 3 });
        let mut sim = SimCluster::new(config);
        for p in 0..4 {
            sim.schedule(0, p, Action::AbBroadcast(Bytes::from_static(b"y")));
        }
        sim.run();
        // All four messages (the attacker's payload is legitimate; its
        // attack is at the consensus layer) reach every correct process.
        for p in 0..3 {
            assert_eq!(sim.ab_delivery_times(p).len(), 4, "process {p}");
        }
    }

    #[test]
    fn slow_process_cannot_delay_the_correct_majority() {
        // Extension X6: one process delays every send by 50 ms; the
        // asynchronous quorum waits (n − f) mean the other three decide
        // at the failure-free pace.
        let latency = |faultload: Faultload| {
            let config = SimConfig::paper_testbed(8).with_faultload(faultload);
            let mut sim = SimCluster::new(config);
            for p in 0..4 {
                sim.schedule(
                    0,
                    p,
                    Action::BcPropose {
                        tag: 1,
                        value: true,
                    },
                );
            }
            sim.run();
            sim.first_output(0, |o| matches!(o, Output::BcDecided { .. }))
                .expect("decided")
                .0
        };
        let baseline = latency(Faultload::FailureFree);
        let attacked = latency(Faultload::Slow {
            victim: 3,
            delay_ns: 50_000_000,
        });
        assert!(
            (attacked as f64) < (baseline as f64) * 1.25,
            "slow process delayed the majority: {attacked} vs {baseline}"
        );
    }

    #[test]
    fn wan_spread_changes_latency_deterministically() {
        let latency = |config: SimConfig| {
            let mut sim = SimCluster::new(config);
            sim.schedule(0, 0, Action::RbBroadcast(Bytes::from_static(b"wan")));
            sim.run();
            sim.first_output(1, |o| matches!(o, Output::RbDelivered { .. }))
                .unwrap()
                .0
        };
        let lan = latency(SimConfig::paper_testbed(4));
        let wan = latency(SimConfig::paper_testbed(4).with_wan_spread(5_000_000, 20_000_000));
        assert!(wan > lan + 5_000_000, "wan {wan} vs lan {lan}");
        // Deterministic per seed.
        assert_eq!(
            latency(SimConfig::paper_testbed(4).with_wan_spread(5_000_000, 20_000_000)),
            wan
        );
    }

    #[test]
    fn shared_coin_policy_flows_through() {
        let config = SimConfig::paper_testbed(6)
            .with_coin(ritas::stack::CoinPolicy::Shared { dealer_seed: 3 });
        let mut sim = SimCluster::new(config);
        for p in 0..4 {
            sim.schedule(
                0,
                p,
                Action::BcPropose {
                    tag: 2,
                    value: p < 2,
                },
            );
        }
        sim.run();
        let mut decisions = Vec::new();
        for p in 0..4 {
            let (_, o) = sim
                .first_output(p, |o| matches!(o, Output::BcDecided { .. }))
                .expect("decided");
            if let Output::BcDecided { decision, .. } = o {
                decisions.push(*decision);
            }
            assert!(sim.stack(p).bc_decided_round(2).is_some());
        }
        assert!(decisions.iter().all(|d| *d == decisions[0]));
    }

    #[test]
    fn counters_accumulate() {
        let mut sim = SimCluster::new(SimConfig::paper_testbed(15));
        sim.schedule(0, 0, Action::AbBroadcast(Bytes::from_static(b"c")));
        sim.run();
        let c = sim.counters();
        assert!(c.frames > 0);
        assert!(c.wire_bytes > c.frames); // every frame has headers
        assert_eq!(c.payload_broadcasts, 1);
        assert!(c.agreement_broadcasts > 0);
    }
}
