//! Frame classification and summary statistics for the evaluation.
//!
//! Figure 7 of the paper reports the *relative cost of agreement*: out of
//! all reliable/echo broadcasts executed while delivering a burst, how
//! many belonged to the agreement machinery rather than to payload
//! (`AB_MSG`) dissemination. A broadcast instance is identified on the
//! wire by its `INIT` message, so the classifier walks a frame's typed
//! envelope down to the innermost broadcast primitive and reports whether
//! the frame is such an `INIT` and which side it serves.

use bytes::Bytes;
use ritas::ab::AbMessage;
use ritas::bc::BcBody;
use ritas::codec::Reader;
use ritas::codec::WireMessage;
use ritas::eb::EbMessage;
use ritas::mvc::{MvcMessage, VectBody};
use ritas::rb::RbMessage;
use ritas::stack::InstanceKey;

/// What a broadcast-instance `INIT` serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Purpose {
    /// Dissemination of an atomically broadcast payload (`AB_MSG`).
    Payload,
    /// The agreement machinery (`AB_VECT`, consensus INIT/VECT, binary
    /// consensus step broadcasts).
    Agreement,
    /// A top-level broadcast outside an atomic broadcast session.
    Standalone,
}

/// If `frame` is the `INIT` of a reliable or echo broadcast instance,
/// returns its purpose; otherwise `None`.
///
/// Counting the `INIT`s that *arrive at one fixed process* counts
/// broadcast instances exactly once each (every instance delivers one
/// `INIT` per destination).
pub fn classify_broadcast_init(frame: &Bytes) -> Option<Purpose> {
    let mut r = Reader::new(frame);
    let key = InstanceKey::decode(&mut r).ok()?;
    let body = frame.slice(frame.len() - r.remaining()..);
    match key {
        InstanceKey::Rb { .. } => match RbMessage::from_bytes(&body).ok()? {
            RbMessage::Init(_) => Some(Purpose::Standalone),
            _ => None,
        },
        InstanceKey::Eb { .. } => match EbMessage::from_bytes(&body).ok()? {
            EbMessage::Init(_) => Some(Purpose::Standalone),
            _ => None,
        },
        InstanceKey::Bc { .. } => match BcMessageInit::check_bc(&body) {
            true => Some(Purpose::Standalone),
            false => None,
        },
        InstanceKey::Mvc { .. } => match MvcMessage::from_bytes(&body).ok()? {
            m if mvc_is_init(&m) => Some(Purpose::Standalone),
            _ => None,
        },
        InstanceKey::Vc { .. } => {
            // Vector consensus wraps proposals (RBC) and per-round MVCs.
            use ritas::vc::VcMessage;
            match VcMessage::from_bytes(&body).ok()? {
                VcMessage::Prop {
                    inner: RbMessage::Init(_),
                    ..
                } => Some(Purpose::Standalone),
                VcMessage::Round { inner, .. } if mvc_is_init(&inner) => Some(Purpose::Standalone),
                _ => None,
            }
        }
        // State-transfer traffic is point-to-point request/response,
        // not a broadcast instance.
        InstanceKey::Xfer => None,
        InstanceKey::Ab { .. } => match AbMessage::from_bytes(&body).ok()? {
            AbMessage::Msg {
                inner: RbMessage::Init(_),
                ..
            } => Some(Purpose::Payload),
            AbMessage::Vect {
                inner: RbMessage::Init(_),
                ..
            } => Some(Purpose::Agreement),
            AbMessage::Agree { inner, .. } if mvc_is_init(&inner) => Some(Purpose::Agreement),
            _ => None,
        },
    }
}

struct BcMessageInit;

impl BcMessageInit {
    fn check_bc(body: &Bytes) -> bool {
        matches!(
            ritas::bc::BcMessage::from_bytes(body),
            Ok(ritas::bc::BcMessage {
                body: BcBody::Rbc(RbMessage::Init(_)),
                ..
            })
        )
    }
}

/// Whether an MVC message is the `INIT` of one of its child broadcast
/// instances (INIT RBC, VECT echo/reliable broadcast, or a binary
/// consensus step broadcast).
fn mvc_is_init(m: &MvcMessage) -> bool {
    match m {
        MvcMessage::Init {
            inner: RbMessage::Init(_),
            ..
        } => true,
        MvcMessage::Vect {
            inner: VectBody::Echo(EbMessage::Init(_)),
            ..
        } => true,
        MvcMessage::Vect {
            inner: VectBody::Reliable(RbMessage::Init(_)),
            ..
        } => true,
        MvcMessage::Bin(bc) => matches!(&bc.body, BcBody::Rbc(RbMessage::Init(_))),
        _ => false,
    }
}

/// Running counters maintained by the simulator network.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetCounters {
    /// Frames that traversed the network (arrivals at live hosts).
    pub frames: u64,
    /// Total wire bytes of those frames.
    pub wire_bytes: u64,
    /// Payload-side broadcast instances (counted at the observer host).
    pub payload_broadcasts: u64,
    /// Agreement-side broadcast instances (counted at the observer host).
    pub agreement_broadcasts: u64,
    /// Standalone broadcast instances (non-AB experiments).
    pub standalone_broadcasts: u64,
}

impl NetCounters {
    /// Relative cost of agreement (Figure 7): agreement broadcasts over
    /// all payload+agreement broadcasts. `None` when nothing was counted.
    pub fn agreement_ratio(&self) -> Option<f64> {
        let total = self.payload_broadcasts + self.agreement_broadcasts;
        if total == 0 {
            None
        } else {
            Some(self.agreement_broadcasts as f64 / total as f64)
        }
    }
}

/// Mean of a sample.
pub fn mean(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().sum::<f64>() / samples.len() as f64
}

/// Sample standard deviation.
pub fn stddev(samples: &[f64]) -> f64 {
    if samples.len() < 2 {
        return 0.0;
    }
    let m = mean(samples);
    (samples.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (samples.len() - 1) as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ritas::codec::Writer;

    fn frame(key: InstanceKey, m: &impl WireMessage) -> Bytes {
        let mut w = Writer::new();
        key.encode(&mut w);
        m.encode(&mut w);
        w.freeze()
    }

    #[test]
    fn ab_msg_init_is_payload() {
        let f = frame(
            InstanceKey::Ab { session: 0 },
            &AbMessage::Msg {
                id: ritas::ab::MsgId { sender: 0, rbid: 0 },
                inner: RbMessage::Init(Bytes::from_static(b"m")),
            },
        );
        assert_eq!(classify_broadcast_init(&f), Some(Purpose::Payload));
    }

    #[test]
    fn ab_msg_echo_is_not_an_instance() {
        let f = frame(
            InstanceKey::Ab { session: 0 },
            &AbMessage::Msg {
                id: ritas::ab::MsgId { sender: 0, rbid: 0 },
                inner: RbMessage::Echo(Bytes::from_static(b"m")),
            },
        );
        assert_eq!(classify_broadcast_init(&f), None);
    }

    #[test]
    fn ab_vect_init_is_agreement() {
        let f = frame(
            InstanceKey::Ab { session: 0 },
            &AbMessage::Vect {
                origin: 1,
                round: 0,
                inner: RbMessage::Init(Bytes::from_static(b"ids")),
            },
        );
        assert_eq!(classify_broadcast_init(&f), Some(Purpose::Agreement));
    }

    #[test]
    fn consensus_inits_inside_ab_are_agreement() {
        let mvc_init = AbMessage::Agree {
            round: 0,
            inner: MvcMessage::Init {
                origin: 2,
                inner: RbMessage::Init(Bytes::from_static(b"w")),
            },
        };
        let f = frame(InstanceKey::Ab { session: 0 }, &mvc_init);
        assert_eq!(classify_broadcast_init(&f), Some(Purpose::Agreement));

        let bc_init = AbMessage::Agree {
            round: 0,
            inner: MvcMessage::Bin(ritas::bc::BcMessage {
                round: 1,
                step: 1,
                origin: 0,
                body: BcBody::Rbc(RbMessage::Init(Bytes::from_static(&[1]))),
            }),
        };
        let f = frame(InstanceKey::Ab { session: 0 }, &bc_init);
        assert_eq!(classify_broadcast_init(&f), Some(Purpose::Agreement));

        let vect_init = AbMessage::Agree {
            round: 0,
            inner: MvcMessage::Vect {
                origin: 1,
                inner: VectBody::Echo(EbMessage::Init(Bytes::from_static(b"v"))),
            },
        };
        let f = frame(InstanceKey::Ab { session: 0 }, &vect_init);
        assert_eq!(classify_broadcast_init(&f), Some(Purpose::Agreement));
    }

    #[test]
    fn standalone_rb_init() {
        let f = frame(
            InstanceKey::Rb { sender: 0, seq: 0 },
            &RbMessage::Init(Bytes::from_static(b"m")),
        );
        assert_eq!(classify_broadcast_init(&f), Some(Purpose::Standalone));
    }

    #[test]
    fn garbage_classifies_as_none() {
        assert_eq!(
            classify_broadcast_init(&Bytes::from_static(&[0xff, 1, 2])),
            None
        );
    }

    #[test]
    fn agreement_ratio() {
        let c = NetCounters {
            payload_broadcasts: 4,
            agreement_broadcasts: 48,
            ..NetCounters::default()
        };
        let r = c.agreement_ratio().unwrap();
        assert!((r - 48.0 / 52.0).abs() < 1e-9);
        assert_eq!(NetCounters::default().agreement_ratio(), None);
    }

    #[test]
    fn summary_stats() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert!(stddev(&[1.0, 1.0, 1.0]) < 1e-12);
        assert!(stddev(&[1.0, 3.0]) > 1.0);
        assert_eq!(mean(&[]), 0.0);
    }
}
