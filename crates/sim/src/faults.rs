//! The faultloads of the paper's evaluation (§4.2).

use ritas::ProcessId;

/// What, if anything, goes wrong during an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Faultload {
    /// All processes behave correctly.
    #[default]
    FailureFree,
    /// One process crashes before the measurements are taken (the
    /// maximum for `n = 4`, since `n ≥ 3f + 1`).
    FailStop {
        /// The crashed process.
        victim: ProcessId,
    },
    /// One process permanently tries to disrupt the protocols: it always
    /// proposes 0 at the binary consensus layer and proposes the default
    /// value ⊥ in the multi-valued consensus INIT and VECT messages.
    Byzantine {
        /// The attacking process.
        attacker: ProcessId,
    },
    /// One process delays every frame it sends by a fixed amount — a
    /// timing attack. The stack makes **no timing assumptions** (every
    /// wait is for `n − f` messages), so a single slow process must not
    /// slow the correct majority at all (extension experiment X6).
    Slow {
        /// The slowed process.
        victim: ProcessId,
        /// Added delay per sent frame, nanoseconds.
        delay_ns: u64,
    },
    /// One point-to-point link flaps: every `period_ns` it goes dark for
    /// `outage_ns`, in both directions. The simulator models the *healed*
    /// channel the real mesh's session layer provides (reconnect +
    /// retransmit): frames hitting an outage window are **delayed until
    /// the link is restored**, never lost — the discrete-event twin of
    /// extension experiment X7 (link chaos).
    LinkFlap {
        /// The flapping link, as an unordered process pair.
        victim_link: (ProcessId, ProcessId),
        /// Flap cycle length, nanoseconds (outages start each period).
        period_ns: u64,
        /// Outage length per cycle, nanoseconds (must be `< period_ns`).
        outage_ns: u64,
    },
    /// One process fail-stops mid-run and comes back later **wiped**:
    /// its protocol stack is rebuilt from scratch at the rejoin time
    /// (same identity and keys, zero protocol state) — the
    /// discrete-event twin of the kill/wipe/rejoin chaos scenario. The
    /// protocol layer alone cannot re-integrate the amnesiac (that is
    /// the recovery pipeline's job, `ritas::rsm`); what the simulator
    /// checks is that the correct majority is unaffected throughout and
    /// the returnee is tolerated like any other single fault.
    Wipe {
        /// The wiped process.
        victim: ProcessId,
        /// Virtual time the victim crashes, nanoseconds.
        down_from_ns: u64,
        /// Virtual time the victim returns wiped, nanoseconds
        /// (must be `> down_from_ns`).
        down_until_ns: u64,
    },
    /// Proactive recovery: **every** process is wiped and rejoined in
    /// turn, one slot at a time — the discrete-event twin of the rotation
    /// scheduler (`ritas::recovery::scheduler`). Process `p`'s dark
    /// window is `[start_ns + p·interval_ns, start_ns + p·interval_ns +
    /// down_ns)`; `down_ns ≤ interval_ns` makes the windows disjoint, so
    /// at most one process is non-Live because of rotation at any
    /// instant — the scheduler's core invariant, by construction here
    /// and checked empirically by the property test.
    Rotation {
        /// Virtual time the first slot (process 0) opens, nanoseconds.
        start_ns: u64,
        /// Slot pitch, nanoseconds (process `p` goes dark at
        /// `start_ns + p·interval_ns`; must be `> 0`).
        interval_ns: u64,
        /// Dark time per slot, nanoseconds
        /// (`0 < down_ns ≤ interval_ns`).
        down_ns: u64,
    },
}

impl Faultload {
    /// Whether process `p` participates at all.
    pub fn participates(&self, p: ProcessId) -> bool {
        !matches!(self, Faultload::FailStop { victim } if *victim == p)
    }

    /// Whether process `p` runs the Byzantine strategy.
    pub fn is_byzantine(&self, p: ProcessId) -> bool {
        matches!(self, Faultload::Byzantine { attacker } if *attacker == p)
    }

    /// The processes that send application traffic in a burst experiment
    /// (the paper has each *correct* process send `k / senders` messages;
    /// the Byzantine process sends its share too — its attack is at the
    /// consensus layers).
    pub fn senders(&self, n: usize) -> Vec<ProcessId> {
        (0..n).filter(|p| self.participates(*p)).collect()
    }

    /// Extra send delay imposed on process `p`'s frames, if any.
    pub fn send_delay(&self, p: ProcessId) -> u64 {
        match self {
            Faultload::Slow { victim, delay_ns } if *victim == p => *delay_ns,
            _ => 0,
        }
    }

    /// The canonical CLI specification string of this faultload — the
    /// exact inverse of [`FromStr`](std::str::FromStr): every faultload
    /// satisfies `f.spec().parse() == Ok(f)`. Used to echo a run's
    /// configuration into reports in replayable form.
    pub fn spec(&self) -> String {
        match self {
            Faultload::FailureFree => "failure-free".to_string(),
            Faultload::FailStop { victim } => format!("fail-stop:{victim}"),
            Faultload::Byzantine { attacker } => format!("byzantine:{attacker}"),
            Faultload::Slow { victim, delay_ns } => format!("slow:{victim}:{delay_ns}"),
            Faultload::LinkFlap {
                victim_link: (a, b),
                period_ns,
                outage_ns,
            } => format!("link-flap:{a}-{b}:{period_ns}:{outage_ns}"),
            Faultload::Wipe {
                victim,
                down_from_ns,
                down_until_ns,
            } => format!("wipe:{victim}:{down_from_ns}:{down_until_ns}"),
            Faultload::Rotation {
                start_ns,
                interval_ns,
                down_ns,
            } => format!("rotation:{start_ns}:{interval_ns}:{down_ns}"),
        }
    }

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Faultload::FailureFree => "failure-free",
            Faultload::FailStop { .. } => "fail-stop",
            Faultload::Byzantine { .. } => "byzantine",
            Faultload::Slow { .. } => "slow-process",
            Faultload::LinkFlap { .. } => "link-flap",
            Faultload::Wipe { .. } => "wipe-rejoin",
            Faultload::Rotation { .. } => "rotation",
        }
    }

    /// Whether process `p` is dark — crashed, not yet rejoined — at
    /// virtual time `t` (only ever true under [`Faultload::Wipe`] and
    /// [`Faultload::Rotation`]).
    pub fn wiped(&self, p: ProcessId, t: u64) -> bool {
        match self {
            Faultload::Wipe {
                victim,
                down_from_ns,
                down_until_ns,
            } => *victim == p && (*down_from_ns..*down_until_ns).contains(&t),
            Faultload::Rotation {
                start_ns,
                interval_ns,
                down_ns,
            } => {
                let begin = start_ns + p as u64 * interval_ns;
                (begin..begin + down_ns).contains(&t)
            }
            _ => false,
        }
    }

    /// Under [`Faultload::Wipe`], the victim and its rejoin time.
    pub fn wipe_rejoin_at(&self) -> Option<(ProcessId, u64)> {
        match self {
            Faultload::Wipe {
                victim,
                down_until_ns,
                ..
            } => Some((*victim, *down_until_ns)),
            _ => None,
        }
    }

    /// Every `(process, rejoin_time_ns)` rebuild the simulator must
    /// schedule: the single victim under [`Faultload::Wipe`], one per
    /// process under [`Faultload::Rotation`], none otherwise.
    pub fn resets(&self, n: usize) -> Vec<(ProcessId, u64)> {
        match self {
            Faultload::Wipe {
                victim,
                down_until_ns,
                ..
            } => vec![(*victim, *down_until_ns)],
            Faultload::Rotation {
                start_ns,
                interval_ns,
                down_ns,
            } => (0..n)
                .map(|p| (p, start_ns + p as u64 * interval_ns + down_ns))
                .collect(),
            _ => Vec::new(),
        }
    }

    /// Arrival-time adjustment for a frame from `from` to `to` that the
    /// network would deliver at `arrival` (nanoseconds): if the frame
    /// lands inside one of the flapping link's outage windows it is held
    /// until the window ends (plus a small resync cost, standing in for
    /// the real mesh's reconnect handshake + retransmission); otherwise
    /// it is unchanged. Delay-not-loss mirrors the self-healing TCP
    /// session layer, whose retransmit buffer turns outages into latency.
    pub fn flap_arrival(&self, from: ProcessId, to: ProcessId, arrival: u64) -> u64 {
        /// Session-resume cost appended to every outage window.
        const RESYNC_NS: u64 = 50_000;
        let Faultload::LinkFlap {
            victim_link: (a, b),
            period_ns,
            outage_ns,
        } = self
        else {
            return arrival;
        };
        let hit = (from == *a && to == *b) || (from == *b && to == *a);
        if !hit || *period_ns == 0 {
            return arrival;
        }
        let phase = arrival % *period_ns;
        if phase < *outage_ns {
            // Held by the outage: delivered when the link resumes.
            arrival - phase + *outage_ns + RESYNC_NS
        } else {
            arrival
        }
    }
}

/// Error produced when parsing a faultload specification string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultloadParseError(String);

impl core::fmt::Display for FaultloadParseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "invalid faultload {:?} (expected failure-free | fail-stop:V | byzantine:A | \
             slow:V:DELAY_NS | link-flap:A-B:PERIOD_NS:OUTAGE_NS | wipe:V:FROM_NS:UNTIL_NS | \
             rotation:START_NS:INTERVAL_NS:DOWN_NS)",
            self.0
        )
    }
}

impl std::error::Error for FaultloadParseError {}

impl std::str::FromStr for Faultload {
    type Err = FaultloadParseError;

    /// Parses the CLI faultload syntax used by the bench binaries:
    /// `failure-free`, `fail-stop:V`, `byzantine:A`, `slow:V:DELAY_NS`,
    /// `link-flap:A-B:PERIOD_NS:OUTAGE_NS`, `wipe:V:FROM_NS:UNTIL_NS`
    /// or `rotation:START_NS:INTERVAL_NS:DOWN_NS`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || FaultloadParseError(s.to_string());
        let mut parts = s.split(':');
        let kind = parts.next().ok_or_else(err)?;
        let mut arg = || parts.next().ok_or_else(err);
        let load = match kind {
            "failure-free" => Faultload::FailureFree,
            "fail-stop" => Faultload::FailStop {
                victim: arg()?.parse().map_err(|_| err())?,
            },
            "byzantine" => Faultload::Byzantine {
                attacker: arg()?.parse().map_err(|_| err())?,
            },
            "slow" => Faultload::Slow {
                victim: arg()?.parse().map_err(|_| err())?,
                delay_ns: arg()?.parse().map_err(|_| err())?,
            },
            "link-flap" => {
                let link = arg()?;
                let (a, b) = link.split_once('-').ok_or_else(err)?;
                let period_ns: u64 = arg()?.parse().map_err(|_| err())?;
                let outage_ns: u64 = arg()?.parse().map_err(|_| err())?;
                if period_ns == 0 || outage_ns == 0 || outage_ns >= period_ns {
                    return Err(err());
                }
                Faultload::LinkFlap {
                    victim_link: (a.parse().map_err(|_| err())?, b.parse().map_err(|_| err())?),
                    period_ns,
                    outage_ns,
                }
            }
            "wipe" => {
                let victim = arg()?.parse().map_err(|_| err())?;
                let down_from_ns: u64 = arg()?.parse().map_err(|_| err())?;
                let down_until_ns: u64 = arg()?.parse().map_err(|_| err())?;
                if down_from_ns >= down_until_ns {
                    return Err(err());
                }
                Faultload::Wipe {
                    victim,
                    down_from_ns,
                    down_until_ns,
                }
            }
            "rotation" => {
                let start_ns: u64 = arg()?.parse().map_err(|_| err())?;
                let interval_ns: u64 = arg()?.parse().map_err(|_| err())?;
                let down_ns: u64 = arg()?.parse().map_err(|_| err())?;
                if interval_ns == 0 || down_ns == 0 || down_ns > interval_ns {
                    return Err(err());
                }
                Faultload::Rotation {
                    start_ns,
                    interval_ns,
                    down_ns,
                }
            }
            _ => return Err(err()),
        };
        if parts.next().is_some() {
            return Err(err());
        }
        Ok(load)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fail_stop_excludes_victim() {
        let f = Faultload::FailStop { victim: 2 };
        assert!(!f.participates(2));
        assert!(f.participates(1));
        assert_eq!(f.senders(4), vec![0, 1, 3]);
    }

    #[test]
    fn byzantine_participates_but_is_flagged() {
        let f = Faultload::Byzantine { attacker: 3 };
        assert!(f.participates(3));
        assert!(f.is_byzantine(3));
        assert!(!f.is_byzantine(0));
        assert_eq!(f.senders(4).len(), 4);
    }

    #[test]
    fn labels() {
        assert_eq!(Faultload::FailureFree.label(), "failure-free");
        assert_eq!(Faultload::FailStop { victim: 0 }.label(), "fail-stop");
        assert_eq!(Faultload::Byzantine { attacker: 0 }.label(), "byzantine");
        assert_eq!(
            Faultload::Slow {
                victim: 0,
                delay_ns: 1
            }
            .label(),
            "slow-process"
        );
        assert_eq!(
            Faultload::Wipe {
                victim: 0,
                down_from_ns: 1,
                down_until_ns: 2
            }
            .label(),
            "wipe-rejoin"
        );
    }

    #[test]
    fn wipe_darkens_only_the_victim_only_in_window() {
        let f = Faultload::Wipe {
            victim: 3,
            down_from_ns: 1_000,
            down_until_ns: 5_000,
        };
        // Overall participant (it is alive at the start and rejoins),
        // never Byzantine, no send delay.
        assert!(f.participates(3));
        assert!(!f.is_byzantine(3));
        assert_eq!(f.send_delay(3), 0);
        // Dark exactly inside the half-open window.
        assert!(!f.wiped(3, 999));
        assert!(f.wiped(3, 1_000));
        assert!(f.wiped(3, 4_999));
        assert!(!f.wiped(3, 5_000));
        // Other processes are never dark; other faultloads never wipe.
        assert!(!f.wiped(0, 2_000));
        assert!(!Faultload::FailureFree.wiped(3, 2_000));
        assert_eq!(f.wipe_rejoin_at(), Some((3, 5_000)));
        assert_eq!(Faultload::FailureFree.wipe_rejoin_at(), None);
    }

    #[test]
    fn rotation_windows_are_disjoint_and_cover_everyone() {
        let f = Faultload::Rotation {
            start_ns: 1_000,
            interval_ns: 10_000,
            down_ns: 4_000,
        };
        // Everyone participates, nobody is Byzantine, no send delay.
        assert_eq!(f.senders(4).len(), 4);
        assert!(!f.is_byzantine(2));
        assert_eq!(f.send_delay(2), 0);
        // Process p is dark exactly in [start + p·interval, + down).
        assert!(!f.wiped(0, 999));
        assert!(f.wiped(0, 1_000));
        assert!(f.wiped(0, 4_999));
        assert!(!f.wiped(0, 5_000));
        assert!(f.wiped(3, 31_000));
        assert!(!f.wiped(3, 35_000));
        // ≤ 1 dark at any instant, across parameter shapes (down ==
        // interval is the tightest legal packing: back-to-back windows).
        for (start, interval, down) in [(0, 7_000, 7_000), (1_000, 10_000, 4_000), (5, 3, 1)] {
            let f = Faultload::Rotation {
                start_ns: start,
                interval_ns: interval,
                down_ns: down,
            };
            for t in 0..(start + 5 * interval) {
                let dark = (0..4).filter(|&p| f.wiped(p, t)).count();
                assert!(dark <= 1, "{dark} dark at t = {t} under {f:?}");
            }
        }
        // One rebuild per process, at each window's closing edge.
        assert_eq!(
            f.resets(4),
            vec![(0, 5_000), (1, 15_000), (2, 25_000), (3, 35_000)]
        );
        // Wipe resets stay the single victim; others schedule none.
        assert_eq!(
            Faultload::Wipe {
                victim: 2,
                down_from_ns: 1,
                down_until_ns: 9,
            }
            .resets(4),
            vec![(2, 9)]
        );
        assert_eq!(Faultload::FailureFree.resets(4), Vec::new());
        assert_eq!(f.label(), "rotation");
    }

    #[test]
    fn link_flap_delays_only_outage_window_hits() {
        let f = Faultload::LinkFlap {
            victim_link: (0, 1),
            period_ns: 1_000_000,
            outage_ns: 200_000,
        };
        // Everyone participates; nothing is Byzantine.
        assert_eq!(f.senders(4).len(), 4);
        assert!(!f.is_byzantine(0));
        assert_eq!(f.send_delay(0), 0);
        // A frame inside the second outage window is held to its end
        // (plus the resync cost), in both directions.
        let held = f.flap_arrival(0, 1, 1_050_000);
        assert_eq!(held, 1_200_000 + 50_000);
        assert_eq!(f.flap_arrival(1, 0, 1_050_000), held);
        // Outside the window, and on other links, arrivals are untouched.
        assert_eq!(f.flap_arrival(0, 1, 1_500_000), 1_500_000);
        assert_eq!(f.flap_arrival(0, 2, 1_050_000), 1_050_000);
        assert_eq!(f.flap_arrival(2, 3, 1_050_000), 1_050_000);
        // Other faultloads never touch arrivals.
        assert_eq!(Faultload::FailureFree.flap_arrival(0, 1, 7), 7);
    }

    #[test]
    fn faultload_parses_from_cli_spec() {
        assert_eq!(
            "failure-free".parse::<Faultload>().unwrap(),
            Faultload::FailureFree
        );
        assert_eq!(
            "fail-stop:3".parse::<Faultload>().unwrap(),
            Faultload::FailStop { victim: 3 }
        );
        assert_eq!(
            "byzantine:2".parse::<Faultload>().unwrap(),
            Faultload::Byzantine { attacker: 2 }
        );
        assert_eq!(
            "slow:1:500000".parse::<Faultload>().unwrap(),
            Faultload::Slow {
                victim: 1,
                delay_ns: 500_000
            }
        );
        assert_eq!(
            "link-flap:0-1:4000000:1000000"
                .parse::<Faultload>()
                .unwrap(),
            Faultload::LinkFlap {
                victim_link: (0, 1),
                period_ns: 4_000_000,
                outage_ns: 1_000_000
            }
        );
        assert_eq!(
            "wipe:3:2000000:30000000".parse::<Faultload>().unwrap(),
            Faultload::Wipe {
                victim: 3,
                down_from_ns: 2_000_000,
                down_until_ns: 30_000_000
            }
        );
        assert_eq!(
            "rotation:2000000:10000000:4000000"
                .parse::<Faultload>()
                .unwrap(),
            Faultload::Rotation {
                start_ns: 2_000_000,
                interval_ns: 10_000_000,
                down_ns: 4_000_000
            }
        );
        for bad in [
            "",
            "nope",
            "fail-stop",
            "fail-stop:x",
            "slow:1",
            "link-flap:0:1:2",
            "link-flap:0-1:0:0",
            "link-flap:0-1:100:100",
            "failure-free:extra",
            // A wipe window must be non-empty.
            "wipe:3:100:100",
            "wipe:3:200:100",
            "wipe:3:100",
            // Rotation windows must be non-empty and fit their slot.
            "rotation:0:100:0",
            "rotation:0:0:0",
            "rotation:0:100:101",
            "rotation:0:100",
            "rotation:0:100:50:9",
        ] {
            assert!(bad.parse::<Faultload>().is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn spec_round_trips_every_variant() {
        let loads = [
            Faultload::FailureFree,
            Faultload::FailStop { victim: 0 },
            Faultload::FailStop { victim: 3 },
            Faultload::Byzantine { attacker: 2 },
            Faultload::Slow {
                victim: 1,
                delay_ns: 500_000,
            },
            Faultload::Slow {
                victim: 0,
                delay_ns: 0,
            },
            Faultload::LinkFlap {
                victim_link: (0, 1),
                period_ns: 4_000_000,
                outage_ns: 1_000_000,
            },
            Faultload::LinkFlap {
                victim_link: (2, 3),
                period_ns: 2,
                outage_ns: 1,
            },
            Faultload::Wipe {
                victim: 3,
                down_from_ns: 2_000_000,
                down_until_ns: 30_000_000,
            },
            Faultload::Rotation {
                start_ns: 2_000_000,
                interval_ns: 10_000_000,
                down_ns: 4_000_000,
            },
            Faultload::Rotation {
                start_ns: 0,
                interval_ns: 1,
                down_ns: 1,
            },
        ];
        for f in loads {
            let spec = f.spec();
            assert_eq!(
                spec.parse::<Faultload>(),
                Ok(f),
                "spec {spec:?} did not round-trip"
            );
            // The spec is canonical: re-rendering the parse reproduces it.
            assert_eq!(spec.parse::<Faultload>().unwrap().spec(), spec);
        }
    }

    #[test]
    fn malformed_specs_name_the_offending_input() {
        // The error message embeds the rejected string verbatim so CLI
        // users can see what was actually received (quoting matters for
        // whitespace or empty input).
        let err = "slow:1:not-a-number".parse::<Faultload>().unwrap_err();
        assert!(err.to_string().contains("\"slow:1:not-a-number\""));
        let err = "".parse::<Faultload>().unwrap_err();
        assert!(err.to_string().contains("\"\""));
    }

    #[test]
    fn rejects_malformed_args_and_trailing_tokens() {
        for bad in [
            // Missing or non-numeric arguments, per variant.
            "byzantine",
            "byzantine:",
            "byzantine:one",
            "fail-stop:-1",
            "slow",
            "slow:1:",
            "slow:a:5",
            "slow:1:5.0",
            "link-flap",
            "link-flap:0-1",
            "link-flap:0-1:100",
            "link-flap:0-1:100:",
            "link-flap:a-b:100:10",
            "link-flap:0-:100:10",
            "link-flap:-1:100:10",
            // Outage must be strictly inside the period.
            "link-flap:0-1:100:200",
            // Trailing tokens after a complete, valid spec.
            "fail-stop:3:9",
            "byzantine:2:0",
            "slow:1:500000:7",
            "link-flap:0-1:4000000:1000000:0",
            "failure-free:",
            // Case and whitespace are not normalized.
            "Failure-Free",
            " failure-free",
            "fail-stop: 3",
        ] {
            assert!(bad.parse::<Faultload>().is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn slow_delays_only_the_victim() {
        let f = Faultload::Slow {
            victim: 2,
            delay_ns: 5_000,
        };
        assert_eq!(f.send_delay(2), 5_000);
        assert_eq!(f.send_delay(0), 0);
        assert!(f.participates(2));
        assert!(!f.is_byzantine(2));
        assert_eq!(f.senders(4).len(), 4);
    }
}
