//! The faultloads of the paper's evaluation (§4.2).

use ritas::ProcessId;

/// What, if anything, goes wrong during an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Faultload {
    /// All processes behave correctly.
    #[default]
    FailureFree,
    /// One process crashes before the measurements are taken (the
    /// maximum for `n = 4`, since `n ≥ 3f + 1`).
    FailStop {
        /// The crashed process.
        victim: ProcessId,
    },
    /// One process permanently tries to disrupt the protocols: it always
    /// proposes 0 at the binary consensus layer and proposes the default
    /// value ⊥ in the multi-valued consensus INIT and VECT messages.
    Byzantine {
        /// The attacking process.
        attacker: ProcessId,
    },
    /// One process delays every frame it sends by a fixed amount — a
    /// timing attack. The stack makes **no timing assumptions** (every
    /// wait is for `n − f` messages), so a single slow process must not
    /// slow the correct majority at all (extension experiment X6).
    Slow {
        /// The slowed process.
        victim: ProcessId,
        /// Added delay per sent frame, nanoseconds.
        delay_ns: u64,
    },
}

impl Faultload {
    /// Whether process `p` participates at all.
    pub fn participates(&self, p: ProcessId) -> bool {
        !matches!(self, Faultload::FailStop { victim } if *victim == p)
    }

    /// Whether process `p` runs the Byzantine strategy.
    pub fn is_byzantine(&self, p: ProcessId) -> bool {
        matches!(self, Faultload::Byzantine { attacker } if *attacker == p)
    }

    /// The processes that send application traffic in a burst experiment
    /// (the paper has each *correct* process send `k / senders` messages;
    /// the Byzantine process sends its share too — its attack is at the
    /// consensus layers).
    pub fn senders(&self, n: usize) -> Vec<ProcessId> {
        (0..n).filter(|p| self.participates(*p)).collect()
    }

    /// Extra send delay imposed on process `p`'s frames, if any.
    pub fn send_delay(&self, p: ProcessId) -> u64 {
        match self {
            Faultload::Slow { victim, delay_ns } if *victim == p => *delay_ns,
            _ => 0,
        }
    }

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Faultload::FailureFree => "failure-free",
            Faultload::FailStop { .. } => "fail-stop",
            Faultload::Byzantine { .. } => "byzantine",
            Faultload::Slow { .. } => "slow-process",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fail_stop_excludes_victim() {
        let f = Faultload::FailStop { victim: 2 };
        assert!(!f.participates(2));
        assert!(f.participates(1));
        assert_eq!(f.senders(4), vec![0, 1, 3]);
    }

    #[test]
    fn byzantine_participates_but_is_flagged() {
        let f = Faultload::Byzantine { attacker: 3 };
        assert!(f.participates(3));
        assert!(f.is_byzantine(3));
        assert!(!f.is_byzantine(0));
        assert_eq!(f.senders(4).len(), 4);
    }

    #[test]
    fn labels() {
        assert_eq!(Faultload::FailureFree.label(), "failure-free");
        assert_eq!(Faultload::FailStop { victim: 0 }.label(), "fail-stop");
        assert_eq!(Faultload::Byzantine { attacker: 0 }.label(), "byzantine");
        assert_eq!(
            Faultload::Slow {
                victim: 0,
                delay_ns: 1
            }
            .label(),
            "slow-process"
        );
    }

    #[test]
    fn slow_delays_only_the_victim() {
        let f = Faultload::Slow {
            victim: 2,
            delay_ns: 5_000,
        };
        assert_eq!(f.send_delay(2), 5_000);
        assert_eq!(f.send_delay(0), 0);
        assert!(f.participates(2));
        assert!(!f.is_byzantine(2));
        assert_eq!(f.senders(4).len(), 4);
    }
}
