//! Deterministic discrete-event simulator and evaluation harnesses for
//! the RITAS stack.
//!
//! The paper's evaluation (§4) ran on four 500 MHz Pentium-III PCs
//! connected by a 100 Mbps switch, over TCP + IPSec AH. That testbed does
//! not exist here, so this crate substitutes it with a **calibrated
//! discrete-event model**: the *same* sans-io protocol stacks from the
//! `ritas` crate are driven by a virtual clock, with per-host NIC
//! serialization, per-message CPU costs and wire sizes tuned to the
//! paper's measurements (see [`calibration`] for the constants and their
//! derivation). The goal is to reproduce the *shape* of the paper's
//! results — layer orderings, IPSec overhead band, latency linearity,
//! throughput plateaus, faultload effects — not its absolute
//! microseconds.
//!
//! Modules:
//!
//! * [`calibration`] — the LAN/CPU model constants;
//! * [`lan`] — the queueing network model (per-host tx/rx resources);
//! * [`cluster`] — the event loop driving `ritas::stack::Stack`s;
//! * [`faults`] — the §4.2 faultloads (failure-free, fail-stop,
//!   Byzantine);
//! * [`stats`] — frame classification (payload vs agreement traffic) and
//!   summary statistics;
//! * [`harness`] — one driver per paper artifact: Table 1, Figures 4–7,
//!   plus the ablations described in `DESIGN.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calibration;
pub mod cluster;
pub mod faults;
pub mod harness;
pub mod lan;
pub mod stats;

pub use calibration::Calibration;
pub use cluster::{SimCluster, SimConfig};
pub use faults::Faultload;
