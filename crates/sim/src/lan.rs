//! The queueing model of the switched LAN.
//!
//! Each host owns two serialized resources: a **transmit path** (CPU send
//! cost + NIC wire serialization) and a **receive path** (CPU receive
//! cost). The switch is full-duplex and non-blocking (the ProCurve 2424M
//! of the testbed), modeled as a fixed propagation delay — contention
//! happens at the hosts, which is what produces the paper's fail-stop
//! speed-up ("with one less process there is less contention in the
//! network", §4.2).

use crate::calibration::Calibration;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Virtual time in nanoseconds.
pub type Ns = u64;

/// Per-host resource state plus the cost model.
#[derive(Debug)]
pub struct LanModel {
    calibration: Calibration,
    authenticated: bool,
    /// Time at which each host's transmit path becomes free.
    tx_free: Vec<Ns>,
    /// Time at which each host's receive path becomes free.
    rx_free: Vec<Ns>,
    /// Optional per-link propagation delays (`[from][to]`), replacing the
    /// uniform `propagation_ns` — used to model asymmetric (WAN-like)
    /// topologies, probing the paper's §4.2 conjecture that the
    /// one-round-decision result depends on LAN symmetry.
    propagation: Option<Vec<Vec<Ns>>>,
    rng: StdRng,
}

/// The outcome of scheduling a frame transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxOutcome {
    /// When the frame arrives at the destination host (before receive
    /// processing).
    pub arrival: Ns,
    /// Bytes the frame occupied on the wire.
    pub wire_bytes: usize,
}

impl LanModel {
    /// Creates the model for `n` hosts.
    pub fn new(n: usize, calibration: Calibration, authenticated: bool, seed: u64) -> Self {
        LanModel {
            calibration,
            authenticated,
            tx_free: vec![0; n],
            rx_free: vec![0; n],
            propagation: None,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Installs per-link propagation delays (symmetric matrix expected,
    /// `[from][to]` nanoseconds), overriding the uniform switch latency.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not `n × n`.
    pub fn set_propagation_matrix(&mut self, matrix: Vec<Vec<Ns>>) {
        let n = self.tx_free.len();
        assert_eq!(matrix.len(), n, "matrix rows");
        assert!(matrix.iter().all(|r| r.len() == n), "matrix columns");
        self.propagation = Some(matrix);
    }

    fn propagation_for(&self, from: usize, to: usize) -> Ns {
        match &self.propagation {
            Some(m) => m[from][to],
            None => self.calibration.propagation_ns,
        }
    }

    /// Whether frames carry the AH header (and pay its CPU cost).
    pub fn authenticated(&self) -> bool {
        self.authenticated
    }

    /// The cost model in use.
    pub fn calibration(&self) -> &Calibration {
        &self.calibration
    }

    fn jitter(&mut self, ns: u64) -> u64 {
        let j = self.calibration.jitter_frac;
        if j <= 0.0 {
            return ns;
        }
        let factor = 1.0 + self.rng.gen_range(-j..j);
        (ns as f64 * factor) as u64
    }

    /// Schedules the transmission of a frame of `payload_len` protocol
    /// bytes from `from`, starting no earlier than `now`. Returns the
    /// arrival time at the destination (the receive path is modeled
    /// separately by [`LanModel::receive`]).
    ///
    /// Frames that queue behind a busy transmit path pay only the
    /// coalesced fraction of the fixed per-message cost (TCP segment
    /// coalescing; see [`Calibration::coalesce_factor`]).
    pub fn transmit(&mut self, now: Ns, from: usize, to: usize, payload_len: usize) -> TxOutcome {
        let wire = self.calibration.wire_size(payload_len, self.authenticated);
        let busy = self.tx_free[from] > now;
        let mut fixed = self.calibration.send_cpu_ns;
        if self.authenticated {
            fixed += self.calibration.ah_cpu_ns;
        }
        if busy {
            fixed = (fixed as f64 * self.calibration.coalesce_factor) as u64;
        }
        let cpu =
            self.jitter(fixed + (payload_len as f64 * self.calibration.per_byte_cpu_ns) as u64);
        let start = self.tx_free[from].max(now) + cpu;
        let tx_end = start + self.calibration.tx_time_ns(wire);
        self.tx_free[from] = tx_end;
        TxOutcome {
            arrival: tx_end + self.propagation_for(from, to),
            wire_bytes: wire,
        }
    }

    /// Schedules receive processing of a frame that arrived at host `to`
    /// at time `arrival`. Returns the time the frame is handed to the
    /// protocol stack. Back-to-back arrivals pay the coalesced fixed
    /// cost (batched socket reads / interrupt coalescing).
    pub fn receive(&mut self, arrival: Ns, to: usize, payload_len: usize) -> Ns {
        let busy = self.rx_free[to] > arrival;
        let mut fixed = self.calibration.recv_cpu_ns;
        if self.authenticated {
            fixed += self.calibration.ah_cpu_ns;
        }
        if busy {
            fixed = (fixed as f64 * self.calibration.coalesce_factor) as u64;
        }
        let cpu =
            self.jitter(fixed + (payload_len as f64 * self.calibration.per_byte_cpu_ns) as u64);
        let done = self.rx_free[to].max(arrival) + cpu;
        self.rx_free[to] = done;
        done
    }

    /// Cost of a loopback (self) delivery starting at `now`.
    pub fn loopback(&mut self, now: Ns) -> Ns {
        now + self.jitter(self.calibration.loopback_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> LanModel {
        // Deterministic (jitter-free) for assertions.
        let c = Calibration {
            jitter_frac: 0.0,
            ..Calibration::default()
        };
        LanModel::new(2, c, false, 1)
    }

    #[test]
    fn tx_serializes_per_host() {
        let mut m = model();
        let a = m.transmit(0, 0, 1, 10);
        let b = m.transmit(0, 0, 1, 10);
        assert!(b.arrival > a.arrival, "second frame must queue behind");
        // The second frame queues behind the first and pays at least the
        // coalesced fixed cost plus its wire time.
        let min_gap = (m.calibration().send_cpu_ns as f64 * m.calibration().coalesce_factor) as u64;
        assert!(b.arrival - a.arrival >= min_gap);
    }

    #[test]
    fn different_hosts_do_not_contend_on_tx() {
        let mut m = model();
        let a = m.transmit(0, 0, 1, 10);
        let b = m.transmit(0, 1, 0, 10);
        assert_eq!(a.arrival, b.arrival);
    }

    #[test]
    fn rx_serializes() {
        let mut m = model();
        let d1 = m.receive(1000, 0, 10);
        let d2 = m.receive(1000, 0, 10);
        assert!(d2 > d1);
    }

    #[test]
    fn auth_adds_bytes_and_cpu() {
        let c = Calibration {
            jitter_frac: 0.0,
            ..Calibration::default()
        };
        let mut plain = LanModel::new(2, c, false, 1);
        let mut auth = LanModel::new(2, c, true, 1);
        let p = plain.transmit(0, 0, 1, 10);
        let a = auth.transmit(0, 0, 1, 10);
        assert_eq!(a.wire_bytes - p.wire_bytes, c.ah_overhead_bytes);
        assert!(a.arrival > p.arrival);
    }

    #[test]
    fn large_payload_pays_per_byte() {
        let mut m = model();
        let small = m.transmit(0, 0, 1, 10);
        let mut m2 = model();
        let large = m2.transmit(0, 0, 1, 10_000);
        assert!(large.arrival > small.arrival + 1_000_000, "10KB ≫ 10B");
    }

    #[test]
    fn jitter_varies_with_seed_but_is_reproducible() {
        let c = Calibration::default();
        let mut m1 = LanModel::new(2, c, false, 7);
        let mut m2 = LanModel::new(2, c, false, 7);
        let mut m3 = LanModel::new(2, c, false, 8);
        let a1 = m1.transmit(0, 0, 1, 10).arrival;
        let a2 = m2.transmit(0, 0, 1, 10).arrival;
        let a3 = m3.transmit(0, 0, 1, 10).arrival;
        assert_eq!(a1, a2);
        assert_ne!(a1, a3);
    }
}
