//! Model constants calibrated to the paper's testbed (§4).
//!
//! The testbed: four Dell Pentium III @ 500 MHz, 128 MB RAM, Linux 2.6.5,
//! 100 Mbps HP ProCurve 2424M switch, `lperf`-measured effective TCP
//! throughput of **9.1 MB/s**, IPSec AH (HMAC-SHA-1) in transport mode.
//!
//! Derivation of the defaults:
//!
//! * `bandwidth_bytes_per_sec` — the paper's own 9.1 MB/s measurement.
//! * `wire_overhead_bytes` — the paper states a reliable-broadcast frame
//!   with a 10-byte payload totals 80 bytes on the wire including
//!   Ethernet + IP + TCP headers, i.e. ~70 bytes of header.
//! * `ah_overhead_bytes` — "The IPSec AH header adds another 24 bytes".
//! * `send_cpu_ns` / `recv_cpu_ns` — fixed per-message costs of the
//!   socket path (syscall, TCP/IP stack, protocol handling) on a 500 MHz
//!   P-III under Linux 2.6; chosen so the isolated reliable-broadcast
//!   latency lands near Table 1's 1641 µs (without IPSec). Small-message
//!   LAN latency on such hardware is dominated by these costs, not by
//!   transmission time.
//! * `ah_cpu_ns` — per-packet AH processing (HMAC-SHA-1 setup + digest on
//!   both ends); chosen so the measured IPSec overheads fall in the
//!   paper's 15–46 % band (Table 1).
//! * `per_byte_cpu_ns` — copy/checksum cost per payload byte; matters
//!   only for the 1 KB / 10 KB workloads of Figures 4–6.
//! * `propagation_ns` — store-and-forward switch + wire latency.
//! * `jitter_frac` — relative spread applied to per-message CPU costs
//!   (seeded), reproducing the run-to-run variance the paper averages
//!   over (100 executions for Table 1, 10 per point for the figures).

/// The LAN / CPU cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Calibration {
    /// Effective per-NIC throughput in bytes per second.
    pub bandwidth_bytes_per_sec: f64,
    /// Ethernet + IP + TCP header bytes added to every frame.
    pub wire_overhead_bytes: usize,
    /// IPSec AH header bytes (only when authentication is on).
    pub ah_overhead_bytes: usize,
    /// Fixed CPU cost to send one message, nanoseconds.
    pub send_cpu_ns: u64,
    /// Fixed CPU cost to receive one message, nanoseconds.
    pub recv_cpu_ns: u64,
    /// Extra per-packet CPU for AH authentication, per end, nanoseconds.
    pub ah_cpu_ns: u64,
    /// Per-byte processing cost (copies/checksums), nanoseconds.
    pub per_byte_cpu_ns: f64,
    /// Wire + switch propagation delay, nanoseconds.
    pub propagation_ns: u64,
    /// Cost of a loopback (self) delivery, nanoseconds.
    pub loopback_ns: u64,
    /// Relative jitter applied to CPU costs (0.1 = ±10 %).
    pub jitter_frac: f64,
    /// Fraction of the fixed per-message CPU cost paid by messages that
    /// queue behind a busy path (TCP segment coalescing / interrupt
    /// batching: Nagle and `tcp_low_latency`-era Linux merged small
    /// back-to-back writes into single segments, so contended workloads
    /// scale sub-linearly in message count — exactly what the paper's
    /// binary consensus numbers show relative to isolated broadcasts).
    pub coalesce_factor: f64,
}

impl Default for Calibration {
    fn default() -> Self {
        Calibration {
            bandwidth_bytes_per_sec: 9.1e6,
            wire_overhead_bytes: 70,
            ah_overhead_bytes: 24,
            send_cpu_ns: 270_000,
            recv_cpu_ns: 135_000,
            ah_cpu_ns: 60_000,
            per_byte_cpu_ns: 30.0,
            propagation_ns: 35_000,
            loopback_ns: 8_000,
            jitter_frac: 0.08,
            coalesce_factor: 0.33,
        }
    }
}

impl Calibration {
    /// Wire size of a frame with `payload` protocol bytes.
    pub fn wire_size(&self, payload: usize, authenticated: bool) -> usize {
        payload
            + self.wire_overhead_bytes
            + if authenticated {
                self.ah_overhead_bytes
            } else {
                0
            }
    }

    /// Transmission time of `bytes` on the wire, nanoseconds.
    pub fn tx_time_ns(&self, bytes: usize) -> u64 {
        (bytes as f64 / self.bandwidth_bytes_per_sec * 1e9) as u64
    }

    /// A model of a SINTRA-style public-key stack (related work, §5):
    /// every message pays a digital-signature cost instead of a MAC.
    /// An RSA-1024 signature on the testbed-era hardware costs
    /// milliseconds; verification hundreds of microseconds. Used by the
    /// crypto-cost ablation bench.
    pub fn with_public_key_costs(mut self) -> Self {
        self.send_cpu_ns += 8_000_000; // ~8 ms sign on a P-III 500
        self.recv_cpu_ns += 400_000; // ~0.4 ms verify
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_size_matches_paper_arithmetic() {
        let c = Calibration::default();
        // 10-byte payload: 80 bytes plain, 104 with AH (paper §4.1).
        assert_eq!(c.wire_size(10, false), 80);
        assert_eq!(c.wire_size(10, true), 104);
    }

    #[test]
    fn tx_time_scales_linearly() {
        let c = Calibration::default();
        let t1 = c.tx_time_ns(1000);
        let t10 = c.tx_time_ns(10_000);
        assert!(t10 > 9 * t1 && t10 < 11 * t1);
        // 9.1 MB/s → ~110 µs per KB.
        assert!((100_000..120_000).contains(&c.tx_time_ns(1000)), "{t1}");
    }

    #[test]
    fn public_key_model_is_slower() {
        let c = Calibration::default();
        let pk = c.with_public_key_costs();
        assert!(pk.send_cpu_ns > 20 * c.send_cpu_ns);
        assert!(pk.recv_cpu_ns > 3 * c.recv_cpu_ns);
    }
}
