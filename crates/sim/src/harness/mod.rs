//! Experiment drivers, one per paper artifact.
//!
//! | Driver | Paper artifact |
//! |---|---|
//! | [`stack_latency`] | Table 1 — isolated per-protocol latency, with/without IPSec |
//! | [`ab_burst`] | Figures 4–6 — atomic broadcast burst latency & throughput under the three faultloads |
//! | [`agreement_cost`] | Figure 7 — relative cost of agreement vs burst size |
//!
//! Each driver returns plain data structures; the `ritas-bench` binaries
//! render them as the tables/series the paper reports.

pub mod ab_burst;
pub mod agreement_cost;
pub mod stack_latency;
pub mod steady_state;

pub use ab_burst::{run_ab_burst, run_burst_once, BurstPoint, BurstSeries};
pub use agreement_cost::{
    run_agreement_cost, run_once as run_agreement_cost_once, AgreementCostPoint,
};
pub use stack_latency::{
    measure_once, measure_with_config, run_stack_latency, ProtocolUnderTest, StackLatencyRow,
};
pub use steady_state::{run_steady_state, SteadyStatePoint};
