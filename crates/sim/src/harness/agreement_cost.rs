//! Figure 7 — relative cost of agreement.
//!
//! Reproduces §4.2: while a failure-free burst is being delivered, count
//! every reliable/echo broadcast *instance* executed (identified by its
//! `INIT` arriving at the observer) and classify it as payload
//! dissemination (`AB_MSG`) or agreement machinery (`AB_VECT` +
//! consensus-internal broadcasts). The figure plots the agreement share,
//! which starts around 90 % for tiny bursts and "drops exponentially,
//! reaching as low as 2.4 % for a burst size of 1000 messages".

use crate::cluster::{Action, SimCluster, SimConfig};
use bytes::Bytes;

/// One point of the Figure 7 curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AgreementCostPoint {
    /// Total burst size.
    pub burst: usize,
    /// Payload broadcast instances observed.
    pub payload_broadcasts: u64,
    /// Agreement broadcast instances observed.
    pub agreement_broadcasts: u64,
    /// Agreement share of all broadcasts, in percent.
    pub agreement_pct: f64,
}

/// Runs one burst and counts broadcasts by purpose.
pub fn run_once(burst: usize, seed: u64) -> AgreementCostPoint {
    let config = SimConfig::paper_testbed(seed);
    let n = config.n;
    let mut sim = SimCluster::new(config);
    let share = (burst / n).max(1);
    let payload = Bytes::from_static(b"0123456789");
    for p in 0..n {
        for _ in 0..share {
            sim.schedule(0, p, Action::AbBroadcast(payload.clone()));
        }
    }
    sim.run();
    let c = sim.counters();
    AgreementCostPoint {
        burst: share * n,
        payload_broadcasts: c.payload_broadcasts,
        agreement_broadcasts: c.agreement_broadcasts,
        agreement_pct: c.agreement_ratio().unwrap_or(0.0) * 100.0,
    }
}

/// Runs the full curve.
pub fn run_agreement_cost(bursts: &[usize], base_seed: u64) -> Vec<AgreementCostPoint> {
    bursts
        .iter()
        .map(|&b| run_once(b, base_seed.wrapping_add((b as u64) << 8)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_bursts_are_dominated_by_agreement() {
        let p = run_once(4, 1);
        assert_eq!(p.payload_broadcasts, 4);
        assert!(
            p.agreement_pct > 70.0,
            "expected agreement-dominated small burst, got {:.1}%",
            p.agreement_pct
        );
    }

    #[test]
    fn cost_declines_with_burst_size() {
        let small = run_once(4, 2);
        let large = run_once(200, 2);
        assert!(
            large.agreement_pct < small.agreement_pct / 2.0,
            "no decline: {:.1}% -> {:.1}%",
            small.agreement_pct,
            large.agreement_pct
        );
    }

    #[test]
    fn payload_count_matches_burst() {
        let p = run_once(40, 3);
        assert_eq!(p.payload_broadcasts, 40);
    }
}
