//! Figures 4–6 — atomic broadcast burst latency and throughput.
//!
//! Reproduces §4.2: on a signal, each participating process atomically
//! broadcasts a burst of `k / senders` messages of `m` bytes; the burst
//! latency `L_burst` is the interval, at one process, between the signal
//! and the delivery of the last message; the throughput is `k / L_burst`.
//! Each point averages several runs (the paper uses 10).

use crate::cluster::{Action, SimCluster, SimConfig};
use crate::faults::Faultload;
use crate::stats::mean;
use bytes::Bytes;

/// One measured point of a latency/throughput curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstPoint {
    /// Total burst size `k` actually transmitted.
    pub burst: usize,
    /// Average burst latency, milliseconds.
    pub latency_ms: f64,
    /// Average throughput, messages per second.
    pub throughput_msgs_per_sec: f64,
    /// Average agreements used per burst (observer's count).
    pub agreements: f64,
}

/// A latency/throughput curve for one message size.
#[derive(Debug, Clone, PartialEq)]
pub struct BurstSeries {
    /// Message payload size `m`, bytes.
    pub msg_size: usize,
    /// The faultload the series ran under.
    pub faultload: Faultload,
    /// Points, ordered by burst size.
    pub points: Vec<BurstPoint>,
}

/// Runs one burst and returns `(k_actual, latency_ns, agreements)`.
pub fn run_burst_once(
    faultload: Faultload,
    msg_size: usize,
    burst: usize,
    seed: u64,
) -> (usize, u64, u64) {
    let config = SimConfig::paper_testbed(seed).with_faultload(faultload);
    let n = config.n;
    let mut sim = SimCluster::new(config);
    let senders = faultload.senders(n);
    let share = (burst / senders.len()).max(1);
    let k_actual = share * senders.len();
    let payload = Bytes::from(vec![0x5a; msg_size]);
    for &p in &senders {
        for _ in 0..share {
            sim.schedule(0, p, Action::AbBroadcast(payload.clone()));
        }
    }
    sim.run();
    let observer = sim.observer();
    let times = sim.ab_delivery_times(observer);
    assert_eq!(
        times.len(),
        k_actual,
        "observer delivered {} of {k_actual} messages",
        times.len()
    );
    let latency = *times.last().expect("k >= 1");
    let agreements = sim
        .stack(observer)
        .ab_stats(0)
        .map(|s| s.agreements)
        .unwrap_or(0);
    (k_actual, latency, agreements)
}

/// Runs the full figure: one series per message size, one point per
/// burst size, `runs` runs averaged per point.
pub fn run_ab_burst(
    faultload: Faultload,
    msg_sizes: &[usize],
    bursts: &[usize],
    runs: usize,
    base_seed: u64,
) -> Vec<BurstSeries> {
    msg_sizes
        .iter()
        .map(|&msg_size| BurstSeries {
            msg_size,
            faultload,
            points: bursts
                .iter()
                .map(|&burst| {
                    let mut latencies = Vec::with_capacity(runs);
                    let mut throughputs = Vec::with_capacity(runs);
                    let mut agreements = Vec::with_capacity(runs);
                    for i in 0..runs {
                        let seed = base_seed
                            .wrapping_add((burst as u64) << 20)
                            .wrapping_add(msg_size as u64)
                            .wrapping_add(i as u64 * 104729);
                        let (k, ns, ag) = run_burst_once(faultload, msg_size, burst, seed);
                        let secs = ns as f64 / 1e9;
                        latencies.push(ns as f64 / 1e6);
                        throughputs.push(k as f64 / secs);
                        agreements.push(ag as f64);
                    }
                    BurstPoint {
                        burst,
                        latency_ms: mean(&latencies),
                        throughput_msgs_per_sec: mean(&throughputs),
                        agreements: mean(&agreements),
                    }
                })
                .collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failure_free_small_burst() {
        let (k, ns, ag) = run_burst_once(Faultload::FailureFree, 10, 8, 1);
        assert_eq!(k, 8);
        assert!(ns > 0);
        assert!(ag >= 1);
    }

    #[test]
    fn latency_grows_with_burst_size() {
        let (_, small, _) = run_burst_once(Faultload::FailureFree, 10, 8, 2);
        let (_, large, _) = run_burst_once(Faultload::FailureFree, 10, 64, 2);
        assert!(large > small, "64-burst ({large}) vs 8-burst ({small})");
    }

    #[test]
    fn larger_messages_are_slower() {
        let (_, small, _) = run_burst_once(Faultload::FailureFree, 10, 16, 3);
        let (_, large, _) = run_burst_once(Faultload::FailureFree, 10_000, 16, 3);
        assert!(large > 2 * small, "10KB ({large}) vs 10B ({small})");
    }

    #[test]
    fn fail_stop_is_not_slower_than_failure_free() {
        // §4.2: "performance is noticeably better with one fail-stop
        // process … less contention". Allow a small tolerance.
        let (_, ff, _) = run_burst_once(Faultload::FailureFree, 100, 60, 4);
        let (_, fs, _) = run_burst_once(Faultload::FailStop { victim: 3 }, 100, 60, 4);
        assert!(
            (fs as f64) < (ff as f64) * 1.10,
            "fail-stop {fs} vs failure-free {ff}"
        );
    }

    #[test]
    fn byzantine_is_close_to_failure_free() {
        // §4.2: "performance is basically immune from the attacks".
        //
        // A single (ff, byz) seed pair is flaky: the randomized binary
        // consensus inside AB makes per-run latency noisy, and one
        // unlucky coin sequence on the Byzantine side can push an
        // individual ratio past any tight bound without contradicting
        // the paper's claim (which is about averages — it runs 10
        // repeats per point). So: average each side over a fixed set of
        // pinned seeds (fully deterministic — no flakiness, just less
        // variance), and bound the averaged ratio at 2.0. "Immune" in
        // the paper means no blow-up (an adversary cannot force
        // unbounded extra rounds), not bit-identical latency; a genuine
        // regression (e.g. the attacker stalling consensus) shows up as
        // a 10x+ ratio, far above the bound, while coin noise on
        // 3-seed averages stays well below it.
        const SEEDS: [u64; 3] = [5, 105, 205];
        let avg = |fl: Faultload| -> f64 {
            let total: u64 = SEEDS.iter().map(|&s| run_burst_once(fl, 10, 40, s).1).sum();
            total as f64 / SEEDS.len() as f64
        };
        let ff = avg(Faultload::FailureFree);
        let byz = avg(Faultload::Byzantine { attacker: 3 });
        let ratio = byz / ff;
        assert!(
            ratio < 2.0,
            "byzantine {byz:.0} vs failure-free {ff:.0} (ratio {ratio:.2})"
        );
    }

    #[test]
    fn few_agreements_per_burst() {
        let (_, _, ag) = run_burst_once(Faultload::FailureFree, 10, 100, 6);
        assert!(ag <= 6, "agreements = {ag}");
    }

    #[test]
    fn series_are_ordered_and_complete() {
        let series = run_ab_burst(Faultload::FailureFree, &[10, 100], &[4, 16], 2, 1);
        assert_eq!(series.len(), 2);
        for s in &series {
            assert_eq!(s.points.len(), 2);
            assert!(s.points[1].latency_ms > s.points[0].latency_ms);
        }
    }
}
