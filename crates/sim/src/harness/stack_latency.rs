//! Table 1 — average latency of isolated executions of each protocol.
//!
//! Reproduces §4.1: a signaling machine triggers `N` isolated instances
//! (2 s apart in the paper; isolation is modeled here by running each
//! instance in a fresh simulation). Broadcast payloads and consensus
//! proposals carry 10 bytes (binary consensus: 1 bit). The latency of an
//! instance is measured at one process, from its signal arrival to its
//! delivery/decision. Signal arrivals carry a small per-process skew, as
//! UDP signals would.

use crate::cluster::{Action, SimCluster, SimConfig};
use crate::stats::mean;
use bytes::Bytes;
use ritas::stack::Output;

/// The protocol a latency measurement exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolUnderTest {
    /// Matrix echo broadcast (§2.3).
    EchoBroadcast,
    /// Bracha reliable broadcast (§2.2).
    ReliableBroadcast,
    /// Randomized binary consensus (§2.4).
    BinaryConsensus,
    /// Multi-valued consensus (§2.5).
    MultiValuedConsensus,
    /// Vector consensus (§2.6).
    VectorConsensus,
    /// Atomic broadcast (§2.7).
    AtomicBroadcast,
}

impl ProtocolUnderTest {
    /// All protocols, in the stack order of Table 1.
    pub const ALL: [ProtocolUnderTest; 6] = [
        ProtocolUnderTest::EchoBroadcast,
        ProtocolUnderTest::ReliableBroadcast,
        ProtocolUnderTest::BinaryConsensus,
        ProtocolUnderTest::MultiValuedConsensus,
        ProtocolUnderTest::VectorConsensus,
        ProtocolUnderTest::AtomicBroadcast,
    ];

    /// Row label as printed in Table 1.
    pub fn label(&self) -> &'static str {
        match self {
            ProtocolUnderTest::EchoBroadcast => "Echo Broadcast",
            ProtocolUnderTest::ReliableBroadcast => "Reliable Broadcast",
            ProtocolUnderTest::BinaryConsensus => "Binary Consensus",
            ProtocolUnderTest::MultiValuedConsensus => "Multi-valued Consensus",
            ProtocolUnderTest::VectorConsensus => "Vector Consensus",
            ProtocolUnderTest::AtomicBroadcast => "Atomic Broadcast",
        }
    }
}

/// One row of Table 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StackLatencyRow {
    /// The protocol measured.
    pub protocol: ProtocolUnderTest,
    /// Average latency with channel authentication, microseconds.
    pub with_ipsec_us: f64,
    /// Average latency without, microseconds.
    pub without_ipsec_us: f64,
}

impl StackLatencyRow {
    /// The "IPSec overhead" column.
    pub fn overhead_pct(&self) -> f64 {
        (self.with_ipsec_us / self.without_ipsec_us - 1.0) * 100.0
    }
}

/// Deterministic small skew (0–50 µs) for process `p`'s signal arrival.
fn signal_skew(seed: u64, p: usize) -> u64 {
    let x = seed
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add(p as u64)
        .wrapping_mul(0xBF58476D1CE4E5B9);
    (x >> 33) % 50_000
}

/// Runs one isolated instance of `protocol` and returns the latency in
/// nanoseconds, measured at the observer process.
pub fn measure_once(protocol: ProtocolUnderTest, authenticated: bool, seed: u64) -> u64 {
    let config = if authenticated {
        SimConfig::paper_testbed(seed)
    } else {
        SimConfig::paper_testbed(seed).without_auth()
    };
    measure_with_config(protocol, config, seed)
}

/// Like [`measure_once`] but with a caller-supplied [`SimConfig`]
/// (ablations: group size, transports, cost model).
pub fn measure_with_config(protocol: ProtocolUnderTest, config: SimConfig, seed: u64) -> u64 {
    let n = config.n;
    let mut sim = SimCluster::new(config);
    let payload = Bytes::from_static(b"0123456789"); // 10 bytes
    let observer = sim.observer();
    let observer_signal = signal_skew(seed, observer);

    match protocol {
        ProtocolUnderTest::EchoBroadcast => {
            sim.schedule(signal_skew(seed, 0), 0, Action::EbBroadcast(payload));
        }
        ProtocolUnderTest::ReliableBroadcast => {
            sim.schedule(signal_skew(seed, 0), 0, Action::RbBroadcast(payload));
        }
        ProtocolUnderTest::BinaryConsensus => {
            for p in 0..n {
                sim.schedule(
                    signal_skew(seed, p),
                    p,
                    Action::BcPropose {
                        tag: 1,
                        value: true,
                    },
                );
            }
        }
        ProtocolUnderTest::MultiValuedConsensus => {
            for p in 0..n {
                sim.schedule(
                    signal_skew(seed, p),
                    p,
                    Action::MvcPropose {
                        tag: 1,
                        value: payload.clone(),
                    },
                );
            }
        }
        ProtocolUnderTest::VectorConsensus => {
            for p in 0..n {
                sim.schedule(
                    signal_skew(seed, p),
                    p,
                    Action::VcPropose {
                        tag: 1,
                        value: payload.clone(),
                    },
                );
            }
        }
        ProtocolUnderTest::AtomicBroadcast => {
            sim.schedule(signal_skew(seed, 0), 0, Action::AbBroadcast(payload));
        }
    }
    sim.run();

    let matcher: fn(&Output) -> bool = match protocol {
        ProtocolUnderTest::EchoBroadcast => |o| matches!(o, Output::EbDelivered { .. }),
        ProtocolUnderTest::ReliableBroadcast => |o| matches!(o, Output::RbDelivered { .. }),
        ProtocolUnderTest::BinaryConsensus => |o| matches!(o, Output::BcDecided { .. }),
        ProtocolUnderTest::MultiValuedConsensus => |o| matches!(o, Output::MvcDecided { .. }),
        ProtocolUnderTest::VectorConsensus => |o| matches!(o, Output::VcDecided { .. }),
        ProtocolUnderTest::AtomicBroadcast => |o| matches!(o, Output::AbDelivered { .. }),
    };
    let (t, _) = sim
        .first_output(observer, matcher)
        .unwrap_or_else(|| panic!("{protocol:?}: observer produced no output"));
    t.saturating_sub(observer_signal)
}

/// Runs the full Table 1: `samples` isolated executions per protocol per
/// authentication mode, averaged.
pub fn run_stack_latency(samples: usize, base_seed: u64) -> Vec<StackLatencyRow> {
    ProtocolUnderTest::ALL
        .iter()
        .map(|&protocol| {
            let collect = |auth: bool| {
                let us: Vec<f64> = (0..samples)
                    .map(|i| {
                        measure_once(protocol, auth, base_seed.wrapping_add(i as u64 * 7919)) as f64
                            / 1000.0
                    })
                    .collect();
                mean(&us)
            };
            StackLatencyRow {
                protocol,
                with_ipsec_us: collect(true),
                without_ipsec_us: collect(false),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_protocol_completes() {
        for protocol in ProtocolUnderTest::ALL {
            let ns = measure_once(protocol, true, 42);
            assert!(ns > 0, "{protocol:?}");
            assert!(
                ns < 200_000_000,
                "{protocol:?} took {ns} ns of virtual time"
            );
        }
    }

    #[test]
    fn layer_ordering_matches_table_1() {
        // The paper's layering: EB < RB < BC < MVC < VC and MVC < AB.
        let rows = run_stack_latency(5, 1);
        let get =
            |p: ProtocolUnderTest| rows.iter().find(|r| r.protocol == p).unwrap().with_ipsec_us;
        let eb = get(ProtocolUnderTest::EchoBroadcast);
        let rb = get(ProtocolUnderTest::ReliableBroadcast);
        let bc = get(ProtocolUnderTest::BinaryConsensus);
        let mvc = get(ProtocolUnderTest::MultiValuedConsensus);
        let vc = get(ProtocolUnderTest::VectorConsensus);
        let ab = get(ProtocolUnderTest::AtomicBroadcast);
        assert!(eb < rb, "eb {eb} < rb {rb}");
        assert!(rb < bc, "rb {rb} < bc {bc}");
        assert!(bc < mvc, "bc {bc} < mvc {mvc}");
        assert!(mvc < vc, "mvc {mvc} < vc {vc}");
        assert!(mvc < ab, "mvc {mvc} < ab {ab}");
    }

    #[test]
    fn ipsec_costs_something() {
        let rows = run_stack_latency(3, 9);
        for r in rows {
            assert!(
                r.overhead_pct() > 0.0,
                "{:?} overhead {:.1}%",
                r.protocol,
                r.overhead_pct()
            );
        }
    }
}
