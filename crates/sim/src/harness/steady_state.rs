//! **Extension X7b** — sustained-load behaviour of atomic broadcast.
//!
//! The paper's burst experiments are *closed-loop*: all `k` messages are
//! queued at time zero and the system drains them. A deployed service
//! sees *open-loop* arrivals instead: messages arrive at a rate λ whether
//! or not the system keeps up. This harness offers messages at a fixed
//! rate for a fixed window and reports the delivery latency distribution
//! — flat below the saturation point (the `T_max` of Figures 4–6),
//! exploding above it, the classic queueing-theory signature.

use crate::cluster::{Action, SimCluster, SimConfig};
use crate::lan::Ns;
use bytes::Bytes;
use ritas::stack::Output;

/// The outcome of one open-loop run.
#[derive(Debug, Clone, PartialEq)]
pub struct SteadyStatePoint {
    /// Offered load, messages per second (across all senders).
    pub offered_rate: f64,
    /// Messages offered during the window.
    pub offered: usize,
    /// Messages delivered at the observer.
    pub delivered: usize,
    /// Mean delivery latency (enqueue → a-delivery at the observer), ms.
    pub mean_latency_ms: f64,
    /// 99th-percentile delivery latency, ms.
    pub p99_latency_ms: f64,
}

/// Runs one open-loop window: messages are scheduled at a uniform rate
/// `rate_msgs_per_sec` (round-robin across the 4 senders) for
/// `window_ms` of virtual time, then the run drains.
pub fn run_steady_state(rate_msgs_per_sec: f64, window_ms: u64, seed: u64) -> SteadyStatePoint {
    let config = SimConfig::paper_testbed(seed);
    let n = config.n;
    let mut sim = SimCluster::new(config);
    let window_ns = window_ms * 1_000_000;
    let interval_ns = (1e9 / rate_msgs_per_sec) as u64;
    let mut offered = 0usize;
    let mut enqueue_times = Vec::new();
    let mut t = 0u64;
    while t < window_ns {
        let sender = offered % n;
        sim.schedule(
            t,
            sender,
            Action::AbBroadcast(Bytes::from_static(b"0123456789")),
        );
        enqueue_times.push(t);
        offered += 1;
        t += interval_ns;
    }
    sim.run();

    let observer = sim.observer();
    // Deliveries at the observer, in order; the i-th delivered message is
    // not necessarily the i-th enqueued, but with uniform payloads the
    // per-message latency distribution is well-approximated by pairing
    // sorted enqueue times with sorted delivery times.
    let mut deliveries: Vec<Ns> = sim
        .outputs(observer)
        .iter()
        .filter(|(_, o)| matches!(o, Output::AbDelivered { .. }))
        .map(|(t, _)| *t)
        .collect();
    deliveries.sort_unstable();
    let mut latencies_ms: Vec<f64> = deliveries
        .iter()
        .zip(enqueue_times.iter())
        .map(|(d, e)| (d.saturating_sub(*e)) as f64 / 1e6)
        .collect();
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mean = if latencies_ms.is_empty() {
        0.0
    } else {
        latencies_ms.iter().sum::<f64>() / latencies_ms.len() as f64
    };
    let p99 = latencies_ms
        .get(
            ((latencies_ms.len() as f64 * 0.99) as usize).min(latencies_ms.len().saturating_sub(1)),
        )
        .copied()
        .unwrap_or(0.0);
    SteadyStatePoint {
        offered_rate: rate_msgs_per_sec,
        offered,
        delivered: deliveries.len(),
        mean_latency_ms: mean,
        p99_latency_ms: p99,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_offered_messages_are_delivered() {
        let p = run_steady_state(200.0, 100, 1);
        assert_eq!(p.offered, p.delivered);
        assert!(p.mean_latency_ms > 0.0);
    }

    #[test]
    fn latency_explodes_past_saturation() {
        // Well below the ~1000 msg/s plateau vs well above it.
        let below = run_steady_state(300.0, 150, 2);
        let above = run_steady_state(3000.0, 150, 2);
        assert!(
            above.mean_latency_ms > 3.0 * below.mean_latency_ms,
            "no queueing blow-up: {:.1} ms vs {:.1} ms",
            below.mean_latency_ms,
            above.mean_latency_ms
        );
    }

    #[test]
    fn p99_dominates_mean() {
        let p = run_steady_state(500.0, 150, 3);
        assert!(p.p99_latency_ms >= p.mean_latency_ms);
    }
}
