//! Standalone adversarial conformance sweeps — the out-of-test-runner
//! face of `ritas::adversary::explorer`, for long strategy × schedule ×
//! seed campaigns and for replaying violations found by CI or the test
//! matrix.
//!
//! ```text
//! adversary_explorer [--n N] [--strategies all|s1,s2,...]
//!                    [--schedules all|random,fifo,lifo]
//!                    [--seed-base B] [--seeds K] [--max-steps S]
//!                    [--no-shrink] [--trace-out FILE]
//!                    [--forensics-dir DIR]
//! ```
//!
//! Runs the cross-product of the requested strategies, schedules and the
//! seeds `B..B+K`, checking every safety predicate of the paper after
//! every scheduler step. Exits 0 when all runs are clean; on violation it
//! prints one replay command per failing run, writes the full trace to
//! `--trace-out` (if given), re-runs each violating spec to write
//! per-process span dumps and flight-recorder rings under
//! `--forensics-dir` (if given), and exits 1. Usage errors exit 2.

use ritas::adversary::explorer::{sweep, write_forensics, SweepConfig};
use ritas::adversary::StrategyKind;
use ritas::testing::Schedule;
use std::io::Write;

struct Options {
    cfg: SweepConfig,
    trace_out: Option<String>,
    forensics_dir: Option<String>,
}

fn usage(err: &str) -> ! {
    eprintln!("error: {err}");
    eprintln!(
        "usage: adversary_explorer [--n N] [--strategies all|LIST] [--schedules all|LIST] \
         [--seed-base B] [--seeds K] [--max-steps S] [--no-shrink] [--trace-out FILE] \
         [--forensics-dir DIR]"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut n = 4usize;
    let mut strategies = StrategyKind::ALL.to_vec();
    let mut schedules = Schedule::ALL.to_vec();
    let mut seed_base = 0u64;
    let mut seeds = 8u64;
    let mut max_steps = 200_000u64;
    let mut shrink = true;
    let mut trace_out = None;
    let mut forensics_dir = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| {
            args.next()
                .unwrap_or_else(|| usage(&format!("{what} needs a value")))
        };
        match arg.as_str() {
            "--n" => {
                n = value("--n").parse().unwrap_or_else(|_| usage("bad --n"));
                if n < 4 {
                    usage("--n must be at least 4");
                }
            }
            "--strategies" => {
                let v = value("--strategies");
                if v != "all" {
                    strategies = v
                        .split(',')
                        .map(|s| s.parse().unwrap_or_else(|e: String| usage(&e)))
                        .collect();
                }
            }
            "--schedules" => {
                let v = value("--schedules");
                if v != "all" {
                    schedules = v
                        .split(',')
                        .map(|s| s.parse().unwrap_or_else(|e: String| usage(&e)))
                        .collect();
                }
            }
            "--seed-base" => {
                seed_base = value("--seed-base")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --seed-base"));
            }
            "--seeds" => {
                seeds = value("--seeds")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --seeds"));
                if seeds == 0 {
                    usage("--seeds must be positive");
                }
            }
            "--max-steps" => {
                max_steps = value("--max-steps")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --max-steps"));
            }
            "--no-shrink" => shrink = false,
            "--trace-out" => trace_out = Some(value("--trace-out")),
            "--forensics-dir" => forensics_dir = Some(value("--forensics-dir")),
            other => usage(&format!("unknown flag {other:?}")),
        }
    }
    Options {
        cfg: SweepConfig {
            n,
            strategies,
            schedules,
            seeds: (seed_base..seed_base + seeds).collect(),
            max_steps,
            shrink,
        },
        trace_out,
        forensics_dir,
    }
}

fn main() {
    let opts = parse_args();
    let cfg = &opts.cfg;
    eprintln!(
        "sweeping {} strategies × {} schedules × {} seeds at n={} (budget {} steps/run)",
        cfg.strategies.len(),
        cfg.schedules.len(),
        cfg.seeds.len(),
        cfg.n,
        cfg.max_steps
    );
    let report = sweep(cfg);
    eprintln!(
        "{} runs, {} scheduler steps, {} violation(s)",
        report.runs,
        report.total_steps,
        report.violations.len()
    );
    if report.violations.is_empty() {
        return;
    }
    let mut trace = String::new();
    for v in &report.violations {
        let line = format!(
            "VIOLATION [{} × {} × seed {}] at step {}{}: {}\n  replay: {}",
            v.spec.strategy,
            v.spec.schedule,
            v.spec.seed,
            v.step,
            v.shrunk_steps
                .map(|s| format!(" (shrunk budget {s})"))
                .unwrap_or_default(),
            v.violation,
            v.replay
        );
        println!("{line}");
        trace.push_str(&line);
        trace.push('\n');
    }
    if let Some(path) = &opts.trace_out {
        match std::fs::File::create(path).and_then(|mut f| f.write_all(trace.as_bytes())) {
            Ok(()) => eprintln!("trace written to {path}"),
            Err(e) => eprintln!("failed to write trace to {path}: {e}"),
        }
    }
    if let Some(dir) = &opts.forensics_dir {
        // Re-run each violating spec deterministically and leave a
        // per-process post-mortem: span dumps joinable by
        // `ritas-trace --cluster` plus the flight-recorder rings.
        for v in &report.violations {
            let sub = std::path::Path::new(dir).join(format!(
                "{}-{}-seed{}",
                v.spec.strategy, v.spec.schedule, v.spec.seed
            ));
            match write_forensics(&v.spec, &sub) {
                Ok(paths) => eprintln!(
                    "forensics: {} artifact(s) in {}",
                    paths.len(),
                    sub.display()
                ),
                Err(e) => eprintln!("forensics: failed for {}: {e}", sub.display()),
            }
        }
    }
    std::process::exit(1);
}
