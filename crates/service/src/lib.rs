//! # ritas-service — the intrusion-tolerant client front-end
//!
//! The paper's stack ends at atomic broadcast; this crate is the tier
//! that turns a RITAS replica group into a *service* external clients
//! can call without trusting any single replica:
//!
//! * [`server::ServiceServer`] — a framed, HMAC-authenticated TCP
//!   front-end embedded next to each replica, deduplicating retries
//!   through the session table and answering after the local apply;
//! * [`client::ServiceClient`] — fans each request to `2f+1` replicas
//!   and accepts a result only when `f+1` answer byte-identically, so
//!   up to `f` actively lying replicas are masked; retries are
//!   exactly-once end to end because deduplication lives in the
//!   *replicated* state;
//! * [`wire`] — the length-framed, MAC-sealed message set in between.
//!
//! The replicated-state wiring (session tables, the command envelope,
//! [`ritas::service::ServiceReplica`]) lives in the core crate so the
//! same logic also serves in-process tests and the simulator; this crate
//! adds only the network faces.
//!
//! # Quickstart
//!
//! ```no_run
//! use ritas::node::{Node, SessionConfig};
//! use ritas::service::{ServiceConfig, ServiceReplica};
//! use ritas_crypto::ClientKeyDealer;
//! use ritas_service::client::{ClientConfig, ServiceClient};
//! use ritas_service::server::{ServerConfig, ServiceServer};
//! use bytes::Bytes;
//! use std::sync::Arc;
//!
//! let session = SessionConfig::new(4)?;
//! let dealer = ClientKeyDealer::new(session.client_key_seed());
//! let nodes = Node::cluster(session.clone())?;
//! let servers: Vec<_> = nodes
//!     .into_iter()
//!     .map(|n| {
//!         let replica = Arc::new(ServiceReplica::new(
//!             n,
//!             0u64,
//!             ServiceConfig::default(),
//!             |count, _client, _cmd| { *count += 1; Bytes::from(count.to_be_bytes().to_vec()) },
//!             |count, _q| Bytes::from(count.to_be_bytes().to_vec()),
//!         ));
//!         ServiceServer::spawn(replica, dealer, ServerConfig::default()).unwrap()
//!     })
//!     .collect();
//! let addrs = servers.iter().map(|s| s.addr()).collect();
//! let mut client = ServiceClient::new(
//!     7,
//!     addrs,
//!     ClientConfig { key_seed: session.client_key_seed(), ..ClientConfig::default() },
//! );
//! let reply = client.invoke(Bytes::from_static(b"incr"))?;
//! assert_eq!(reply.as_ref(), 1u64.to_be_bytes());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod server;
pub mod wire;

pub use client::{ClientConfig, ClientError, ServiceClient};
pub use server::{ServerConfig, ServiceServer};

#[cfg(test)]
mod tests {
    use super::client::{ClientConfig, ServiceClient};
    use super::server::{ServerConfig, ServiceServer};
    use bytes::Bytes;
    use ritas::node::{Node, SessionConfig};
    use ritas::service::{ServiceConfig, ServiceReplica};
    use ritas_crypto::ClientKeyDealer;
    use std::sync::Arc;

    /// Spins a full 4-replica service over TCP front-ends (replica mesh
    /// in-memory) and returns the servers plus client addresses.
    fn cluster() -> (Vec<ServiceServer<u64>>, Vec<std::net::SocketAddr>, u64) {
        let session = SessionConfig::new(4).unwrap();
        let seed = session.client_key_seed();
        let dealer = ClientKeyDealer::new(seed);
        let nodes = Node::cluster(session).unwrap();
        let servers: Vec<_> = nodes
            .into_iter()
            .map(|n| {
                let replica = Arc::new(ServiceReplica::new(
                    n,
                    0u64,
                    ServiceConfig::default(),
                    |count, _client, cmd| {
                        if cmd == b"incr" {
                            *count += 1;
                        }
                        Bytes::from(count.to_be_bytes().to_vec())
                    },
                    |count, _q| Bytes::from(count.to_be_bytes().to_vec()),
                ));
                ServiceServer::spawn(replica, dealer, ServerConfig::default()).unwrap()
            })
            .collect();
        let addrs = servers.iter().map(|s| s.addr()).collect();
        (servers, addrs, seed)
    }

    #[test]
    fn end_to_end_invoke_and_read() {
        let (mut servers, addrs, seed) = cluster();
        let mut client = ServiceClient::new(
            42,
            addrs,
            ClientConfig {
                key_seed: seed,
                ..ClientConfig::default()
            },
        );
        let r1 = client.invoke(Bytes::from_static(b"incr")).unwrap();
        assert_eq!(r1.as_ref(), 1u64.to_be_bytes());
        let r2 = client.invoke(Bytes::from_static(b"incr")).unwrap();
        assert_eq!(r2.as_ref(), 2u64.to_be_bytes());
        let read = client.read(Bytes::new()).unwrap();
        assert_eq!(read.as_ref(), 2u64.to_be_bytes());
        client.shutdown();
        for s in &mut servers {
            s.replica().shutdown();
            s.shutdown();
        }
    }

    #[test]
    fn wrong_key_client_is_rejected() {
        let (mut servers, addrs, seed) = cluster();
        let mut wrong = ServiceClient::new(
            42,
            addrs.clone(),
            ClientConfig {
                key_seed: seed ^ 1,
                ..ClientConfig::default()
            },
        );
        // Handshake fails against every replica: no quorum is reachable.
        assert!(wrong.invoke(Bytes::from_static(b"incr")).is_err());
        wrong.shutdown();
        // A correct client still gets in, and the state shows no effect
        // from the rejected one.
        let mut client = ServiceClient::new(
            43,
            addrs,
            ClientConfig {
                key_seed: seed,
                ..ClientConfig::default()
            },
        );
        let r = client.invoke(Bytes::from_static(b"incr")).unwrap();
        assert_eq!(r.as_ref(), 1u64.to_be_bytes());
        assert!(servers[0].replica().metrics().service_auth_rejected.get() >= 1);
        client.shutdown();
        for s in &mut servers {
            s.replica().shutdown();
            s.shutdown();
        }
    }
}
