//! The intrusion-tolerant client library: fan-out, `f+1`-vote reply
//! masking, exactly-once retries, and the optimistic/ordered read pair.
//!
//! A [`ServiceClient`] holds one authenticated connection per replica.
//! Each request is fanned to `2f+1` replicas — `f+1` in *submit* mode
//! (at least one correct replica orders the command) and the rest in
//! *observe* mode (they answer once the command applies, without
//! flooding the ordered stream with duplicates). The result is accepted
//! only when `f+1` replicas answer **byte-identically**: since atomic
//! broadcast puts every correct replica in the same state, correct
//! replicas return identical replies, and `f` liars can never assemble
//! an `f+1` quorum for a wrong answer.
//!
//! Retries reuse the same session sequence number, so a request that was
//! already ordered is answered from the replicated session table instead
//! of applying twice (exactly-once semantics end-to-end). Reads go
//! optimistic first — answered from local state, accepted on `f+1`
//! agreement — and fall back to an ordered read when replicas diverge.

use crate::wire::{
    connection_key, fresh_nonce, read_frame, read_frame_polling, write_frame, Hello, HelloAck,
    Reply, Request, RequestKind, RequestMode, Status,
};
use bytes::Bytes;
use crossbeam_channel::{unbounded, Receiver, Sender};
use ritas_crypto::{ClientKeyDealer, SecretKey};
use ritas_metrics::Metrics;
use std::collections::{HashMap, HashSet};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning for a [`ServiceClient`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Seed of the client key dealer (must match the replicas' —
    /// [`ritas::node::SessionConfig::client_key_seed`]).
    pub key_seed: u64,
    /// Deadline for one vote round before escalating to a retry.
    pub request_timeout: Duration,
    /// Rounds before giving up (first attempt plus retries).
    pub max_attempts: u32,
    /// Backoff between rounds (doubled each retry).
    pub backoff: Duration,
    /// Deadline for the optimistic read round before the ordered
    /// fallback.
    pub optimistic_timeout: Duration,
    /// Connect timeout per replica.
    pub connect_timeout: Duration,
    /// Metrics registry the client reports into (client-side counters
    /// and the end-to-end latency histogram). Share one across clients
    /// to aggregate, e.g. in the load generator.
    pub metrics: Metrics,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            key_seed: 0,
            request_timeout: Duration::from_secs(10),
            max_attempts: 4,
            backoff: Duration::from_millis(50),
            optimistic_timeout: Duration::from_secs(2),
            connect_timeout: Duration::from_secs(2),
            metrics: Metrics::new(),
        }
    }
}

/// Errors surfaced to the application by the client library.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// No `f+1` byte-identical replies within all retry rounds.
    NoQuorum,
    /// `f+1` replicas agree the sequence number is stale (the session
    /// advanced past it and evicted the reply).
    Stale,
    /// Fewer than `2f+1` replicas are reachable.
    Unavailable,
}

impl core::fmt::Display for ClientError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ClientError::NoQuorum => write!(f, "no f+1 matching replies within retry budget"),
            ClientError::Stale => write!(f, "sequence number stale at a reply quorum"),
            ClientError::Unavailable => write!(f, "fewer than 2f+1 replicas reachable"),
        }
    }
}

impl std::error::Error for ClientError {}

/// One replica connection: the write half, the per-connection frame key
/// (derived from both handshake nonces), and the reader thread.
struct Conn {
    addr: SocketAddr,
    stream: Option<TcpStream>,
    key: Option<SecretKey>,
    reader: Option<JoinHandle<()>>,
}

/// An intrusion-tolerant client of a replicated RITAS service.
pub struct ServiceClient {
    id: u64,
    dealer: ClientKeyDealer,
    config: ClientConfig,
    conns: Vec<Conn>,
    tx: Sender<Reply>,
    rx: Receiver<Reply>,
    next_seq: u64,
    stop: Arc<AtomicBool>,
}

impl ServiceClient {
    /// Creates a client of id `id` for the replica group at `addrs`
    /// (index in `addrs` = replica id). Connections are established
    /// lazily; the constructor itself cannot fail.
    pub fn new(id: u64, addrs: Vec<SocketAddr>, config: ClientConfig) -> Self {
        let (tx, rx) = unbounded();
        let conns = addrs
            .into_iter()
            .map(|addr| Conn {
                addr,
                stream: None,
                key: None,
                reader: None,
            })
            .collect();
        ServiceClient {
            id,
            dealer: ClientKeyDealer::new(config.key_seed),
            config,
            conns,
            tx,
            rx,
            next_seq: 0,
            stop: Arc::new(AtomicBool::new(false)),
        }
    }

    /// This client's id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The metrics registry the client reports into.
    pub fn metrics(&self) -> &Metrics {
        &self.config.metrics
    }

    /// Group resilience `f = ⌊(n−1)/3⌋`.
    fn resilience(&self) -> usize {
        (self.conns.len() - 1) / 3
    }

    /// Submits `command` for ordered execution and returns the
    /// `f+1`-voted reply. Exactly-once: retries (ours or a competing
    /// fan-out leg's) of the same sequence number are answered from the
    /// replicated session table, never applied again.
    ///
    /// # Errors
    ///
    /// [`ClientError::NoQuorum`] when the retry budget runs out without
    /// `f+1` byte-identical replies, [`ClientError::Stale`] when the
    /// session advanced past this request.
    pub fn invoke(&mut self, command: Bytes) -> Result<Bytes, ClientError> {
        self.next_seq += 1;
        let seq = self.next_seq;
        self.vote_rounds(seq, RequestKind::Apply, command)
    }

    /// Reads via the optimistic path — local answers accepted at `f+1`
    /// byte-identical — falling back to an ordered read when replicas
    /// diverge or time out.
    ///
    /// # Errors
    ///
    /// Same as [`ServiceClient::invoke`] (via the ordered fallback).
    pub fn read(&mut self, query: Bytes) -> Result<Bytes, ClientError> {
        self.next_seq += 1;
        let seq = self.next_seq;
        let m = self.config.metrics.clone();
        m.service_client_requests.inc();
        let start = Instant::now();
        let targets: Vec<usize> = self.round_targets(seq, false);
        let sent = self.fan_out(
            &targets,
            &[],
            seq,
            RequestKind::OptimisticRead,
            query.clone(),
        );
        let f = self.resilience();
        if sent > f {
            if let Some((Status::Ok, payload)) =
                self.collect_votes(seq, f + 1, self.config.optimistic_timeout)
            {
                m.service_e2e_latency_ns
                    .record(start.elapsed().as_nanos() as u64);
                return Ok(payload);
            }
        }
        // Divergence or timeout: pay for ordering.
        m.service_client_read_fallbacks.inc();
        self.next_seq += 1;
        let seq = self.next_seq;
        self.vote_rounds(seq, RequestKind::OrderedRead, query)
    }

    /// The fan-out / vote / retry loop shared by writes and ordered
    /// reads.
    fn vote_rounds(
        &mut self,
        seq: u64,
        kind: RequestKind,
        payload: Bytes,
    ) -> Result<Bytes, ClientError> {
        let m = self.config.metrics.clone();
        m.service_client_requests.inc();
        let start = Instant::now();
        let f = self.resilience();
        let mut backoff = self.config.backoff;
        for attempt in 0..self.config.max_attempts.max(1) {
            let escalate = attempt > 0;
            if escalate {
                m.service_client_retries.inc();
                std::thread::sleep(backoff);
                backoff = backoff.saturating_mul(2);
            }
            // First round: f+1 submitters (at least one correct orders
            // the command), the rest observe. Escalated rounds submit at
            // the full 2f+1 set — the pinned f+1 set may be exactly the
            // crashed/Byzantine replicas that made round one miss quorum,
            // and dedup in the replicated session table absorbs the extra
            // submissions.
            let (submitters, observers) = if escalate {
                (self.round_targets(seq, false), Vec::new())
            } else {
                let submitters = self.round_targets(seq, true);
                let observers = self
                    .round_targets(seq, false)
                    .into_iter()
                    .filter(|i| !submitters.contains(i))
                    .collect();
                (submitters, observers)
            };
            let sent = self.fan_out(&submitters, &observers, seq, kind, payload.clone());
            if sent <= f {
                // Not even f+1 replicas reachable: no quorum can form.
                continue;
            }
            match self.collect_votes(seq, f + 1, self.config.request_timeout) {
                Some((Status::Ok, reply)) => {
                    m.service_e2e_latency_ns
                        .record(start.elapsed().as_nanos() as u64);
                    return Ok(reply);
                }
                Some((Status::Stale, _)) => return Err(ClientError::Stale),
                Some((Status::Busy, _)) | Some((Status::Error, _)) | None => {
                    // Back off and escalate to an all-submit round.
                }
            }
        }
        Err(ClientError::NoQuorum)
    }

    /// The replicas targeted this round: `f+1` submitters (rotated by
    /// `seq` for load spreading) or the full `2f+1` read set.
    fn round_targets(&self, seq: u64, submitters_only: bool) -> Vec<usize> {
        let n = self.conns.len();
        let f = self.resilience();
        let count = if submitters_only { f + 1 } else { 2 * f + 1 };
        let first = ((self.id.wrapping_add(seq)) % n as u64) as usize;
        (0..count.min(n)).map(|k| (first + k) % n).collect()
    }

    /// Sends the request to each target, reconnecting dead links on the
    /// way. Returns how many copies went out.
    fn fan_out(
        &mut self,
        submitters: &[usize],
        observers: &[usize],
        seq: u64,
        kind: RequestKind,
        payload: Bytes,
    ) -> usize {
        let mut sent = 0;
        let legs = submitters
            .iter()
            .map(|&i| (i, RequestMode::Submit))
            .chain(observers.iter().map(|&i| (i, RequestMode::Observe)));
        for (i, mode) in legs {
            let request = Request {
                client: self.id,
                seq,
                kind,
                mode,
                payload: payload.clone(),
            };
            if self.send_to(i, &request) {
                sent += 1;
            }
        }
        sent
    }

    /// Sends one sealed request to replica `i`, dialing (or redialing)
    /// its connection if needed.
    fn send_to(&mut self, i: usize, request: &Request) -> bool {
        // One reconnect attempt per send: a dead stream is torn down and
        // redialed, then the send is tried once more. The frame is sealed
        // per attempt because each connection has its own nonce-derived
        // key.
        for _ in 0..2 {
            if self.conns[i].stream.is_none() && !self.connect(i) {
                return false;
            }
            let key = self.conns[i].key.expect("connected above");
            let frame = request.seal(&key);
            let stream = self.conns[i].stream.as_mut().expect("connected above");
            match write_frame(stream, &frame) {
                Ok(()) => return true,
                Err(_) => {
                    // Shut the socket down instead of just dropping the
                    // write half: the reader holds a cloned fd, and on a
                    // half-open connection (writes fail, reads only time
                    // out) it would otherwise run until its next redial
                    // joins it — blocking the whole client.
                    if let Some(s) = self.conns[i].stream.take() {
                        let _ = s.shutdown(Shutdown::Both);
                    }
                }
            }
        }
        false
    }

    /// Dials replica `i`, runs the HELLO handshake, and spawns its
    /// reader thread.
    fn connect(&mut self, i: usize) -> bool {
        let addr = self.conns[i].addr;
        let key = self.dealer.link_key(self.id, i as u64);
        let Ok(mut stream) = TcpStream::connect_timeout(&addr, self.config.connect_timeout) else {
            return false;
        };
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(self.config.connect_timeout));
        let nonce = fresh_nonce();
        let hello = Hello {
            client: self.id,
            nonce,
        };
        if write_frame(&mut stream, &hello.seal(&key)).is_err() {
            return false;
        }
        let Ok(ack_frame) = read_frame(&mut stream) else {
            return false;
        };
        let Ok(ack) = HelloAck::open(&ack_frame, &key) else {
            self.config.metrics.service_client_replies_rejected.inc();
            return false;
        };
        if ack.nonce != nonce || ack.replica as usize != i {
            self.config.metrics.service_client_replies_rejected.inc();
            return false;
        }
        // Request/Reply frames ride the connection key derived from both
        // handshake nonces, binding them to this live connection (see
        // `wire::connection_key`).
        let conn_key = connection_key(&key, nonce, ack.server_nonce);
        // Steady-state read timeout: short, so the reader notices
        // shutdown promptly.
        let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
        let Ok(read_half) = stream.try_clone() else {
            return false;
        };
        if let Some(old) = self.conns[i].reader.take() {
            let _ = old.join();
        }
        self.conns[i].reader = Some(spawn_reader(
            read_half,
            i as u16,
            conn_key,
            self.tx.clone(),
            Arc::clone(&self.stop),
            self.config.metrics.clone(),
        ));
        self.conns[i].stream = Some(stream);
        self.conns[i].key = Some(conn_key);
        true
    }

    /// Drains the reply channel until `quorum` replicas agree
    /// byte-for-byte on `(status, payload)` for `seq`, or the deadline
    /// passes. Counts a vote failure when replies arrived but never
    /// agreed.
    fn collect_votes(&self, seq: u64, quorum: usize, timeout: Duration) -> Option<(Status, Bytes)> {
        let deadline = Instant::now() + timeout;
        let mut votes: HashMap<(Status, Bytes), HashSet<u16>> = HashMap::new();
        let mut any = false;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                if any {
                    self.config.metrics.service_client_vote_failures.inc();
                }
                return None;
            }
            let Ok(reply) = self.rx.recv_timeout(remaining) else {
                if any {
                    self.config.metrics.service_client_vote_failures.inc();
                }
                return None;
            };
            if reply.client != self.id || reply.seq != seq {
                continue; // stale round
            }
            any = true;
            let voters = votes
                .entry((reply.status, reply.payload.clone()))
                .or_default();
            voters.insert(reply.replica);
            if voters.len() >= quorum {
                return Some((reply.status, reply.payload));
            }
        }
    }

    /// Closes every connection and joins the reader threads.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for conn in &mut self.conns {
            if let Some(s) = conn.stream.take() {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
            if let Some(r) = conn.reader.take() {
                let _ = r.join();
            }
        }
    }
}

impl Drop for ServiceClient {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl core::fmt::Debug for ServiceClient {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ServiceClient")
            .field("id", &self.id)
            .field("replicas", &self.conns.len())
            .finish_non_exhaustive()
    }
}

/// Spawns the per-connection reader: authenticates every inbound frame
/// under the connection's link key, enforces that the reply names the
/// replica this connection was dialed to (a replica cannot stuff votes
/// in its peers' names), and forwards accepted replies to the shared
/// vote channel.
fn spawn_reader(
    mut stream: TcpStream,
    replica: u16,
    key: ritas_crypto::SecretKey,
    tx: Sender<Reply>,
    stop: Arc<AtomicBool>,
    metrics: Metrics,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        while let Some(frame) = read_frame_polling(&mut stream, &stop) {
            match Reply::open(&frame, &key) {
                Ok(reply) if reply.replica == replica => {
                    if tx.send(reply).is_err() {
                        return;
                    }
                }
                Ok(_) | Err(_) => {
                    metrics.service_client_replies_rejected.inc();
                }
            }
        }
    })
}
