//! The client↔replica wire protocol: length-framed, MAC-authenticated
//! messages over TCP.
//!
//! Every frame is a `u32` big-endian length prefix followed by the frame
//! body; every body ends in a 12-byte HMAC-SHA-1-96 over the preceding
//! bytes — the same construction (and truncation) as the replica mesh's
//! AH layer. The handshake frames ([`Hello`], [`HelloAck`]) are keyed by
//! the pairwise *client link key*
//! ([`ritas_crypto::ClientKeyDealer::link_key`]) of the `(client,
//! replica)` edge the frame travels on; all subsequent [`Request`] and
//! [`Reply`] frames are keyed by the per-connection key
//! ([`connection_key`]) derived from that link key **and both handshake
//! nonces**. Pairwise keys matter: with one key per client shared by the
//! whole group, a single Byzantine replica could sign replies in its
//! peers' names and fabricate an `f+1` quorum by itself. The nonce-bound
//! connection key matters too: a network adversary replaying a recorded
//! HELLO plus its sealed requests on a fresh connection is stopped at the
//! first request frame, because the replica's fresh nonce changed the key.
//!
//! Frames, by tag:
//!
//! | tag | frame | direction | key |
//! |---|---|---|---|
//! | 1 | [`Hello`] — session registration with a fresh client nonce | client → replica | link key |
//! | 2 | [`HelloAck`] — group parameters, client nonce echoed, fresh server nonce | replica → client | link key |
//! | 3 | [`Request`] — `(client, seq, kind, mode, payload)` | client → replica | connection key |
//! | 4 | [`Reply`] — `(replica, client, seq, status, payload)` | replica → client | connection key |

use bytes::Bytes;
use ritas::codec::{Reader, WireError, Writer};
use ritas_crypto::{digest::ct_eq, Digest, Hmac, SecretKey, Sha1, Sha256};
use std::io::{Read as IoRead, Write as IoWrite};
use std::sync::atomic::{AtomicU64, Ordering};

/// Length of the truncated HMAC-SHA-1-96 tag on every frame.
pub const MAC_LEN: usize = 12;

/// Hard cap on an accepted frame body (decoder hardening against hostile
/// length prefixes, mirroring the transport's field cap).
pub const MAX_FRAME: usize = 16 * 1024 * 1024 + 1024;

/// Errors produced while decoding or authenticating a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Structural decode failure.
    Wire(WireError),
    /// The MAC did not verify under the expected link key.
    BadMac,
}

impl core::fmt::Display for FrameError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FrameError::Wire(e) => write!(f, "malformed frame: {e}"),
            FrameError::BadMac => write!(f, "frame failed MAC authentication"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<WireError> for FrameError {
    fn from(e: WireError) -> Self {
        FrameError::Wire(e)
    }
}

/// What a [`Request`] asks the replica to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestKind {
    /// Order and apply the payload (the write path).
    Apply = 1,
    /// Answer from local state without ordering (optimistic read).
    OptimisticRead = 2,
    /// Order a read-only query (the linearizable fallback).
    OrderedRead = 3,
}

impl RequestKind {
    fn decode(tag: u8) -> Result<Self, WireError> {
        match tag {
            1 => Ok(RequestKind::Apply),
            2 => Ok(RequestKind::OptimisticRead),
            3 => Ok(RequestKind::OrderedRead),
            tag => Err(WireError::InvalidTag {
                what: "req.kind",
                tag,
            }),
        }
    }
}

/// Whether the receiving replica should inject the request into the
/// ordered stream or merely wait for it to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestMode {
    /// Submit through atomic broadcast. The client sends this to `f+1`
    /// replicas so at least one correct replica orders the command.
    Submit = 0,
    /// Observe: answer once the command (submitted elsewhere) applies
    /// locally. Keeps the remaining fan-out legs from flooding the
    /// ordered stream with duplicates.
    Observe = 1,
}

impl RequestMode {
    fn decode(tag: u8) -> Result<Self, WireError> {
        match tag {
            0 => Ok(RequestMode::Submit),
            1 => Ok(RequestMode::Observe),
            tag => Err(WireError::InvalidTag {
                what: "req.mode",
                tag,
            }),
        }
    }
}

/// Outcome of a request, as reported by one replica. Clients never trust
/// a single status — replies only count once `f+1` replicas agree
/// byte-for-byte on `(status, payload)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Status {
    /// Applied (or read); the payload is the reply.
    Ok = 0,
    /// Admission control refused the request; retry after backoff.
    Busy = 1,
    /// The sequence number was already surpassed and its reply evicted.
    Stale = 2,
    /// The replica could not serve the request (shutting down).
    Error = 3,
}

impl Status {
    fn decode(tag: u8) -> Result<Self, WireError> {
        match tag {
            0 => Ok(Status::Ok),
            1 => Ok(Status::Busy),
            2 => Ok(Status::Stale),
            3 => Ok(Status::Error),
            tag => Err(WireError::InvalidTag {
                what: "reply.status",
                tag,
            }),
        }
    }
}

/// Process-wide salt so two nonces drawn in the same nanosecond are
/// still distinct.
static NONCE_SALT: AtomicU64 = AtomicU64::new(0);

/// Draws a fresh handshake nonce (wall clock ⊕ a process-wide counter).
pub fn fresh_nonce() -> u64 {
    let t = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    t ^ NONCE_SALT
        .fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed)
        .rotate_left(17)
}

/// Derives the per-connection frame key from the pairwise link key and
/// both handshake nonces (`SHA-256("ritas-conn-key" ‖ link ‖ client
/// nonce ‖ server nonce)`).
///
/// [`Request`] and [`Reply`] frames are sealed under this key rather
/// than the long-lived link key, which binds them to the live
/// connection in *both* directions: the client's nonce stops HELLO_ACK
/// replay, and the server's nonce stops a recorded HELLO + request
/// transcript from being replayed verbatim on a fresh connection —
/// without the link key, the adversary cannot re-seal the requests
/// under the new connection key.
pub fn connection_key(link: &SecretKey, client_nonce: u64, server_nonce: u64) -> SecretKey {
    let digest = Sha256::digest_concat(&[
        b"ritas-conn-key",
        link.as_ref(),
        &client_nonce.to_be_bytes(),
        &server_nonce.to_be_bytes(),
    ]);
    SecretKey::from_bytes(digest)
}

const TAG_HELLO: u8 = 1;
const TAG_HELLO_ACK: u8 = 2;
const TAG_REQUEST: u8 = 3;
const TAG_REPLY: u8 = 4;

/// Session registration: opens a connection for `client`, carrying a
/// fresh nonce the replica must echo under MAC (so the ack cannot be a
/// replay from an earlier connection).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hello {
    /// The connecting client.
    pub client: u64,
    /// Fresh per-connection nonce.
    pub nonce: u64,
}

/// Replica's authenticated answer to a [`Hello`]: group parameters, the
/// client's nonce echoed (the ack cannot be a replay), and the replica's
/// own fresh nonce (request frames cannot be replays either — both
/// nonces feed [`connection_key`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HelloAck {
    /// The answering replica.
    pub replica: u16,
    /// Group size `n`.
    pub n: u16,
    /// Resilience `f = ⌊(n−1)/3⌋`.
    pub f: u16,
    /// The client's nonce, echoed.
    pub nonce: u64,
    /// The replica's fresh per-connection nonce, challenging the client
    /// in turn.
    pub server_nonce: u64,
}

/// One client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The requesting client (must match the connection's [`Hello`]).
    pub client: u64,
    /// Session sequence number (correlation id for optimistic reads).
    pub seq: u64,
    /// What to do with the payload.
    pub kind: RequestKind,
    /// Submit or observe.
    pub mode: RequestMode,
    /// Opaque application payload.
    pub payload: Bytes,
}

/// One replica's reply to a [`Request`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reply {
    /// The answering replica; must match the connection the reply
    /// arrived on, or the client discards it.
    pub replica: u16,
    /// Echo of the request's client.
    pub client: u64,
    /// Echo of the request's sequence number.
    pub seq: u64,
    /// Outcome.
    pub status: Status,
    /// Reply payload (empty unless [`Status::Ok`]).
    pub payload: Bytes,
}

fn seal(w: Writer, key: &SecretKey) -> Bytes {
    let body = w.freeze();
    let mac = Hmac::<Sha1>::mac(key.as_ref(), &body);
    let mut out = body.to_vec();
    out.extend_from_slice(&mac[..MAC_LEN]);
    Bytes::from(out)
}

/// Splits `frame` into body and MAC and verifies the MAC (constant
/// time). Returns the body.
fn verify<'a>(frame: &'a [u8], key: &SecretKey) -> Result<&'a [u8], FrameError> {
    if frame.len() < MAC_LEN + 1 {
        return Err(WireError::Truncated { what: "frame" }.into());
    }
    let (body, mac) = frame.split_at(frame.len() - MAC_LEN);
    let expected = Hmac::<Sha1>::mac(key.as_ref(), body);
    if !ct_eq(&expected[..MAC_LEN], mac) {
        return Err(FrameError::BadMac);
    }
    Ok(body)
}

impl Hello {
    /// Encodes and MACs the frame under `key`.
    pub fn seal(&self, key: &SecretKey) -> Bytes {
        let mut w = Writer::new();
        w.u8(TAG_HELLO).u64(self.client).u64(self.nonce);
        seal(w, key)
    }

    /// Reads the unauthenticated client id from a HELLO body so the
    /// receiver can look up the right key, **without** trusting anything
    /// else; callers must still [`Hello::open`] with that key.
    pub fn peek_client(frame: &[u8]) -> Result<u64, FrameError> {
        let mut r = Reader::new(frame);
        let tag = r.u8("hello.tag")?;
        if tag != TAG_HELLO {
            return Err(WireError::InvalidTag {
                what: "hello.tag",
                tag,
            }
            .into());
        }
        Ok(r.u64("hello.client")?)
    }

    /// Verifies and decodes a sealed HELLO.
    ///
    /// # Errors
    ///
    /// [`FrameError::BadMac`] on authentication failure, [`FrameError::Wire`]
    /// on structural corruption.
    pub fn open(frame: &[u8], key: &SecretKey) -> Result<Self, FrameError> {
        let body = verify(frame, key)?;
        let mut r = Reader::new(body);
        let tag = r.u8("hello.tag")?;
        if tag != TAG_HELLO {
            return Err(WireError::InvalidTag {
                what: "hello.tag",
                tag,
            }
            .into());
        }
        let v = Hello {
            client: r.u64("hello.client")?,
            nonce: r.u64("hello.nonce")?,
        };
        r.finish()?;
        Ok(v)
    }
}

impl HelloAck {
    /// Encodes and MACs the frame under `key`.
    pub fn seal(&self, key: &SecretKey) -> Bytes {
        let mut w = Writer::new();
        w.u8(TAG_HELLO_ACK)
            .u16(self.replica)
            .u16(self.n)
            .u16(self.f)
            .u64(self.nonce)
            .u64(self.server_nonce);
        seal(w, key)
    }

    /// Verifies and decodes a sealed HELLO_ACK.
    ///
    /// # Errors
    ///
    /// [`FrameError::BadMac`] on authentication failure, [`FrameError::Wire`]
    /// on structural corruption.
    pub fn open(frame: &[u8], key: &SecretKey) -> Result<Self, FrameError> {
        let body = verify(frame, key)?;
        let mut r = Reader::new(body);
        let tag = r.u8("ack.tag")?;
        if tag != TAG_HELLO_ACK {
            return Err(WireError::InvalidTag {
                what: "ack.tag",
                tag,
            }
            .into());
        }
        let v = HelloAck {
            replica: r.u16("ack.replica")?,
            n: r.u16("ack.n")?,
            f: r.u16("ack.f")?,
            nonce: r.u64("ack.nonce")?,
            server_nonce: r.u64("ack.server_nonce")?,
        };
        r.finish()?;
        Ok(v)
    }
}

impl Request {
    /// Encodes and MACs the frame under `key`.
    pub fn seal(&self, key: &SecretKey) -> Bytes {
        let mut w = Writer::new();
        w.u8(TAG_REQUEST)
            .u64(self.client)
            .u64(self.seq)
            .u8(self.kind as u8)
            .u8(self.mode as u8)
            .bytes(&self.payload);
        seal(w, key)
    }

    /// Verifies and decodes a sealed REQUEST.
    ///
    /// # Errors
    ///
    /// [`FrameError::BadMac`] on authentication failure, [`FrameError::Wire`]
    /// on structural corruption.
    pub fn open(frame: &[u8], key: &SecretKey) -> Result<Self, FrameError> {
        let body = verify(frame, key)?;
        let mut r = Reader::new(body);
        let tag = r.u8("req.tag")?;
        if tag != TAG_REQUEST {
            return Err(WireError::InvalidTag {
                what: "req.tag",
                tag,
            }
            .into());
        }
        let v = Request {
            client: r.u64("req.client")?,
            seq: r.u64("req.seq")?,
            kind: RequestKind::decode(r.u8("req.kind")?)?,
            mode: RequestMode::decode(r.u8("req.mode")?)?,
            payload: r.bytes("req.payload")?,
        };
        r.finish()?;
        Ok(v)
    }
}

impl Reply {
    /// Encodes and MACs the frame under `key`.
    pub fn seal(&self, key: &SecretKey) -> Bytes {
        let mut w = Writer::new();
        w.u8(TAG_REPLY)
            .u16(self.replica)
            .u64(self.client)
            .u64(self.seq)
            .u8(self.status as u8)
            .bytes(&self.payload);
        seal(w, key)
    }

    /// Verifies and decodes a sealed REPLY.
    ///
    /// # Errors
    ///
    /// [`FrameError::BadMac`] on authentication failure, [`FrameError::Wire`]
    /// on structural corruption.
    pub fn open(frame: &[u8], key: &SecretKey) -> Result<Self, FrameError> {
        let body = verify(frame, key)?;
        let mut r = Reader::new(body);
        let tag = r.u8("reply.tag")?;
        if tag != TAG_REPLY {
            return Err(WireError::InvalidTag {
                what: "reply.tag",
                tag,
            }
            .into());
        }
        let v = Reply {
            replica: r.u16("reply.replica")?,
            client: r.u64("reply.client")?,
            seq: r.u64("reply.seq")?,
            status: Status::decode(r.u8("reply.status")?)?,
            payload: r.bytes("reply.payload")?,
        };
        r.finish()?;
        Ok(v)
    }
}

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_frame(w: &mut impl IoWrite, frame: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(frame.len())
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidInput, "frame too long"))?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(frame)?;
    w.flush()
}

/// Reads one length-prefixed frame, rejecting hostile lengths above
/// [`MAX_FRAME`].
///
/// # Errors
///
/// Propagates the underlying I/O error; oversized prefixes surface as
/// [`std::io::ErrorKind::InvalidData`].
pub fn read_frame(r: &mut impl IoRead) -> std::io::Result<Vec<u8>> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "frame length exceeds cap",
        ));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

/// Reads one frame from a stream with a read timeout set, retrying
/// timeouts until data arrives, the peer closes, or `stop` is raised.
/// Partial reads across timeouts are resumed, never dropped — a slow
/// sender must not desynchronize the framing. `None` means "stop
/// reading" (shutdown, EOF, or hard error).
pub fn read_frame_polling(
    stream: &mut std::net::TcpStream,
    stop: &std::sync::atomic::AtomicBool,
) -> Option<Vec<u8>> {
    let mut len_buf = [0u8; 4];
    read_exact_polling(stream, &mut len_buf, stop)?;
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return None;
    }
    let mut buf = vec![0u8; len];
    read_exact_polling(stream, &mut buf, stop)?;
    Some(buf)
}

/// `read_exact` that survives read timeouts (rechecking `stop`) and
/// resumes partially filled buffers.
fn read_exact_polling(
    stream: &mut std::net::TcpStream,
    buf: &mut [u8],
    stop: &std::sync::atomic::AtomicBool,
) -> Option<()> {
    use std::sync::atomic::Ordering;
    let mut filled = 0;
    while filled < buf.len() {
        if stop.load(Ordering::SeqCst) {
            return None;
        }
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return None, // peer closed
            Ok(k) => filled += k,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::Interrupted =>
            {
                continue
            }
            Err(_) => return None,
        }
    }
    Some(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ritas_crypto::ClientKeyDealer;

    fn key() -> SecretKey {
        ClientKeyDealer::new(7).link_key(3, 1)
    }

    #[test]
    fn hello_roundtrip_and_peek() {
        let h = Hello {
            client: 3,
            nonce: 0xDEAD,
        };
        let frame = h.seal(&key());
        assert_eq!(Hello::peek_client(&frame).unwrap(), 3);
        assert_eq!(Hello::open(&frame, &key()).unwrap(), h);
    }

    #[test]
    fn hello_ack_roundtrip() {
        let a = HelloAck {
            replica: 1,
            n: 4,
            f: 1,
            nonce: 0xBEEF,
            server_nonce: 0xCAFE,
        };
        assert_eq!(HelloAck::open(&a.seal(&key()), &key()).unwrap(), a);
    }

    #[test]
    fn connection_key_binds_both_nonces() {
        let k = connection_key(&key(), 1, 2);
        assert_eq!(k, connection_key(&key(), 1, 2));
        // Either side refreshing its nonce yields a different key, so a
        // frame recorded on one connection never verifies on another.
        assert_ne!(k, connection_key(&key(), 1, 3));
        assert_ne!(k, connection_key(&key(), 3, 2));
        assert_ne!(k, key());
        let rq = Request {
            client: 3,
            seq: 1,
            kind: RequestKind::Apply,
            mode: RequestMode::Submit,
            payload: Bytes::from_static(b"cmd"),
        };
        // A request sealed for one connection is a replay on the next.
        assert_eq!(
            Request::open(&rq.seal(&k), &connection_key(&key(), 1, 3)).unwrap_err(),
            FrameError::BadMac
        );
    }

    #[test]
    fn fresh_nonces_distinct() {
        let a = fresh_nonce();
        let b = fresh_nonce();
        assert_ne!(a, b);
    }

    #[test]
    fn request_reply_roundtrip() {
        let rq = Request {
            client: 3,
            seq: 9,
            kind: RequestKind::Apply,
            mode: RequestMode::Submit,
            payload: Bytes::from_static(b"cmd"),
        };
        assert_eq!(Request::open(&rq.seal(&key()), &key()).unwrap(), rq);
        let rp = Reply {
            replica: 1,
            client: 3,
            seq: 9,
            status: Status::Ok,
            payload: Bytes::from_static(b"result"),
        };
        assert_eq!(Reply::open(&rp.seal(&key()), &key()).unwrap(), rp);
    }

    #[test]
    fn wrong_key_rejected() {
        let h = Hello {
            client: 3,
            nonce: 1,
        };
        let other = ClientKeyDealer::new(7).link_key(3, 2);
        assert_eq!(
            Hello::open(&h.seal(&key()), &other).unwrap_err(),
            FrameError::BadMac
        );
    }

    #[test]
    fn bitflip_rejected() {
        let rq = Request {
            client: 3,
            seq: 1,
            kind: RequestKind::OptimisticRead,
            mode: RequestMode::Observe,
            payload: Bytes::from_static(b"q"),
        };
        let mut bad = rq.seal(&key()).to_vec();
        bad[10] ^= 0x40;
        assert_eq!(Request::open(&bad, &key()).unwrap_err(), FrameError::BadMac);
    }

    #[test]
    fn truncated_rejected() {
        assert!(matches!(
            Reply::open(&[1, 2, 3], &key()),
            Err(FrameError::Wire(WireError::Truncated { .. }))
        ));
    }

    #[test]
    fn frame_io_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"abc").unwrap();
        let mut cur = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cur).unwrap(), b"abc");
    }

    #[test]
    fn oversized_length_prefix_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_be_bytes());
        let mut cur = std::io::Cursor::new(buf);
        assert_eq!(
            read_frame(&mut cur).unwrap_err().kind(),
            std::io::ErrorKind::InvalidData
        );
    }
}
