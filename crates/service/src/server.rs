//! The replica-side client front-end: a TCP listener embedded in the
//! replica runtime that authenticates client connections, deduplicates
//! retries through the session table, submits commands via atomic
//! broadcast, and answers after the local apply.
//!
//! One [`ServiceServer`] runs next to each [`ServiceReplica`]; a client
//! talks to `2f+1` of them and masks Byzantine answers by `f+1` voting
//! (see the `client` module). The server never needs to be trusted
//! individually — a lying front-end is exactly the fault the vote
//! absorbs.

use crate::wire::{
    connection_key, fresh_nonce, read_frame_polling, write_frame, FrameError, Hello, HelloAck,
    Reply, Request, RequestKind, RequestMode, Status,
};
use bytes::Bytes;
use parking_lot::Mutex;
use ritas::service::{CommandKind, ServiceError, ServiceReplica};
use ritas_crypto::ClientKeyDealer;
use ritas_metrics::Layer;
use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Tuning for a [`ServiceServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// How long one request may wait for its apply before the replica
    /// answers [`Status::Error`] and lets the client retry elsewhere.
    pub request_timeout: Duration,
    /// Socket read timeout (also the shutdown poll granularity).
    pub read_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            request_timeout: Duration::from_secs(20),
            read_timeout: Duration::from_millis(200),
        }
    }
}

/// A hook rewriting sealed-to-be reply payloads — the conformance
/// harness's model of a *Byzantine front-end* that lies to its clients
/// (with a perfectly valid MAC: the liar owns its link keys) rather
/// than to its peers.
pub type ReplyTamper = dyn Fn(&Request, Bytes) -> Bytes + Send + Sync;

/// The TCP front-end of one service replica.
pub struct ServiceServer<S: Send + 'static> {
    replica: Arc<ServiceReplica<S>>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    tamper: Arc<Mutex<Option<Arc<ReplyTamper>>>>,
}

impl<S: Send + 'static> ServiceServer<S> {
    /// Binds an ephemeral localhost listener and starts serving clients
    /// of `replica`, authenticating them against `dealer`.
    ///
    /// # Errors
    ///
    /// Propagates listener bind failures.
    pub fn spawn(
        replica: Arc<ServiceReplica<S>>,
        dealer: ClientKeyDealer,
        config: ServerConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let tamper: Arc<Mutex<Option<Arc<ReplyTamper>>>> = Arc::new(Mutex::new(None));
        let accept_thread = {
            let replica = Arc::clone(&replica);
            let stop = Arc::clone(&stop);
            let tamper = Arc::clone(&tamper);
            std::thread::spawn(move || {
                let mut conn_threads = Vec::new();
                while !stop.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            let replica = Arc::clone(&replica);
                            let stop = Arc::clone(&stop);
                            let tamper = Arc::clone(&tamper);
                            let config = config.clone();
                            conn_threads.push(std::thread::spawn(move || {
                                serve_connection(stream, replica, dealer, config, stop, tamper);
                            }));
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(20));
                        }
                        Err(_) => break,
                    }
                }
                for t in conn_threads {
                    let _ = t.join();
                }
            })
        };
        Ok(ServiceServer {
            replica,
            addr,
            stop,
            accept_thread: Some(accept_thread),
            tamper,
        })
    }

    /// The address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The replica this front-end serves.
    pub fn replica(&self) -> &Arc<ServiceReplica<S>> {
        &self.replica
    }

    /// Installs a reply-corruption hook (conformance tests only): every
    /// subsequent `Status::Ok` reply payload is rewritten by `f` before
    /// sealing, turning this replica into an actively lying Byzantine
    /// front-end with valid MACs.
    pub fn set_reply_tamper(&self, f: impl Fn(&Request, Bytes) -> Bytes + Send + Sync + 'static) {
        *self.tamper.lock() = Some(Arc::new(f));
    }

    /// Stops accepting, closes serving threads, and waits for them.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl<S: Send + 'static> Drop for ServiceServer<S> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl<S: Send + 'static> core::fmt::Debug for ServiceServer<S> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ServiceServer")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

/// Serves one authenticated client connection until EOF, error, or
/// server shutdown.
fn serve_connection<S: Send + 'static>(
    mut stream: TcpStream,
    replica: Arc<ServiceReplica<S>>,
    dealer: ClientKeyDealer,
    config: ServerConfig,
    stop: Arc<AtomicBool>,
    tamper: Arc<Mutex<Option<Arc<ReplyTamper>>>>,
) {
    let metrics = replica.metrics().clone();
    let me = replica.id() as u16;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(config.read_timeout));

    // ---- handshake: HELLO / HELLO_ACK under the pairwise link key ----
    let hello_frame = match read_frame_polling(&mut stream, &stop) {
        Some(f) => f,
        None => return,
    };
    let client = match Hello::peek_client(&hello_frame) {
        Ok(c) => c,
        Err(_) => {
            metrics.service_auth_rejected.inc();
            return;
        }
    };
    let key = dealer.link_key(client, u64::from(me));
    let hello = match Hello::open(&hello_frame, &key) {
        Ok(h) => h,
        Err(_) => {
            metrics.service_auth_rejected.inc();
            return;
        }
    };
    let n = replica.group_size();
    // Challenge the client back with a fresh nonce: request frames are
    // MAC'd under the connection key derived from both nonces, so a
    // recorded HELLO + request transcript replayed by a network
    // adversary dies at the first request (it cannot re-seal under the
    // new key without the link key).
    let server_nonce = fresh_nonce();
    let ack = HelloAck {
        replica: me,
        n: n as u16,
        f: ((n - 1) / 3) as u16,
        nonce: hello.nonce,
        server_nonce,
    };
    if write_frame(&mut stream, &ack.seal(&key)).is_err() {
        return;
    }
    let conn_key = connection_key(&key, hello.nonce, server_nonce);

    // ---- request loop ----
    loop {
        let frame = match read_frame_polling(&mut stream, &stop) {
            Some(f) => f,
            None => return,
        };
        let request = match Request::open(&frame, &conn_key) {
            Ok(r) if r.client == hello.client => r,
            Ok(_) | Err(FrameError::BadMac) => {
                // Wrong MAC, or a (validly MACed) request for a different
                // client smuggled over this client's connection.
                metrics.service_auth_rejected.inc();
                continue;
            }
            Err(FrameError::Wire(_)) => {
                metrics.service_auth_rejected.inc();
                continue;
            }
        };
        let (status, payload) = execute(&replica, &request, config.request_timeout);
        let payload = match (&status, tamper.lock().clone()) {
            (Status::Ok, Some(t)) => t(&request, payload),
            _ => payload,
        };
        let span = format!("svc:{}:{}/reply", request.client, request.seq);
        metrics.span_open(span.clone(), Layer::Service);
        let reply = Reply {
            replica: me,
            client: request.client,
            seq: request.seq,
            status,
            payload,
        };
        let ok = write_frame(&mut stream, &reply.seal(&conn_key)).is_ok();
        metrics.span_close(&span);
        if !ok {
            return;
        }
        metrics.service_replies_total.inc();
    }
}

/// Runs one request against the replica, mapping service errors onto
/// wire statuses.
fn execute<S: Send + 'static>(
    replica: &ServiceReplica<S>,
    request: &Request,
    timeout: Duration,
) -> (Status, Bytes) {
    let outcome = match (request.kind, request.mode) {
        (RequestKind::OptimisticRead, _) => {
            return (Status::Ok, replica.optimistic_read(&request.payload))
        }
        (_, RequestMode::Observe) => replica.await_reply(request.client, request.seq, timeout),
        (RequestKind::Apply, RequestMode::Submit) => replica.submit(
            request.client,
            request.seq,
            CommandKind::Apply,
            request.payload.clone(),
            timeout,
        ),
        (RequestKind::OrderedRead, RequestMode::Submit) => replica.submit(
            request.client,
            request.seq,
            CommandKind::OrderedRead,
            request.payload.clone(),
            timeout,
        ),
    };
    match outcome {
        Ok(reply) => (Status::Ok, reply),
        Err(ServiceError::Busy) => (Status::Busy, Bytes::new()),
        Err(ServiceError::Stale) => (Status::Stale, Bytes::new()),
        Err(ServiceError::Timeout) | Err(ServiceError::Node(_)) => (Status::Error, Bytes::new()),
    }
}
