//! Vector consensus (paper §2.6, after Correia et al.).
//!
//! All correct processes decide the same vector `V` of size `n` such that,
//! for every correct process `p_i`, `V[i]` is either `p_i`'s proposal or
//! ⊥, and at least `f + 1` entries of `V` were proposed by correct
//! processes. Vector consensus is the asynchronous Byzantine counterpart
//! of interactive consistency.
//!
//! Protocol outline:
//!
//! 1. reliably broadcast the proposal; set round `r ← 0`;
//! 2. per round: wait until `n − f + r` proposals have been delivered;
//!    build the vector `W_i` from everything delivered so far (⊥ for
//!    missing entries) and propose `W_i` to a fresh multi-valued
//!    consensus instance (one per round);
//! 3. if that instance decides some `V ≠ ⊥`, decide `V`; otherwise
//!    increment `r` and repeat.
//!
//! As rounds advance each process waits for more proposals, so the views
//! `W_i` converge and the multi-valued consensus eventually accepts one of
//! them. The wait threshold is capped at `n` (all proposals); see
//! `DESIGN.md` for a discussion of the termination behaviour under
//! permanently silent processes.

use crate::codec::{Reader, WireError, WireMessage, Writer};
use crate::config::Group;
use crate::error::ProtocolError;
use crate::mvc::{MultiValuedConsensus, MvcConfig, MvcMessage, MvcValue};
use crate::rb::{RbMessage, ReliableBroadcast};
use crate::step::{FaultKind, Step};
use crate::ProcessId;
use bytes::Bytes;
use ritas_crypto::{Coin, DeterministicCoin, ProcessKeys};
use ritas_metrics::{Layer, Metrics};
use std::collections::BTreeMap;

/// The decided vector: entry `i` is `p_i`'s proposal or `None` (⊥).
pub type DecisionVector = Vec<Option<Bytes>>;

/// Messages of the vector consensus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VcMessage {
    /// Reliable broadcast traffic of `origin`'s proposal.
    Prop {
        /// Whose proposal broadcast this belongs to.
        origin: ProcessId,
        /// The broadcast traffic.
        inner: RbMessage,
    },
    /// Multi-valued consensus traffic for agreement round `round`.
    Round {
        /// The agreement round this instance belongs to.
        round: u32,
        /// The inner message.
        inner: MvcMessage,
    },
}

const TAG_PROP: u8 = 1;
const TAG_ROUND: u8 = 2;

impl WireMessage for VcMessage {
    fn encode(&self, w: &mut Writer) {
        match self {
            VcMessage::Prop { origin, inner } => {
                w.u8(TAG_PROP).u32(*origin as u32);
                inner.encode(w);
            }
            VcMessage::Round { round, inner } => {
                w.u8(TAG_ROUND).u32(*round);
                inner.encode(w);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8("vc.tag")? {
            TAG_PROP => Ok(VcMessage::Prop {
                origin: r.u32("vc.origin")? as usize,
                inner: RbMessage::decode(r)?,
            }),
            TAG_ROUND => Ok(VcMessage::Round {
                round: r.u32("vc.round")?,
                inner: MvcMessage::decode(r)?,
            }),
            t => Err(WireError::InvalidTag {
                what: "vc.tag",
                tag: t,
            }),
        }
    }
}

/// Encodes a `W_i` vector as a multi-valued consensus proposal.
fn encode_vector(v: &[Option<Bytes>]) -> Bytes {
    let mut w = Writer::new();
    w.u32(v.len() as u32);
    for entry in v {
        match entry {
            Some(b) => {
                w.u8(1).bytes(b);
            }
            None => {
                w.u8(0);
            }
        }
    }
    w.freeze()
}

/// Decodes a decided vector back from its MVC representation.
fn decode_vector(bytes: &Bytes, n: usize) -> Result<DecisionVector, WireError> {
    let mut r = Reader::new(bytes);
    let len = r.u32("vc.vector.len")? as usize;
    if len != n {
        return Err(WireError::FieldTooLong {
            what: "vc.vector",
            len,
        });
    }
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        out.push(match r.u8("vc.vector.present")? {
            0 => None,
            1 => Some(r.bytes("vc.vector.entry")?),
            t => {
                return Err(WireError::InvalidTag {
                    what: "vc.vector.present",
                    tag: t,
                })
            }
        });
    }
    r.finish()?;
    Ok(out)
}

/// Step type of a vector consensus instance: outgoing messages plus, at
/// most once, the decided vector.
pub type VcStep = Step<VcMessage, DecisionVector>;

/// How far ahead of our current agreement round we instantiate MVC rounds.
const MAX_ROUND_AHEAD: u32 = 64;

/// State of one vector consensus instance for process `me`.
pub struct VectorConsensus {
    group: Group,
    me: ProcessId,
    keys: ProcessKeys,
    mvc_config: MvcConfig,
    coin_seed: u64,
    started: bool,
    /// Proposal reliable broadcasts, one per origin.
    prop_rbc: Vec<ReliableBroadcast>,
    /// Delivered proposals.
    proposals: Vec<Option<Bytes>>,
    /// Current agreement round.
    round: u32,
    /// Whether the current round's MVC proposal has been made.
    round_proposed: bool,
    /// When `false`, rounds start only inside [`VectorConsensus::poll`]
    /// (single-threaded batching, as in the paper's implementation —
    /// lets `W_i` include everything already received, which is what
    /// makes symmetric-LAN runs decide in the first round).
    eager_rounds: bool,
    /// True while a `poll` call is in progress.
    polling: bool,
    /// MVC instances per round.
    rounds: BTreeMap<u32, MultiValuedConsensus>,
    decided: bool,
    metrics: Metrics,
    /// Span path of this instance; set by the owner at creation. Child
    /// instances get `{path}/prop:{p}` and `{path}/mvc:{r}`.
    span_path: Option<String>,
}

impl core::fmt::Debug for VectorConsensus {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("VectorConsensus")
            .field("me", &self.me)
            .field("round", &self.round)
            .field("decided", &self.decided)
            .finish_non_exhaustive()
    }
}

impl VectorConsensus {
    /// Creates an instance.
    ///
    /// `coin_seed` seeds the per-round binary consensus coins (each round
    /// derives an independent deterministic coin; pass entropy in
    /// production, a fixed seed for reproducible runs).
    ///
    /// # Panics
    ///
    /// Panics if `me` is out of group or the key view mismatches.
    pub fn new(group: Group, me: ProcessId, keys: ProcessKeys, coin_seed: u64) -> Self {
        Self::with_config(group, me, keys, coin_seed, MvcConfig::default())
    }

    /// Creates an instance with explicit child-protocol transports.
    ///
    /// # Panics
    ///
    /// Panics if `me` is out of group or the key view mismatches.
    pub fn with_config(
        group: Group,
        me: ProcessId,
        keys: ProcessKeys,
        coin_seed: u64,
        mvc_config: MvcConfig,
    ) -> Self {
        assert!(group.contains(me), "me out of group");
        assert_eq!(keys.me(), me, "key view mismatch");
        let n = group.n();
        VectorConsensus {
            group,
            me,
            keys,
            mvc_config,
            coin_seed,
            started: false,
            prop_rbc: (0..n)
                .map(|o| ReliableBroadcast::new(group, me, o))
                .collect(),
            proposals: vec![None; n],
            round: 0,
            round_proposed: false,
            eager_rounds: true,
            polling: false,
            rounds: BTreeMap::new(),
            decided: false,
            metrics: Metrics::default(),
            span_path: None,
        }
    }

    /// Assigns this instance's span path, opens its span and cascades
    /// child paths down the control-block chain (proposal broadcasts now,
    /// per-round multi-valued consensus instances as they are created).
    /// Call after [`VectorConsensus::set_metrics`].
    pub fn set_span_path(&mut self, path: String) {
        self.metrics.span_open(path.clone(), Layer::Vc);
        for (o, rb) in self.prop_rbc.iter_mut().enumerate() {
            rb.set_span_path(format!("{path}/prop:{o}"));
        }
        for (r, mvc) in self.rounds.iter_mut() {
            mvc.set_span_path(format!("{path}/mvc:{r}"));
        }
        self.span_path = Some(path);
    }

    /// Attaches the process-wide metric registry and propagates it to
    /// every sub-protocol instance (proposal broadcasts and per-round
    /// multi-valued consensus).
    pub fn set_metrics(&mut self, metrics: Metrics) {
        for rb in &mut self.prop_rbc {
            rb.set_metrics(metrics.clone());
        }
        for mvc in self.rounds.values_mut() {
            mvc.set_metrics(metrics.clone());
        }
        self.metrics = metrics;
    }

    /// Switches to deferred rounds: a round's `W_i` snapshot is taken
    /// only when the driver calls [`VectorConsensus::poll`] after
    /// draining its inbound queue.
    pub fn deferred_rounds(mut self) -> Self {
        self.eager_rounds = false;
        self
    }

    /// Drives deferred rounds (no-op in eager mode).
    pub fn poll(&mut self) -> VcStep {
        self.polling = true;
        let out = self.settle();
        self.polling = false;
        out
    }

    /// Whether this instance has decided.
    pub fn is_decided(&self) -> bool {
        self.decided
    }

    /// The agreement round currently in progress (0-based).
    pub fn round(&self) -> u32 {
        self.round
    }

    /// Proposes `value` and emits the proposal reliable broadcast.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::AlreadyStarted`] on a second call.
    pub fn propose(&mut self, value: Bytes) -> Result<VcStep, ProtocolError> {
        if self.started {
            return Err(ProtocolError::AlreadyStarted);
        }
        self.started = true;
        self.metrics.vc_started.inc();
        self.metrics
            .trace(Layer::Vc, "propose", format!("vc:{}", self.me), self.round);
        let me = self.me;
        let sub = self.prop_rbc[me].broadcast(value)?;
        let mut out = wrap_prop(me, sub);
        out.extend(self.settle());
        Ok(out)
    }

    /// Handles a protocol message from `from`.
    pub fn handle_message(&mut self, from: ProcessId, message: VcMessage) -> VcStep {
        if !self.group.contains(from) {
            return Step::fault(from, FaultKind::NotEntitled);
        }
        let mut out = match message {
            VcMessage::Prop { origin, inner } => {
                if !self.group.contains(origin) {
                    return Step::fault(from, FaultKind::NotEntitled);
                }
                let sub = self.prop_rbc[origin].handle_message(from, inner);
                let delivered: Vec<Bytes> = sub.outputs.clone();
                let out = wrap_prop(origin, sub);
                for payload in delivered {
                    if self.proposals[origin].is_none() {
                        self.proposals[origin] = Some(payload);
                    }
                }
                out
            }
            VcMessage::Round { round, inner } => {
                if round > self.round.saturating_add(MAX_ROUND_AHEAD) {
                    return Step::fault(from, FaultKind::Unjustified);
                }
                let mvc = self.round_instance(round);
                let sub = mvc.handle_message(from, inner);
                wrap_round(round, sub)
            }
        };
        out.extend(self.settle());
        out
    }

    fn round_instance(&mut self, round: u32) -> &mut MultiValuedConsensus {
        let (group, me, keys, config) = (self.group, self.me, self.keys.clone(), self.mvc_config);
        let seed = self
            .coin_seed
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add(round as u64);
        let metrics = self.metrics.clone();
        let mvc_path = self
            .span_path
            .as_ref()
            .map(|base| format!("{base}/mvc:{round}"));
        self.rounds.entry(round).or_insert_with(|| {
            let mut mvc = MultiValuedConsensus::with_config(
                group,
                me,
                keys,
                Box::new(DeterministicCoin::new(seed)) as Box<dyn Coin + Send>,
                config,
            );
            mvc.set_metrics(metrics);
            if let Some(p) = mvc_path {
                mvc.set_span_path(p);
            }
            mvc
        })
    }

    fn delivered_count(&self) -> usize {
        self.proposals.iter().filter(|p| p.is_some()).count()
    }

    /// Round-`r` wait threshold: `n − f + r`, capped at `n`.
    fn threshold(&self, round: u32) -> usize {
        (self.group.quorum() + round as usize).min(self.group.n())
    }

    fn settle(&mut self) -> VcStep {
        let mut out = Step::none();
        loop {
            let mut progressed = false;
            // Start the current round's MVC when enough proposals arrived.
            if self.started
                && !self.decided
                && !self.round_proposed
                && (self.eager_rounds || self.polling)
                && self.delivered_count() >= self.threshold(self.round)
            {
                self.round_proposed = true;
                let round = self.round;
                if let Some(path) = &self.span_path {
                    self.metrics.span_annotate(
                        path,
                        ritas_metrics::SpanAnnotation::RoundEntered,
                        u64::from(round),
                    );
                }
                let w = encode_vector(&self.proposals);
                let mvc = self.round_instance(round);
                let sub = mvc.propose(w).expect("round proposed once");
                out.extend(wrap_round(round, sub));
                progressed = true;
            }
            // Check the current round's MVC decision.
            if !self.decided && self.round_proposed {
                let round = self.round;
                let decision: Option<MvcValue> =
                    self.rounds.get(&round).and_then(|m| m.decision().cloned());
                match decision {
                    Some(Some(bytes)) => match decode_vector(&bytes, self.group.n()) {
                        Ok(v) => {
                            self.decided = true;
                            self.metrics.vc_decided.inc();
                            // Rounds are 0-based; record how many ran.
                            self.metrics.vc_rounds.record(u64::from(round) + 1);
                            let bottoms = v.iter().filter(|e| e.is_none()).count();
                            self.metrics.vc_bottom_entries.add(bottoms as u64);
                            self.metrics.trace(
                                Layer::Vc,
                                "decide",
                                format!("vc:{}", self.me),
                                round,
                            );
                            if let Some(path) = &self.span_path {
                                self.metrics.span_close(path);
                            }
                            out.push_output(v);
                            progressed = true;
                        }
                        Err(_) => {
                            // A non-vector value can only be decided if it
                            // was proposed by a corrupt process and the MVC
                            // validity was defeated — treat as ⊥ and move
                            // to the next round.
                            self.round += 1;
                            self.round_proposed = false;
                            progressed = true;
                        }
                    },
                    Some(None) => {
                        self.round += 1;
                        self.round_proposed = false;
                        progressed = true;
                    }
                    None => {}
                }
            }
            if !progressed {
                break;
            }
        }
        out
    }
}

fn wrap_prop(origin: ProcessId, sub: Step<RbMessage, Bytes>) -> VcStep {
    sub.map_outputs(|_| None)
        .map_messages(|inner| VcMessage::Prop { origin, inner })
}

fn wrap_round(round: u32, sub: Step<MvcMessage, MvcValue>) -> VcStep {
    sub.map_outputs(|_| None)
        .map_messages(|inner| VcMessage::Round { round, inner })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::step::Target;
    use ritas_crypto::KeyTable;

    struct Net {
        insts: Vec<VectorConsensus>,
        queue: Vec<(ProcessId, ProcessId, VcMessage)>,
        decisions: Vec<Option<DecisionVector>>,
        rng_state: u64,
        crashed: Vec<ProcessId>,
    }

    impl Net {
        fn new(n: usize, seed: u64) -> Self {
            let g = Group::new(n).unwrap();
            let table = KeyTable::dealer(n, seed);
            Net {
                insts: (0..n)
                    .map(|me| VectorConsensus::new(g, me, table.view_of(me), seed ^ me as u64))
                    .collect(),
                queue: Vec::new(),
                decisions: vec![None; n],
                rng_state: seed.wrapping_mul(0x9E3779B97F4A7C15) | 1,
                crashed: Vec::new(),
            }
        }

        fn next_rand(&mut self) -> u64 {
            let mut x = self.rng_state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.rng_state = x;
            x.wrapping_mul(0x2545F4914F6CDD1D)
        }

        fn absorb(&mut self, from: ProcessId, step: VcStep) {
            if self.crashed.contains(&from) {
                return;
            }
            let n = self.insts.len();
            for out in step.messages {
                match out.target {
                    Target::All => {
                        for to in 0..n {
                            self.queue.push((from, to, out.message.clone()));
                        }
                    }
                    Target::One(to) => self.queue.push((from, to, out.message.clone())),
                }
            }
            for d in step.outputs {
                assert!(self.decisions[from].is_none(), "double decision at {from}");
                self.decisions[from] = Some(d);
            }
        }

        fn propose(&mut self, p: ProcessId, v: &[u8]) {
            let step = self.insts[p].propose(Bytes::copy_from_slice(v)).unwrap();
            self.absorb(p, step);
        }

        fn run(&mut self) {
            let mut iterations = 0usize;
            while !self.queue.is_empty() {
                iterations += 1;
                assert!(iterations < 10_000_000, "runaway execution");
                let idx = (self.next_rand() as usize) % self.queue.len();
                let (from, to, msg) = self.queue.swap_remove(idx);
                if self.crashed.contains(&to) {
                    continue;
                }
                let step = self.insts[to].handle_message(from, msg);
                self.absorb(to, step);
            }
        }
    }

    #[test]
    fn vector_codec_roundtrip() {
        let v: DecisionVector = vec![Some(Bytes::from_static(b"a")), None, Some(Bytes::new())];
        let enc = encode_vector(&v);
        assert_eq!(decode_vector(&enc, 3).unwrap(), v);
        assert!(decode_vector(&enc, 4).is_err());
    }

    #[test]
    fn message_codec_roundtrip() {
        let msgs = [
            VcMessage::Prop {
                origin: 1,
                inner: RbMessage::Ready(Bytes::from_static(b"p")),
            },
            VcMessage::Round {
                round: 2,
                inner: MvcMessage::Init {
                    origin: 0,
                    inner: RbMessage::Init(Bytes::from_static(b"w")),
                },
            },
        ];
        for m in msgs {
            assert_eq!(VcMessage::from_bytes(&m.to_bytes()).unwrap(), m);
        }
    }

    #[test]
    fn all_processes_decide_same_vector() {
        for seed in [1, 7] {
            let mut net = Net::new(4, seed);
            net.propose(0, b"p0");
            net.propose(1, b"p1");
            net.propose(2, b"p2");
            net.propose(3, b"p3");
            net.run();
            let d0 = net.decisions[0].clone().expect("p0 decided");
            for p in 1..4 {
                assert_eq!(
                    net.decisions[p].as_ref(),
                    Some(&d0),
                    "seed {seed} process {p}"
                );
            }
            // Vector validity: each entry is the real proposal or ⊥, and
            // at least f+1 = 2 entries are present.
            let present = d0.iter().flatten().count();
            assert!(present >= 2, "too few entries: {d0:?}");
            for (i, e) in d0.iter().enumerate() {
                if let Some(v) = e {
                    assert_eq!(v.as_ref(), format!("p{i}").as_bytes());
                }
            }
        }
    }

    #[test]
    fn decides_with_one_crashed_process() {
        let mut net = Net::new(4, 3);
        net.crashed.push(2);
        net.propose(0, b"p0");
        net.propose(1, b"p1");
        net.propose(3, b"p3");
        net.run();
        let d0 = net.decisions[0].clone().expect("decided");
        for p in [1, 3] {
            assert_eq!(net.decisions[p].as_ref(), Some(&d0));
        }
        // The crashed process's entry must be ⊥ (it never proposed).
        assert!(d0[2].is_none());
        assert!(d0.iter().flatten().count() >= 2);
    }

    #[test]
    fn double_propose_rejected() {
        let g = Group::new(4).unwrap();
        let table = KeyTable::dealer(4, 0);
        let mut vc = VectorConsensus::new(g, 0, table.view_of(0), 1);
        let _ = vc.propose(Bytes::from_static(b"v")).unwrap();
        assert_eq!(
            vc.propose(Bytes::from_static(b"w")).unwrap_err(),
            ProtocolError::AlreadyStarted
        );
    }

    #[test]
    fn far_future_round_rejected() {
        let g = Group::new(4).unwrap();
        let table = KeyTable::dealer(4, 0);
        let mut vc = VectorConsensus::new(g, 0, table.view_of(0), 1);
        let step = vc.handle_message(
            1,
            VcMessage::Round {
                round: 1000,
                inner: MvcMessage::Init {
                    origin: 1,
                    inner: RbMessage::Init(Bytes::from_static(b"x")),
                },
            },
        );
        assert_eq!(step.faults[0].kind, FaultKind::Unjustified);
    }

    #[test]
    fn larger_group_decides() {
        let mut net = Net::new(7, 11);
        for p in 0..7 {
            net.propose(p, format!("val{p}").as_bytes());
        }
        net.run();
        let d0 = net.decisions[0].clone().expect("decided");
        for p in 1..7 {
            assert_eq!(net.decisions[p].as_ref(), Some(&d0));
        }
        assert!(d0.iter().flatten().count() >= 3); // f+1 = 3 for n = 7
    }
}
