//! Causal-order adapter for atomic broadcast (CBCAST over ABCAST).
//!
//! Atomic broadcast totally orders messages, but the total order need not
//! respect *causality*: if `p1` delivers `m_a` and then broadcasts `m_b`
//! ("in reply"), the agreed order may still place `m_b` before `m_a`.
//! The classic fix attaches a **vector clock** to every message — the
//! per-sender counts of causally delivered messages at broadcast time —
//! and holds a received message back until everything in its causal past
//! has been delivered.
//!
//! Because every correct process feeds the adapter the *same* total order
//! and the release rule is deterministic, the causally-adapted sequence
//! is identical everywhere: the adapter upgrades "total order" to
//! "causal total order" with no extra communication, only a small clock
//! header per message.
//!
//! A Byzantine sender can attach an inflated clock, stranding *its own*
//! messages in the holdback queue (self-censorship, as with skipped
//! rbids in [`crate::fifo`]); [`CausalOrder::held`] and
//! [`CausalOrder::evict_sender`] give the application visibility and a
//! reclaim lever.

use crate::ab::AbDelivery;
use crate::codec::{Reader, WireError, Writer};
use crate::ProcessId;
use bytes::Bytes;

/// A causal timestamp: entry `k` counts the messages from sender `k`
/// delivered before the tagged message was broadcast.
pub type VectorClock = Vec<u64>;

/// Deterministic causal holdback over a-deliveries.
///
/// # Example
///
/// ```
/// use ritas::ab::{AbDelivery, MsgId};
/// use ritas::causal::CausalOrder;
/// use bytes::Bytes;
///
/// let mut alice = CausalOrder::new(4, 0);
/// let mut observer = CausalOrder::new(4, 3);
///
/// // Alice broadcasts m_a, then — having delivered it — a reply m_b.
/// let m_a = alice.wrap(b"hello");
/// let d_a = AbDelivery { id: MsgId { sender: 0, rbid: 0 }, payload: m_a };
/// assert_eq!(alice.push(d_a.clone()).len(), 1);
/// let m_b = alice.wrap(b"reply to my hello");
/// let d_b = AbDelivery { id: MsgId { sender: 0, rbid: 1 }, payload: m_b };
///
/// // The observer's total order delivers the reply FIRST — the adapter
/// // holds it until its causal past (m_a) has been delivered.
/// assert!(observer.push(d_b).is_empty());
/// let released = observer.push(d_a);
/// assert_eq!(released.len(), 2);
/// assert_eq!(released[0].1.as_ref(), b"hello");
/// assert_eq!(released[1].1.as_ref(), b"reply to my hello");
/// ```
#[derive(Debug, Clone)]
pub struct CausalOrder {
    /// This process's id (part of the adapter's identity; useful for
    /// diagnostics and symmetry with the other adapters).
    me: ProcessId,
    /// Causally delivered message count per sender.
    delivered: Vec<u64>,
    /// Held-back messages: `(delivery, decoded clock)`.
    held: Vec<(AbDelivery, VectorClock)>,
}

impl CausalOrder {
    /// Creates the adapter for process `me` in a group of `n`.
    ///
    /// # Panics
    ///
    /// Panics if `me >= n`.
    pub fn new(n: usize, me: ProcessId) -> Self {
        assert!(me < n, "me out of group");
        CausalOrder {
            me,
            delivered: vec![0; n],
            held: Vec::new(),
        }
    }

    /// Tags `payload` with this process's current causal timestamp; the
    /// result is what should be handed to `atomic_broadcast`.
    pub fn wrap(&self, payload: &[u8]) -> Bytes {
        let mut w = Writer::with_capacity(4 + 8 * self.delivered.len() + payload.len());
        w.u32(self.delivered.len() as u32);
        for c in &self.delivered {
            w.u64(*c);
        }
        w.raw(payload);
        w.freeze()
    }

    fn unwrap_clock(&self, payload: &Bytes) -> Result<(VectorClock, Bytes), WireError> {
        let mut r = Reader::new(payload);
        let len = r.u32("causal.clock.len")? as usize;
        if len != self.delivered.len() {
            return Err(WireError::FieldTooLong {
                what: "causal.clock",
                len,
            });
        }
        let mut clock = Vec::with_capacity(len);
        for _ in 0..len {
            clock.push(r.u64("causal.clock.entry")?);
        }
        let body = payload.slice(payload.len() - r.remaining()..);
        Ok((clock, body))
    }

    fn deliverable(&self, clock: &VectorClock) -> bool {
        clock.iter().zip(self.delivered.iter()).all(|(c, d)| c <= d)
    }

    /// Feeds one a-delivery (in total order); returns the messages that
    /// become causally deliverable, as `(id, unwrapped payload)` pairs in
    /// release order. Messages with malformed clocks are dropped (they
    /// can only come from corrupt senders).
    pub fn push(&mut self, delivery: AbDelivery) -> Vec<(crate::ab::MsgId, Bytes)> {
        match self.unwrap_clock(&delivery.payload) {
            Ok((clock, body)) => {
                self.held.push((
                    AbDelivery {
                        id: delivery.id,
                        payload: body,
                    },
                    clock,
                ));
            }
            Err(_) => return Vec::new(),
        }
        let mut out = Vec::new();
        while let Some(pos) = self.held.iter().position(|(_, c)| self.deliverable(c)) {
            let (d, _) = self.held.remove(pos);
            self.delivered[d.id.sender] += 1;
            out.push((d.id, d.payload));
        }
        out
    }

    /// This process's id.
    pub fn id(&self) -> ProcessId {
        self.me
    }

    /// The number of messages currently held back.
    pub fn held(&self) -> usize {
        self.held.len()
    }

    /// Drops every held message from `sender` (reclaiming memory from a
    /// sender whose inflated clocks can never be satisfied). Returns how
    /// many were dropped. Their slots still count as delivered so later
    /// messages that causally depend on them do not wait forever.
    pub fn evict_sender(&mut self, sender: ProcessId) -> usize {
        let before = self.held.len();
        let dropped = self
            .held
            .iter()
            .filter(|(d, _)| d.id.sender == sender)
            .count() as u64;
        self.held.retain(|(d, _)| d.id.sender != sender);
        if sender < self.delivered.len() {
            self.delivered[sender] += dropped;
        }
        before - self.held.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ab::MsgId;

    fn delivery(sender: ProcessId, rbid: u64, payload: Bytes) -> AbDelivery {
        AbDelivery {
            id: MsgId { sender, rbid },
            payload,
        }
    }

    #[test]
    fn independent_messages_flow_through() {
        let mut co = CausalOrder::new(4, 0);
        let a = CausalOrder::new(4, 1).wrap(b"a");
        let b = CausalOrder::new(4, 2).wrap(b"b");
        assert_eq!(co.push(delivery(1, 0, a)).len(), 1);
        assert_eq!(co.push(delivery(2, 0, b)).len(), 1);
        assert_eq!(co.held(), 0);
    }

    #[test]
    fn reply_waits_for_its_cause() {
        // p1 delivers p0's message, then replies; an observer that gets
        // the reply first must hold it.
        let mut p1 = CausalOrder::new(4, 1);
        let m0 = CausalOrder::new(4, 0).wrap(b"cause");
        let d0 = delivery(0, 0, m0);
        assert_eq!(p1.push(d0.clone()).len(), 1);
        let reply = p1.wrap(b"effect");
        let d1 = delivery(1, 0, reply);

        let mut observer = CausalOrder::new(4, 3);
        assert!(observer.push(d1).is_empty());
        assert_eq!(observer.held(), 1);
        let released = observer.push(d0);
        assert_eq!(released.len(), 2);
        assert_eq!(released[0].1.as_ref(), b"cause");
        assert_eq!(released[1].1.as_ref(), b"effect");
    }

    #[test]
    fn transitive_chains_release_in_causal_order() {
        // m0 → m1 → m2, delivered to the observer fully reversed.
        let mut p0 = CausalOrder::new(4, 0);
        let mut p1 = CausalOrder::new(4, 1);
        let mut p2 = CausalOrder::new(4, 2);
        let m0 = p0.wrap(b"m0");
        let d0 = delivery(0, 0, m0);
        p0.push(d0.clone());
        p1.push(d0.clone());
        p2.push(d0.clone());
        let m1 = p1.wrap(b"m1");
        let d1 = delivery(1, 0, m1);
        p2.push(d1.clone());
        let m2 = p2.wrap(b"m2");
        let d2 = delivery(2, 0, m2);

        let mut observer = CausalOrder::new(4, 3);
        assert!(observer.push(d2).is_empty());
        assert!(observer.push(d1).is_empty());
        let released = observer.push(d0);
        let texts: Vec<&[u8]> = released.iter().map(|(_, p)| p.as_ref()).collect();
        assert_eq!(texts, vec![&b"m0"[..], b"m1", b"m2"]);
    }

    #[test]
    fn malformed_clock_dropped() {
        let mut co = CausalOrder::new(4, 0);
        assert!(co
            .push(delivery(1, 0, Bytes::from_static(&[0xff, 0xff])))
            .is_empty());
        assert_eq!(co.held(), 0);
    }

    #[test]
    fn inflated_clock_strands_only_its_sender() {
        let mut co = CausalOrder::new(4, 0);
        // Sender 1 claims to have seen 100 messages from sender 2.
        let mut forged_clock = Writer::new();
        forged_clock.u32(4).u64(0).u64(0).u64(100).u64(0);
        forged_clock.raw(b"stuck");
        assert!(co.push(delivery(1, 0, forged_clock.freeze())).is_empty());
        assert_eq!(co.held(), 1);
        // Other traffic keeps flowing.
        let ok = CausalOrder::new(4, 2).wrap(b"fine");
        assert_eq!(co.push(delivery(2, 0, ok)).len(), 1);
        // Eviction reclaims the stuck entry.
        assert_eq!(co.evict_sender(1), 1);
        assert_eq!(co.held(), 0);
    }

    #[test]
    fn same_total_order_same_causal_order() {
        // Determinism across observers.
        let mut p0 = CausalOrder::new(4, 0);
        let m0 = p0.wrap(b"x");
        let d0 = delivery(0, 0, m0);
        p0.push(d0.clone());
        let m1 = p0.wrap(b"y");
        let d1 = delivery(0, 1, m1);
        let total_order = [d1, d0];
        let run = |me: usize| {
            let mut co = CausalOrder::new(4, me);
            total_order
                .iter()
                .flat_map(|d| co.push(d.clone()))
                .map(|(id, _)| id)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(2));
        assert_eq!(run(1).len(), 2);
    }
}
