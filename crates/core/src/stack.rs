//! The per-process protocol stack: instance management, demultiplexing
//! and out-of-context buffering (paper §3.2–§3.4).
//!
//! A [`Stack`] is the sans-io equivalent of the paper's `ritas_t` context:
//! it owns every protocol instance of one process, routes inbound wire
//! messages to the right instance (the paper's *control block chaining*
//! becomes a typed [`InstanceKey`] carried in every envelope), and buffers
//! *out-of-context* messages — correct messages that arrive before their
//! instance exists — replaying them on creation, exactly as §3.4
//! describes.
//!
//! Instance creation rules mirror the original implementation:
//!
//! * **broadcast instances** (`Rb`, `Eb`, `Ab`) auto-create on first
//!   contact — their designated sender is part of the key, so a receiver
//!   can always build the control block;
//! * **consensus instances** (`Bc`, `Mvc`, `Vc`) are created by the local
//!   `propose` call; traffic arriving earlier is parked in the OOC table
//!   (bounded; see [`Stack::ooc_len`]).

use crate::ab::{AbConfig, AbDelivery, AbMessage, AtomicBroadcast, MsgId};
use crate::bc::{BcMessage, BinaryConsensus};
use crate::codec::{Reader, WireError, WireMessage, Writer};
use crate::config::Group;
use crate::eb::{EbMessage, EchoBroadcast};
use crate::error::ProtocolError;
use crate::mvc::{MultiValuedConsensus, MvcConfig, MvcMessage, MvcValue};
use crate::rb::{RbMessage, ReliableBroadcast};
use crate::step::{FaultKind, Step};
use crate::vc::{DecisionVector, VcMessage, VectorConsensus};
use crate::ProcessId;
use bytes::Bytes;
use ritas_crypto::{Coin, DeterministicCoin, ProcessKeys};
use ritas_metrics::Metrics;
use std::collections::{HashMap, VecDeque};

/// Bounds for the out-of-context table (§3.4): a Byzantine process must
/// not be able to make us buffer unbounded state.
const MAX_OOC_INSTANCES: usize = 4096;
/// Per-instance OOC message cap.
const MAX_OOC_PER_INSTANCE: usize = 65536;

/// Identifies a top-level protocol instance within a session.
///
/// This is the root of the paper's control-block-chaining identifier: the
/// nested instance ids of child protocols are encoded inside each
/// protocol's own message types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum InstanceKey {
    /// A reliable broadcast by `sender`, its `seq`-th.
    Rb {
        /// Designated sender.
        sender: ProcessId,
        /// Sender-local sequence number.
        seq: u64,
    },
    /// An echo broadcast by `sender`, its `seq`-th.
    Eb {
        /// Designated sender.
        sender: ProcessId,
        /// Sender-local sequence number.
        seq: u64,
    },
    /// A binary consensus with an application-agreed tag.
    Bc {
        /// Application-level instance tag.
        tag: u64,
    },
    /// A multi-valued consensus with an application-agreed tag.
    Mvc {
        /// Application-level instance tag.
        tag: u64,
    },
    /// A vector consensus with an application-agreed tag.
    Vc {
        /// Application-level instance tag.
        tag: u64,
    },
    /// An atomic broadcast session.
    Ab {
        /// Session number (usually 0).
        session: u32,
    },
    /// A state-transfer frame (snapshot manifests, Merkle nodes, chunks,
    /// log fills; see [`crate::recovery`]). Not a protocol instance: the
    /// payload is handed to the application verbatim as
    /// [`Output::Xfer`] — the recovery driver in [`crate::rsm`] does its
    /// own request/response matching and `f+1` vote counting.
    Xfer,
}

/// Root span path of an instance (children extend it with `/`-separated
/// segments; see `ritas_metrics::SpanRegistry`).
fn span_path_for(key: &InstanceKey) -> String {
    match key {
        InstanceKey::Rb { sender, seq } => format!("rb:{sender}:{seq}"),
        InstanceKey::Eb { sender, seq } => format!("eb:{sender}:{seq}"),
        InstanceKey::Bc { tag } => format!("bc:{tag}"),
        InstanceKey::Mvc { tag } => format!("mvc:{tag}"),
        InstanceKey::Vc { tag } => format!("vc:{tag}"),
        InstanceKey::Ab { session } => format!("ab:{session}"),
        InstanceKey::Xfer => "xfer".to_string(),
    }
}

/// Maps a protocol fault to the suspicion counter it increments.
fn suspicion_kind(kind: FaultKind) -> ritas_metrics::SuspicionKind {
    match kind {
        FaultKind::Malformed => ritas_metrics::SuspicionKind::Malformed,
        FaultKind::Equivocation => ritas_metrics::SuspicionKind::Equivocation,
        FaultKind::NotEntitled => ritas_metrics::SuspicionKind::NotEntitled,
        FaultKind::BadAuthenticator => ritas_metrics::SuspicionKind::BadAuthenticator,
        FaultKind::Unjustified => ritas_metrics::SuspicionKind::Unjustified,
    }
}

const KEY_RB: u8 = 1;
const KEY_EB: u8 = 2;
const KEY_BC: u8 = 3;
const KEY_MVC: u8 = 4;
const KEY_VC: u8 = 5;
const KEY_AB: u8 = 6;
const KEY_XFER: u8 = 7;

impl WireMessage for InstanceKey {
    fn encode(&self, w: &mut Writer) {
        match self {
            InstanceKey::Rb { sender, seq } => {
                w.u8(KEY_RB).u32(*sender as u32).u64(*seq);
            }
            InstanceKey::Eb { sender, seq } => {
                w.u8(KEY_EB).u32(*sender as u32).u64(*seq);
            }
            InstanceKey::Bc { tag } => {
                w.u8(KEY_BC).u64(*tag);
            }
            InstanceKey::Mvc { tag } => {
                w.u8(KEY_MVC).u64(*tag);
            }
            InstanceKey::Vc { tag } => {
                w.u8(KEY_VC).u64(*tag);
            }
            InstanceKey::Ab { session } => {
                w.u8(KEY_AB).u32(*session);
            }
            InstanceKey::Xfer => {
                w.u8(KEY_XFER);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8("key.kind")? {
            KEY_RB => Ok(InstanceKey::Rb {
                sender: r.u32("key.sender")? as usize,
                seq: r.u64("key.seq")?,
            }),
            KEY_EB => Ok(InstanceKey::Eb {
                sender: r.u32("key.sender")? as usize,
                seq: r.u64("key.seq")?,
            }),
            KEY_BC => Ok(InstanceKey::Bc {
                tag: r.u64("key.tag")?,
            }),
            KEY_MVC => Ok(InstanceKey::Mvc {
                tag: r.u64("key.tag")?,
            }),
            KEY_VC => Ok(InstanceKey::Vc {
                tag: r.u64("key.tag")?,
            }),
            KEY_AB => Ok(InstanceKey::Ab {
                session: r.u32("key.session")?,
            }),
            KEY_XFER => Ok(InstanceKey::Xfer),
            t => Err(WireError::InvalidTag {
                what: "key.kind",
                tag: t,
            }),
        }
    }
}

/// An output delivered by the stack to the application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Output {
    /// A reliable broadcast delivered.
    RbDelivered {
        /// The instance that delivered.
        key: InstanceKey,
        /// Its designated sender.
        sender: ProcessId,
        /// The payload.
        payload: Bytes,
    },
    /// An echo broadcast delivered.
    EbDelivered {
        /// The instance that delivered.
        key: InstanceKey,
        /// Its designated sender.
        sender: ProcessId,
        /// The payload.
        payload: Bytes,
    },
    /// A binary consensus decided.
    BcDecided {
        /// The instance that decided.
        key: InstanceKey,
        /// The decision.
        decision: bool,
    },
    /// A multi-valued consensus decided (`None` = the default value ⊥).
    MvcDecided {
        /// The instance that decided.
        key: InstanceKey,
        /// The decision.
        decision: MvcValue,
    },
    /// A vector consensus decided.
    VcDecided {
        /// The instance that decided.
        key: InstanceKey,
        /// The decided vector.
        vector: DecisionVector,
    },
    /// An atomic broadcast a-delivered a message.
    AbDelivered {
        /// The session that delivered.
        key: InstanceKey,
        /// The delivery (id + payload), in total order.
        delivery: AbDelivery,
    },
    /// A state-transfer frame arrived (payload is an encoded
    /// [`crate::recovery::XferMessage`]; decoding and authentication by
    /// `f+1` cross-checking are the recovery driver's job).
    Xfer {
        /// The peer that sent the frame.
        from: ProcessId,
        /// The opaque transfer payload.
        payload: Bytes,
    },
}

/// A stack-level step: raw wire frames to transmit plus application
/// outputs.
pub type StackStep = Step<Bytes, Output>;

enum Instance {
    Rb(ReliableBroadcast),
    Eb(EchoBroadcast),
    Bc(BinaryConsensus),
    Mvc(MultiValuedConsensus),
    Vc(VectorConsensus),
    Ab(Box<AtomicBroadcast>),
}

/// Which randomized-coin scheme standalone binary consensus instances
/// use (paper §5: Ben-Or's local coins vs Rabin's dealer-distributed
/// shared coins).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CoinPolicy {
    /// Ben-Or-style private local coins — the paper's configuration; no
    /// setup beyond the pairwise keys.
    #[default]
    Local,
    /// Rabin-style shared coins dealt from a common seed: every process
    /// flips the same bit in the same round, giving O(1) expected rounds
    /// even under adversarial scheduling. All processes must configure
    /// the same `dealer_seed`.
    Shared {
        /// The dealer's master seed (distributed with the keys).
        dealer_seed: u64,
    },
}

/// Stack-wide configuration.
#[derive(Debug, Clone, Copy)]
pub struct StackConfig {
    /// Configuration for atomic broadcast sessions (and their agreement
    /// sub-protocols).
    pub ab: AbConfig,
    /// Transports used by standalone consensus instances (`Bc`, `Mvc`,
    /// `Vc`).
    pub consensus: MvcConfig,
    /// When `false`, vector consensus rounds are driven by
    /// [`Stack::poll_all`] instead of starting eagerly (single-threaded
    /// batching; see [`crate::vc::VectorConsensus::poll`]).
    pub eager_vc_rounds: bool,
    /// Coin scheme for standalone binary consensus instances.
    pub coin: CoinPolicy,
}

impl Default for StackConfig {
    fn default() -> Self {
        StackConfig {
            ab: AbConfig::default(),
            consensus: MvcConfig::default(),
            eager_vc_rounds: true,
            coin: CoinPolicy::Local,
        }
    }
}

/// The per-process protocol stack (the `ritas_t` context of §3.1).
///
/// # Example
///
/// Stacks are sans-io; the [`crate::testing::Cluster`] drives four of
/// them to a binary consensus decision:
///
/// ```
/// use ritas::stack::Output;
/// use ritas::testing::Cluster;
///
/// let mut cluster = Cluster::new(4, 7);
/// for p in 0..4 {
///     let step = cluster.stack_mut(p).bc_propose(1, true)?;
///     cluster.absorb(p, step);
/// }
/// cluster.run();
/// assert!(cluster.outputs(0).iter().any(|o| matches!(
///     o,
///     Output::BcDecided { decision: true, .. }
/// )));
/// # Ok::<(), ritas::ProtocolError>(())
/// ```
pub struct Stack {
    group: Group,
    me: ProcessId,
    keys: ProcessKeys,
    config: StackConfig,
    coin_seed: u64,
    instances: HashMap<InstanceKey, Instance>,
    /// Out-of-context messages: (from, encoded inner message).
    ooc: HashMap<InstanceKey, VecDeque<(ProcessId, Bytes)>>,
    next_rb_seq: u64,
    next_eb_seq: u64,
    /// While `true`, inbound atomic-broadcast frames are parked in the
    /// OOC table instead of being fed to (or auto-creating) the session —
    /// the rejoin window between reattaching to the transport and
    /// [`Stack::ab_resume`]: the parked frames replay once the session
    /// exists at its resume cursor.
    ab_hold: bool,
    /// Total frames dropped because the OOC table was full.
    ooc_dropped: u64,
    /// Messages currently parked across all OOC queues.
    ooc_buffered: usize,
    metrics: Metrics,
}

impl core::fmt::Debug for Stack {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Stack")
            .field("me", &self.me)
            .field("instances", &self.instances.len())
            .field("ooc", &self.ooc.len())
            .finish_non_exhaustive()
    }
}

impl Stack {
    /// Creates the stack for process `me`.
    ///
    /// # Panics
    ///
    /// Panics if `me` is out of group or the key view mismatches.
    pub fn new(group: Group, me: ProcessId, keys: ProcessKeys, coin_seed: u64) -> Self {
        Self::with_config(group, me, keys, coin_seed, StackConfig::default())
    }

    /// Creates the stack with explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if `me` is out of group or the key view mismatches.
    pub fn with_config(
        group: Group,
        me: ProcessId,
        keys: ProcessKeys,
        coin_seed: u64,
        config: StackConfig,
    ) -> Self {
        assert!(group.contains(me), "me out of group");
        assert_eq!(keys.me(), me, "key view mismatch");
        Stack {
            group,
            me,
            keys,
            config,
            coin_seed,
            instances: HashMap::new(),
            ooc: HashMap::new(),
            next_rb_seq: 0,
            next_eb_seq: 0,
            ab_hold: false,
            ooc_dropped: 0,
            ooc_buffered: 0,
            metrics: Metrics::default(),
        }
    }

    /// Attaches the process-wide metric registry and propagates it to
    /// every live protocol instance; instances created later inherit it.
    pub fn set_metrics(&mut self, metrics: Metrics) {
        for inst in self.instances.values_mut() {
            match inst {
                Instance::Rb(rb) => rb.set_metrics(metrics.clone()),
                Instance::Eb(eb) => eb.set_metrics(metrics.clone()),
                Instance::Bc(bc) => bc.set_metrics(metrics.clone()),
                Instance::Mvc(mvc) => mvc.set_metrics(metrics.clone()),
                Instance::Vc(vc) => vc.set_metrics(metrics.clone()),
                Instance::Ab(ab) => ab.set_metrics(metrics.clone()),
            }
        }
        self.metrics = metrics;
    }

    /// The metric registry shared by every instance of this stack.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// This process's id.
    pub fn id(&self) -> ProcessId {
        self.me
    }

    /// The group configuration.
    pub fn group(&self) -> Group {
        self.group
    }

    /// Number of live protocol instances.
    pub fn instance_count(&self) -> usize {
        self.instances.len()
    }

    /// Number of instances with buffered out-of-context messages.
    pub fn ooc_len(&self) -> usize {
        self.ooc.len()
    }

    /// Total frames dropped because the OOC table was at capacity.
    pub fn ooc_dropped(&self) -> u64 {
        self.ooc_dropped
    }

    fn coin_for(&self, key: &InstanceKey) -> Box<dyn Coin + Send> {
        let salt = match key {
            InstanceKey::Bc { tag } => 0x1000_0000_0000_0000u64 ^ *tag,
            InstanceKey::Mvc { tag } => 0x2000_0000_0000_0000u64 ^ *tag,
            InstanceKey::Vc { tag } => 0x3000_0000_0000_0000u64 ^ *tag,
            InstanceKey::Ab { session } => 0x4000_0000_0000_0000u64 ^ *session as u64,
            _ => 0,
        };
        Box::new(DeterministicCoin::new(
            self.coin_seed.wrapping_mul(0x9E3779B97F4A7C15) ^ salt,
        ))
    }

    fn sub_seed(&self, key: &InstanceKey) -> u64 {
        let salt = match key {
            InstanceKey::Vc { tag } => 0x5000_0000_0000_0000u64 ^ *tag,
            InstanceKey::Ab { session } => 0x6000_0000_0000_0000u64 ^ *session as u64,
            _ => 0,
        };
        self.coin_seed.wrapping_mul(0x517C_C1B7_2722_0A95) ^ salt
    }

    // ----- service requests (the ritas_XX_* functions of §3.1) -----

    /// Reliably broadcasts `payload`; returns the instance key so the
    /// caller can correlate deliveries.
    pub fn rb_broadcast(&mut self, payload: Bytes) -> (InstanceKey, StackStep) {
        let key = InstanceKey::Rb {
            sender: self.me,
            seq: self.next_rb_seq,
        };
        self.next_rb_seq += 1;
        let mut inst = ReliableBroadcast::new(self.group, self.me, self.me);
        inst.set_metrics(self.metrics.clone());
        inst.set_span_path(span_path_for(&key));
        let sub = inst.broadcast(payload).expect("fresh instance");
        self.instances.insert(key, Instance::Rb(inst));
        self.note_instances();
        let mut out = encode_rb_step(key, self.me, sub);
        out.extend(self.replay_ooc(key));
        (key, out)
    }

    /// Echo-broadcasts `payload`.
    pub fn eb_broadcast(&mut self, payload: Bytes) -> (InstanceKey, StackStep) {
        let key = InstanceKey::Eb {
            sender: self.me,
            seq: self.next_eb_seq,
        };
        self.next_eb_seq += 1;
        let mut inst = EchoBroadcast::new(self.group, self.me, self.me, self.keys.clone());
        inst.set_metrics(self.metrics.clone());
        inst.set_span_path(span_path_for(&key));
        let sub = inst.broadcast(payload).expect("fresh instance");
        self.instances.insert(key, Instance::Eb(inst));
        self.note_instances();
        let mut out = encode_eb_step(key, self.me, sub);
        out.extend(self.replay_ooc(key));
        (key, out)
    }

    /// Proposes a bit for binary consensus instance `tag`.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::AlreadyStarted`] if `tag` was already proposed.
    pub fn bc_propose(&mut self, tag: u64, value: bool) -> Result<StackStep, ProtocolError> {
        let key = InstanceKey::Bc { tag };
        if self.instances.contains_key(&key) {
            return Err(ProtocolError::AlreadyStarted);
        }
        let mut inst = match self.config.coin {
            CoinPolicy::Local => BinaryConsensus::with_transport(
                self.group,
                self.me,
                self.coin_for(&key),
                self.config.consensus.bc_transport,
            ),
            CoinPolicy::Shared { dealer_seed } => BinaryConsensus::with_round_coin(
                self.group,
                self.me,
                Box::new(ritas_crypto::SharedCoinDealer::new(dealer_seed).coin(tag)),
                self.config.consensus.bc_transport,
            ),
        };
        inst.set_metrics(self.metrics.clone());
        inst.set_span_path(span_path_for(&key));
        let sub = inst.propose(value)?;
        self.instances.insert(key, Instance::Bc(inst));
        self.note_instances();
        let mut out = encode_bc_step(key, sub);
        out.extend(self.replay_ooc(key));
        Ok(out)
    }

    /// Proposes a value for multi-valued consensus instance `tag`.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::AlreadyStarted`] if `tag` was already proposed.
    pub fn mvc_propose(&mut self, tag: u64, value: Bytes) -> Result<StackStep, ProtocolError> {
        let key = InstanceKey::Mvc { tag };
        if self.instances.contains_key(&key) {
            return Err(ProtocolError::AlreadyStarted);
        }
        let mut inst = MultiValuedConsensus::with_config(
            self.group,
            self.me,
            self.keys.clone(),
            self.coin_for(&key),
            self.config.consensus,
        );
        inst.set_metrics(self.metrics.clone());
        inst.set_span_path(span_path_for(&key));
        let sub = inst.propose(value)?;
        self.instances.insert(key, Instance::Mvc(inst));
        self.note_instances();
        let mut out = encode_mvc_step(key, sub);
        out.extend(self.replay_ooc(key));
        Ok(out)
    }

    /// Runs the paper's §4.2 Byzantine faultload on multi-valued
    /// consensus instance `tag`: propose ⊥ in INIT and VECT and 0 at the
    /// binary consensus layer (evaluation harness only).
    ///
    /// # Errors
    ///
    /// [`ProtocolError::AlreadyStarted`] if `tag` was already proposed.
    pub fn mvc_propose_bottom(&mut self, tag: u64) -> Result<StackStep, ProtocolError> {
        let key = InstanceKey::Mvc { tag };
        if self.instances.contains_key(&key) {
            return Err(ProtocolError::AlreadyStarted);
        }
        let mut inst = MultiValuedConsensus::with_config(
            self.group,
            self.me,
            self.keys.clone(),
            self.coin_for(&key),
            self.config.consensus,
        );
        inst.set_metrics(self.metrics.clone());
        inst.set_span_path(span_path_for(&key));
        let sub = inst.propose_byzantine_bottom()?;
        self.instances.insert(key, Instance::Mvc(inst));
        self.note_instances();
        let mut out = encode_mvc_step(key, sub);
        out.extend(self.replay_ooc(key));
        Ok(out)
    }

    /// Proposes a value for vector consensus instance `tag`.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::AlreadyStarted`] if `tag` was already proposed.
    pub fn vc_propose(&mut self, tag: u64, value: Bytes) -> Result<StackStep, ProtocolError> {
        let key = InstanceKey::Vc { tag };
        if self.instances.contains_key(&key) {
            return Err(ProtocolError::AlreadyStarted);
        }
        let mut inst = VectorConsensus::with_config(
            self.group,
            self.me,
            self.keys.clone(),
            self.sub_seed(&key),
            self.config.consensus,
        );
        if !self.config.eager_vc_rounds {
            inst = inst.deferred_rounds();
        }
        inst.set_metrics(self.metrics.clone());
        inst.set_span_path(span_path_for(&key));
        let sub = inst.propose(value)?;
        self.instances.insert(key, Instance::Vc(inst));
        self.note_instances();
        let mut out = encode_vc_step(key, sub);
        out.extend(self.replay_ooc(key));
        Ok(out)
    }

    /// A-broadcasts `payload` on atomic broadcast session `session`.
    pub fn ab_broadcast(&mut self, session: u32, payload: Bytes) -> (MsgId, StackStep) {
        let key = InstanceKey::Ab { session };
        self.ensure_ab(key);
        let Some(Instance::Ab(ab)) = self.instances.get_mut(&key) else {
            unreachable!("just ensured");
        };
        let (id, sub) = ab.broadcast(payload);
        (id, encode_ab_step(key, sub))
    }

    /// Drives deferred agreement rounds for an atomic broadcast session
    /// (see [`crate::ab::AbConfig::eager_rounds`]). Call when the inbound
    /// queue has been drained. No-op if the session does not exist.
    pub fn ab_poll(&mut self, session: u32) -> StackStep {
        let key = InstanceKey::Ab { session };
        match self.instances.get_mut(&key) {
            Some(Instance::Ab(ab)) => encode_ab_step(key, ab.poll()),
            _ => Step::none(),
        }
    }

    /// Drives all deferred round machinery (atomic broadcast sessions and
    /// vector consensus instances). Single-threaded drivers call this
    /// when their inbound queue has been drained.
    pub fn poll_all(&mut self) -> StackStep {
        let keys: Vec<InstanceKey> = self
            .instances
            .iter()
            .filter(|(k, _)| matches!(k, InstanceKey::Ab { .. } | InstanceKey::Vc { .. }))
            .map(|(k, _)| *k)
            .collect();
        let mut out = Step::none();
        for key in keys {
            match self.instances.get_mut(&key) {
                Some(Instance::Ab(ab)) => out.extend(encode_ab_step(key, ab.poll())),
                Some(Instance::Vc(vc)) => out.extend(encode_vc_step(key, vc.poll())),
                _ => {}
            }
        }
        out
    }

    /// Injects the driver clock into every atomic broadcast session (the
    /// age-based batch-flush trigger reads it; see
    /// [`crate::ab::BatchPolicy`]).
    pub fn set_now(&mut self, now_ns: u64) {
        for inst in self.instances.values_mut() {
            if let Instance::Ab(ab) = inst {
                ab.set_now(now_ns);
            }
        }
    }

    /// The earliest driver-clock instant at which some atomic broadcast
    /// session needs a [`Stack::tick`] to flush an aged batch, or `None`
    /// when no timer is armed.
    pub fn ab_next_deadline(&self) -> Option<u64> {
        self.instances
            .values()
            .filter_map(|inst| match inst {
                Instance::Ab(ab) => ab.next_flush_deadline(),
                _ => None,
            })
            .min()
    }

    /// Runs deferred batch flushes on every atomic broadcast session
    /// after [`Stack::set_now`] advanced the clock past
    /// [`Stack::ab_next_deadline`]. Does not touch the deferred-round
    /// polling machinery.
    pub fn tick(&mut self) -> StackStep {
        let keys: Vec<InstanceKey> = self
            .instances
            .iter()
            .filter(|(k, _)| matches!(k, InstanceKey::Ab { .. }))
            .map(|(k, _)| *k)
            .collect();
        let mut out = Step::none();
        for key in keys {
            if let Some(Instance::Ab(ab)) = self.instances.get_mut(&key) {
                out.extend(encode_ab_step(key, ab.tick()));
            }
        }
        out
    }

    /// The round in which binary consensus instance `tag` decided
    /// (1-based), if it exists and has decided. Statistics for the
    /// randomization experiments.
    pub fn bc_decided_round(&self, tag: u64) -> Option<u32> {
        match self.instances.get(&InstanceKey::Bc { tag }) {
            Some(Instance::Bc(bc)) => bc.decided_round(),
            _ => None,
        }
    }

    /// The agreement round a vector consensus instance is in (0-based),
    /// if it exists. A value above 0 means earlier rounds decided ⊥ and
    /// were retried.
    pub fn vc_round(&self, tag: u64) -> Option<u32> {
        match self.instances.get(&InstanceKey::Vc { tag }) {
            Some(Instance::Vc(vc)) => Some(vc.round()),
            _ => None,
        }
    }

    /// Atomic broadcast session statistics (Figures 4–7 harness).
    pub fn ab_stats(&self, session: u32) -> Option<crate::ab::AbStats> {
        match self.instances.get(&InstanceKey::Ab { session }) {
            Some(Instance::Ab(ab)) => Some(ab.stats()),
            _ => None,
        }
    }

    /// Atomic broadcast introspection: `(stats, current round, pending)`.
    pub fn ab_debug(&self, session: u32) -> Option<(crate::ab::AbStats, u32, usize)> {
        match self.instances.get(&InstanceKey::Ab { session }) {
            Some(Instance::Ab(ab)) => Some((ab.stats(), ab.round(), ab.pending())),
            _ => None,
        }
    }

    /// Verbose atomic broadcast snapshot (debugging stuck rounds).
    pub fn ab_debug_verbose(&self, session: u32) -> Option<String> {
        match self.instances.get(&InstanceKey::Ab { session }) {
            Some(Instance::Ab(ab)) => Some(ab.debug_snapshot()),
            _ => None,
        }
    }

    // ----- recovery / state transfer -----

    /// Arms or disarms the rejoin hold: while armed, inbound
    /// atomic-broadcast frames are parked (OOC) instead of feeding the
    /// session, so a rejoiner can reattach to the transport before it
    /// knows its resume cursor. [`Stack::ab_resume`] disarms and replays.
    pub fn set_ab_hold(&mut self, hold: bool) {
        self.ab_hold = hold;
    }

    /// Creates atomic-broadcast session `session` at a rejoin cursor,
    /// disarms the hold, and replays every parked frame into it. See
    /// [`crate::ab::AtomicBroadcast::resume`].
    pub fn ab_resume(&mut self, session: u32, cursor: &crate::ab::AbCursor) -> StackStep {
        let key = InstanceKey::Ab { session };
        self.ab_hold = false;
        self.ensure_ab(key);
        if let Some(Instance::Ab(ab)) = self.instances.get_mut(&key) {
            ab.resume(cursor);
        }
        self.replay_ooc(key)
    }

    /// The atomic-broadcast session's stream position as served to a
    /// rejoiner; a session that has seen no traffic reports the default
    /// (all-zero) hints.
    pub fn ab_hints(&self, session: u32) -> crate::recovery::PeerHints {
        match self.instances.get(&InstanceKey::Ab { session }) {
            Some(Instance::Ab(ab)) => ab.hints(),
            _ => crate::recovery::PeerHints {
                round: 0,
                batch_w: vec![0; self.group.n()],
                max_batch: vec![0; self.group.n()],
                max_rbid: vec![0; self.group.n()],
            },
        }
    }

    /// Decided-but-payloadless batch ids of the session (see
    /// [`crate::ab::AtomicBroadcast::missing_payloads`]).
    pub fn ab_missing_payloads(&self, session: u32) -> Vec<MsgId> {
        match self.instances.get(&InstanceKey::Ab { session }) {
            Some(Instance::Ab(ab)) => ab.missing_payloads(),
            _ => Vec::new(),
        }
    }

    /// A retained batch payload for re-serving to a rejoiner.
    pub fn ab_retained_batch(&self, session: u32, id: &MsgId) -> Option<Bytes> {
        match self.instances.get(&InstanceKey::Ab { session }) {
            Some(Instance::Ab(ab)) => ab.retained_batch(id),
            _ => None,
        }
    }

    /// Injects an out-of-band batch payload obtained from `f+1`
    /// identically-serving peers.
    pub fn ab_inject_batch(&mut self, session: u32, id: MsgId, raw: Bytes) -> StackStep {
        let key = InstanceKey::Ab { session };
        match self.instances.get_mut(&key) {
            Some(Instance::Ab(ab)) => encode_ab_step(key, ab.inject_batch(id, raw)),
            _ => Step::none(),
        }
    }

    /// True while the session is between a resume and its first normally
    /// concluded round.
    pub fn ab_recovering(&self, session: u32) -> bool {
        match self.instances.get(&InstanceKey::Ab { session }) {
            Some(Instance::Ab(ab)) => ab.recovering(),
            _ => false,
        }
    }

    fn ensure_ab(&mut self, key: InstanceKey) {
        if !self.instances.contains_key(&key) {
            let mut inst = AtomicBroadcast::with_config(
                self.group,
                self.me,
                self.keys.clone(),
                self.sub_seed(&key),
                self.config.ab,
            );
            inst.set_metrics(self.metrics.clone());
            inst.set_span_path(span_path_for(&key));
            self.instances.insert(key, Instance::Ab(Box::new(inst)));
            self.note_instances();
            // Replay is handled by the caller paths that create instances;
            // ensure_ab is also called from handle_frame where OOC cannot
            // exist (auto-created on first contact).
        }
    }

    /// Destroys an instance, purging its out-of-context messages (§3.4).
    pub fn destroy(&mut self, key: InstanceKey) {
        self.instances.remove(&key);
        if let Some(q) = self.ooc.remove(&key) {
            self.ooc_buffered -= q.len();
            self.metrics
                .stack_ooc_buffered
                .set(self.ooc_buffered as u64);
        }
        self.note_instances();
    }

    fn note_instances(&self) {
        self.metrics
            .stack_instances
            .set(self.instances.len() as u64);
    }

    // ----- inbound path -----

    /// Handles one raw wire frame from `from`.
    ///
    /// Malformed frames are reported as faults; messages for instances
    /// that cannot be auto-created are parked in the OOC table.
    pub fn handle_frame(&mut self, from: ProcessId, frame: Bytes) -> StackStep {
        self.metrics.stack_frames_in.inc();
        let step = self.handle_frame_inner(from, frame);
        if !step.faults.is_empty() {
            self.metrics.faults_detected.add(step.faults.len() as u64);
            for fault in &step.faults {
                self.metrics
                    .suspect(fault.from as u32, suspicion_kind(fault.kind));
            }
        }
        step
    }

    fn handle_frame_inner(&mut self, from: ProcessId, frame: Bytes) -> StackStep {
        if !self.group.contains(from) {
            return Step::fault(from, FaultKind::NotEntitled);
        }
        let mut r = Reader::new(&frame);
        let key = match InstanceKey::decode(&mut r) {
            Ok(k) => k,
            Err(_) => return Step::fault(from, FaultKind::Malformed),
        };
        let inner = Bytes::copy_from_slice(r.raw(r.remaining(), "frame.body").expect("len ok"));
        self.dispatch(from, key, inner)
    }

    fn dispatch(&mut self, from: ProcessId, key: InstanceKey, inner: Bytes) -> StackStep {
        // Transfer frames bypass instance management entirely.
        if key == InstanceKey::Xfer {
            let mut out = Step::none();
            out.push_output(Output::Xfer {
                from,
                payload: inner,
            });
            return out;
        }
        // Rejoin window: park AB traffic until the session is resumed.
        if self.ab_hold && matches!(key, InstanceKey::Ab { .. }) {
            self.park_ooc(key, from, inner);
            return Step::none();
        }
        // Auto-create broadcast instances on first contact.
        if !self.instances.contains_key(&key) {
            match key {
                InstanceKey::Rb { sender, .. } if self.group.contains(sender) => {
                    let mut rb = ReliableBroadcast::new(self.group, self.me, sender);
                    rb.set_metrics(self.metrics.clone());
                    rb.set_span_path(span_path_for(&key));
                    self.instances.insert(key, Instance::Rb(rb));
                    self.note_instances();
                }
                InstanceKey::Eb { sender, .. } if self.group.contains(sender) => {
                    let mut eb = EchoBroadcast::new(self.group, self.me, sender, self.keys.clone());
                    eb.set_metrics(self.metrics.clone());
                    eb.set_span_path(span_path_for(&key));
                    self.instances.insert(key, Instance::Eb(eb));
                    self.note_instances();
                }
                InstanceKey::Ab { .. } => self.ensure_ab(key),
                InstanceKey::Rb { .. } | InstanceKey::Eb { .. } => {
                    return Step::fault(from, FaultKind::Malformed);
                }
                // Consensus instances wait for the local propose call.
                InstanceKey::Bc { .. } | InstanceKey::Mvc { .. } | InstanceKey::Vc { .. } => {
                    self.park_ooc(key, from, inner);
                    return Step::none();
                }
                // Handled by the early return above.
                InstanceKey::Xfer => return Step::none(),
            }
        }
        self.feed_instance(from, key, inner)
    }

    fn feed_instance(&mut self, from: ProcessId, key: InstanceKey, inner: Bytes) -> StackStep {
        let Some(instance) = self.instances.get_mut(&key) else {
            return Step::none();
        };
        match instance {
            Instance::Rb(rb) => match RbMessage::from_bytes(&inner) {
                Ok(m) => {
                    let sender = rb.sender();
                    encode_rb_step(key, sender, rb.handle_message(from, m))
                }
                Err(_) => Step::fault(from, FaultKind::Malformed),
            },
            Instance::Eb(eb) => match EbMessage::from_bytes(&inner) {
                Ok(m) => {
                    let sender = eb.sender();
                    encode_eb_step(key, sender, eb.handle_message(from, m))
                }
                Err(_) => Step::fault(from, FaultKind::Malformed),
            },
            Instance::Bc(bc) => match BcMessage::from_bytes(&inner) {
                Ok(m) => encode_bc_step(key, bc.handle_message(from, m)),
                Err(_) => Step::fault(from, FaultKind::Malformed),
            },
            Instance::Mvc(mvc) => match MvcMessage::from_bytes(&inner) {
                Ok(m) => encode_mvc_step(key, mvc.handle_message(from, m)),
                Err(_) => Step::fault(from, FaultKind::Malformed),
            },
            Instance::Vc(vc) => match VcMessage::from_bytes(&inner) {
                Ok(m) => encode_vc_step(key, vc.handle_message(from, m)),
                Err(_) => Step::fault(from, FaultKind::Malformed),
            },
            Instance::Ab(ab) => match AbMessage::from_bytes(&inner) {
                Ok(m) => encode_ab_step(key, ab.handle_message(from, m)),
                Err(_) => Step::fault(from, FaultKind::Malformed),
            },
        }
    }

    fn park_ooc(&mut self, key: InstanceKey, from: ProcessId, inner: Bytes) {
        if !self.ooc.contains_key(&key) && self.ooc.len() >= MAX_OOC_INSTANCES {
            self.ooc_dropped += 1;
            self.metrics.stack_ooc_dropped.inc();
            return;
        }
        let q = self.ooc.entry(key).or_default();
        if q.len() >= MAX_OOC_PER_INSTANCE {
            self.ooc_dropped += 1;
            self.metrics.stack_ooc_dropped.inc();
            return;
        }
        q.push_back((from, inner));
        self.ooc_buffered += 1;
        self.metrics.stack_ooc_parked.inc();
        self.metrics
            .stack_ooc_buffered
            .set(self.ooc_buffered as u64);
        self.metrics
            .stack_ooc_high_water
            .set_max(self.ooc_buffered as u64);
    }

    fn replay_ooc(&mut self, key: InstanceKey) -> StackStep {
        let Some(q) = self.ooc.remove(&key) else {
            return Step::none();
        };
        self.ooc_buffered -= q.len();
        self.metrics
            .stack_ooc_buffered
            .set(self.ooc_buffered as u64);
        let mut out = Step::none();
        for (from, inner) in q {
            out.extend(self.feed_instance(from, key, inner));
        }
        out
    }
}

// ----- step encoding: wrap child messages into wire frames -----

fn encode_frame<M: WireMessage>(key: InstanceKey, m: &M) -> Bytes {
    let mut w = Writer::new();
    key.encode(&mut w);
    m.encode(&mut w);
    w.freeze()
}

/// Encodes a state-transfer payload into a wire frame: the receiving
/// stack routes it to [`Output::Xfer`] verbatim.
pub fn encode_xfer(payload: &[u8]) -> Bytes {
    let mut w = Writer::new();
    InstanceKey::Xfer.encode(&mut w);
    w.raw(payload);
    w.freeze()
}

fn encode_rb_step(key: InstanceKey, sender: ProcessId, sub: Step<RbMessage, Bytes>) -> StackStep {
    sub.map_messages(|m| encode_frame(key, &m))
        .map_outputs(|payload| {
            Some(Output::RbDelivered {
                key,
                sender,
                payload,
            })
        })
}

fn encode_eb_step(key: InstanceKey, sender: ProcessId, sub: Step<EbMessage, Bytes>) -> StackStep {
    sub.map_messages(|m| encode_frame(key, &m))
        .map_outputs(|payload| {
            Some(Output::EbDelivered {
                key,
                sender,
                payload,
            })
        })
}

fn encode_bc_step(key: InstanceKey, sub: Step<BcMessage, bool>) -> StackStep {
    sub.map_messages(|m| encode_frame(key, &m))
        .map_outputs(|decision| Some(Output::BcDecided { key, decision }))
}

fn encode_mvc_step(key: InstanceKey, sub: Step<MvcMessage, MvcValue>) -> StackStep {
    sub.map_messages(|m| encode_frame(key, &m))
        .map_outputs(|decision| Some(Output::MvcDecided { key, decision }))
}

fn encode_vc_step(key: InstanceKey, sub: Step<VcMessage, DecisionVector>) -> StackStep {
    sub.map_messages(|m| encode_frame(key, &m))
        .map_outputs(|vector| Some(Output::VcDecided { key, vector }))
}

fn encode_ab_step(key: InstanceKey, sub: Step<AbMessage, AbDelivery>) -> StackStep {
    sub.map_messages(|m| encode_frame(key, &m))
        .map_outputs(|delivery| Some(Output::AbDelivered { key, delivery }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::Cluster;

    #[test]
    fn instance_key_codec_roundtrip() {
        for key in [
            InstanceKey::Rb { sender: 1, seq: 9 },
            InstanceKey::Eb { sender: 0, seq: 0 },
            InstanceKey::Bc { tag: 42 },
            InstanceKey::Mvc { tag: u64::MAX },
            InstanceKey::Vc { tag: 7 },
            InstanceKey::Ab { session: 3 },
            InstanceKey::Xfer,
        ] {
            assert_eq!(InstanceKey::from_bytes(&key.to_bytes()).unwrap(), key);
        }
    }

    #[test]
    fn xfer_frames_surface_verbatim() {
        let mut cluster = Cluster::new(4, 21);
        let frame = encode_xfer(b"opaque-transfer-payload");
        let step = cluster.stack_mut(0).handle_frame(2, frame);
        assert_eq!(
            step.outputs,
            vec![Output::Xfer {
                from: 2,
                payload: Bytes::from_static(b"opaque-transfer-payload"),
            }]
        );
        assert!(step.messages.is_empty());
        // No instance was created for it.
        assert_eq!(cluster.stack_mut(0).instance_count(), 0);
    }

    #[test]
    fn ab_hold_parks_frames_until_resume() {
        let mut cluster = Cluster::new(4, 22);
        // Peer 1 a-broadcasts; capture one of its AB frames.
        let (_, step) = cluster
            .stack_mut(1)
            .ab_broadcast(0, Bytes::from_static(b"held"));
        let frame = step.messages[0].message.clone();
        // Process 0 holds AB traffic: the frame parks, no session exists.
        cluster.stack_mut(0).set_ab_hold(true);
        let s = cluster.stack_mut(0).handle_frame(1, frame.clone());
        assert!(s.is_empty());
        assert_eq!(cluster.stack_mut(0).instance_count(), 0);
        assert!(cluster.stack_mut(0).ooc_len() > 0, "frame must be parked");
        // Resume replays the parked frame into a fresh session: the RBC
        // echo traffic it triggers proves the frame was processed.
        let cursor = crate::ab::AbCursor {
            round: 0,
            a_delivered: vec![0; 4],
            cmd_delivered: vec![0; 4],
            next_rbid: 0,
            next_batch: 0,
        };
        let s = cluster.stack_mut(0).ab_resume(0, &cursor);
        assert!(!s.messages.is_empty(), "replayed frame produced traffic");
        assert_eq!(cluster.stack_mut(0).ooc_len(), 0);
        assert!(cluster.stack_mut(0).ab_recovering(0));
    }

    #[test]
    fn rb_broadcast_via_stack() {
        let mut cluster = Cluster::new(4, 11);
        let (_key, step) = cluster.stack_mut(0).rb_broadcast(Bytes::from_static(b"m"));
        cluster.absorb(0, step);
        cluster.run();
        for p in 0..4 {
            let delivered: Vec<_> = cluster
                .outputs(p)
                .iter()
                .filter_map(|o| match o {
                    Output::RbDelivered {
                        sender, payload, ..
                    } => Some((*sender, payload.clone())),
                    _ => None,
                })
                .collect();
            assert_eq!(
                delivered,
                vec![(0, Bytes::from_static(b"m"))],
                "process {p}"
            );
        }
    }

    #[test]
    fn eb_broadcast_via_stack() {
        let mut cluster = Cluster::new(4, 12);
        let (_key, step) = cluster.stack_mut(2).eb_broadcast(Bytes::from_static(b"e"));
        cluster.absorb(2, step);
        cluster.run();
        for p in 0..4 {
            assert!(
                cluster.outputs(p).iter().any(|o| matches!(
                    o,
                    Output::EbDelivered { sender: 2, payload, .. } if payload.as_ref() == b"e"
                )),
                "process {p} missing delivery"
            );
        }
    }

    #[test]
    fn bc_via_stack_with_ooc_buffering() {
        let mut cluster = Cluster::new(4, 13);
        // Three processes propose immediately; the fourth receives all
        // their traffic out-of-context first, then proposes.
        for p in 0..3 {
            let step = cluster.stack_mut(p).bc_propose(5, true).unwrap();
            cluster.absorb(p, step);
        }
        cluster.run();
        assert!(cluster.stack_mut(3).ooc_len() > 0, "OOC must have buffered");
        let step = cluster.stack_mut(3).bc_propose(5, true).unwrap();
        cluster.absorb(3, step);
        cluster.run();
        for p in 0..4 {
            assert!(
                cluster
                    .outputs(p)
                    .iter()
                    .any(|o| matches!(o, Output::BcDecided { decision: true, .. })),
                "process {p} missing decision"
            );
        }
    }

    #[test]
    fn mvc_via_stack() {
        let mut cluster = Cluster::new(4, 14);
        for p in 0..4 {
            let step = cluster
                .stack_mut(p)
                .mvc_propose(1, Bytes::from_static(b"val"))
                .unwrap();
            cluster.absorb(p, step);
        }
        cluster.run();
        for p in 0..4 {
            assert!(cluster.outputs(p).iter().any(|o| matches!(
                o,
                Output::MvcDecided { decision: Some(v), .. } if v.as_ref() == b"val"
            )));
        }
    }

    #[test]
    fn vc_via_stack() {
        let mut cluster = Cluster::new(4, 15);
        for p in 0..4 {
            let step = cluster
                .stack_mut(p)
                .vc_propose(1, Bytes::copy_from_slice(format!("p{p}").as_bytes()))
                .unwrap();
            cluster.absorb(p, step);
        }
        cluster.run();
        for p in 0..4 {
            assert!(cluster
                .outputs(p)
                .iter()
                .any(|o| matches!(o, Output::VcDecided { .. })));
        }
    }

    #[test]
    fn ab_via_stack() {
        let mut cluster = Cluster::new(4, 16);
        let (_, step) = cluster
            .stack_mut(1)
            .ab_broadcast(0, Bytes::from_static(b"a1"));
        cluster.absorb(1, step);
        let (_, step) = cluster
            .stack_mut(2)
            .ab_broadcast(0, Bytes::from_static(b"a2"));
        cluster.absorb(2, step);
        cluster.run();
        let order0: Vec<MsgId> = cluster
            .outputs(0)
            .iter()
            .filter_map(|o| match o {
                Output::AbDelivered { delivery, .. } => Some(delivery.id),
                _ => None,
            })
            .collect();
        assert_eq!(order0.len(), 2);
        for p in 1..4 {
            let order: Vec<MsgId> = cluster
                .outputs(p)
                .iter()
                .filter_map(|o| match o {
                    Output::AbDelivered { delivery, .. } => Some(delivery.id),
                    _ => None,
                })
                .collect();
            assert_eq!(order, order0, "total order diverged at {p}");
        }
    }

    #[test]
    fn double_propose_rejected() {
        let mut cluster = Cluster::new(4, 17);
        let step = cluster.stack_mut(0).bc_propose(9, false).unwrap();
        cluster.absorb(0, step);
        assert_eq!(
            cluster.stack_mut(0).bc_propose(9, true).unwrap_err(),
            ProtocolError::AlreadyStarted
        );
    }

    #[test]
    fn destroy_purges_ooc() {
        let mut cluster = Cluster::new(4, 18);
        for p in 0..3 {
            let step = cluster.stack_mut(p).bc_propose(5, true).unwrap();
            cluster.absorb(p, step);
        }
        cluster.run();
        assert!(cluster.stack_mut(3).ooc_len() > 0);
        cluster.stack_mut(3).destroy(InstanceKey::Bc { tag: 5 });
        assert_eq!(cluster.stack_mut(3).ooc_len(), 0);
    }

    #[test]
    fn shared_coin_cluster_agrees() {
        use crate::testing::Cluster;
        let group = crate::Group::new(4).unwrap();
        let table = ritas_crypto::KeyTable::dealer(4, 3);
        let stacks: Vec<Stack> = (0..4)
            .map(|me| {
                Stack::with_config(
                    group,
                    me,
                    table.view_of(me),
                    3 ^ (me as u64) << 8,
                    StackConfig {
                        coin: CoinPolicy::Shared { dealer_seed: 55 },
                        ..StackConfig::default()
                    },
                )
            })
            .collect();
        let mut cluster = Cluster::with_stacks(stacks, 3);
        for p in 0..4 {
            let s = cluster.stack_mut(p).bc_propose(8, p % 2 == 1).unwrap();
            cluster.absorb(p, s);
        }
        cluster.run();
        let decisions: Vec<bool> = (0..4)
            .filter_map(|p| {
                cluster.outputs(p).iter().find_map(|o| match o {
                    Output::BcDecided { decision, .. } => Some(*decision),
                    _ => None,
                })
            })
            .collect();
        assert_eq!(decisions.len(), 4);
        assert!(decisions.iter().all(|d| *d == decisions[0]));
    }

    #[test]
    fn ooc_table_is_bounded() {
        // Flood a stack with traffic for thousands of distinct uncreated
        // consensus instances: the OOC table must cap, not balloon.
        let mut cluster = crate::testing::Cluster::new(4, 40);
        let mut dropped_seen = false;
        for tag in 0..6000u64 {
            let frame = {
                let mut w = Writer::new();
                InstanceKey::Bc { tag }.encode(&mut w);
                w.u8(0xff); // body irrelevant, parked raw
                w.freeze()
            };
            let _ = cluster.stack_mut(0).handle_frame(1, frame);
        }
        let stack = cluster.stack_mut(0);
        assert!(
            stack.ooc_len() <= 4096,
            "ooc instances: {}",
            stack.ooc_len()
        );
        if stack.ooc_dropped() > 0 {
            dropped_seen = true;
        }
        assert!(dropped_seen, "expected drops after exceeding the cap");
    }

    #[test]
    fn malformed_frame_faulted() {
        let mut cluster = Cluster::new(4, 19);
        let step = cluster
            .stack_mut(0)
            .handle_frame(1, Bytes::from_static(&[0xff, 0xff]));
        assert_eq!(step.faults[0].kind, FaultKind::Malformed);
    }

    #[test]
    fn frame_from_stranger_rejected() {
        let mut cluster = Cluster::new(4, 20);
        let step = cluster
            .stack_mut(0)
            .handle_frame(9, Bytes::from_static(&[1]));
        assert_eq!(step.faults[0].kind, FaultKind::NotEntitled);
    }
}
