//! Threaded blocking runtime — the Rust equivalent of the paper's C API
//! (§3.1).
//!
//! The original RITAS library runs the whole protocol stack in a single
//! thread, separate from the application thread, and offers blocking
//! service requests (`ritas_rb_bcast`, `ritas_ab_recv`, `ritas_bc`, …).
//! [`Node`] reproduces that shape: one stack thread per process drives a
//! [`Stack`] over a [`Transport`]; the application calls blocking methods
//! that mirror the C functions:
//!
//! | C API | [`Node`] method |
//! |---|---|
//! | `ritas_rb_bcast` / `ritas_rb_recv` | [`Node::reliable_broadcast`] / [`Node::rb_recv`] |
//! | `ritas_eb_bcast` / `ritas_eb_recv` | [`Node::echo_broadcast`] / [`Node::eb_recv`] |
//! | `ritas_ab_bcast` / `ritas_ab_recv` | [`Node::atomic_broadcast`] / [`Node::atomic_recv`] |
//! | `ritas_bc` | [`Node::binary_consensus`] |
//! | `ritas_mvc` | [`Node::multi_valued_consensus`] |
//! | `ritas_vc` | [`Node::vector_consensus`] |
//! | `ritas_destroy` | [`Node::shutdown`] |

use crate::ab::{AbCursor, AbDelivery, MsgId};
use crate::config::{ConfigError, Group};
use crate::error::ProtocolError;
use crate::mvc::MvcValue;
use crate::recovery::PeerHints;
use crate::stack::{InstanceKey, Output, Stack, StackConfig, StackStep};
use crate::step::{Fault, Target};
use crate::vc::DecisionVector;
use crate::ProcessId;
use bytes::Bytes;
use crossbeam_channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use ritas_crypto::KeyTable;
use ritas_metrics::{Metrics, MetricsSnapshot};
use ritas_transport::{
    AuthConfig, AuthenticatedTransport, Hub, LinkEvent, LinkState, TcpChaosHandle, TcpConfig,
    TcpEndpoint, Transport,
};
use std::collections::{BTreeMap, HashMap};
use std::io::{Read, Write};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often the worker refreshes the `/state` introspection snapshot.
const STATE_REFRESH_NS: u64 = 200_000_000;

/// Errors surfaced by the blocking node API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeError {
    /// The stack thread has shut down.
    Disconnected,
    /// A protocol-level error (e.g. duplicate proposal tag).
    Protocol(ProtocolError),
    /// A timed receive expired.
    Timeout,
}

impl core::fmt::Display for NodeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            NodeError::Disconnected => write!(f, "node has shut down"),
            NodeError::Protocol(e) => write!(f, "protocol error: {e}"),
            NodeError::Timeout => write!(f, "receive timed out"),
        }
    }
}

impl std::error::Error for NodeError {}

impl From<ProtocolError> for NodeError {
    fn from(e: ProtocolError) -> Self {
        NodeError::Protocol(e)
    }
}

/// Configuration for a node session.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    group: Group,
    /// Seed for the trusted key dealer.
    pub master_seed: u64,
    /// Wrap the transport in the AH-style authentication layer (the
    /// paper's "with IPSec" configuration).
    pub authenticate: bool,
    /// Serve a Prometheus text-format `/metrics` endpoint per node (each
    /// binds an ephemeral localhost port; see [`Node::metrics_addr`]).
    pub metrics_endpoint: bool,
    /// No-progress budget for the stall watchdog: when set, each node
    /// flags itself stalled (in `/health`, the `node_stalls_total`
    /// counter, a `stall` trace event and the flight recorder) whenever
    /// work is outstanding but nothing a-delivers within the budget.
    pub stall_budget: Option<Duration>,
    /// How long inbound frames sealed under the *previous* key epoch
    /// stay acceptable after a proactive key rotation (see
    /// [`Node::set_key_epoch`]). Long enough to cover in-flight frames
    /// and queue residue; short enough that exfiltrated old-epoch keys
    /// die quickly.
    pub epoch_grace: Duration,
    /// Stack configuration.
    pub stack: StackConfig,
}

impl SessionConfig {
    /// Creates a configuration for `n` processes with authentication on.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `n < 4`.
    pub fn new(n: usize) -> Result<Self, ConfigError> {
        // The node's worker thread drains its inbound queue and then
        // polls the stack (the paper's one-protocol-thread driver), so
        // agreement rounds run in deferred mode: a round starts only
        // once pending input is exhausted and orders every batch that
        // arrived in the meantime, instead of racing one round per
        // batch. Sans-io harnesses that never poll keep the eager
        // default via `StackConfig::default()`.
        let mut stack = StackConfig::default();
        stack.ab.eager_rounds = false;
        Ok(SessionConfig {
            group: Group::new(n)?,
            master_seed: 0x5249_5441_5321, // "RITAS!"
            authenticate: true,
            metrics_endpoint: false,
            stall_budget: None,
            epoch_grace: Duration::from_secs(5),
            stack,
        })
    }

    /// Arms the per-node stall watchdog with the given no-progress
    /// budget (see [`SessionConfig::stall_budget`]).
    pub fn with_stall_budget(mut self, budget: Duration) -> Self {
        self.stall_budget = Some(budget);
        self
    }

    /// Enables the live Prometheus `/metrics` endpoint on every node of
    /// the session (ephemeral localhost ports; query each node's bound
    /// address via [`Node::metrics_addr`]).
    pub fn with_metrics_endpoint(mut self) -> Self {
        self.metrics_endpoint = true;
        self
    }

    /// Disables the channel authentication layer (the paper's "without
    /// IPSec" configuration).
    pub fn without_authentication(mut self) -> Self {
        self.authenticate = false;
        self
    }

    /// Sets the key-dealer seed.
    pub fn with_master_seed(mut self, seed: u64) -> Self {
        self.master_seed = seed;
        self
    }

    /// Sets the grace window during which previous-epoch frames stay
    /// acceptable after a proactive key rotation (see
    /// [`SessionConfig::epoch_grace`]).
    pub fn with_epoch_grace(mut self, grace: Duration) -> Self {
        self.epoch_grace = grace;
        self
    }

    /// The seed the service tier's per-client key dealer derives from —
    /// the client-facing sibling of the pairwise replica key table. Every
    /// replica of a session (and every client dealt keys out-of-band)
    /// derives the same per-client keys from this value.
    pub fn client_key_seed(&self) -> u64 {
        // Domain-separated from the replica master seed so client keys
        // and pairwise replica keys never share a derivation root.
        self.master_seed ^ 0xC11E_17DE_A1E5_EED5
    }

    /// The group this session runs with.
    pub fn group(&self) -> Group {
        self.group
    }
}

enum Command {
    RbBroadcast(Bytes),
    EbBroadcast(Bytes),
    AbBroadcast(Bytes, Sender<crate::ab::MsgId>),
    BcPropose {
        tag: u64,
        value: bool,
        reply: Sender<Result<bool, ProtocolError>>,
    },
    MvcPropose {
        tag: u64,
        value: Bytes,
        reply: Sender<Result<MvcValue, ProtocolError>>,
    },
    VcPropose {
        tag: u64,
        value: Bytes,
        reply: Sender<Result<DecisionVector, ProtocolError>>,
    },
    AbDebug {
        reply: Sender<Option<(crate::ab::AbStats, u32, usize)>>,
    },
    AbDebugVerbose {
        reply: Sender<Option<String>>,
    },
    /// Point-to-point state-transfer frame to one peer (no agreement
    /// instance involved).
    SendXfer(ProcessId, Bytes),
    /// Create/seed the AB session at a recovery cursor and replay held
    /// frames; acks when the stack has switched over.
    AbResume(Box<AbCursor>, Sender<()>),
    AbHints(Sender<PeerHints>),
    AbMissing(Sender<Vec<MsgId>>),
    AbRetained(MsgId, Sender<Option<Bytes>>),
    AbInject(MsgId, Bytes),
    Shutdown,
}

/// Everything the stack thread reacts to, merged into one channel so the
/// single protocol thread needs only a blocking `recv` (no `select`).
enum Event {
    Cmd(Command),
    Net(ProcessId, Bytes),
}

enum PendingReply {
    Bc(Sender<Result<bool, ProtocolError>>),
    Mvc(Sender<Result<MvcValue, ProtocolError>>),
    Vc(Sender<Result<DecisionVector, ProtocolError>>),
}

/// Liveness state shared between the worker loop, the stall watchdog and
/// the `/health` + `/state` endpoints. Everything is lock-free except the
/// worker-refreshed `/state` JSON, so the endpoints never block on (or
/// wait for) a wedged protocol thread — that is exactly the situation
/// they exist to diagnose.
struct HealthShared {
    /// Last worker-loop iteration, in epoch nanoseconds.
    heartbeat_ns: AtomicU64,
    /// Last a-delivery observed by the worker, in epoch nanoseconds.
    progress_ns: AtomicU64,
    /// When outstanding work was first observed (0 = queue idle).
    pending_since_ns: AtomicU64,
    /// Whether the watchdog currently considers the node stalled.
    stalled: AtomicBool,
    /// Watchdog no-progress budget in nanoseconds (0 = disarmed).
    budget_ns: AtomicU64,
    /// Worker-refreshed `/state` introspection JSON.
    state_json: parking_lot::Mutex<String>,
}

impl HealthShared {
    fn new() -> Self {
        HealthShared {
            heartbeat_ns: AtomicU64::new(0),
            progress_ns: AtomicU64::new(0),
            pending_since_ns: AtomicU64::new(0),
            stalled: AtomicBool::new(false),
            budget_ns: AtomicU64::new(0),
            state_json: parking_lot::Mutex::new(String::from("null")),
        }
    }
}

/// A handle to one process of a running session.
///
/// All methods are thread-safe to call from the owning application
/// thread; the protocol stack itself runs in a dedicated thread, as in
/// the paper's implementation.
pub struct Node {
    id: ProcessId,
    group_size: usize,
    cmd_tx: Sender<Event>,
    rb_rx: Receiver<(ProcessId, Bytes)>,
    eb_rx: Receiver<(ProcessId, Bytes)>,
    ab_rx: Receiver<AbDelivery>,
    xfer_rx: Receiver<(ProcessId, Bytes)>,
    fault_rx: Receiver<Fault>,
    link_rx: Receiver<LinkEvent>,
    link_state_fn: Arc<dyn Fn(ProcessId) -> LinkState + Send + Sync>,
    set_key_epoch_fn: Arc<dyn Fn(u64) + Send + Sync>,
    key_epoch_fn: Arc<dyn Fn() -> u64 + Send + Sync>,
    metrics: Metrics,
    health: Arc<HealthShared>,
    epoch: Instant,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
    metrics_addr: Option<SocketAddr>,
    watchdog_running: bool,
}

impl core::fmt::Debug for Node {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Node")
            .field("id", &self.id)
            .finish_non_exhaustive()
    }
}

impl Node {
    /// Builds an in-memory cluster of `n` nodes (one per process) over a
    /// [`Hub`], with pairwise keys dealt from the session seed. This is
    /// the quickest way to run the stack; for custom transports use
    /// [`Node::spawn`].
    ///
    /// # Errors
    ///
    /// Propagates transport construction failures (none today; reserved).
    pub fn cluster(config: SessionConfig) -> Result<Vec<Node>, NodeError> {
        // The hub handle is dropped here: links stay up for the lifetime
        // of the endpoints.
        Node::cluster_with_hub(&config).map(|(nodes, _)| nodes)
    }

    /// Like [`Node::cluster`], but also returns the [`Hub`] handle, which
    /// keeps fault-injection powers over the running session:
    /// [`Hub::crash`] fail-stops a process and [`Hub::reattach`] (via
    /// [`Node::rejoin`]) re-admits a wiped one with a fresh inbound queue.
    ///
    /// # Errors
    ///
    /// As [`Node::cluster`].
    pub fn cluster_with_hub(config: &SessionConfig) -> Result<(Vec<Node>, Hub), NodeError> {
        let n = config.group.n();
        let mut hub = Hub::new(n);
        let endpoints = hub.take_endpoints();
        let mut nodes = Vec::with_capacity(n);
        for (me, ep) in endpoints.into_iter().enumerate() {
            nodes.push(Node::over_memory_endpoint(config, me, ep, false)?);
        }
        Ok((nodes, hub))
    }

    /// Rebuilds process `me` from **nothing but the session config** — the
    /// wipe-and-rejoin entry point. The replica's keys are re-derived from
    /// the dealt master seed, the hub re-admits it with a fresh inbound
    /// queue, and the stack comes up with its AB session *held*: inbound
    /// AB frames park in the out-of-context buffer until a recovery driver
    /// installs a snapshot and calls [`Node::ab_resume`] with the cursor
    /// it agreed on. Only state-transfer frames flow before that.
    ///
    /// # Errors
    ///
    /// As [`Node::cluster`].
    ///
    /// # Panics
    ///
    /// Panics if `me` is out of range for the hub.
    pub fn rejoin(config: &SessionConfig, hub: &Hub, me: ProcessId) -> Result<Node, NodeError> {
        let ep = hub.reattach(me);
        Node::over_memory_endpoint(config, me, ep, true)
    }

    /// Shared construction path for memory-hub sessions: builds the stack
    /// (optionally with the AB session held for rejoin), wraps the
    /// endpoint in the auth layer when configured, and arms the optional
    /// endpoints/watchdog.
    fn over_memory_endpoint(
        config: &SessionConfig,
        me: ProcessId,
        ep: ritas_transport::MemoryEndpoint,
        hold_ab: bool,
    ) -> Result<Node, NodeError> {
        let n = config.group.n();
        let table = KeyTable::dealer(n, config.master_seed);
        let mut stack = Stack::with_config(
            config.group,
            me,
            table.view_of(me),
            config
                .master_seed
                .wrapping_mul(0xA076_1D64_78BD_642F)
                .wrapping_add(me as u64),
            config.stack,
        );
        if hold_ab {
            stack.set_ab_hold(true);
        }
        let mut node = if config.authenticate {
            let metrics = Metrics::new();
            // Epoch 0 is wire-compatible with the legacy format; the
            // rekey machinery only changes behavior once a rotation
            // advances the epoch (Node::set_key_epoch).
            let mut auth = AuthConfig::from_key_table(&table, me).with_epoch_rekey(
                config.master_seed,
                0,
                config.epoch_grace,
            );
            if hold_ab {
                // A rejoiner lost its AH sequence counters but the peers'
                // replay windows did not: resume above anything the old
                // incarnation can have used (new-SA semantics). Wall-clock
                // seconds dominate any plausible frame count.
                let now = std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .map(|d| d.as_secs())
                    .unwrap_or(u32::MAX as u64);
                auth = auth.with_initial_seq(now);
            }
            let mut transport = AuthenticatedTransport::new(ep, auth);
            transport.set_metrics(metrics.clone());
            Node::spawn_with_metrics(transport, stack, metrics)
        } else {
            Node::spawn(ep, stack)
        };
        if config.metrics_endpoint {
            node.serve_metrics().map_err(|_| NodeError::Disconnected)?;
        }
        if let Some(budget) = config.stall_budget {
            node.start_watchdog(budget);
        }
        Ok(node)
    }

    /// Builds a cluster over a real localhost **TCP** mesh — the paper's
    /// deployment transport — with the AH-style authentication layer on
    /// top when the config requests it. One endpoint per process, all in
    /// this OS process (for cross-host deployments, establish
    /// [`ritas_transport::TcpEndpoint`]s manually and use [`Node::spawn`]).
    ///
    /// # Errors
    ///
    /// Propagates mesh establishment failures as
    /// [`NodeError::Disconnected`].
    pub fn tcp_cluster(config: SessionConfig, timeout: Duration) -> Result<Vec<Node>, NodeError> {
        Node::tcp_cluster_with_chaos(config, timeout).map(|(nodes, _)| nodes)
    }

    /// Like [`Node::tcp_cluster`], but also returns one
    /// [`TcpChaosHandle`] per node for link fault injection: killing live
    /// sockets mid-run and watching the session layer reconnect,
    /// retransmit and keep the cluster a-delivering.
    ///
    /// # Errors
    ///
    /// As [`Node::tcp_cluster`].
    pub fn tcp_cluster_with_chaos(
        config: SessionConfig,
        timeout: Duration,
    ) -> Result<(Vec<Node>, Vec<TcpChaosHandle>), NodeError> {
        let n = config.group.n();
        let table = KeyTable::dealer(n, config.master_seed);
        // The session-resume handshake reuses the pairwise dealt keys, so
        // reconnects are MAC-authenticated and replay-protected even in
        // the `without_authentication` (no AH layer) configuration.
        let session_table = table.clone();
        let endpoints = TcpEndpoint::ephemeral_mesh_with(n, timeout, move |me| TcpConfig {
            keys: Some(
                (0..n)
                    .map(|j| session_table.view_of(me).key_for(j))
                    .collect(),
            ),
            ..TcpConfig::default()
        })
        .map_err(|_| NodeError::Disconnected)?;
        let mut nodes = Vec::with_capacity(n);
        let mut chaos = Vec::with_capacity(n);
        for (me, ep) in endpoints.into_iter().enumerate() {
            let stack = Stack::with_config(
                config.group,
                me,
                table.view_of(me),
                config
                    .master_seed
                    .wrapping_mul(0xA076_1D64_78BD_642F)
                    .wrapping_add(me as u64),
                config.stack,
            );
            let metrics = Metrics::new();
            ep.set_metrics(metrics.clone());
            chaos.push(ep.chaos_handle());
            let mut node = if config.authenticate {
                let auth = AuthConfig::from_key_table(&table, me).with_epoch_rekey(
                    config.master_seed,
                    0,
                    config.epoch_grace,
                );
                let mut transport = AuthenticatedTransport::new(ep, auth);
                transport.set_metrics(metrics.clone());
                Node::spawn_with_metrics(transport, stack, metrics)
            } else {
                Node::spawn_with_metrics(ep, stack, metrics)
            };
            if config.metrics_endpoint {
                node.serve_metrics().map_err(|_| NodeError::Disconnected)?;
            }
            if let Some(budget) = config.stall_budget {
                node.start_watchdog(budget);
            }
            nodes.push(node);
        }
        Ok((nodes, chaos))
    }

    /// Spawns the stack thread for `stack` over `transport` and returns
    /// the application handle.
    pub fn spawn<T: Transport + Sync + 'static>(transport: T, stack: Stack) -> Node {
        Node::spawn_with_metrics(transport, stack, Metrics::new())
    }

    /// Like [`Node::spawn`], but shares a caller-provided metrics registry
    /// (so e.g. an [`AuthenticatedTransport`] wrapping the transport can
    /// count into the same snapshot).
    pub fn spawn_with_metrics<T: Transport + Sync + 'static>(
        transport: T,
        mut stack: Stack,
        metrics: Metrics,
    ) -> Node {
        let id = stack.id();
        let group_size = stack.group().n();
        stack.set_metrics(metrics.clone());
        let transport = Arc::new(transport);
        let stop = Arc::new(AtomicBool::new(false));
        let (cmd_tx, cmd_rx) = unbounded::<Event>();
        let (rb_tx, rb_rx) = unbounded();
        let (eb_tx, eb_rx) = unbounded();
        let (ab_tx, ab_rx) = unbounded();
        let (xfer_tx, xfer_rx) = unbounded();
        let (fault_tx, fault_rx) = unbounded();
        let epoch = Instant::now();
        let health = Arc::new(HealthShared::new());

        // Reader thread: pulls frames off the transport into the shared
        // event channel so the stack thread sees commands and network
        // input interleaved through a single blocking `recv`.
        let (link_tx, link_rx) = unbounded::<LinkEvent>();
        let reader = {
            let transport = Arc::clone(&transport);
            let stop = Arc::clone(&stop);
            let net_tx = cmd_tx.clone();
            let metrics = metrics.clone();
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    // Surface link transitions (a self-healing transport
                    // reports outages and resumes here) instead of
                    // silently absorbing them into the poll loop.
                    while let Some(ev) = transport.poll_link_event() {
                        let kind = match ev.state {
                            LinkState::Up => ritas_metrics::FlightKind::LinkUp,
                            _ => ritas_metrics::FlightKind::LinkDown,
                        };
                        metrics.flight_record(kind, ev.peer as u32, ev.epoch, 0);
                        let _ = link_tx.send(ev);
                    }
                    match transport.recv_timeout(Duration::from_millis(50)) {
                        Ok((from, frame)) => {
                            metrics.transport_frames_recv.inc();
                            metrics.transport_bytes_recv.add(frame.len() as u64);
                            metrics.flight_record(
                                ritas_metrics::FlightKind::FrameIn,
                                from as u32,
                                ritas_metrics::flight::digest(&frame),
                                frame.len() as u64,
                            );
                            if net_tx.send(Event::Net(from, frame)).is_err() {
                                break;
                            }
                        }
                        Err(ritas_transport::TransportError::Timeout) => continue,
                        Err(ritas_transport::TransportError::Disconnected) => break,
                        // Per-link failures (LinkDown, auth rejects…) must
                        // not stop the runtime: the other links keep
                        // delivering while the session layer reconnects.
                        Err(_) => continue,
                    }
                }
            })
        };

        // Stack thread: the single protocol thread of §3.
        let worker = {
            let transport = Arc::clone(&transport);
            let stop = Arc::clone(&stop);
            let metrics = metrics.clone();
            let health = Arc::clone(&health);
            std::thread::spawn(move || {
                let mut state = Worker {
                    stack,
                    transport,
                    replies: HashMap::new(),
                    ab_sent: BTreeMap::new(),
                    metrics: metrics.clone(),
                    health: Arc::clone(&health),
                    rb_tx,
                    eb_tx,
                    ab_tx,
                    xfer_tx,
                    fault_tx,
                };
                let mut last_state_refresh: u64 = 0;
                'worker: loop {
                    // Trace events are stamped with nanoseconds since the
                    // node was spawned; the same clock drives the AB layer's
                    // age-based batch flush.
                    let now = epoch.elapsed().as_nanos() as u64;
                    metrics.set_time(now);
                    state.stack.set_now(now);
                    // Queued commands must flush by their age deadline even
                    // when no traffic arrives, so the blocking recv turns
                    // into a timed wait whenever a batch is pending. A
                    // timeout is not an error: it falls through to the
                    // tick/poll below with no event handled.
                    let event = match state.stack.ab_next_deadline() {
                        Some(deadline) => {
                            let wait = deadline.saturating_sub(now);
                            match cmd_rx.recv_timeout(Duration::from_nanos(wait)) {
                                Ok(event) => Some(event),
                                Err(RecvTimeoutError::Timeout) => None,
                                Err(RecvTimeoutError::Disconnected) => break,
                            }
                        }
                        None => match cmd_rx.recv() {
                            Ok(event) => Some(event),
                            Err(_) => break,
                        },
                    };
                    if let Some(event) = event {
                        match event {
                            Event::Cmd(Command::Shutdown) => break,
                            Event::Cmd(cmd) => state.on_command(cmd),
                            Event::Net(from, frame) => state.on_frame(from, frame),
                        }
                    }
                    // Exhaust everything already queued before advancing
                    // the agreement task: rounds run in deferred mode (see
                    // SessionConfig::new), so one round orders every batch
                    // that arrived while the queue drained.
                    loop {
                        match cmd_rx.try_recv() {
                            Ok(Event::Cmd(Command::Shutdown)) => break 'worker,
                            Ok(Event::Cmd(cmd)) => state.on_command(cmd),
                            Ok(Event::Net(from, frame)) => state.on_frame(from, frame),
                            Err(_) => break,
                        }
                    }
                    // Input exhausted: flush any batch past its age
                    // deadline, then start the next agreement round over
                    // the accumulated pending batches.
                    let later = epoch.elapsed().as_nanos() as u64;
                    metrics.set_time(later);
                    state.stack.set_now(later);
                    let step = state.stack.tick();
                    state.dispatch(step);
                    let step = state.stack.poll_all();
                    state.dispatch(step);
                    // Liveness bookkeeping for `/health` and the stall
                    // watchdog: the heartbeat proves this loop is turning;
                    // `pending_since` marks how long work has been
                    // outstanding with nothing a-delivering.
                    health.heartbeat_ns.store(later.max(1), Ordering::Relaxed);
                    let pending =
                        !state.ab_sent.is_empty() || state.metrics.ab_queue_depth.get() > 0;
                    if pending {
                        let _ = health.pending_since_ns.compare_exchange(
                            0,
                            later.max(1),
                            Ordering::Relaxed,
                            Ordering::Relaxed,
                        );
                    } else {
                        health.pending_since_ns.store(0, Ordering::Relaxed);
                        health.stalled.store(false, Ordering::Relaxed);
                    }
                    if later.saturating_sub(last_state_refresh) >= STATE_REFRESH_NS {
                        last_state_refresh = later;
                        *health.state_json.lock() = state.state_json(later);
                    }
                }
                stop.store(true, Ordering::Relaxed);
            })
        };

        let link_state_fn: Arc<dyn Fn(ProcessId) -> LinkState + Send + Sync> = {
            let transport = Arc::clone(&transport);
            Arc::new(move |peer| transport.link_state(peer))
        };
        let set_key_epoch_fn: Arc<dyn Fn(u64) + Send + Sync> = {
            let transport = Arc::clone(&transport);
            Arc::new(move |epoch| transport.set_key_epoch(epoch))
        };
        let key_epoch_fn: Arc<dyn Fn() -> u64 + Send + Sync> = {
            let transport = Arc::clone(&transport);
            Arc::new(move || transport.key_epoch())
        };
        Node {
            id,
            group_size,
            cmd_tx,
            rb_rx,
            eb_rx,
            ab_rx,
            xfer_rx,
            fault_rx,
            link_rx,
            link_state_fn,
            set_key_epoch_fn,
            key_epoch_fn,
            metrics,
            health,
            epoch,
            stop,
            threads: vec![reader, worker],
            metrics_addr: None,
            watchdog_running: false,
        }
    }

    /// Drains the link-state transitions observed since the last call
    /// (outages, reconnects, terminal downs). Empty for transports whose
    /// links cannot fail.
    pub fn take_link_events(&self) -> Vec<LinkEvent> {
        self.link_rx.try_iter().collect()
    }

    /// The current state of this node's link to `peer` (always
    /// [`LinkState::Up`] for failure-free transports).
    pub fn link_state(&self, peer: ProcessId) -> LinkState {
        (self.link_state_fn)(peer)
    }

    /// Switches the underlying transport to the pairwise key table of
    /// `epoch` (proactive key rejuvenation): outbound frames seal under
    /// the new epoch immediately; inbound frames from the previous epoch
    /// stay acceptable for [`SessionConfig::epoch_grace`]. Forward-only;
    /// a no-op on unkeyed transports.
    pub fn set_key_epoch(&self, epoch: u64) {
        (self.set_key_epoch_fn)(epoch);
    }

    /// The key epoch outbound frames are currently sealed under (0 on
    /// unkeyed transports and before any rotation).
    pub fn key_epoch(&self) -> u64 {
        (self.key_epoch_fn)()
    }

    /// Starts serving this node's observability endpoints over HTTP on an
    /// ephemeral localhost port: `/metrics` (Prometheus text format, also
    /// the fallback for unknown paths), `/health` (lock-free liveness
    /// summary — safe to scrape even when the protocol thread is wedged)
    /// and `/state` (worker-refreshed protocol introspection). Returns
    /// the bound address (`curl http://{addr}/metrics`). Idempotent: a
    /// second call returns the existing address. The server stops with
    /// the node.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn serve_metrics(&mut self) -> std::io::Result<SocketAddr> {
        if let Some(addr) = self.metrics_addr {
            return Ok(addr);
        }
        let listener = std::net::TcpListener::bind(("127.0.0.1", 0))?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let ctx = ServeCtx {
            metrics: self.metrics.clone(),
            health: Arc::clone(&self.health),
            epoch: self.epoch,
            id: self.id,
        };
        let stop = Arc::clone(&self.stop);
        self.threads.push(std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((conn, _)) => {
                        let _ = serve_metrics_request(conn, &ctx);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    Err(_) => break,
                }
            }
        }));
        self.metrics_addr = Some(addr);
        Ok(addr)
    }

    /// Arms the stall watchdog: when work is outstanding (own broadcasts
    /// in flight or commands queued) and nothing a-delivers within
    /// `budget`, the node marks itself stalled — `/health` reports it,
    /// `node_stalls_total` increments, a `stall` trace event is recorded
    /// and a [`ritas_metrics::FlightKind::Stall`] event enters the flight
    /// recorder. The flag clears as soon as progress resumes. Calling
    /// again re-tunes the budget.
    pub fn start_watchdog(&mut self, budget: Duration) {
        self.health
            .budget_ns
            .store(budget.as_nanos() as u64, Ordering::Relaxed);
        if self.watchdog_running {
            return;
        }
        self.watchdog_running = true;
        let health = Arc::clone(&self.health);
        let metrics = self.metrics.clone();
        let stop = Arc::clone(&self.stop);
        let epoch = self.epoch;
        let id = self.id;
        self.threads.push(std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let budget = health.budget_ns.load(Ordering::Relaxed);
                let poll = (budget / 4).clamp(5_000_000, 50_000_000);
                std::thread::sleep(Duration::from_nanos(poll));
                if budget == 0 {
                    continue;
                }
                let since = health.pending_since_ns.load(Ordering::Relaxed);
                if since == 0 {
                    continue;
                }
                let now = epoch.elapsed().as_nanos() as u64;
                // Progress restarts the clock: a slow-but-moving queue is
                // not a stall.
                let anchor = since.max(health.progress_ns.load(Ordering::Relaxed));
                let stalled = now.saturating_sub(anchor) > budget;
                if stalled {
                    if !health.stalled.swap(true, Ordering::Relaxed) {
                        metrics.node_stalls_total.inc();
                        metrics.trace(ritas_metrics::Layer::Node, "stall", format!("node:{id}"), 0);
                        metrics.flight_record(
                            ritas_metrics::FlightKind::Stall,
                            id as u32,
                            now.saturating_sub(anchor),
                            budget,
                        );
                    }
                } else {
                    health.stalled.store(false, Ordering::Relaxed);
                }
            }
        }));
    }

    /// Whether the stall watchdog currently flags this node as making no
    /// progress (always `false` while the watchdog is disarmed).
    pub fn is_stalled(&self) -> bool {
        self.health.stalled.load(Ordering::Relaxed)
    }

    /// Registers this node's flight recorder for a crash dump: on panic
    /// (any thread) or an explicit [`ritas_metrics::flight::dump_registered`]
    /// call, the bounded event ring is written to
    /// `{dir}/flight-{tag}.bin` (parse with
    /// [`ritas_metrics::flight::parse`]).
    pub fn enable_flight_dump(&self, dir: impl Into<std::path::PathBuf>, tag: impl Into<String>) {
        ritas_metrics::flight::register_dump(dir, tag, self.metrics.clone());
    }

    /// The address of the live `/metrics` endpoint, if one is being
    /// served (see [`Node::serve_metrics`]).
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// The shared metrics registry this node's stack reports into. Live —
    /// counters keep moving while the stack runs.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Freezes the current metrics into a [`MetricsSnapshot`] (the
    /// observability dump: `snapshot.to_text()` / `snapshot.to_json()`).
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Number of processes in the group.
    pub fn group_size(&self) -> usize {
        self.group_size
    }

    /// Atomic broadcast session introspection: `(stats, current agreement
    /// round, messages pending ordering)`. `None` if the session has not
    /// been touched yet.
    ///
    /// # Errors
    ///
    /// [`NodeError::Disconnected`] if the stack thread has stopped.
    pub fn ab_debug(&self) -> Result<Option<(crate::ab::AbStats, u32, usize)>, NodeError> {
        let (reply, rx) = bounded(1);
        self.cmd_tx
            .send(Event::Cmd(Command::AbDebug { reply }))
            .map_err(|_| NodeError::Disconnected)?;
        rx.recv().map_err(|_| NodeError::Disconnected)
    }

    /// Verbose atomic broadcast snapshot (debugging stuck rounds).
    ///
    /// # Errors
    ///
    /// [`NodeError::Disconnected`] if the stack thread has stopped.
    pub fn ab_debug_verbose(&self) -> Result<Option<String>, NodeError> {
        let (reply, rx) = bounded(1);
        self.cmd_tx
            .send(Event::Cmd(Command::AbDebugVerbose { reply }))
            .map_err(|_| NodeError::Disconnected)?;
        rx.recv().map_err(|_| NodeError::Disconnected)
    }

    /// Drains the faults the stack has attributed to peers since the last
    /// call (equivocation, forged authenticators, malformed frames…).
    /// Purely observational — the protocols already ignored the offending
    /// input — but useful for monitoring and intrusion *detection* on top
    /// of intrusion tolerance.
    pub fn take_faults(&self) -> Vec<Fault> {
        self.fault_rx.try_iter().collect()
    }

    /// This process's identifier.
    pub fn id(&self) -> ProcessId {
        self.id
    }

    /// Reliably broadcasts `payload` (`ritas_rb_bcast`).
    ///
    /// # Errors
    ///
    /// [`NodeError::Disconnected`] if the stack thread has stopped.
    pub fn reliable_broadcast(&self, payload: Bytes) -> Result<(), NodeError> {
        self.cmd_tx
            .send(Event::Cmd(Command::RbBroadcast(payload)))
            .map_err(|_| NodeError::Disconnected)
    }

    /// Blocks until a reliable broadcast is delivered (`ritas_rb_recv`).
    ///
    /// # Errors
    ///
    /// [`NodeError::Disconnected`] if the stack thread has stopped.
    pub fn rb_recv(&self) -> Result<(ProcessId, Bytes), NodeError> {
        self.rb_rx.recv().map_err(|_| NodeError::Disconnected)
    }

    /// Like [`Node::rb_recv`] with a timeout.
    ///
    /// # Errors
    ///
    /// [`NodeError::Timeout`] when nothing arrived in time.
    pub fn rb_recv_timeout(&self, t: Duration) -> Result<(ProcessId, Bytes), NodeError> {
        map_timeout(self.rb_rx.recv_timeout(t))
    }

    /// Echo-broadcasts `payload` (`ritas_eb_bcast`).
    ///
    /// # Errors
    ///
    /// [`NodeError::Disconnected`] if the stack thread has stopped.
    pub fn echo_broadcast(&self, payload: Bytes) -> Result<(), NodeError> {
        self.cmd_tx
            .send(Event::Cmd(Command::EbBroadcast(payload)))
            .map_err(|_| NodeError::Disconnected)
    }

    /// Blocks until an echo broadcast is delivered (`ritas_eb_recv`).
    ///
    /// # Errors
    ///
    /// [`NodeError::Disconnected`] if the stack thread has stopped.
    pub fn eb_recv(&self) -> Result<(ProcessId, Bytes), NodeError> {
        self.eb_rx.recv().map_err(|_| NodeError::Disconnected)
    }

    /// Like [`Node::eb_recv`] with a timeout.
    ///
    /// # Errors
    ///
    /// [`NodeError::Timeout`] when nothing arrived in time.
    pub fn eb_recv_timeout(&self, t: Duration) -> Result<(ProcessId, Bytes), NodeError> {
        map_timeout(self.eb_rx.recv_timeout(t))
    }

    /// Atomically broadcasts `payload` (`ritas_ab_bcast`); returns the
    /// system-wide unique identifier `(sender, rbid)` assigned to the
    /// message, which deliveries can be correlated against.
    ///
    /// # Errors
    ///
    /// [`NodeError::Disconnected`] if the stack thread has stopped.
    pub fn atomic_broadcast(&self, payload: Bytes) -> Result<crate::ab::MsgId, NodeError> {
        let (reply, rx) = bounded(1);
        self.cmd_tx
            .send(Event::Cmd(Command::AbBroadcast(payload, reply)))
            .map_err(|_| NodeError::Disconnected)?;
        rx.recv().map_err(|_| NodeError::Disconnected)
    }

    /// Blocks until the next message in the total order (`ritas_ab_recv`).
    ///
    /// # Errors
    ///
    /// [`NodeError::Disconnected`] if the stack thread has stopped.
    pub fn atomic_recv(&self) -> Result<AbDelivery, NodeError> {
        self.ab_rx.recv().map_err(|_| NodeError::Disconnected)
    }

    /// Like [`Node::atomic_recv`] with a timeout.
    ///
    /// # Errors
    ///
    /// [`NodeError::Timeout`] when nothing arrived in time.
    pub fn atomic_recv_timeout(&self, t: Duration) -> Result<AbDelivery, NodeError> {
        map_timeout(self.ab_rx.recv_timeout(t))
    }

    /// Like [`Node::atomic_recv`] but never blocks: `Ok(None)` when no
    /// delivery is ready right now. Lets appliers drain a whole batch of
    /// ready deliveries in one pass.
    ///
    /// # Errors
    ///
    /// [`NodeError::Disconnected`] if the stack thread has stopped.
    pub fn atomic_try_recv(&self) -> Result<Option<AbDelivery>, NodeError> {
        match self.ab_rx.try_recv() {
            Ok(d) => Ok(Some(d)),
            Err(crossbeam_channel::TryRecvError::Empty) => Ok(None),
            Err(crossbeam_channel::TryRecvError::Disconnected) => Err(NodeError::Disconnected),
        }
    }

    // ------------------------------------------------------------------
    // Recovery / state transfer
    // ------------------------------------------------------------------

    /// Sends a point-to-point state-transfer payload to `to` (encoded
    /// [`crate::recovery::XferMessage`] bytes). Transfer traffic bypasses
    /// the agreement protocols entirely; integrity comes from Merkle
    /// proofs and f+1 cross-checks at the recovery layer.
    ///
    /// # Errors
    ///
    /// [`NodeError::Disconnected`] if the stack thread has stopped.
    pub fn send_xfer(&self, to: ProcessId, payload: Bytes) -> Result<(), NodeError> {
        self.cmd_tx
            .send(Event::Cmd(Command::SendXfer(to, payload)))
            .map_err(|_| NodeError::Disconnected)
    }

    /// Blocks until an inbound state-transfer payload arrives, up to `t`.
    ///
    /// # Errors
    ///
    /// [`NodeError::Timeout`] when nothing arrived in time.
    pub fn xfer_recv_timeout(&self, t: Duration) -> Result<(ProcessId, Bytes), NodeError> {
        map_timeout(self.xfer_rx.recv_timeout(t))
    }

    /// Resumes the (held) AB session at `cursor` and replays every parked
    /// frame; returns once the stack has switched over. Only meaningful on
    /// a node built by [`Node::rejoin`].
    ///
    /// # Errors
    ///
    /// [`NodeError::Disconnected`] if the stack thread has stopped.
    pub fn ab_resume(&self, cursor: AbCursor) -> Result<(), NodeError> {
        let (reply, rx) = bounded(1);
        self.cmd_tx
            .send(Event::Cmd(Command::AbResume(Box::new(cursor), reply)))
            .map_err(|_| NodeError::Disconnected)?;
        rx.recv().map_err(|_| NodeError::Disconnected)
    }

    /// This node's AB recovery hints (cursor-selection inputs served to
    /// rejoining peers alongside the snapshot manifest).
    ///
    /// # Errors
    ///
    /// [`NodeError::Disconnected`] if the stack thread has stopped.
    pub fn ab_hints(&self) -> Result<PeerHints, NodeError> {
        let (reply, rx) = bounded(1);
        self.cmd_tx
            .send(Event::Cmd(Command::AbHints(reply)))
            .map_err(|_| NodeError::Disconnected)?;
        rx.recv().map_err(|_| NodeError::Disconnected)
    }

    /// Batch ids the AB session has ordered but holds no payload for —
    /// after a rejoin these can only be satisfied out-of-band (see
    /// [`Node::ab_inject_batch`]).
    ///
    /// # Errors
    ///
    /// [`NodeError::Disconnected`] if the stack thread has stopped.
    pub fn ab_missing_payloads(&self) -> Result<Vec<MsgId>, NodeError> {
        let (reply, rx) = bounded(1);
        self.cmd_tx
            .send(Event::Cmd(Command::AbMissing(reply)))
            .map_err(|_| NodeError::Disconnected)?;
        rx.recv().map_err(|_| NodeError::Disconnected)
    }

    /// The retained raw payload of a recently delivered batch, if still
    /// cached (served to rejoining peers).
    ///
    /// # Errors
    ///
    /// [`NodeError::Disconnected`] if the stack thread has stopped.
    pub fn ab_retained_batch(&self, id: MsgId) -> Result<Option<Bytes>, NodeError> {
        let (reply, rx) = bounded(1);
        self.cmd_tx
            .send(Event::Cmd(Command::AbRetained(id, reply)))
            .map_err(|_| NodeError::Disconnected)?;
        rx.recv().map_err(|_| NodeError::Disconnected)
    }

    /// Feeds an out-of-band-fetched batch payload into the AB session
    /// (the caller must have verified it against f+1 identical copies).
    ///
    /// # Errors
    ///
    /// [`NodeError::Disconnected`] if the stack thread has stopped.
    pub fn ab_inject_batch(&self, id: MsgId, raw: Bytes) -> Result<(), NodeError> {
        self.cmd_tx
            .send(Event::Cmd(Command::AbInject(id, raw)))
            .map_err(|_| NodeError::Disconnected)
    }

    /// Proposes a bit on binary consensus instance `tag` and blocks until
    /// the decision (`ritas_bc`). All processes must use the same `tag`
    /// for the same logical instance.
    ///
    /// # Errors
    ///
    /// [`NodeError::Protocol`] on duplicate tags,
    /// [`NodeError::Disconnected`] if the stack thread stopped.
    pub fn binary_consensus(&self, tag: u64, value: bool) -> Result<bool, NodeError> {
        let (reply, rx) = bounded(1);
        self.cmd_tx
            .send(Event::Cmd(Command::BcPropose { tag, value, reply }))
            .map_err(|_| NodeError::Disconnected)?;
        rx.recv()
            .map_err(|_| NodeError::Disconnected)?
            .map_err(NodeError::Protocol)
    }

    /// Proposes a value on multi-valued consensus `tag`; blocks until the
    /// decision (`ritas_mvc`). `None` is the default value ⊥.
    ///
    /// # Errors
    ///
    /// As [`Node::binary_consensus`].
    pub fn multi_valued_consensus(&self, tag: u64, value: Bytes) -> Result<MvcValue, NodeError> {
        let (reply, rx) = bounded(1);
        self.cmd_tx
            .send(Event::Cmd(Command::MvcPropose { tag, value, reply }))
            .map_err(|_| NodeError::Disconnected)?;
        rx.recv()
            .map_err(|_| NodeError::Disconnected)?
            .map_err(NodeError::Protocol)
    }

    /// Proposes a value on vector consensus `tag`; blocks until the
    /// decided vector (`ritas_vc`).
    ///
    /// # Errors
    ///
    /// As [`Node::binary_consensus`].
    pub fn vector_consensus(&self, tag: u64, value: Bytes) -> Result<DecisionVector, NodeError> {
        let (reply, rx) = bounded(1);
        self.cmd_tx
            .send(Event::Cmd(Command::VcPropose { tag, value, reply }))
            .map_err(|_| NodeError::Disconnected)?;
        rx.recv()
            .map_err(|_| NodeError::Disconnected)?
            .map_err(NodeError::Protocol)
    }

    /// Stops the stack thread (`ritas_destroy`). Idempotent.
    pub fn shutdown(&self) {
        let _ = self.cmd_tx.send(Event::Cmd(Command::Shutdown));
        self.stop.store(true, Ordering::Relaxed);
    }
}

impl Drop for Node {
    fn drop(&mut self) {
        self.shutdown();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Everything the observability endpoint thread needs to answer a scrape
/// without touching the protocol thread.
struct ServeCtx {
    metrics: Metrics,
    health: Arc<HealthShared>,
    epoch: Instant,
    id: ProcessId,
}

/// Answers one scrape: reads the request until the header terminator,
/// routes on the path — `/health` (liveness JSON), `/state` (worker
/// introspection JSON) — and serves the Prometheus metrics page for
/// every other path (existing scrapers keep working unchanged).
fn serve_metrics_request(mut conn: std::net::TcpStream, ctx: &ServeCtx) -> std::io::Result<()> {
    conn.set_nonblocking(false)?;
    conn.set_read_timeout(Some(Duration::from_millis(500)))?;
    conn.set_write_timeout(Some(Duration::from_secs(2)))?;
    let mut req = Vec::new();
    let mut buf = [0u8; 1024];
    loop {
        match conn.read(&mut buf) {
            Ok(0) => break,
            Ok(k) => {
                req.extend_from_slice(&buf[..k]);
                if req.windows(4).any(|w| w == b"\r\n\r\n") || req.len() > 8192 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let path = request_path(&req);
    let (body, content_type) = match path.as_deref() {
        Some("/health") => (health_json(ctx), "application/json"),
        Some("/state") => (state_json_response(ctx), "application/json"),
        _ => (
            ctx.metrics.snapshot().to_prometheus(),
            "text/plain; version=0.0.4; charset=utf-8",
        ),
    };
    let resp = format!(
        "HTTP/1.1 200 OK\r\n\
         Content-Type: {content_type}\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n\r\n{body}",
        body.len()
    );
    conn.write_all(resp.as_bytes())
}

/// The path component of the request line (`GET /health HTTP/1.1`).
fn request_path(req: &[u8]) -> Option<String> {
    let line = req.split(|&b| b == b'\r' || b == b'\n').next()?;
    let line = core::str::from_utf8(line).ok()?;
    let mut parts = line.split_whitespace();
    let _method = parts.next()?;
    let target = parts.next()?;
    // Ignore any query string.
    Some(target.split('?').next().unwrap_or(target).to_string())
}

/// The `/health` document: built exclusively from atomics and live
/// gauges, so it stays accurate (and responsive) while the protocol
/// thread is stuck — the heartbeat age going flat is itself the signal.
fn health_json(ctx: &ServeCtx) -> String {
    let now = ctx.epoch.elapsed().as_nanos() as u64;
    let h = &ctx.health;
    let heartbeat = h.heartbeat_ns.load(Ordering::Relaxed);
    let since = h.pending_since_ns.load(Ordering::Relaxed);
    let progress = h.progress_ns.load(Ordering::Relaxed);
    let m = &ctx.metrics;
    let mut suspicions = String::from("[");
    for (i, s) in m.suspicions().iter().enumerate() {
        if i > 0 {
            suspicions.push(',');
        }
        suspicions.push_str(&format!("{{\"peer\":{},\"total\":{}}}", s.peer, s.total()));
    }
    suspicions.push(']');
    // Proactive-recovery scheduler state, from the same lock-free gauges
    // the RSM layer refreshes on every applied rotation command
    // (`active_victim` is -1 while no wipe slot is open).
    let rotation = format!(
        "{{\"epoch\":{},\"active_victim\":{},\"next_victim\":{},\
         \"scheduled_total\":{},\"rounds_total\":{},\"deferrals_total\":{},\
         \"transport_epochs_adopted\":{},\"transport_epoch_rejected\":{}}}",
        m.rotation_epoch.get(),
        m.rotation_active_victim.get() as i64 - 1,
        m.rotation_next_victim.get(),
        m.rotation_scheduled_total.get(),
        m.rotation_rounds_total.get(),
        m.rotation_deferrals_total.get(),
        m.transport_epoch_adopted.get(),
        m.transport_epoch_rejected.get(),
    );
    format!(
        "{{\"id\":{},\"stalled\":{},\"budget_ns\":{},\
         \"heartbeat_age_ns\":{},\"pending\":{},\"pending_age_ns\":{},\
         \"progress_age_ns\":{},\"ab_queue_depth\":{},\"ab_in_flight\":{},\
         \"rsm_applied_watermark\":{},\"sessions_live\":{},\
         \"recovery_phase\":{},\
         \"stalls_total\":{},\
         \"rotation\":{rotation},\
         \"suspicions_total\":{},\"suspicions\":{}}}",
        ctx.id,
        h.stalled.load(Ordering::Relaxed),
        h.budget_ns.load(Ordering::Relaxed),
        now.saturating_sub(heartbeat),
        since != 0,
        if since == 0 {
            0
        } else {
            now.saturating_sub(since)
        },
        if progress == 0 {
            now
        } else {
            now.saturating_sub(progress)
        },
        m.ab_queue_depth.get(),
        m.ab_sent_pending.get(),
        m.rsm_applied_watermark.get(),
        m.service_sessions_live.get(),
        m.recovery_phase.get(),
        m.node_stalls_total.get(),
        m.suspicions_total.get(),
        suspicions,
    )
}

/// The `/state` document: the worker's last introspection snapshot plus
/// how stale it is.
fn state_json_response(ctx: &ServeCtx) -> String {
    let now = ctx.epoch.elapsed().as_nanos() as u64;
    let heartbeat = ctx.health.heartbeat_ns.load(Ordering::Relaxed);
    let worker = ctx.health.state_json.lock().clone();
    format!(
        "{{\"id\":{},\"heartbeat_age_ns\":{},\"worker\":{worker}}}",
        ctx.id,
        now.saturating_sub(heartbeat)
    )
}

/// Bound on locally tracked a-broadcast send times ([`Worker::ab_sent`]):
/// entries are normally removed at a-delivery, but a stuck or partitioned
/// session must not grow the map without limit, so the oldest entry is
/// evicted (losing one latency sample) when a new send would exceed this.
const AB_SENT_CAPACITY: usize = 4096;

fn map_timeout<T>(r: Result<T, RecvTimeoutError>) -> Result<T, NodeError> {
    r.map_err(|e| match e {
        RecvTimeoutError::Timeout => NodeError::Timeout,
        RecvTimeoutError::Disconnected => NodeError::Disconnected,
    })
}

/// The state owned by the stack thread.
struct Worker<T: Transport> {
    stack: Stack,
    transport: Arc<T>,
    replies: HashMap<InstanceKey, PendingReply>,
    /// Local a-broadcast times, for the a-deliver latency histogram.
    /// Bounded by [`AB_SENT_CAPACITY`]; ordered by id, so the first entry
    /// is the oldest local send (rbids are sequential).
    ab_sent: BTreeMap<crate::ab::MsgId, Instant>,
    metrics: Metrics,
    health: Arc<HealthShared>,
    rb_tx: Sender<(ProcessId, Bytes)>,
    eb_tx: Sender<(ProcessId, Bytes)>,
    ab_tx: Sender<AbDelivery>,
    xfer_tx: Sender<(ProcessId, Bytes)>,
    fault_tx: Sender<Fault>,
}

impl<T: Transport> Worker<T> {
    fn on_command(&mut self, cmd: Command) {
        match cmd {
            Command::RbBroadcast(payload) => {
                let (_, step) = self.stack.rb_broadcast(payload);
                self.dispatch(step);
            }
            Command::EbBroadcast(payload) => {
                let (_, step) = self.stack.eb_broadcast(payload);
                self.dispatch(step);
            }
            Command::AbBroadcast(payload, reply) => {
                let (id, step) = self.stack.ab_broadcast(0, payload);
                if self.ab_sent.len() >= AB_SENT_CAPACITY {
                    self.ab_sent.pop_first();
                }
                self.ab_sent.insert(id, Instant::now());
                self.metrics.ab_sent_pending.set(self.ab_sent.len() as u64);
                let _ = reply.send(id);
                self.dispatch(step);
            }
            Command::BcPropose { tag, value, reply } => {
                let key = InstanceKey::Bc { tag };
                match self.stack.bc_propose(tag, value) {
                    Ok(step) => {
                        self.replies.insert(key, PendingReply::Bc(reply));
                        self.dispatch(step);
                    }
                    Err(e) => {
                        let _ = reply.send(Err(e));
                    }
                }
            }
            Command::MvcPropose { tag, value, reply } => {
                let key = InstanceKey::Mvc { tag };
                match self.stack.mvc_propose(tag, value) {
                    Ok(step) => {
                        self.replies.insert(key, PendingReply::Mvc(reply));
                        self.dispatch(step);
                    }
                    Err(e) => {
                        let _ = reply.send(Err(e));
                    }
                }
            }
            Command::VcPropose { tag, value, reply } => {
                let key = InstanceKey::Vc { tag };
                match self.stack.vc_propose(tag, value) {
                    Ok(step) => {
                        self.replies.insert(key, PendingReply::Vc(reply));
                        self.dispatch(step);
                    }
                    Err(e) => {
                        let _ = reply.send(Err(e));
                    }
                }
            }
            Command::AbDebug { reply } => {
                let _ = reply.send(self.stack.ab_debug(0));
            }
            Command::AbDebugVerbose { reply } => {
                let _ = reply.send(self.stack.ab_debug_verbose(0));
            }
            Command::SendXfer(to, payload) => {
                let frame = crate::stack::encode_xfer(&payload);
                self.metrics.transport_frames_sent.inc();
                self.metrics.transport_bytes_sent.add(frame.len() as u64);
                let _ = self.transport.send(to, frame);
            }
            Command::AbResume(cursor, reply) => {
                let step = self.stack.ab_resume(0, &cursor);
                self.dispatch(step);
                let _ = reply.send(());
            }
            Command::AbHints(reply) => {
                let _ = reply.send(self.stack.ab_hints(0));
            }
            Command::AbMissing(reply) => {
                let _ = reply.send(self.stack.ab_missing_payloads(0));
            }
            Command::AbRetained(id, reply) => {
                let _ = reply.send(self.stack.ab_retained_batch(0, &id));
            }
            Command::AbInject(id, raw) => {
                let step = self.stack.ab_inject_batch(0, id, raw);
                self.dispatch(step);
            }
            Command::Shutdown => unreachable!("handled by the event loop"),
        }
    }

    fn on_frame(&mut self, from: ProcessId, frame: Bytes) {
        let step = self.stack.handle_frame(from, frame);
        self.dispatch(step);
    }

    /// Builds the `/state` introspection document. Runs on the protocol
    /// thread (throttled), so it may touch the stack freely; the endpoint
    /// thread only ever reads the cached result.
    fn state_json(&self, now_ns: u64) -> String {
        let m = &self.metrics;
        let mut links = String::from("[");
        for p in 0..self.transport.group_size() {
            if p > 0 {
                links.push(',');
            }
            let s = match self.transport.link_state(p) {
                LinkState::Up => "up",
                LinkState::Reconnecting => "reconnecting",
                LinkState::Down(_) => "down",
            };
            links.push_str(&format!("{{\"peer\":{p},\"state\":\"{s}\"}}"));
        }
        links.push(']');
        let ab = match self.stack.ab_debug(0) {
            Some((stats, round, pending)) => format!(
                "{{\"round\":{round},\"pending_msgs\":{pending},\
                 \"broadcast\":{},\"delivered\":{},\"agreements\":{},\
                 \"bottom_agreements\":{},\"batches\":{},\"bc_rounds_max\":{},\
                 \"queue_depth\":{},\"in_flight\":{},\"window_in_flight\":{}}}",
                stats.broadcast,
                stats.delivered,
                stats.agreements,
                stats.bottom_agreements,
                stats.batches,
                stats.bc_rounds_max,
                m.ab_queue_depth.get(),
                self.ab_sent.len(),
                m.ab_sent_pending.get(),
            ),
            None => String::from("null"),
        };
        // Scheduler introspection mirrors `/health`'s rotation block so a
        // single `/state` scrape shows where the rotation cursor stands
        // relative to the protocol's progress watermarks.
        let rotation = format!(
            "{{\"epoch\":{},\"active_victim\":{},\"next_victim\":{},\
             \"scheduled_total\":{},\"rounds_total\":{},\"deferrals_total\":{}}}",
            m.rotation_epoch.get(),
            m.rotation_active_victim.get() as i64 - 1,
            m.rotation_next_victim.get(),
            m.rotation_scheduled_total.get(),
            m.rotation_rounds_total.get(),
            m.rotation_deferrals_total.get(),
        );
        format!(
            "{{\"time_ns\":{now_ns},\"ab\":{ab},\"instances\":{},\
             \"ooc_buffered\":{},\"rsm_applied_watermark\":{},\
             \"faults_detected\":{},\"rotation\":{rotation},\"links\":{links}}}",
            m.stack_instances.get(),
            m.stack_ooc_buffered.get(),
            m.rsm_applied_watermark.get(),
            m.faults_detected.get(),
        )
    }

    fn dispatch(&mut self, step: StackStep) {
        for fault in step.faults {
            let _ = self.fault_tx.send(fault);
        }
        for out in step.messages {
            let result = match out.target {
                Target::All => {
                    let n = self.transport.group_size() as u64;
                    self.metrics.transport_frames_sent.add(n);
                    self.metrics
                        .transport_bytes_sent
                        .add(n * out.message.len() as u64);
                    self.metrics.flight_record(
                        ritas_metrics::FlightKind::FrameOut,
                        u32::MAX, // broadcast
                        ritas_metrics::flight::digest(&out.message),
                        out.message.len() as u64,
                    );
                    self.transport.send_all(out.message)
                }
                Target::One(to) => {
                    self.metrics.transport_frames_sent.inc();
                    self.metrics
                        .transport_bytes_sent
                        .add(out.message.len() as u64);
                    self.metrics.flight_record(
                        ritas_metrics::FlightKind::FrameOut,
                        to as u32,
                        ritas_metrics::flight::digest(&out.message),
                        out.message.len() as u64,
                    );
                    self.transport.send(to, out.message)
                }
            };
            // A send failure means the transport is gone; the loop will
            // notice via the reader thread. Nothing sensible to do here.
            let _ = result;
        }
        for output in step.outputs {
            match output {
                Output::RbDelivered {
                    sender, payload, ..
                } => {
                    let _ = self.rb_tx.send((sender, payload));
                }
                Output::EbDelivered {
                    sender, payload, ..
                } => {
                    let _ = self.eb_tx.send((sender, payload));
                }
                Output::AbDelivered { delivery, .. } => {
                    if let Some(sent) = self.ab_sent.remove(&delivery.id) {
                        self.metrics
                            .ab_latency_ns
                            .record(sent.elapsed().as_nanos() as u64);
                        self.metrics.ab_sent_pending.set(self.ab_sent.len() as u64);
                    }
                    self.metrics.flight_record(
                        ritas_metrics::FlightKind::Deliver,
                        delivery.id.sender as u32,
                        delivery.id.rbid,
                        0,
                    );
                    // Any a-delivery is progress from the watchdog's view:
                    // the total order advanced.
                    self.health
                        .progress_ns
                        .store(self.metrics.time().max(1), Ordering::Relaxed);
                    let _ = self.ab_tx.send(delivery);
                }
                Output::BcDecided { key, decision } => {
                    if let Some(PendingReply::Bc(tx)) = self.replies.remove(&key) {
                        let _ = tx.send(Ok(decision));
                    }
                }
                Output::MvcDecided { key, decision } => {
                    if let Some(PendingReply::Mvc(tx)) = self.replies.remove(&key) {
                        let _ = tx.send(Ok(decision));
                    }
                }
                Output::VcDecided { key, vector } => {
                    if let Some(PendingReply::Vc(tx)) = self.replies.remove(&key) {
                        let _ = tx.send(Ok(vector));
                    }
                }
                Output::Xfer { from, payload } => {
                    let _ = self.xfer_tx.send((from, payload));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_cluster(config: SessionConfig, body: impl Fn(Node) + Send + Sync + Clone + 'static) {
        let nodes = Node::cluster(config).unwrap();
        let mut handles = Vec::new();
        for node in nodes {
            let body = body.clone();
            handles.push(std::thread::spawn(move || body(node)));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn reliable_broadcast_end_to_end() {
        run_cluster(SessionConfig::new(4).unwrap(), |node| {
            if node.id() == 0 {
                node.reliable_broadcast(Bytes::from_static(b"rb")).unwrap();
            }
            let (sender, payload) = node.rb_recv().unwrap();
            assert_eq!(sender, 0);
            assert_eq!(payload.as_ref(), b"rb");
            node.shutdown();
        });
    }

    #[test]
    fn echo_broadcast_end_to_end() {
        run_cluster(SessionConfig::new(4).unwrap(), |node| {
            if node.id() == 1 {
                node.echo_broadcast(Bytes::from_static(b"eb")).unwrap();
            }
            let (sender, payload) = node.eb_recv().unwrap();
            assert_eq!((sender, payload.as_ref()), (1, &b"eb"[..]));
            node.shutdown();
        });
    }

    #[test]
    fn binary_consensus_end_to_end() {
        run_cluster(SessionConfig::new(4).unwrap(), |node| {
            let d = node.binary_consensus(7, true).unwrap();
            assert!(d);
            node.shutdown();
        });
    }

    #[test]
    fn multi_valued_consensus_end_to_end() {
        run_cluster(SessionConfig::new(4).unwrap(), |node| {
            let d = node
                .multi_valued_consensus(3, Bytes::from_static(b"value"))
                .unwrap();
            assert_eq!(d.as_deref(), Some(&b"value"[..]));
            node.shutdown();
        });
    }

    #[test]
    fn vector_consensus_end_to_end() {
        run_cluster(SessionConfig::new(4).unwrap(), |node| {
            let me = node.id();
            let v = node
                .vector_consensus(1, Bytes::copy_from_slice(format!("p{me}").as_bytes()))
                .unwrap();
            assert_eq!(v.len(), 4);
            assert!(v.iter().flatten().count() >= 2);
            node.shutdown();
        });
    }

    #[test]
    fn atomic_broadcast_end_to_end() {
        run_cluster(SessionConfig::new(4).unwrap(), |node| {
            node.atomic_broadcast(Bytes::copy_from_slice(format!("m{}", node.id()).as_bytes()))
                .unwrap();
            let mut got = Vec::new();
            for _ in 0..4 {
                got.push(node.atomic_recv().unwrap());
            }
            assert_eq!(got.len(), 4);
            node.shutdown();
        });
    }

    #[test]
    fn without_authentication_works_too() {
        run_cluster(
            SessionConfig::new(4).unwrap().without_authentication(),
            |node| {
                let d = node.binary_consensus(1, false).unwrap();
                assert!(!d);
                node.shutdown();
            },
        );
    }

    #[test]
    fn duplicate_tag_rejected() {
        let nodes = Node::cluster(SessionConfig::new(4).unwrap()).unwrap();
        let handles: Vec<_> = nodes
            .into_iter()
            .map(|node| {
                std::thread::spawn(move || {
                    let _ = node.binary_consensus(9, true).unwrap();
                    if node.id() == 0 {
                        let err = node.binary_consensus(9, true).unwrap_err();
                        assert_eq!(err, NodeError::Protocol(ProtocolError::AlreadyStarted));
                    }
                    node.shutdown();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn faults_are_observable() {
        use ritas_transport::Hub;
        let group = Group::new(4).unwrap();
        let table = KeyTable::dealer(4, 9);
        let mut hub = Hub::new(4);
        let mut eps = hub.take_endpoints().into_iter();
        let ep0 = eps.next().unwrap();
        let ep1 = eps.next().unwrap();
        let stack = Stack::new(group, 0, table.view_of(0), 1);
        let node = Node::spawn(ep0, stack);
        // A peer sends garbage that cannot decode as any protocol frame.
        ep1.send(0, Bytes::from_static(&[0xde, 0xad, 0xbe, 0xef]))
            .unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let faults = loop {
            let f = node.take_faults();
            if !f.is_empty() || std::time::Instant::now() > deadline {
                break f;
            }
            std::thread::sleep(Duration::from_millis(10));
        };
        assert!(!faults.is_empty(), "garbage frame went unobserved");
        assert_eq!(faults[0].from, 1);
        node.shutdown();
    }

    #[test]
    fn recv_timeout_expires() {
        let nodes = Node::cluster(SessionConfig::new(4).unwrap()).unwrap();
        assert_eq!(
            nodes[0]
                .rb_recv_timeout(Duration::from_millis(20))
                .unwrap_err(),
            NodeError::Timeout
        );
        for n in &nodes {
            n.shutdown();
        }
    }

    fn http_get(addr: SocketAddr, path: &str) -> String {
        let mut conn = std::net::TcpStream::connect(addr).unwrap();
        conn.write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
            .unwrap();
        let mut resp = String::new();
        conn.read_to_string(&mut resp).unwrap();
        resp
    }

    #[test]
    fn observability_endpoints_serve_health_state_and_metrics() {
        let nodes = Node::cluster(SessionConfig::new(4).unwrap().with_metrics_endpoint()).unwrap();
        nodes[0]
            .atomic_broadcast(Bytes::from_static(b"probe"))
            .unwrap();
        for n in &nodes {
            n.atomic_recv_timeout(Duration::from_secs(10)).unwrap();
        }
        // The worker refreshes /state at most every 200ms and only while
        // its loop turns: wait out the throttle, then turn the loop again.
        std::thread::sleep(Duration::from_millis(300));
        nodes[0]
            .atomic_broadcast(Bytes::from_static(b"probe2"))
            .unwrap();
        for n in &nodes {
            n.atomic_recv_timeout(Duration::from_secs(10)).unwrap();
        }
        let addr = nodes[1].metrics_addr().unwrap();
        let health = http_get(addr, "/health");
        assert!(health.contains("application/json"), "{health}");
        assert!(health.contains("\"id\":1"), "{health}");
        assert!(health.contains("\"stalled\":false"), "{health}");
        assert!(health.contains("\"suspicions\":[]"), "{health}");
        let state = http_get(addr, "/state");
        assert!(
            state.contains("\"worker\":{"),
            "worker snapshot missing: {state}"
        );
        assert!(state.contains("\"ab\":{"), "{state}");
        assert!(state.contains("\"links\":["), "{state}");
        // Unknown paths (and /metrics) still serve the Prometheus page.
        let prom = http_get(addr, "/metrics");
        assert!(prom.contains("# TYPE ritas_transport_frames_sent counter"));
        let fallback = http_get(addr, "/");
        assert!(fallback.contains("# TYPE"));
        for n in &nodes {
            n.shutdown();
        }
    }

    #[test]
    fn watchdog_flags_stalled_replica() {
        let config = SessionConfig::new(4)
            .unwrap()
            .with_metrics_endpoint()
            .with_stall_budget(Duration::from_millis(200));
        let mut nodes = Node::cluster(config).unwrap();
        // Fail two replicas: with n = 4 (f = 1) the survivors are below
        // every quorum, so the broadcast below can never a-deliver.
        drop(nodes.pop());
        drop(nodes.pop());
        let survivor = &nodes[0];
        survivor
            .atomic_broadcast(Bytes::from_static(b"stuck"))
            .unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        while !survivor.is_stalled() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(20));
        }
        assert!(survivor.is_stalled(), "watchdog never tripped");
        assert!(survivor.metrics().node_stalls_total.get() >= 1);
        let health = http_get(survivor.metrics_addr().unwrap(), "/health");
        assert!(health.contains("\"stalled\":true"), "{health}");
        assert!(health.contains("\"pending\":true"), "{health}");
        let snap = survivor.metrics_snapshot();
        assert!(
            snap.trace.iter().any(|e| e.kind == "stall"),
            "no stall trace event"
        );
        assert!(
            survivor
                .metrics()
                .flight()
                .events()
                .iter()
                .any(|e| e.kind == ritas_metrics::FlightKind::Stall),
            "no stall flight event"
        );
        for n in &nodes {
            n.shutdown();
        }
    }

    #[test]
    fn flight_dump_is_parseable() {
        let dir = std::env::temp_dir().join(format!(
            "ritas-flight-test-{}-{}",
            std::process::id(),
            std::thread::current().name().unwrap_or("t").len()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let nodes = Node::cluster(SessionConfig::new(4).unwrap()).unwrap();
        nodes[2].enable_flight_dump(&dir, "node2");
        nodes[0]
            .atomic_broadcast(Bytes::from_static(b"record me"))
            .unwrap();
        for n in &nodes {
            n.atomic_recv_timeout(Duration::from_secs(10)).unwrap();
        }
        let written = ritas_metrics::flight::dump_registered();
        let path = dir.join("flight-node2.bin");
        assert!(written.contains(&path), "{written:?}");
        let events = ritas_metrics::flight::parse(&std::fs::read(&path).unwrap()).unwrap();
        assert!(
            events
                .iter()
                .any(|e| e.kind == ritas_metrics::FlightKind::FrameIn),
            "no inbound frames recorded"
        );
        assert!(
            events
                .iter()
                .any(|e| e.kind == ritas_metrics::FlightKind::Deliver),
            "no delivery recorded"
        );
        let _ = std::fs::remove_dir_all(&dir);
        for n in &nodes {
            n.shutdown();
        }
    }

    #[test]
    fn cluster_span_dumps_correlate_quorum_arrivals() {
        use ritas_metrics::cluster::{estimate_skews, laggard_counts, quorum_rows, ReplicaTrace};
        let nodes = Node::cluster(SessionConfig::new(4).unwrap()).unwrap();
        for n in &nodes {
            n.atomic_broadcast(Bytes::copy_from_slice(format!("c{}", n.id()).as_bytes()))
                .unwrap();
        }
        for n in &nodes {
            for _ in 0..4 {
                n.atomic_recv_timeout(Duration::from_secs(10)).unwrap();
            }
        }
        let traces: Vec<ReplicaTrace> = nodes
            .iter()
            .map(|n| ReplicaTrace {
                replica: n.id() as u32,
                spans: n.metrics().spans(),
            })
            .collect();
        let skews = estimate_skews(&traces);
        assert_eq!(skews.len(), 4);
        let rows = quorum_rows(&traces, &skews);
        assert!(!rows.is_empty(), "no quorum arrivals attributed");
        // Every attributed closer must be a real group member.
        assert!(rows.iter().all(|r| r.completed_by < 4), "{rows:?}");
        let laggards = laggard_counts(&rows);
        assert!(laggards.values().sum::<u64>() as usize == rows.len());
        for n in &nodes {
            n.shutdown();
        }
    }
}
