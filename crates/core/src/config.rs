//! Group configuration and the quorum arithmetic of the paper.
//!
//! Every protocol in the stack is parameterized by the group size `n` and
//! tolerates up to `f = ⌊(n-1)/3⌋` Byzantine processes — the optimal
//! resilience bound (§2). The various thresholds that appear throughout
//! the protocol descriptions (`n-f`, `f+1`, `2f+1`, `n-2f`,
//! `⌊(n+f)/2⌋+1`) are centralized here so each protocol reads like its
//! specification.

use crate::ProcessId;

/// Static description of the process group `P = {p_0 … p_{n-1}}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Group {
    n: usize,
    f: usize,
}

impl Group {
    /// Creates a group of `n` processes with optimal resilience
    /// `f = ⌊(n-1)/3⌋`.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::GroupTooSmall`] for `n < 4`, the smallest
    /// group that tolerates one Byzantine process (`n ≥ 3f + 1` with
    /// `f ≥ 1`).
    pub fn new(n: usize) -> Result<Self, ConfigError> {
        if n < 4 {
            return Err(ConfigError::GroupTooSmall { n });
        }
        Ok(Group { n, f: (n - 1) / 3 })
    }

    /// Creates a group with an explicit fault threshold.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::ResilienceViolated`] unless `n ≥ 3f + 1` and
    /// `f ≥ 1`.
    pub fn with_threshold(n: usize, f: usize) -> Result<Self, ConfigError> {
        if f == 0 || n < 3 * f + 1 {
            return Err(ConfigError::ResilienceViolated { n, f });
        }
        Ok(Group { n, f })
    }

    /// Number of processes `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Maximum number of corrupt processes `f = ⌊(n-1)/3⌋`.
    pub fn f(&self) -> usize {
        self.f
    }

    /// `n - f`: the number of messages a process can safely wait for
    /// without risking blocking on corrupt processes.
    pub fn quorum(&self) -> usize {
        self.n - self.f
    }

    /// `f + 1`: at least one correct process among any such set.
    pub fn one_correct(&self) -> usize {
        self.f + 1
    }

    /// `2f + 1`: a majority of the correct processes; two such sets always
    /// intersect in a correct process. Reliable broadcast delivers on this
    /// many `READY`s, binary consensus decides on this many equal values.
    pub fn byzantine_majority(&self) -> usize {
        2 * self.f + 1
    }

    /// `n - 2f`: the number of *correct*-process messages guaranteed
    /// inside any quorum of `n - f`. Multi-valued consensus requires this
    /// many equal values to justify a proposal.
    pub fn correct_in_quorum(&self) -> usize {
        self.n - 2 * self.f
    }

    /// `⌊(n+f)/2⌋ + 1`: the `ECHO` threshold of Bracha's reliable
    /// broadcast and the `MAT` acceptance quorum of the matrix echo
    /// broadcast — any two sets of this size intersect in a correct
    /// process, preventing two different `READY` values (RB) and two
    /// different delivered messages (EB).
    pub fn echo_threshold(&self) -> usize {
        (self.n + self.f) / 2 + 1
    }

    /// Whether `p` is a member of the group.
    pub fn contains(&self, p: ProcessId) -> bool {
        p < self.n
    }

    /// Iterator over all process ids.
    pub fn processes(&self) -> impl Iterator<Item = ProcessId> {
        0..self.n
    }
}

/// Errors creating a [`Group`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// Fewer than 4 processes cannot tolerate any Byzantine fault.
    GroupTooSmall {
        /// The rejected group size.
        n: usize,
    },
    /// The pair `(n, f)` violates `n ≥ 3f + 1` (or `f = 0`).
    ResilienceViolated {
        /// Group size.
        n: usize,
        /// Requested fault threshold.
        f: usize,
    },
}

impl core::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ConfigError::GroupTooSmall { n } => {
                write!(
                    f,
                    "group of {n} processes cannot tolerate a Byzantine fault (need n >= 4)"
                )
            }
            ConfigError::ResilienceViolated { n, f: t } => {
                write!(
                    f,
                    "resilience bound violated: n = {n}, f = {t} (need n >= 3f+1, f >= 1)"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimal_resilience_for_paper_testbed() {
        // The paper's testbed: n = 4, f = 1.
        let g = Group::new(4).unwrap();
        assert_eq!(g.n(), 4);
        assert_eq!(g.f(), 1);
        assert_eq!(g.quorum(), 3);
        assert_eq!(g.one_correct(), 2);
        assert_eq!(g.byzantine_majority(), 3);
        assert_eq!(g.correct_in_quorum(), 2);
        assert_eq!(g.echo_threshold(), 3);
    }

    #[test]
    fn thresholds_scale() {
        let g = Group::new(10).unwrap();
        assert_eq!(g.f(), 3);
        assert_eq!(g.quorum(), 7);
        assert_eq!(g.echo_threshold(), 7);
        assert_eq!(g.byzantine_majority(), 7);
        assert_eq!(g.correct_in_quorum(), 4);
    }

    #[test]
    fn rejects_tiny_groups() {
        for n in 0..4 {
            assert_eq!(Group::new(n).unwrap_err(), ConfigError::GroupTooSmall { n });
        }
    }

    #[test]
    fn explicit_threshold_validated() {
        assert!(Group::with_threshold(7, 2).is_ok());
        assert_eq!(
            Group::with_threshold(6, 2).unwrap_err(),
            ConfigError::ResilienceViolated { n: 6, f: 2 }
        );
        assert_eq!(
            Group::with_threshold(4, 0).unwrap_err(),
            ConfigError::ResilienceViolated { n: 4, f: 0 }
        );
    }

    #[test]
    fn quorum_intersection_properties() {
        // Sanity-check the quorum algebra for a range of group sizes: two
        // byzantine-majorities intersect in >= f+1 processes; two echo
        // quorums intersect in a correct process.
        for n in 4..40 {
            let g = Group::new(n).unwrap();
            let (n, f) = (g.n(), g.f());
            // Two echo quorums intersect in >= f+1 processes, hence in a
            // correct one: no two different READY payloads can both win.
            assert!(2 * g.echo_threshold() - n > f, "n={n}");
            // Two n-f quorums intersect in >= f+1 processes.
            assert!(2 * g.quorum() - n > f, "n={n}");
            // A process can always wait for a quorum without blocking, and
            // a quorum is enough to contain a byzantine majority.
            assert!(g.quorum() >= g.byzantine_majority());
            // Every quorum contains at least n-2f >= f+1 correct processes.
            assert!(g.correct_in_quorum() > f);
        }
    }

    #[test]
    fn contains_and_iter() {
        let g = Group::new(4).unwrap();
        assert!(g.contains(3));
        assert!(!g.contains(4));
        assert_eq!(g.processes().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn error_display() {
        assert!(!ConfigError::GroupTooSmall { n: 2 }.to_string().is_empty());
        assert!(!ConfigError::ResilienceViolated { n: 5, f: 2 }
            .to_string()
            .is_empty());
    }
}
