//! Snapshots, Merkle anti-entropy, and the state-transfer wire protocol
//! — the recovery machinery that lets a crashed-and-wiped replica rejoin
//! a running group (the intrusion-tolerance story of §1: a compromised
//! replica is recovered and re-admitted instead of being lost forever).
//!
//! The pieces, bottom-up:
//!
//! * [`Snapshot`] — the canonical encoding of a replica's replicated
//!   state at an apply-watermark boundary: the global applied sequence
//!   number, the per-sender FIFO watermark vector derived from the
//!   applied stream, and the application state bytes. Every correct
//!   replica snapshots at the *same* stream positions (every
//!   [`RecoveryConfig::snapshot_every`] applies), so the encodings — and
//!   therefore the digests — are byte-identical.
//! * [`MerkleTree`] — a binary hash tree over fixed-size chunks of the
//!   encoded snapshot. Its root is the snapshot *digest* a rejoiner
//!   accepts at `f+1` matching manifests; its inner nodes drive the
//!   anti-entropy descent ([`plan_fetch`]) that downloads only the
//!   chunks that differ from a stale local copy; its proofs
//!   ([`MerkleTree::proof`]) let every fetched chunk be verified against
//!   the agreed root, so a Byzantine chunk server is *detected* (and
//!   suspected), never believed.
//! * [`XferMessage`] — the pull-based transfer protocol: manifest query
//!   (with [`PeerHints`] describing the peer's atomic-broadcast
//!   position), Merkle-node query, chunk fetch, and the post-snapshot
//!   log fill that closes the gap between the snapshot and the live
//!   stream.
//! * [`select_cursor`] — Byzantine-bounded aggregation of `2f+1` peer
//!   hints into the [`AbCursor`](crate::ab::AbCursor) the rejoiner
//!   resumes its atomic-broadcast instance from.
//!
//! Everything here is pure (no I/O, no threads); the driver lives in
//! [`crate::rsm`].

pub mod scheduler;

use crate::ab::AbCursor;
use crate::codec::{Reader, WireError, WireMessage, Writer};
use bytes::Bytes;
use ritas_crypto::{Digest, Sha256};

/// A 32-byte SHA-256 node/root hash.
pub type Hash = [u8; 32];

/// Tuning for snapshotting and state transfer.
#[derive(Debug, Clone)]
pub struct RecoveryConfig {
    /// Take a snapshot every this many applied deliveries (a *stream
    /// position*, so every correct replica snapshots at the same
    /// boundaries and produces identical digests).
    pub snapshot_every: u64,
    /// Merkle chunk size in bytes over the encoded snapshot.
    pub chunk_size: usize,
    /// Maximum log entries per fill response.
    pub fill_batch: u32,
}

/// A [`RecoveryConfig`] field that cannot work (all three are divisors
/// or batch bounds — zero would loop or divide-by-zero deep inside the
/// transfer machinery, so it is rejected at construction instead).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryConfigError {
    /// `snapshot_every == 0`: there would never be a snapshot boundary.
    ZeroSnapshotEvery,
    /// `chunk_size == 0`: the snapshot could not be chunked.
    ZeroChunkSize,
    /// `fill_batch == 0`: fill responses could never make progress.
    ZeroFillBatch,
}

impl core::fmt::Display for RecoveryConfigError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RecoveryConfigError::ZeroSnapshotEvery => {
                write!(f, "recovery config: snapshot_every must be nonzero")
            }
            RecoveryConfigError::ZeroChunkSize => {
                write!(f, "recovery config: chunk_size must be nonzero")
            }
            RecoveryConfigError::ZeroFillBatch => {
                write!(f, "recovery config: fill_batch must be nonzero")
            }
        }
    }
}

impl std::error::Error for RecoveryConfigError {}

impl RecoveryConfig {
    /// Checks every field for values the transfer machinery cannot
    /// operate with. Called by the `Replica` recovery constructors, so a
    /// bad config is a clean `Err` at build time, not a panic mid-rejoin.
    pub fn validate(&self) -> Result<(), RecoveryConfigError> {
        if self.snapshot_every == 0 {
            return Err(RecoveryConfigError::ZeroSnapshotEvery);
        }
        if self.chunk_size == 0 {
            return Err(RecoveryConfigError::ZeroChunkSize);
        }
        if self.fill_batch == 0 {
            return Err(RecoveryConfigError::ZeroFillBatch);
        }
        Ok(())
    }
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            snapshot_every: 256,
            chunk_size: 1024,
            fill_batch: 256,
        }
    }
}

/// Flight-recorder milestone codes for `FlightKind::Recovery` events.
pub mod milestones {
    /// A snapshot was taken (`b` = its applied sequence number).
    pub const SNAPSHOT: u64 = 0;
    /// A rejoiner entered the `Syncing` phase.
    pub const SYNCING: u64 = 1;
    /// A rejoiner installed a snapshot and entered `CatchingUp`.
    pub const CATCHING_UP: u64 = 2;
    /// A rejoiner aligned with the live stream and went `Live`.
    pub const LIVE: u64 = 3;
    /// A transfer was aborted (shutdown mid-recovery).
    pub const ABORTED: u64 = 4;
    /// A rotation slot was scheduled through the replicated log
    /// (`b` = packed `victim << 32 | epoch` — see the scheduler).
    pub const WIPE_SCHEDULED: u64 = 5;
    /// A rotation slot completed: the victim is Live under the new epoch.
    pub const WIPE_COMPLETED: u64 = 6;
    /// A rotation slot was deferred (degraded group or stuck slot).
    pub const WIPE_DEFERRED: u64 = 7;
}

// ---------------------------------------------------------------------------
// Merkle tree
// ---------------------------------------------------------------------------

/// Domain separators: leaves and inner nodes hash differently so a
/// crafted chunk can never masquerade as an inner node (second-preimage
/// hardening, RFC 6962 style).
const LEAF_TAG: u8 = 0x00;
const NODE_TAG: u8 = 0x01;

/// Hash of a data chunk as a tree leaf.
pub fn leaf_hash(chunk: &[u8]) -> Hash {
    Sha256::digest_concat(&[&[LEAF_TAG], chunk])
}

/// Hash of an inner node from its two children.
pub fn node_hash(left: &Hash, right: &Hash) -> Hash {
    Sha256::digest_concat(&[&[NODE_TAG], left, right])
}

/// The all-zero hash used to pad the leaf layer to a power of two.
/// (A SHA-256 output is never all zeros in practice, and padding nodes
/// are beyond the manifest's chunk count anyway.)
pub const PADDING_HASH: Hash = [0u8; 32];

/// A binary Merkle tree over fixed-size chunks of a byte string.
///
/// `levels[0]` is the (padded) leaf layer; the last level holds the
/// single root. A one-chunk tree is just its leaf: `root == leaf_hash`.
#[derive(Debug, Clone)]
pub struct MerkleTree {
    chunks: u32,
    levels: Vec<Vec<Hash>>,
}

impl MerkleTree {
    /// Builds the tree over `data` split into `chunk_size`-byte chunks
    /// (the final chunk may be short; empty data is one empty chunk).
    pub fn build(data: &[u8], chunk_size: usize) -> Self {
        let chunk_size = chunk_size.max(1);
        let mut leaves: Vec<Hash> = if data.is_empty() {
            vec![leaf_hash(&[])]
        } else {
            data.chunks(chunk_size).map(leaf_hash).collect()
        };
        let chunks = leaves.len() as u32;
        let width = leaves.len().next_power_of_two();
        leaves.resize(width, PADDING_HASH);
        let mut levels = vec![leaves];
        while levels.last().expect("nonempty").len() > 1 {
            let prev = levels.last().expect("nonempty");
            let next: Vec<Hash> = prev
                .chunks(2)
                .map(|pair| node_hash(&pair[0], &pair[1]))
                .collect();
            levels.push(next);
        }
        MerkleTree { chunks, levels }
    }

    /// Number of real (non-padding) chunks.
    pub fn chunks(&self) -> u32 {
        self.chunks
    }

    /// Number of levels below the root (= proof length).
    pub fn depth(&self) -> u8 {
        (self.levels.len() - 1) as u8
    }

    /// The root digest.
    pub fn root(&self) -> Hash {
        self.levels.last().expect("nonempty")[0]
    }

    /// Node hash at `(level, idx)`; `level` 0 is the leaf layer. Padding
    /// and out-of-range nodes answer [`PADDING_HASH`].
    pub fn node(&self, level: u8, idx: u32) -> Hash {
        self.levels
            .get(level as usize)
            .and_then(|l| l.get(idx as usize))
            .copied()
            .unwrap_or(PADDING_HASH)
    }

    /// Sibling path from leaf `idx` up to (excluding) the root.
    pub fn proof(&self, idx: u32) -> Vec<Hash> {
        let mut out = Vec::with_capacity(self.depth() as usize);
        let mut i = idx as usize;
        for level in &self.levels[..self.levels.len() - 1] {
            out.push(level.get(i ^ 1).copied().unwrap_or(PADDING_HASH));
            i >>= 1;
        }
        out
    }

    /// Verifies `chunk` as leaf `idx` of a tree with root `root` via a
    /// sibling `proof` (as produced by [`MerkleTree::proof`]).
    pub fn verify_chunk(root: &Hash, idx: u32, chunk: &[u8], proof: &[Hash]) -> bool {
        let mut h = leaf_hash(chunk);
        let mut i = idx;
        for sib in proof {
            h = if i & 1 == 0 {
                node_hash(&h, sib)
            } else {
                node_hash(sib, &h)
            };
            i >>= 1;
        }
        i == 0 && h == *root
    }
}

// ---------------------------------------------------------------------------
// Snapshot + manifest
// ---------------------------------------------------------------------------

/// Replicated state serialization hooks for recoverable state machines.
///
/// The encoding must be **canonical**: the same logical state must
/// always produce the same bytes at every replica (sorted iteration over
/// unordered containers, no clocks, no addresses), because snapshot
/// digests are vote-compared across replicas.
pub trait SnapshotState: Sized {
    /// Appends the canonical encoding of `self` to `w`.
    fn encode_snapshot(&self, w: &mut Writer);

    /// Decodes a state previously produced by
    /// [`SnapshotState::encode_snapshot`].
    ///
    /// # Errors
    ///
    /// A [`WireError`] on truncated or invalid input.
    fn decode_snapshot(r: &mut Reader<'_>) -> Result<Self, WireError>;
}

/// A bare `u64` (e.g. a replicated counter) is trivially canonical.
impl SnapshotState for u64 {
    fn encode_snapshot(&self, w: &mut Writer) {
        w.u64(*self);
    }

    fn decode_snapshot(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.u64("snap.u64")
    }
}

/// A replica's replicated state frozen at an apply-watermark boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Global applied sequence number at the boundary (number of
    /// deliveries applied, markers included).
    pub seq: u64,
    /// Per-sender FIFO watermark of the applied stream: `next[s]` is the
    /// rbid the next applied delivery of sender `s` must carry. Derived
    /// from the applied prefix, so deterministic at a given `seq`.
    pub next: Vec<u64>,
    /// The application state's canonical encoding.
    pub state: Bytes,
}

impl WireMessage for Snapshot {
    fn encode(&self, w: &mut Writer) {
        w.u64(self.seq).u32(self.next.len() as u32);
        for &v in &self.next {
            w.u64(v);
        }
        w.bytes(&self.state);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let seq = r.u64("snap.seq")?;
        let n = r.u32("snap.n")? as usize;
        if n > MAX_XFER_ITEMS {
            return Err(WireError::FieldTooLong {
                what: "snap.n",
                len: n,
            });
        }
        let mut next = Vec::with_capacity(n);
        for _ in 0..n {
            next.push(r.u64("snap.next")?);
        }
        Ok(Snapshot {
            seq,
            next,
            state: r.bytes("snap.state")?,
        })
    }
}

/// What a peer advertises about a snapshot it can serve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Manifest {
    /// The snapshot's applied sequence number.
    pub seq: u64,
    /// Encoded snapshot length in bytes.
    pub len: u64,
    /// Number of Merkle chunks.
    pub chunks: u32,
    /// Merkle tree depth (proof length).
    pub depth: u8,
    /// Merkle root — the snapshot digest compared across peers.
    pub root: Hash,
}

impl WireMessage for Manifest {
    fn encode(&self, w: &mut Writer) {
        w.u64(self.seq)
            .u64(self.len)
            .u32(self.chunks)
            .u8(self.depth)
            .raw(&self.root);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Manifest {
            seq: r.u64("man.seq")?,
            len: r.u64("man.len")?,
            chunks: r.u32("man.chunks")?,
            depth: r.u8("man.depth")?,
            root: r.array::<32>("man.root")?,
        })
    }
}

/// An encoded snapshot a replica retains for serving: the bytes, their
/// manifest, and the Merkle tree over them.
#[derive(Debug, Clone)]
pub struct SnapshotBundle {
    /// The canonical snapshot encoding.
    pub bytes: Bytes,
    /// Its manifest (digest + geometry).
    pub manifest: Manifest,
    /// The Merkle tree over `bytes`.
    pub tree: MerkleTree,
}

impl SnapshotBundle {
    /// Encodes `snapshot` and builds its tree and manifest.
    pub fn build(snapshot: &Snapshot, chunk_size: usize) -> Self {
        let bytes = snapshot.to_bytes();
        let tree = MerkleTree::build(&bytes, chunk_size);
        let manifest = Manifest {
            seq: snapshot.seq,
            len: bytes.len() as u64,
            chunks: tree.chunks(),
            depth: tree.depth(),
            root: tree.root(),
        };
        SnapshotBundle {
            bytes,
            manifest,
            tree,
        }
    }

    /// The chunk at `idx` (empty when out of range).
    pub fn chunk(&self, idx: u32, chunk_size: usize) -> &[u8] {
        let start = (idx as usize).saturating_mul(chunk_size.max(1));
        let end = (start + chunk_size.max(1)).min(self.bytes.len());
        self.bytes.get(start..end).unwrap_or(&[])
    }
}

// ---------------------------------------------------------------------------
// Peer hints + cursor selection
// ---------------------------------------------------------------------------

/// A peer's view of the atomic-broadcast stream, piggybacked on its
/// manifest response so the rejoiner can pick a resume cursor.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PeerHints {
    /// The peer's current agreement round.
    pub round: u32,
    /// Per-sender a-delivered *batch* watermark (batches below are
    /// delivered contiguously).
    pub batch_w: Vec<u64>,
    /// Per-sender highest batch seq ever seen (delivered or sparse).
    pub max_batch: Vec<u64>,
    /// Per-sender highest command rbid ever seen.
    pub max_rbid: Vec<u64>,
}

fn encode_vec(w: &mut Writer, v: &[u64]) {
    w.u32(v.len() as u32);
    for &x in v {
        w.u64(x);
    }
}

fn decode_vec(r: &mut Reader<'_>, what: &'static str) -> Result<Vec<u64>, WireError> {
    let n = r.u32(what)? as usize;
    if n > MAX_XFER_ITEMS {
        return Err(WireError::FieldTooLong { what, len: n });
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r.u64(what)?);
    }
    Ok(out)
}

impl WireMessage for PeerHints {
    fn encode(&self, w: &mut Writer) {
        w.u32(self.round);
        encode_vec(w, &self.batch_w);
        encode_vec(w, &self.max_batch);
        encode_vec(w, &self.max_rbid);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(PeerHints {
            round: r.u32("hints.round")?,
            batch_w: decode_vec(r, "hints.batch_w")?,
            max_batch: decode_vec(r, "hints.max_batch")?,
            max_rbid: decode_vec(r, "hints.max_rbid")?,
        })
    }
}

/// Headroom added above the highest observed own batch/rbid when
/// resuming, so a pre-crash in-flight batch still being disseminated can
/// never collide with a fresh identifier. Overshoot is harmless (ids are
/// sparse); undershoot would fork the sender's id space.
pub const RESUME_ID_SLACK: u64 = 1024;

/// The `k`-th smallest value (1-indexed) of `values`; 0 when empty.
fn kth_smallest(mut values: Vec<u64>, k: usize) -> u64 {
    if values.is_empty() {
        return 0;
    }
    values.sort_unstable();
    let i = k.saturating_sub(1).min(values.len() - 1);
    values[i]
}

/// Aggregates `2f+1` peer hints into a resume cursor, Byzantine-bounded:
/// order statistics pick the `(f+1)`-th smallest round and per-sender
/// batch watermark (so at most `f` liars can neither drag the value
/// below every correct report nor push it above every correct report),
/// and own-id counters take the maximum observed plus
/// [`RESUME_ID_SLACK`]. The command watermark comes from the accepted
/// snapshot (`snapshot_next`) for **every** sender including the
/// rejoiner itself — claiming more would skip commands peers still
/// deliver. Residual staleness in either direction is absorbed by the
/// catch-up alignment rule in [`crate::rsm`].
pub fn select_cursor(
    me: usize,
    n: usize,
    f: usize,
    hints: &[PeerHints],
    snapshot_next: &[u64],
) -> AbCursor {
    let k = f + 1;
    let round = kth_smallest(hints.iter().map(|h| u64::from(h.round)).collect(), k) as u32;
    let get = |v: &[u64], s: usize| v.get(s).copied().unwrap_or(0);
    let a_delivered: Vec<u64> = (0..n)
        .map(|s| kth_smallest(hints.iter().map(|h| get(&h.batch_w, s)).collect(), k))
        .collect();
    let max_batch = hints
        .iter()
        .map(|h| get(&h.max_batch, me))
        .max()
        .unwrap_or(0);
    let max_rbid = hints
        .iter()
        .map(|h| get(&h.max_rbid, me))
        .max()
        .unwrap_or(0);
    AbCursor {
        round,
        a_delivered,
        cmd_delivered: (0..n).map(|s| get(snapshot_next, s)).collect(),
        next_batch: max_batch + RESUME_ID_SLACK,
        next_rbid: max_rbid + RESUME_ID_SLACK,
    }
}

// ---------------------------------------------------------------------------
// Transfer protocol messages
// ---------------------------------------------------------------------------

/// One post-snapshot log entry served through the fill protocol: the
/// delivery at global applied sequence `seq`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FillEntry {
    /// Global applied sequence number.
    pub seq: u64,
    /// Originating sender of the delivery.
    pub sender: u32,
    /// The sender-local rbid of the delivery.
    pub rbid: u64,
    /// The framed command payload.
    pub payload: Bytes,
}

impl WireMessage for FillEntry {
    fn encode(&self, w: &mut Writer) {
        w.u64(self.seq)
            .u32(self.sender)
            .u64(self.rbid)
            .bytes(&self.payload);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(FillEntry {
            seq: r.u64("fill.seq")?,
            sender: r.u32("fill.sender")?,
            rbid: r.u64("fill.rbid")?,
            payload: r.bytes("fill.payload")?,
        })
    }
}

/// Bound on vector fields in transfer messages (anti-DoS).
const MAX_XFER_ITEMS: usize = 4096;

/// The pull-based state-transfer protocol. Carried as opaque payloads of
/// the stack's `Xfer` instance key; both requests and responses travel
/// the same channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XferMessage {
    /// "What snapshot can you serve, and where is your AB stream?"
    ManifestReq,
    /// The peer's latest manifest (none if it has no snapshot yet) plus
    /// its stream hints.
    ManifestResp {
        /// Latest snapshot manifest, when one exists.
        manifest: Option<Manifest>,
        /// The peer's atomic-broadcast position.
        hints: PeerHints,
    },
    /// Merkle node hashes of snapshot `seq` at `level` (0 = leaves).
    NodesReq {
        /// Snapshot being reconciled.
        seq: u64,
        /// Tree level, 0 = leaf layer.
        level: u8,
        /// Node indices wanted.
        indices: Vec<u32>,
    },
    /// The requested node hashes, index-aligned with the request.
    NodesResp {
        /// Snapshot being reconciled.
        seq: u64,
        /// Tree level.
        level: u8,
        /// Echoed indices.
        indices: Vec<u32>,
        /// Node hashes (empty when the snapshot is gone).
        hashes: Vec<Hash>,
    },
    /// One chunk of snapshot `seq`.
    ChunkReq {
        /// Snapshot being fetched.
        seq: u64,
        /// Chunk index.
        idx: u32,
    },
    /// The chunk plus its sibling proof to the root.
    ChunkResp {
        /// Snapshot being fetched.
        seq: u64,
        /// Chunk index.
        idx: u32,
        /// Chunk bytes (empty when the snapshot is gone).
        data: Bytes,
        /// Sibling path to the root.
        proof: Vec<Hash>,
    },
    /// Log entries from global sequence `from_seq` on.
    FillReq {
        /// First wanted sequence number.
        from_seq: u64,
        /// Entry budget for the response.
        max: u32,
    },
    /// Contiguous log entries starting at the requested sequence (empty
    /// when the peer's log starts later or has nothing new).
    FillResp {
        /// The served entries, sequence-ascending.
        entries: Vec<FillEntry>,
    },
    /// Encoded payloads of recently ordered batches (`(sender, seq)`
    /// pairs) — requested when a rejoiner's agreement decided batches
    /// whose dissemination completed before the wipe.
    BatchReq {
        /// The wanted `(sender, batch seq)` pairs.
        ids: Vec<(u32, u64)>,
    },
    /// The retained batch payloads, id-tagged; ids the peer no longer
    /// retains are omitted. The requester must only accept a payload
    /// served byte-identically by `f+1` peers.
    BatchResp {
        /// `(sender, batch seq, encoded payload)` triples.
        batches: Vec<(u32, u64, Bytes)>,
    },
}

impl WireMessage for XferMessage {
    fn encode(&self, w: &mut Writer) {
        match self {
            XferMessage::ManifestReq => {
                w.u8(1);
            }
            XferMessage::ManifestResp { manifest, hints } => {
                w.u8(2);
                match manifest {
                    Some(m) => {
                        w.u8(1);
                        m.encode(w);
                    }
                    None => {
                        w.u8(0);
                    }
                }
                hints.encode(w);
            }
            XferMessage::NodesReq {
                seq,
                level,
                indices,
            } => {
                w.u8(3).u64(*seq).u8(*level).u32(indices.len() as u32);
                for &i in indices {
                    w.u32(i);
                }
            }
            XferMessage::NodesResp {
                seq,
                level,
                indices,
                hashes,
            } => {
                w.u8(4).u64(*seq).u8(*level).u32(indices.len() as u32);
                for &i in indices {
                    w.u32(i);
                }
                w.u32(hashes.len() as u32);
                for h in hashes {
                    w.raw(h);
                }
            }
            XferMessage::ChunkReq { seq, idx } => {
                w.u8(5).u64(*seq).u32(*idx);
            }
            XferMessage::ChunkResp {
                seq,
                idx,
                data,
                proof,
            } => {
                w.u8(6).u64(*seq).u32(*idx).bytes(data);
                w.u32(proof.len() as u32);
                for h in proof {
                    w.raw(h);
                }
            }
            XferMessage::FillReq { from_seq, max } => {
                w.u8(7).u64(*from_seq).u32(*max);
            }
            XferMessage::FillResp { entries } => {
                w.u8(8).u32(entries.len() as u32);
                for e in entries {
                    e.encode(w);
                }
            }
            XferMessage::BatchReq { ids } => {
                w.u8(9).u32(ids.len() as u32);
                for (sender, seq) in ids {
                    w.u32(*sender).u64(*seq);
                }
            }
            XferMessage::BatchResp { batches } => {
                w.u8(10).u32(batches.len() as u32);
                for (sender, seq, payload) in batches {
                    w.u32(*sender).u64(*seq).bytes(payload);
                }
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        fn counted<T>(
            r: &mut Reader<'_>,
            what: &'static str,
            mut item: impl FnMut(&mut Reader<'_>) -> Result<T, WireError>,
        ) -> Result<Vec<T>, WireError> {
            let n = r.u32(what)? as usize;
            if n > MAX_XFER_ITEMS {
                return Err(WireError::FieldTooLong { what, len: n });
            }
            let mut out = Vec::with_capacity(n);
            for _ in 0..n {
                out.push(item(r)?);
            }
            Ok(out)
        }
        Ok(match r.u8("xfer.tag")? {
            1 => XferMessage::ManifestReq,
            2 => {
                let manifest = match r.u8("xfer.has_manifest")? {
                    0 => None,
                    1 => Some(Manifest::decode(r)?),
                    tag => {
                        return Err(WireError::InvalidTag {
                            what: "xfer.has_manifest",
                            tag,
                        })
                    }
                };
                XferMessage::ManifestResp {
                    manifest,
                    hints: PeerHints::decode(r)?,
                }
            }
            3 => XferMessage::NodesReq {
                seq: r.u64("xfer.seq")?,
                level: r.u8("xfer.level")?,
                indices: counted(r, "xfer.indices", |r| r.u32("xfer.idx"))?,
            },
            4 => XferMessage::NodesResp {
                seq: r.u64("xfer.seq")?,
                level: r.u8("xfer.level")?,
                indices: counted(r, "xfer.indices", |r| r.u32("xfer.idx"))?,
                hashes: counted(r, "xfer.hashes", |r| r.array::<32>("xfer.hash"))?,
            },
            5 => XferMessage::ChunkReq {
                seq: r.u64("xfer.seq")?,
                idx: r.u32("xfer.idx")?,
            },
            6 => XferMessage::ChunkResp {
                seq: r.u64("xfer.seq")?,
                idx: r.u32("xfer.idx")?,
                data: r.bytes("xfer.data")?,
                proof: counted(r, "xfer.proof", |r| r.array::<32>("xfer.hash"))?,
            },
            7 => XferMessage::FillReq {
                from_seq: r.u64("xfer.from_seq")?,
                max: r.u32("xfer.max")?,
            },
            8 => XferMessage::FillResp {
                entries: counted(r, "xfer.entries", FillEntry::decode)?,
            },
            9 => XferMessage::BatchReq {
                ids: counted(r, "xfer.ids", |r| {
                    Ok((r.u32("xfer.sender")?, r.u64("xfer.seq")?))
                })?,
            },
            10 => XferMessage::BatchResp {
                batches: counted(r, "xfer.batches", |r| {
                    Ok((
                        r.u32("xfer.sender")?,
                        r.u64("xfer.seq")?,
                        r.bytes("xfer.payload")?,
                    ))
                })?,
            },
            tag => {
                return Err(WireError::InvalidTag {
                    what: "xfer.tag",
                    tag,
                })
            }
        })
    }
}

// ---------------------------------------------------------------------------
// Anti-entropy descent
// ---------------------------------------------------------------------------

/// What the Merkle descent decided about each chunk of a manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FetchPlan {
    /// Chunk indices that must be downloaded (stale copy differs or is
    /// absent).
    pub need: Vec<u32>,
    /// Chunk indices whose bytes can be reused from the stale snapshot
    /// (subtree hashes matched).
    pub reuse: Vec<u32>,
}

/// Errors surfaced by the anti-entropy descent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AntiEntropyError {
    /// The peer's node hashes did not re-hash to their verified parent —
    /// a corrupt server.
    BadNodes,
    /// The fetch callback failed (peer gone, snapshot discarded).
    FetchFailed,
}

impl core::fmt::Display for AntiEntropyError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AntiEntropyError::BadNodes => write!(f, "merkle nodes failed verification"),
            AntiEntropyError::FetchFailed => write!(f, "merkle node fetch failed"),
        }
    }
}

impl std::error::Error for AntiEntropyError {}

/// Top-down Merkle descent against an optional stale local tree:
/// descends only into subtrees whose (verified) remote hash differs from
/// the stale one, so unchanged chunk ranges are reused instead of
/// downloaded. `fetch_nodes(level, indices)` must return the peer's node
/// hashes index-aligned with the request; every returned level is
/// verified bottom-up against the already-verified parent layer
/// (anchored at the agreed manifest root), so a lying server yields
/// [`AntiEntropyError::BadNodes`], never a wrong plan.
///
/// # Errors
///
/// [`AntiEntropyError::BadNodes`] on hash-chain mismatch,
/// [`AntiEntropyError::FetchFailed`] when the callback errors.
pub fn plan_fetch(
    manifest: &Manifest,
    stale: Option<&MerkleTree>,
    mut fetch_nodes: impl FnMut(u8, &[u32]) -> Result<Vec<Hash>, AntiEntropyError>,
) -> Result<FetchPlan, AntiEntropyError> {
    let mut plan = FetchPlan {
        need: Vec::new(),
        reuse: Vec::new(),
    };
    // Differing verified nodes at the current level: (idx, remote hash).
    let mut frontier: Vec<(u32, Hash)> = vec![(0, manifest.root)];
    let mut level = manifest.depth;
    // Walk down; at each step resolve the frontier's children.
    while !frontier.is_empty() {
        if level == 0 {
            for (idx, _) in frontier {
                if idx < manifest.chunks {
                    plan.need.push(idx);
                }
            }
            break;
        }
        let child_level = level - 1;
        let child_indices: Vec<u32> = frontier
            .iter()
            .flat_map(|&(i, _)| [i * 2, i * 2 + 1])
            .collect();
        let hashes = fetch_nodes(child_level, &child_indices)?;
        if hashes.len() != child_indices.len() {
            return Err(AntiEntropyError::FetchFailed);
        }
        let mut next = Vec::new();
        for (k, &(idx, parent)) in frontier.iter().enumerate() {
            let (l, r) = (hashes[2 * k], hashes[2 * k + 1]);
            if node_hash(&l, &r) != parent {
                return Err(AntiEntropyError::BadNodes);
            }
            for (child, h) in [(idx * 2, l), (idx * 2 + 1, r)] {
                if let Some(mine) = stale {
                    if mine.node(child_level, child) == h {
                        // Whole subtree unchanged: reuse its chunks.
                        let width = 1u32 << child_level;
                        let first = child * width;
                        for c in first..(first + width).min(manifest.chunks) {
                            plan.reuse.push(c);
                        }
                        continue;
                    }
                }
                if h != PADDING_HASH || child_level > 0 {
                    // Padding subtrees contain no real chunks only when
                    // entirely beyond the chunk count; the leaf filter
                    // below handles the boundary.
                    let width = 1u32 << child_level;
                    if child * width < manifest.chunks {
                        next.push((child, h));
                    }
                }
            }
        }
        frontier = next;
        level = child_level;
    }
    plan.need.sort_unstable();
    plan.reuse.sort_unstable();
    plan.reuse.retain(|c| *c < manifest.chunks);
    Ok(plan)
}

/// Groups `2f+1`-ish manifest responses and returns the newest manifest
/// carried by at least `quorum` (= `f+1`) byte-identical copies, along
/// with the peers that hold it.
pub fn accept_manifest(
    responses: &[(usize, Manifest)],
    quorum: usize,
) -> Option<(Manifest, Vec<usize>)> {
    let mut best: Option<(Manifest, Vec<usize>)> = None;
    for (_, m) in responses {
        let holders: Vec<usize> = responses
            .iter()
            .filter(|(_, other)| other == m)
            .map(|(p, _)| *p)
            .collect();
        if holders.len() >= quorum && best.as_ref().map(|(b, _)| m.seq > b.seq).unwrap_or(true) {
            best = Some((*m, holders));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(len: usize, seed: u8) -> Vec<u8> {
        (0..len)
            .map(|i| (i as u8).wrapping_mul(31) ^ seed)
            .collect()
    }

    #[test]
    fn config_validation_rejects_zero_fields() {
        assert_eq!(RecoveryConfig::default().validate(), Ok(()));
        let cfg = RecoveryConfig {
            snapshot_every: 0,
            ..RecoveryConfig::default()
        };
        assert_eq!(cfg.validate(), Err(RecoveryConfigError::ZeroSnapshotEvery));
        let cfg = RecoveryConfig {
            chunk_size: 0,
            ..RecoveryConfig::default()
        };
        assert_eq!(cfg.validate(), Err(RecoveryConfigError::ZeroChunkSize));
        let cfg = RecoveryConfig {
            fill_batch: 0,
            ..RecoveryConfig::default()
        };
        assert_eq!(cfg.validate(), Err(RecoveryConfigError::ZeroFillBatch));
        // Errors render as readable diagnostics.
        let msg = RecoveryConfigError::ZeroChunkSize.to_string();
        assert!(msg.contains("chunk_size"));
    }

    #[test]
    fn merkle_proofs_verify_and_reject_corruption() {
        for len in [0usize, 1, 64, 65, 300, 1000] {
            let bytes = data(len, 7);
            let tree = MerkleTree::build(&bytes, 64);
            let root = tree.root();
            for idx in 0..tree.chunks() {
                let start = idx as usize * 64;
                let chunk = &bytes[start..(start + 64).min(bytes.len())];
                let proof = tree.proof(idx);
                assert!(
                    MerkleTree::verify_chunk(&root, idx, chunk, &proof),
                    "len={len} idx={idx}"
                );
                // A flipped byte must be detected.
                let mut bad = chunk.to_vec();
                if bad.is_empty() {
                    bad.push(1);
                } else {
                    bad[0] ^= 1;
                }
                assert!(
                    !MerkleTree::verify_chunk(&root, idx, &bad, &proof),
                    "corruption undetected at len={len} idx={idx}"
                );
                // A proof for the wrong index must not verify.
                if tree.chunks() > 1 {
                    let other = (idx + 1) % tree.chunks();
                    assert!(!MerkleTree::verify_chunk(&root, other, chunk, &proof));
                }
            }
        }
    }

    #[test]
    fn merkle_root_is_position_sensitive() {
        let a = MerkleTree::build(&data(256, 1), 64);
        let mut swapped = data(256, 1);
        swapped.swap(0, 64); // move a byte across a chunk boundary
        let b = MerkleTree::build(&swapped, 64);
        assert_ne!(a.root(), b.root());
    }

    #[test]
    fn snapshot_codec_roundtrip_and_determinism() {
        let s = Snapshot {
            seq: 512,
            next: vec![3, 9, 0, 44],
            state: Bytes::from(data(100, 3)),
        };
        assert_eq!(Snapshot::from_bytes(&s.to_bytes()).unwrap(), s);
        // Canonical: same value, same bytes, same digest.
        let b1 = SnapshotBundle::build(&s, 64);
        let b2 = SnapshotBundle::build(&s.clone(), 64);
        assert_eq!(b1.manifest, b2.manifest);
        assert_eq!(b1.manifest.seq, 512);
        assert_eq!(b1.manifest.len, b1.bytes.len() as u64);
    }

    #[test]
    fn xfer_codec_roundtrip() {
        let msgs = vec![
            XferMessage::ManifestReq,
            XferMessage::ManifestResp {
                manifest: Some(Manifest {
                    seq: 7,
                    len: 100,
                    chunks: 2,
                    depth: 1,
                    root: [9; 32],
                }),
                hints: PeerHints {
                    round: 5,
                    batch_w: vec![1, 2, 3, 4],
                    max_batch: vec![2, 3, 4, 5],
                    max_rbid: vec![10, 0, 0, 7],
                },
            },
            XferMessage::ManifestResp {
                manifest: None,
                hints: PeerHints::default(),
            },
            XferMessage::NodesReq {
                seq: 7,
                level: 2,
                indices: vec![0, 3],
            },
            XferMessage::NodesResp {
                seq: 7,
                level: 2,
                indices: vec![0, 3],
                hashes: vec![[1; 32], [2; 32]],
            },
            XferMessage::ChunkReq { seq: 7, idx: 1 },
            XferMessage::ChunkResp {
                seq: 7,
                idx: 1,
                data: Bytes::from_static(b"chunk"),
                proof: vec![[3; 32]],
            },
            XferMessage::FillReq {
                from_seq: 99,
                max: 16,
            },
            XferMessage::FillResp {
                entries: vec![FillEntry {
                    seq: 100,
                    sender: 2,
                    rbid: 41,
                    payload: Bytes::from_static(b"\x01incr"),
                }],
            },
            XferMessage::BatchReq {
                ids: vec![(0, 5), (3, 0)],
            },
            XferMessage::BatchResp {
                batches: vec![(0, 5, Bytes::from_static(b"batchbytes"))],
            },
        ];
        for m in msgs {
            assert_eq!(XferMessage::from_bytes(&m.to_bytes()).unwrap(), m);
        }
        // Truncation and trailing garbage are rejected.
        let enc = XferMessage::ChunkReq { seq: 7, idx: 1 }.to_bytes();
        assert!(XferMessage::from_bytes(&enc[..enc.len() - 1]).is_err());
        let mut trailing = enc.to_vec();
        trailing.push(0);
        assert!(XferMessage::from_bytes(&trailing).is_err());
        assert!(XferMessage::from_bytes(&[99]).is_err());
    }

    #[test]
    fn plan_fetch_downloads_only_differing_chunks() {
        // A stale snapshot differing from the fresh one in one chunk:
        // the descent must reuse every other chunk.
        let old = data(1024, 5);
        let mut new = old.clone();
        new[300] ^= 0xff; // chunk 4 with chunk_size 64
        let stale = MerkleTree::build(&old, 64);
        let fresh = MerkleTree::build(&new, 64);
        let manifest = Manifest {
            seq: 1,
            len: new.len() as u64,
            chunks: fresh.chunks(),
            depth: fresh.depth(),
            root: fresh.root(),
        };
        let plan = plan_fetch(&manifest, Some(&stale), |level, idxs| {
            Ok(idxs.iter().map(|&i| fresh.node(level, i)).collect())
        })
        .unwrap();
        assert_eq!(plan.need, vec![4], "only the changed chunk is fetched");
        let mut all: Vec<u32> = plan.need.iter().chain(plan.reuse.iter()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..fresh.chunks()).collect::<Vec<_>>());
    }

    #[test]
    fn plan_fetch_without_stale_fetches_everything() {
        let bytes = data(500, 9);
        let tree = MerkleTree::build(&bytes, 64);
        let manifest = Manifest {
            seq: 1,
            len: bytes.len() as u64,
            chunks: tree.chunks(),
            depth: tree.depth(),
            root: tree.root(),
        };
        let plan = plan_fetch(&manifest, None, |level, idxs| {
            Ok(idxs.iter().map(|&i| tree.node(level, i)).collect())
        })
        .unwrap();
        assert_eq!(plan.need, (0..tree.chunks()).collect::<Vec<_>>());
        assert!(plan.reuse.is_empty());
    }

    #[test]
    fn plan_fetch_detects_lying_server() {
        let bytes = data(500, 9);
        let tree = MerkleTree::build(&bytes, 64);
        let manifest = Manifest {
            seq: 1,
            len: bytes.len() as u64,
            chunks: tree.chunks(),
            depth: tree.depth(),
            root: tree.root(),
        };
        let err = plan_fetch(&manifest, None, |level, idxs| {
            let mut h: Vec<Hash> = idxs.iter().map(|&i| tree.node(level, i)).collect();
            h[0][0] ^= 1; // corrupt one advertised node
            Ok(h)
        })
        .unwrap_err();
        assert_eq!(err, AntiEntropyError::BadNodes);
    }

    #[test]
    fn cursor_selection_is_byzantine_bounded() {
        // n=4, f=1: three responders, one lying wildly in each direction.
        let correct_a = PeerHints {
            round: 10,
            batch_w: vec![5, 6, 7, 8],
            max_batch: vec![6, 7, 8, 9],
            max_rbid: vec![50, 60, 70, 80],
        };
        let correct_b = PeerHints {
            round: 11,
            batch_w: vec![5, 7, 7, 8],
            max_batch: vec![6, 7, 8, 9],
            max_rbid: vec![51, 60, 70, 80],
        };
        let liar = PeerHints {
            round: 1_000_000,
            batch_w: vec![u64::MAX; 4],
            max_batch: vec![0; 4],
            max_rbid: vec![0; 4],
        };
        let cursor = select_cursor(0, 4, 1, &[correct_a, liar, correct_b], &[3, 4, 5, 6]);
        // The (f+1)-th smallest is bounded by a correct report.
        assert_eq!(cursor.round, 11);
        assert_eq!(cursor.a_delivered, vec![5, 7, 7, 8]);
        assert_eq!(cursor.cmd_delivered, vec![3, 4, 5, 6]);
        // Own counters: max over reports + slack.
        assert_eq!(cursor.next_rbid, 51 + RESUME_ID_SLACK);
        assert_eq!(cursor.next_batch, 6 + RESUME_ID_SLACK);
    }

    #[test]
    fn accept_manifest_needs_quorum_and_prefers_newest() {
        let m = |seq, tag: u8| Manifest {
            seq,
            len: 10,
            chunks: 1,
            depth: 0,
            root: [tag; 32],
        };
        // Two peers agree on seq 20, one lone voice claims seq 30.
        let responses = vec![(0, m(20, 1)), (1, m(20, 1)), (2, m(30, 2))];
        let (accepted, holders) = accept_manifest(&responses, 2).unwrap();
        assert_eq!(accepted.seq, 20);
        assert_eq!(holders, vec![0, 1]);
        // Nothing reaches quorum → no acceptance.
        let responses = vec![(0, m(20, 1)), (1, m(21, 1)), (2, m(30, 2))];
        assert!(accept_manifest(&responses, 2).is_none());
        // Two quorums → the newest wins.
        let responses = vec![(0, m(20, 1)), (1, m(20, 1)), (2, m(40, 3)), (3, m(40, 3))];
        let (accepted, _) = accept_manifest(&responses, 2).unwrap();
        assert_eq!(accepted.seq, 40);
    }
}
