//! Error types for the protocol stack.

use crate::ProcessId;
pub use ritas_transport::wire::WireError;

/// Errors returned by protocol API calls (local misuse, never triggered by
/// remote input — hostile remote input is reported as faults on a
/// [`crate::step::Step`] instead).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// A broadcast was attempted by a process that is not the designated
    /// sender of the instance.
    NotSender {
        /// The caller.
        me: ProcessId,
        /// The instance's designated sender.
        sender: ProcessId,
    },
    /// The instance's one-shot action (broadcast / propose) was invoked
    /// twice.
    AlreadyStarted,
    /// A proposal value was invalid for the protocol (e.g. empty vector).
    InvalidProposal {
        /// Reason, for diagnostics.
        reason: &'static str,
    },
    /// A process id was outside the group.
    UnknownProcess(ProcessId),
    /// The instance has already terminated.
    Terminated,
}

impl core::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ProtocolError::NotSender { me, sender } => {
                write!(f, "process {me} is not the designated sender {sender}")
            }
            ProtocolError::AlreadyStarted => write!(f, "instance already started"),
            ProtocolError::InvalidProposal { reason } => {
                write!(f, "invalid proposal: {reason}")
            }
            ProtocolError::UnknownProcess(p) => write!(f, "unknown process {p}"),
            ProtocolError::Terminated => write!(f, "instance already terminated"),
        }
    }
}

impl std::error::Error for ProtocolError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        for e in [
            ProtocolError::NotSender { me: 0, sender: 1 },
            ProtocolError::AlreadyStarted,
            ProtocolError::InvalidProposal { reason: "x" },
            ProtocolError::UnknownProcess(9),
            ProtocolError::Terminated,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
