//! FIFO-order adapter for atomic broadcast.
//!
//! Atomic broadcast guarantees a *total* order, but not that a sender's
//! messages appear in the order it broadcast them: a later message can be
//! ordered in an earlier agreement batch if its reliable broadcast
//! completed first. Since identifiers are `(sender, rbid)` with
//! sender-local sequential `rbid`s (§2.7), FIFO order is recoverable with
//! a deterministic holdback queue: release a delivery only when all of
//! its sender's earlier `rbid`s have been released.
//!
//! Every correct process applies the same transformation to the same
//! total order, so the FIFO-adapted sequence is itself identical
//! everywhere — the adapter upgrades "total order" to "FIFO total order"
//! with no extra communication.
//!
//! Holdback is bounded per *correct* sender (gaps fill as agreements
//! complete). A Byzantine sender that deliberately skips an `rbid`
//! strands its own later messages in the holdback queue — it can censor
//! only itself; use [`FifoOrder::held`] to monitor and
//! [`FifoOrder::evict_sender`] to reclaim the memory.

use crate::ab::AbDelivery;
use crate::ProcessId;
use std::collections::BTreeMap;

/// Deterministic FIFO holdback queue over a-deliveries.
///
/// # Example
///
/// ```
/// use ritas::ab::{AbDelivery, MsgId};
/// use ritas::fifo::FifoOrder;
/// use bytes::Bytes;
///
/// let mut fifo = FifoOrder::new(4);
/// let d = |rbid| AbDelivery {
///     id: MsgId { sender: 2, rbid },
///     payload: Bytes::new(),
/// };
/// // rbid 1 arrives before rbid 0: held back…
/// assert!(fifo.push(d(1)).is_empty());
/// // …until 0 arrives, releasing both in sender order.
/// let released = fifo.push(d(0));
/// assert_eq!(released.iter().map(|d| d.id.rbid).collect::<Vec<_>>(), vec![0, 1]);
/// ```
#[derive(Debug, Clone)]
pub struct FifoOrder {
    /// Next expected rbid per sender.
    next: Vec<u64>,
    /// Out-of-order deliveries per sender.
    held: Vec<BTreeMap<u64, AbDelivery>>,
}

impl FifoOrder {
    /// Creates the adapter for `n` senders.
    pub fn new(n: usize) -> Self {
        FifoOrder {
            next: vec![0; n],
            held: vec![BTreeMap::new(); n],
        }
    }

    /// Creates the adapter with per-sender watermarks already advanced —
    /// the rejoin path: a replica restored from a snapshot expects
    /// `watermarks[s]` as sender `s`'s next rbid, and everything below it
    /// is a duplicate of state the snapshot already covers. Missing
    /// entries default to 0.
    pub fn from_watermarks(n: usize, watermarks: &[u64]) -> Self {
        FifoOrder {
            next: (0..n)
                .map(|s| watermarks.get(s).copied().unwrap_or(0))
                .collect(),
            held: vec![BTreeMap::new(); n],
        }
    }

    /// The per-sender release watermarks (`next[s]` = rbid the next
    /// released delivery of sender `s` will carry) — what a snapshot
    /// records so [`FifoOrder::from_watermarks`] can restore the stream
    /// position.
    pub fn watermarks(&self) -> &[u64] {
        &self.next
    }

    /// Forces `sender`'s stream position to `rbid`, dropping anything
    /// held below it. Used when a rejoined replica's own marker command
    /// comes back with a post-resume rbid: everything it broadcast
    /// before the wipe is either already covered by the snapshot/fill or
    /// permanently lost, so the stream resumes at the marker.
    pub fn reset_sender(&mut self, sender: ProcessId, rbid: u64) {
        let Some(held) = self.held.get_mut(sender) else {
            return;
        };
        held.retain(|&r, _| r >= rbid);
        self.next[sender] = self.next[sender].max(rbid);
    }

    /// Feeds one a-delivery (in total order); returns the deliveries that
    /// become releasable, in FIFO order. Duplicates and out-of-range
    /// senders are dropped.
    pub fn push(&mut self, delivery: AbDelivery) -> Vec<AbDelivery> {
        let sender = delivery.id.sender;
        if sender >= self.next.len() {
            return Vec::new();
        }
        if delivery.id.rbid < self.next[sender] {
            return Vec::new(); // duplicate of something already released
        }
        self.held[sender].insert(delivery.id.rbid, delivery);
        let mut out = Vec::new();
        while let Some(d) = self.held[sender].remove(&self.next[sender]) {
            self.next[sender] += 1;
            out.push(d);
        }
        out
    }

    /// Number of deliveries currently held back for `sender`.
    pub fn held(&self, sender: ProcessId) -> usize {
        self.held.get(sender).map(BTreeMap::len).unwrap_or(0)
    }

    /// Drops everything held for `sender` and stops expecting its gap to
    /// fill (administrative eviction of a sender that skipped an rbid).
    /// Returns the dropped deliveries.
    pub fn evict_sender(&mut self, sender: ProcessId) -> Vec<AbDelivery> {
        let Some(held) = self.held.get_mut(sender) else {
            return Vec::new();
        };
        let dropped: Vec<AbDelivery> = std::mem::take(held).into_values().collect();
        if let Some(d) = dropped.last() {
            self.next[sender] = d.id.rbid + 1;
        }
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ab::MsgId;
    use bytes::Bytes;

    fn d(sender: ProcessId, rbid: u64) -> AbDelivery {
        AbDelivery {
            id: MsgId { sender, rbid },
            payload: Bytes::from(format!("{sender}:{rbid}")),
        }
    }

    fn rbids(v: &[AbDelivery]) -> Vec<(usize, u64)> {
        v.iter().map(|d| (d.id.sender, d.id.rbid)).collect()
    }

    #[test]
    fn in_order_passes_through() {
        let mut f = FifoOrder::new(2);
        assert_eq!(rbids(&f.push(d(0, 0))), vec![(0, 0)]);
        assert_eq!(rbids(&f.push(d(0, 1))), vec![(0, 1)]);
    }

    #[test]
    fn out_of_order_held_and_released_in_order() {
        let mut f = FifoOrder::new(2);
        assert!(f.push(d(0, 2)).is_empty());
        assert!(f.push(d(0, 1)).is_empty());
        assert_eq!(f.held(0), 2);
        assert_eq!(rbids(&f.push(d(0, 0))), vec![(0, 0), (0, 1), (0, 2)]);
        assert_eq!(f.held(0), 0);
    }

    #[test]
    fn senders_are_independent() {
        let mut f = FifoOrder::new(3);
        assert!(f.push(d(1, 1)).is_empty());
        assert_eq!(rbids(&f.push(d(2, 0))), vec![(2, 0)]);
        assert_eq!(rbids(&f.push(d(1, 0))), vec![(1, 0), (1, 1)]);
    }

    #[test]
    fn duplicates_dropped() {
        let mut f = FifoOrder::new(1);
        assert_eq!(f.push(d(0, 0)).len(), 1);
        assert!(f.push(d(0, 0)).is_empty());
    }

    #[test]
    fn out_of_range_sender_dropped() {
        let mut f = FifoOrder::new(2);
        assert!(f.push(d(7, 0)).is_empty());
    }

    #[test]
    fn eviction_unsticks_a_gapped_sender() {
        let mut f = FifoOrder::new(2);
        assert!(f.push(d(0, 5)).is_empty());
        assert!(f.push(d(0, 6)).is_empty());
        let dropped = f.evict_sender(0);
        assert_eq!(dropped.len(), 2);
        // The sender resumes after the evicted range.
        assert_eq!(rbids(&f.push(d(0, 7))), vec![(0, 7)]);
    }

    #[test]
    fn watermark_restore_resumes_mid_stream() {
        let mut f = FifoOrder::from_watermarks(3, &[2, 0, 5]);
        assert_eq!(f.watermarks(), &[2, 0, 5]);
        // Pre-watermark rbids are snapshot-covered duplicates.
        assert!(f.push(d(0, 1)).is_empty());
        assert!(f.push(d(2, 4)).is_empty());
        // The stream continues exactly at the watermark.
        assert_eq!(rbids(&f.push(d(0, 2))), vec![(0, 2)]);
        assert_eq!(rbids(&f.push(d(2, 5))), vec![(2, 5)]);
        // Short vectors default to 0.
        let mut f = FifoOrder::from_watermarks(3, &[1]);
        assert_eq!(f.watermarks(), &[1, 0, 0]);
        assert_eq!(rbids(&f.push(d(1, 0))), vec![(1, 0)]);
    }

    #[test]
    fn reset_sender_skips_to_marker() {
        let mut f = FifoOrder::new(2);
        // Pre-wipe stragglers held below the marker rbid…
        assert!(f.push(d(0, 3)).is_empty());
        assert!(f.push(d(0, 7)).is_empty());
        f.reset_sender(0, 7);
        // …are dropped, while the marker itself (and later) release.
        assert_eq!(f.held(0), 1);
        assert_eq!(rbids(&f.push(d(0, 8))), vec![(0, 7), (0, 8)]);
        // Resetting backwards never rewinds the stream.
        f.reset_sender(0, 2);
        assert!(f.push(d(0, 2)).is_empty());
        // Out-of-range sender is a no-op.
        f.reset_sender(9, 1);
    }

    #[test]
    fn same_total_order_yields_same_fifo_order() {
        // Determinism: two adapters fed the same sequence emit the same
        // sequence.
        let seq = [d(0, 1), d(1, 0), d(0, 0), d(1, 2), d(1, 1), d(0, 2)];
        let run = || {
            let mut f = FifoOrder::new(2);
            seq.iter()
                .flat_map(|x| f.push(x.clone()))
                .map(|x| x.id)
                .collect::<Vec<_>>()
        };
        let a = run();
        assert_eq!(a, run());
        assert_eq!(a.len(), 6);
        // Per-sender rbids ascend.
        for s in 0..2 {
            let per: Vec<u64> = a.iter().filter(|i| i.sender == s).map(|i| i.rbid).collect();
            assert!(per.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
