//! The paper's safety predicates as an incremental, reusable checker.
//!
//! [`InvariantChecker`] watches the outputs of a [`crate::testing::Cluster`]
//! and flags the first violation of any safety property the paper proves
//! (§2.3–§2.7):
//!
//! * **RB/EB agreement & integrity** — all correct processes that deliver
//!   a broadcast instance deliver the *same* payload, at most once, and
//!   if the sender is correct, exactly the payload it sent.
//! * **BC agreement & validity** — all correct processes decide the same
//!   bit; if every correct process proposed the same bit, that bit is
//!   decided. (Validity in this form holds under up to `f` Byzantine
//!   processes, so it is checked unconditionally.)
//! * **MVC agreement & validity** — same decision everywhere; a non-⊥
//!   decision must be a value some *correct* process proposed (a decided
//!   value needs `n−2f > f` matching `INIT`s, so at least one comes from
//!   a correct process — checkable even with corrupt processes present).
//! * **VC agreement & validity** — identical decided vectors of length
//!   `n` with at least `n−f` non-⊥ entries, where every entry for a
//!   correct process is either ⊥ or that process's real proposal.
//! * **AB total order & integrity** — the a-delivery sequences of correct
//!   processes are prefix-compatible (no two ever order the same position
//!   differently), no id is a-delivered twice by one process, all correct
//!   processes agree on each id's payload, and ids from correct senders
//!   carry the payload actually broadcast.
//!
//! The checker is *incremental*: [`InvariantChecker::check_cluster`]
//! keeps a cursor per process and only examines outputs produced since
//! the previous call, so checking after every scheduler step (as the
//! adversarial conformance harness does) costs O(total outputs), not
//! O(steps²).
//!
//! Outputs of processes registered via [`InvariantChecker::mark_corrupt`]
//! are ignored — the paper's properties constrain correct processes only.

use crate::ab::MsgId;
use crate::mvc::MvcValue;
use crate::stack::{InstanceKey, Output};
use crate::testing::Cluster;
use crate::ProcessId;
use bytes::Bytes;
use std::collections::HashMap;

/// A safety-predicate violation: which paper property broke, at which
/// process, and how.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Short predicate identifier (e.g. `"rb-agreement"`).
    pub predicate: &'static str,
    /// The correct process whose output exposed the violation.
    pub process: ProcessId,
    /// Human-readable specifics.
    pub detail: String,
}

impl core::fmt::Display for Violation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{} violated at process {}: {}",
            self.predicate, self.process, self.detail
        )
    }
}

impl std::error::Error for Violation {}

/// Per-instance broadcast record: what each process delivered.
#[derive(Debug, Default)]
struct BroadcastState {
    delivered: Vec<Option<Bytes>>,
}

/// Per-session atomic broadcast record.
#[derive(Debug, Default)]
struct AbState {
    /// The longest agreed delivery order so far: position `k` is fixed by
    /// the first correct process to a-deliver its `k`-th message.
    global_order: Vec<MsgId>,
    /// How many messages each process has a-delivered.
    cursor: Vec<usize>,
    /// Ids each process has a-delivered (duplicate detection).
    seen: Vec<std::collections::HashSet<MsgId>>,
    /// First payload a correct process a-delivered for each id.
    payloads: HashMap<MsgId, Bytes>,
}

/// Incremental checker for the paper's safety predicates.
#[derive(Debug)]
pub struct InvariantChecker {
    n: usize,
    f: usize,
    corrupt: Vec<bool>,
    /// Output cursor per process (for `check_cluster`).
    seen: Vec<usize>,
    /// Expected payloads of broadcasts issued by correct processes.
    expected_broadcast: HashMap<InstanceKey, Bytes>,
    /// Registered proposals, per consensus tag and proposer.
    bc_proposals: HashMap<u64, Vec<Option<bool>>>,
    mvc_proposals: HashMap<u64, Vec<Option<MvcValue>>>,
    vc_proposals: HashMap<u64, Vec<Option<Bytes>>>,
    /// Expected payloads of atomic broadcasts from correct senders.
    expected_ab: HashMap<MsgId, Bytes>,
    rb: HashMap<InstanceKey, BroadcastState>,
    eb: HashMap<InstanceKey, BroadcastState>,
    bc_decided: HashMap<u64, Vec<Option<bool>>>,
    mvc_decided: HashMap<u64, Vec<Option<MvcValue>>>,
    vc_decided: HashMap<u64, Vec<Option<Vec<Option<Bytes>>>>>,
    ab: HashMap<u32, AbState>,
}

impl InvariantChecker {
    /// Creates a checker for a group of `n` processes.
    pub fn new(n: usize) -> Self {
        InvariantChecker {
            n,
            f: n.saturating_sub(1) / 3,
            corrupt: vec![false; n],
            seen: vec![0; n],
            expected_broadcast: HashMap::new(),
            bc_proposals: HashMap::new(),
            mvc_proposals: HashMap::new(),
            vc_proposals: HashMap::new(),
            expected_ab: HashMap::new(),
            rb: HashMap::new(),
            eb: HashMap::new(),
            bc_decided: HashMap::new(),
            mvc_decided: HashMap::new(),
            vc_decided: HashMap::new(),
            ab: HashMap::new(),
        }
    }

    /// Declares `p` corrupt: its outputs are ignored and integrity is not
    /// enforced for its broadcasts/proposals.
    pub fn mark_corrupt(&mut self, p: ProcessId) {
        self.corrupt[p] = true;
    }

    /// Whether any process is marked corrupt.
    pub fn has_corrupt(&self) -> bool {
        self.corrupt.iter().any(|c| *c)
    }

    /// Registers the payload a *correct* process broadcast on `key`
    /// (RB or EB), arming the integrity check for that instance.
    pub fn expect_broadcast(&mut self, key: InstanceKey, payload: Bytes) {
        self.expected_broadcast.insert(key, payload);
    }

    /// Registers a correct process's binary consensus proposal.
    pub fn expect_bc(&mut self, tag: u64, proposer: ProcessId, value: bool) {
        self.bc_proposals
            .entry(tag)
            .or_insert_with(|| vec![None; self.n])[proposer] = Some(value);
    }

    /// Registers a correct process's multi-valued consensus proposal.
    pub fn expect_mvc(&mut self, tag: u64, proposer: ProcessId, value: MvcValue) {
        self.mvc_proposals
            .entry(tag)
            .or_insert_with(|| vec![None; self.n])[proposer] = Some(value);
    }

    /// Registers a correct process's vector consensus proposal.
    pub fn expect_vc(&mut self, tag: u64, proposer: ProcessId, proposal: Bytes) {
        self.vc_proposals
            .entry(tag)
            .or_insert_with(|| vec![None; self.n])[proposer] = Some(proposal);
    }

    /// Registers the payload a correct process atomically broadcast,
    /// arming AB integrity for that id.
    pub fn expect_ab(&mut self, id: MsgId, payload: Bytes) {
        self.expected_ab.insert(id, payload);
    }

    /// Consumes every output produced since the last call and returns the
    /// first violation found, if any. Call after each scheduler step.
    ///
    /// # Errors
    ///
    /// Returns the first [`Violation`] discovered in the new outputs.
    pub fn check_cluster(&mut self, cluster: &Cluster) -> Result<(), Violation> {
        for p in 0..self.n.min(cluster.n()) {
            let outs = cluster.outputs(p);
            if self.corrupt[p] {
                self.seen[p] = outs.len();
                continue;
            }
            while self.seen[p] < outs.len() {
                let out = outs[self.seen[p]].clone();
                self.seen[p] += 1;
                self.observe(p, &out)?;
            }
        }
        Ok(())
    }

    /// Feeds one output of correct process `p` to the checker. (Exposed
    /// so harnesses that do not use [`Cluster`] can still share the
    /// predicates.)
    ///
    /// # Errors
    ///
    /// Returns the [`Violation`] this output exposes, if any.
    pub fn observe(&mut self, p: ProcessId, output: &Output) -> Result<(), Violation> {
        match output {
            Output::RbDelivered {
                key,
                sender,
                payload,
            } => self.observe_broadcast(p, *key, *sender, payload, true),
            Output::EbDelivered {
                key,
                sender,
                payload,
            } => self.observe_broadcast(p, *key, *sender, payload, false),
            Output::BcDecided { key, decision } => self.observe_bc(p, *key, *decision),
            Output::MvcDecided { key, decision } => self.observe_mvc(p, *key, decision),
            Output::VcDecided { key, vector } => self.observe_vc(p, *key, vector),
            Output::AbDelivered { key, delivery } => {
                self.observe_ab(p, *key, delivery.id, &delivery.payload)
            }
            // State-transfer frames are request/response traffic, not
            // agreement outputs; safety over them is enforced end-to-end
            // (f+1 manifest quorum + Merkle chunk proofs), not here.
            Output::Xfer { .. } => Ok(()),
        }
    }

    fn violation(
        predicate: &'static str,
        process: ProcessId,
        detail: String,
    ) -> Result<(), Violation> {
        Err(Violation {
            predicate,
            process,
            detail,
        })
    }

    fn observe_broadcast(
        &mut self,
        p: ProcessId,
        key: InstanceKey,
        sender: ProcessId,
        payload: &Bytes,
        is_rb: bool,
    ) -> Result<(), Violation> {
        let (layer, table) = if is_rb {
            ("rb", &mut self.rb)
        } else {
            ("eb", &mut self.eb)
        };
        let declared = match key {
            InstanceKey::Rb { sender, .. } | InstanceKey::Eb { sender, .. } => Some(sender),
            _ => None,
        };
        if declared.is_some_and(|s| s != sender) {
            return Self::violation(
                if is_rb {
                    "rb-integrity"
                } else {
                    "eb-integrity"
                },
                p,
                format!("{key:?} delivered with sender {sender} ≠ instance sender"),
            );
        }
        let state = table.entry(key).or_insert_with(|| BroadcastState {
            delivered: vec![None; self.n],
        });
        if state.delivered[p].is_some() {
            return Self::violation(
                if is_rb {
                    "rb-no-duplication"
                } else {
                    "eb-no-duplication"
                },
                p,
                format!("{key:?} delivered twice"),
            );
        }
        if let Some(other) = state.delivered.iter().flatten().next() {
            if other != payload {
                return Self::violation(
                    if is_rb {
                        "rb-agreement"
                    } else {
                        "eb-agreement"
                    },
                    p,
                    format!(
                        "{key:?}: delivered {payload:?} while another correct process \
                         delivered {other:?} ({layer} split)"
                    ),
                );
            }
        }
        state.delivered[p] = Some(payload.clone());
        if let Some(expected) = self.expected_broadcast.get(&key) {
            if expected != payload {
                return Self::violation(
                    if is_rb {
                        "rb-integrity"
                    } else {
                        "eb-integrity"
                    },
                    p,
                    format!("{key:?}: delivered {payload:?}, sender broadcast {expected:?}"),
                );
            }
        }
        Ok(())
    }

    fn observe_bc(
        &mut self,
        p: ProcessId,
        key: InstanceKey,
        decision: bool,
    ) -> Result<(), Violation> {
        let InstanceKey::Bc { tag } = key else {
            return Self::violation("bc-agreement", p, format!("decision under {key:?}"));
        };
        let decided = self
            .bc_decided
            .entry(tag)
            .or_insert_with(|| vec![None; self.n]);
        if decided[p].is_some() {
            return Self::violation("bc-no-duplication", p, format!("bc[{tag}] decided twice"));
        }
        if let Some(other) = decided.iter().flatten().next() {
            if *other != decision {
                return Self::violation(
                    "bc-agreement",
                    p,
                    format!("bc[{tag}]: decided {decision}, another correct process {other}"),
                );
            }
        }
        decided[p] = Some(decision);
        if let Some(props) = self.bc_proposals.get(&tag) {
            let correct: Vec<Option<bool>> = (0..self.n)
                .filter(|q| !self.corrupt[*q])
                .map(|q| props[q])
                .collect();
            // Validity: if every correct process proposed the same bit,
            // only that bit may be decided. (Requires all correct
            // proposals to be registered to be conclusive.)
            if correct.iter().all(|v| v.is_some()) {
                let first = correct[0];
                if correct.iter().all(|v| *v == first) && Some(decision) != first {
                    return Self::violation(
                        "bc-validity",
                        p,
                        format!(
                            "bc[{tag}]: decided {decision} though all correct proposed {:?}",
                            first.unwrap()
                        ),
                    );
                }
            }
        }
        Ok(())
    }

    fn observe_mvc(
        &mut self,
        p: ProcessId,
        key: InstanceKey,
        decision: &MvcValue,
    ) -> Result<(), Violation> {
        let InstanceKey::Mvc { tag } = key else {
            return Self::violation("mvc-agreement", p, format!("decision under {key:?}"));
        };
        let decided = self
            .mvc_decided
            .entry(tag)
            .or_insert_with(|| vec![None; self.n]);
        if decided[p].is_some() {
            return Self::violation("mvc-no-duplication", p, format!("mvc[{tag}] decided twice"));
        }
        if let Some(other) = decided.iter().flatten().next() {
            if other != decision {
                return Self::violation(
                    "mvc-agreement",
                    p,
                    format!("mvc[{tag}]: decided {decision:?}, another correct process {other:?}"),
                );
            }
        }
        decided[p] = Some(decision.clone());
        if let Some(v) = decision {
            if let Some(props) = self.mvc_proposals.get(&tag) {
                let all_correct_registered = (0..self.n)
                    .filter(|q| !self.corrupt[*q])
                    .all(|q| props[q].is_some());
                // A decided non-⊥ value needs n−2f matching INITs and
                // n−2f > f, so at least one correct process proposed it.
                if all_correct_registered
                    && !(0..self.n).any(|q| !self.corrupt[q] && props[q] == Some(Some(v.clone())))
                {
                    return Self::violation(
                        "mvc-validity",
                        p,
                        format!("mvc[{tag}]: decided {v:?}, proposed by no correct process"),
                    );
                }
            }
        }
        Ok(())
    }

    fn observe_vc(
        &mut self,
        p: ProcessId,
        key: InstanceKey,
        vector: &[Option<Bytes>],
    ) -> Result<(), Violation> {
        let InstanceKey::Vc { tag } = key else {
            return Self::violation("vc-agreement", p, format!("decision under {key:?}"));
        };
        let decided = self
            .vc_decided
            .entry(tag)
            .or_insert_with(|| vec![None; self.n]);
        if decided[p].is_some() {
            return Self::violation("vc-no-duplication", p, format!("vc[{tag}] decided twice"));
        }
        if let Some(other) = decided.iter().flatten().next() {
            if other.as_slice() != vector {
                return Self::violation(
                    "vc-agreement",
                    p,
                    format!("vc[{tag}]: decided vector differs from another correct process's"),
                );
            }
        }
        decided[p] = Some(vector.to_vec());
        if vector.len() != self.n {
            return Self::violation(
                "vc-validity",
                p,
                format!("vc[{tag}]: vector length {} ≠ n = {}", vector.len(), self.n),
            );
        }
        let non_bottom = vector.iter().filter(|e| e.is_some()).count();
        if non_bottom < self.n - self.f {
            return Self::violation(
                "vc-validity",
                p,
                format!(
                    "vc[{tag}]: only {non_bottom} non-⊥ entries, need ≥ n−f = {}",
                    self.n - self.f
                ),
            );
        }
        if let Some(props) = self.vc_proposals.get(&tag) {
            for q in 0..self.n {
                if self.corrupt[q] {
                    continue;
                }
                let (Some(expected), Some(entry)) = (props[q].as_ref(), vector[q].as_ref()) else {
                    continue;
                };
                if expected != entry {
                    return Self::violation(
                        "vc-validity",
                        p,
                        format!(
                            "vc[{tag}]: entry {q} is {entry:?}, but correct process {q} \
                             proposed {expected:?}"
                        ),
                    );
                }
            }
        }
        Ok(())
    }

    fn observe_ab(
        &mut self,
        p: ProcessId,
        key: InstanceKey,
        id: MsgId,
        payload: &Bytes,
    ) -> Result<(), Violation> {
        let InstanceKey::Ab { session } = key else {
            return Self::violation("ab-total-order", p, format!("delivery under {key:?}"));
        };
        let n = self.n;
        let state = self.ab.entry(session).or_insert_with(|| AbState {
            global_order: Vec::new(),
            cursor: vec![0; n],
            seen: vec![std::collections::HashSet::new(); n],
            payloads: HashMap::new(),
        });
        let pos = state.cursor[p];
        state.cursor[p] += 1;
        if !state.seen[p].insert(id) {
            return Self::violation(
                "ab-no-duplication",
                p,
                format!("ab[{session}]: {id:?} a-delivered twice"),
            );
        }
        match state.global_order.get(pos) {
            Some(expected) if *expected != id => {
                return Self::violation(
                    "ab-total-order",
                    p,
                    format!(
                        "ab[{session}]: position {pos} is {id:?} here but {expected:?} at \
                         another correct process"
                    ),
                );
            }
            Some(_) => {}
            None => state.global_order.push(id),
        }
        if let Some(first) = state.payloads.get(&id) {
            if first != payload {
                return Self::violation(
                    "ab-agreement",
                    p,
                    format!("ab[{session}]: {id:?} payload differs between correct processes"),
                );
            }
        } else {
            state.payloads.insert(id, payload.clone());
        }
        if let Some(expected) = self.expected_ab.get(&id) {
            if expected != payload {
                return Self::violation(
                    "ab-integrity",
                    p,
                    format!(
                        "ab[{session}]: {id:?} delivered {payload:?}, sender broadcast \
                         {expected:?}"
                    ),
                );
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ab::AbDelivery;

    fn rb_out(seq: u64, payload: &'static [u8]) -> Output {
        Output::RbDelivered {
            key: InstanceKey::Rb { sender: 0, seq },
            sender: 0,
            payload: Bytes::from_static(payload),
        }
    }

    #[test]
    fn rb_split_is_caught() {
        let mut c = InvariantChecker::new(4);
        c.observe(1, &rb_out(1, b"a")).unwrap();
        let err = c.observe(2, &rb_out(1, b"b")).unwrap_err();
        assert_eq!(err.predicate, "rb-agreement");
        assert_eq!(err.process, 2);
    }

    #[test]
    fn rb_double_delivery_is_caught() {
        let mut c = InvariantChecker::new(4);
        c.observe(1, &rb_out(1, b"a")).unwrap();
        let err = c.observe(1, &rb_out(1, b"a")).unwrap_err();
        assert_eq!(err.predicate, "rb-no-duplication");
    }

    #[test]
    fn rb_integrity_checks_expected_payload() {
        let mut c = InvariantChecker::new(4);
        c.expect_broadcast(
            InstanceKey::Rb { sender: 0, seq: 1 },
            Bytes::from_static(b"real"),
        );
        let err = c.observe(1, &rb_out(1, b"fake")).unwrap_err();
        assert_eq!(err.predicate, "rb-integrity");
    }

    #[test]
    fn bc_disagreement_and_validity_are_caught() {
        let mut c = InvariantChecker::new(4);
        let key = InstanceKey::Bc { tag: 7 };
        c.observe(
            0,
            &Output::BcDecided {
                key,
                decision: true,
            },
        )
        .unwrap();
        let err = c
            .observe(
                1,
                &Output::BcDecided {
                    key,
                    decision: false,
                },
            )
            .unwrap_err();
        assert_eq!(err.predicate, "bc-agreement");

        let mut c = InvariantChecker::new(4);
        c.mark_corrupt(3);
        for p in 0..3 {
            c.expect_bc(7, p, true);
        }
        let err = c
            .observe(
                0,
                &Output::BcDecided {
                    key,
                    decision: false,
                },
            )
            .unwrap_err();
        assert_eq!(err.predicate, "bc-validity");
    }

    #[test]
    fn mvc_validity_requires_a_correct_proposer() {
        let mut c = InvariantChecker::new(4);
        c.mark_corrupt(3);
        let key = InstanceKey::Mvc { tag: 2 };
        for p in 0..3 {
            c.expect_mvc(2, p, Some(Bytes::from_static(b"v")));
        }
        // ⊥ is always acceptable.
        c.observe(
            0,
            &Output::MvcDecided {
                key,
                decision: None,
            },
        )
        .unwrap();
        let mut c2 = InvariantChecker::new(4);
        c2.mark_corrupt(3);
        for p in 0..3 {
            c2.expect_mvc(2, p, Some(Bytes::from_static(b"v")));
        }
        let err = c2
            .observe(
                0,
                &Output::MvcDecided {
                    key,
                    decision: Some(Bytes::from_static(b"forged")),
                },
            )
            .unwrap_err();
        assert_eq!(err.predicate, "mvc-validity");
    }

    #[test]
    fn vc_entry_forgery_is_caught() {
        let mut c = InvariantChecker::new(4);
        c.expect_vc(3, 1, Bytes::from_static(b"real"));
        let key = InstanceKey::Vc { tag: 3 };
        let mut vector: Vec<Option<Bytes>> = vec![Some(Bytes::from_static(b"x")); 4];
        vector[1] = Some(Bytes::from_static(b"forged"));
        let err = c
            .observe(0, &Output::VcDecided { key, vector })
            .unwrap_err();
        assert_eq!(err.predicate, "vc-validity");
    }

    #[test]
    fn ab_order_divergence_is_caught() {
        let mut c = InvariantChecker::new(4);
        let key = InstanceKey::Ab { session: 0 };
        let id_a = MsgId { sender: 0, rbid: 1 };
        let id_b = MsgId { sender: 1, rbid: 1 };
        let deliver = |id: MsgId| Output::AbDelivered {
            key,
            delivery: AbDelivery {
                id,
                payload: Bytes::from_static(b"m"),
            },
        };
        c.observe(0, &deliver(id_a)).unwrap();
        c.observe(0, &deliver(id_b)).unwrap();
        c.observe(1, &deliver(id_a)).unwrap();
        let err = c.observe(2, &deliver(id_b)).unwrap_err();
        assert_eq!(err.predicate, "ab-total-order");
    }

    #[test]
    fn checker_is_incremental_over_a_cluster() {
        let mut cluster = Cluster::new(4, 9);
        let mut checker = InvariantChecker::new(4);
        let (key, step) = cluster.stack_mut(0).rb_broadcast(Bytes::from_static(b"ok"));
        checker.expect_broadcast(key, Bytes::from_static(b"ok"));
        cluster.absorb(0, step);
        while cluster.step() {
            checker.check_cluster(&cluster).expect("no violation");
        }
        // All four processes delivered; cursors consumed everything.
        checker.check_cluster(&cluster).expect("idempotent");
    }
}
