//! Echo broadcast — the *matrix echo broadcast* (paper §2.3).
//!
//! A weaker, cheaper alternative to reliable broadcast based on Reiter's
//! echo multicast, with digital signatures replaced by vectors of
//! keyed hashes. If the sender is corrupt, not every correct process is
//! guaranteed to deliver — but every correct process that *does* deliver,
//! delivers the same message.
//!
//! Flow (three communication steps):
//!
//! 1. the sender broadcasts `(INIT, m)`;
//! 2. each process `p_i` builds the hash vector `V_i[j] = H(m ‖ s_ij)` and
//!    unicasts `(VECT, V_i)` back to the sender;
//! 3. the sender collects `n - f` vectors into a matrix `M` (row `j` is
//!    `V_j`) and unicasts to each `p_j` the column `j` of `M` as
//!    `(MAT, V'_j)`; `p_j` verifies the hashes it can check (entry `i`
//!    with `s_ij`) and delivers `m` if at least `⌊(n+f)/2⌋ + 1` are
//!    correct.
//!
//! The echo-quorum threshold `⌊(n+f)/2⌋ + 1` makes any two supporter sets
//! intersect in more than `f` processes, hence in a correct one — and a
//! correct process hashes only the single `m` it received in `INIT`. That
//! pins a corrupt sender to one message among delivering processes.
//!
//! A mere `f + 1` valid entries would NOT suffice: the receiver's *own*
//! row counts toward the threshold (it verifies trivially, since the
//! receiver hashed whatever `INIT` it was given), so a corrupt sender
//! could serve each equivocation victim a column containing its own
//! forged row plus the victim's honest row — `f + 1` supporters for two
//! different messages, splitting the correct deliverers. The adversarial
//! conformance suite (`tests/properties.rs`,
//! `eb_hash_vector_equivocation_cannot_split`) constructs exactly that
//! attack. Liveness is unharmed: with a correct sender all `n - f`
//! collected rows verify, and `n - f ≥ ⌊(n+f)/2⌋ + 1` whenever
//! `n > 3f`.

use crate::codec::{Reader, WireError, WireMessage, Writer};
use crate::config::Group;
use crate::error::ProtocolError;
use crate::step::{FaultKind, Step};
use crate::ProcessId;
use bytes::Bytes;
use ritas_crypto::mac::{self, MacTag, TAG_LEN};
use ritas_crypto::{Digest, ProcessKeys, Sha256};
use ritas_metrics::{Layer, Metrics, SpanAnnotation};

/// Upper bound on vector entries accepted by the decoder (defense against
/// allocation attacks; far above any plausible group size).
const MAX_VECTOR_LEN: usize = 4096;

/// Messages of the matrix echo broadcast.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EbMessage {
    /// The sender's initial transmission of `m`.
    Init(Bytes),
    /// A receiver's hash vector `V_i`, unicast to the sender.
    Vect(Vec<MacTag>),
    /// One matrix column, unicast by the sender to its receiver; `None`
    /// marks rows of processes whose `VECT` was not collected.
    Mat(Vec<Option<MacTag>>),
}

const TAG_INIT: u8 = 1;
const TAG_VECT: u8 = 2;
const TAG_MAT: u8 = 3;

fn encode_tag_vec(w: &mut Writer, v: &[MacTag]) {
    w.u32(v.len() as u32);
    for t in v {
        w.raw(t.as_bytes());
    }
}

fn decode_tag_vec(r: &mut Reader<'_>) -> Result<Vec<MacTag>, WireError> {
    let len = r.u32("eb.vect.len")? as usize;
    if len > MAX_VECTOR_LEN {
        return Err(WireError::FieldTooLong {
            what: "eb.vect",
            len,
        });
    }
    (0..len)
        .map(|_| Ok(MacTag::from_bytes(r.array::<TAG_LEN>("eb.vect.tag")?)))
        .collect()
}

impl WireMessage for EbMessage {
    fn encode(&self, w: &mut Writer) {
        match self {
            EbMessage::Init(m) => {
                w.u8(TAG_INIT).bytes(m);
            }
            EbMessage::Vect(v) => {
                w.u8(TAG_VECT);
                encode_tag_vec(w, v);
            }
            EbMessage::Mat(col) => {
                w.u8(TAG_MAT).u32(col.len() as u32);
                for entry in col {
                    match entry {
                        Some(t) => {
                            w.u8(1).raw(t.as_bytes());
                        }
                        None => {
                            w.u8(0);
                        }
                    }
                }
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8("eb.tag")? {
            TAG_INIT => Ok(EbMessage::Init(r.bytes("eb.payload")?)),
            TAG_VECT => Ok(EbMessage::Vect(decode_tag_vec(r)?)),
            TAG_MAT => {
                let len = r.u32("eb.mat.len")? as usize;
                if len > MAX_VECTOR_LEN {
                    return Err(WireError::FieldTooLong {
                        what: "eb.mat",
                        len,
                    });
                }
                let mut col = Vec::with_capacity(len);
                for _ in 0..len {
                    col.push(match r.u8("eb.mat.present")? {
                        0 => None,
                        1 => Some(MacTag::from_bytes(r.array::<TAG_LEN>("eb.mat.tag")?)),
                        t => {
                            return Err(WireError::InvalidTag {
                                what: "eb.mat.present",
                                tag: t,
                            })
                        }
                    });
                }
                Ok(EbMessage::Mat(col))
            }
            t => Err(WireError::InvalidTag {
                what: "eb.tag",
                tag: t,
            }),
        }
    }
}

/// Step type of an echo broadcast instance.
pub type EbStep = Step<EbMessage, Bytes>;

/// State of one matrix echo broadcast instance (one message, one
/// designated sender), as seen by process `me`.
///
/// The sender's own instance plays both roles: it loops its `INIT` back to
/// itself, contributes its own row, sends itself a column and delivers
/// like any receiver.
#[derive(Debug, Clone)]
pub struct EchoBroadcast {
    group: Group,
    me: ProcessId,
    sender: ProcessId,
    keys: ProcessKeys,
    sent_init: bool,
    sent_vect: bool,
    delivered: bool,
    /// Digest of the `INIT` payload seen so far (equivocation detection).
    init_digest: Option<[u8; 32]>,
    /// The payload, once known.
    payload: Option<Bytes>,
    /// Sender role: collected rows of the matrix.
    rows: Vec<Option<Vec<MacTag>>>,
    /// Receiver role: a column that arrived before `INIT` (buffered).
    pending_column: Option<Vec<Option<MacTag>>>,
    metrics: Metrics,
    /// Span path of this instance; set by the owner at creation.
    span_path: Option<String>,
}

impl EchoBroadcast {
    /// Creates the instance for a broadcast by `sender`, as seen by `me`.
    ///
    /// `keys` must be `me`'s view of the pairwise key table.
    ///
    /// # Panics
    ///
    /// Panics if ids are out of group or `keys` is for a different process
    /// or group size.
    pub fn new(group: Group, me: ProcessId, sender: ProcessId, keys: ProcessKeys) -> Self {
        assert!(group.contains(me), "me out of group");
        assert!(group.contains(sender), "sender out of group");
        assert_eq!(keys.me(), me, "key table view belongs to another process");
        assert_eq!(keys.len(), group.n(), "key table size mismatch");
        EchoBroadcast {
            group,
            me,
            sender,
            keys,
            sent_init: false,
            sent_vect: false,
            delivered: false,
            init_digest: None,
            payload: None,
            rows: vec![None; group.n()],
            pending_column: None,
            metrics: Metrics::default(),
            span_path: None,
        }
    }

    /// Attaches the process-wide metric registry (a free-standing
    /// instance keeps its private default registry otherwise).
    pub fn set_metrics(&mut self, metrics: Metrics) {
        self.metrics = metrics;
    }

    /// Assigns this instance's span path and opens its span. Call after
    /// [`EchoBroadcast::set_metrics`], at instance-creation time.
    pub fn set_span_path(&mut self, path: String) {
        self.metrics.span_open(path.clone(), Layer::Eb);
        self.span_path = Some(path);
    }

    /// The designated sender of this instance.
    pub fn sender(&self) -> ProcessId {
        self.sender
    }

    /// Whether this instance has delivered.
    pub fn is_delivered(&self) -> bool {
        self.delivered
    }

    /// Starts the broadcast (sender only).
    ///
    /// # Errors
    ///
    /// [`ProtocolError::NotSender`] when `me` is not the sender,
    /// [`ProtocolError::AlreadyStarted`] on a second call.
    pub fn broadcast(&mut self, payload: Bytes) -> Result<EbStep, ProtocolError> {
        if self.me != self.sender {
            return Err(ProtocolError::NotSender {
                me: self.me,
                sender: self.sender,
            });
        }
        if self.sent_init {
            return Err(ProtocolError::AlreadyStarted);
        }
        self.sent_init = true;
        // The sender knows the payload immediately; recording it here
        // (rather than waiting for the looped-back INIT) lets `on_vect`
        // screen incoming rows before they enter the matrix.
        self.payload = Some(payload.clone());
        Ok(Step::broadcast(EbMessage::Init(payload)))
    }

    /// Handles a protocol message from `from`.
    pub fn handle_message(&mut self, from: ProcessId, message: EbMessage) -> EbStep {
        if !self.group.contains(from) {
            return Step::fault(from, FaultKind::NotEntitled);
        }
        match message {
            EbMessage::Init(m) => {
                self.metrics.eb_init_recv.inc();
                self.on_init(from, m)
            }
            EbMessage::Vect(v) => {
                self.metrics.eb_vect_recv.inc();
                self.on_vect(from, v)
            }
            EbMessage::Mat(col) => {
                self.metrics.eb_mat_recv.inc();
                self.on_mat(from, col)
            }
        }
    }

    fn on_init(&mut self, from: ProcessId, m: Bytes) -> EbStep {
        if from != self.sender {
            return Step::fault(from, FaultKind::NotEntitled);
        }
        let d = Sha256::digest(&m);
        match self.init_digest {
            Some(prev) if prev != d => return Step::fault(from, FaultKind::Equivocation),
            Some(_) => return Step::none(),
            None => self.init_digest = Some(d),
        }
        self.payload = Some(m.clone());
        let mut step = Step::none();
        if !self.sent_vect {
            self.sent_vect = true;
            let v = mac::hash_vector(&m, &self.keys);
            step.push_unicast(self.sender, EbMessage::Vect(v));
        }
        // A column may have been waiting for the payload.
        if let Some(col) = self.pending_column.take() {
            step.extend(self.try_deliver(&col));
        }
        step
    }

    fn on_vect(&mut self, from: ProcessId, v: Vec<MacTag>) -> EbStep {
        if self.me != self.sender {
            // Receivers never get VECTs; treat as misbehaviour.
            return Step::fault(from, FaultKind::NotEntitled);
        }
        if v.len() != self.group.n() {
            return Step::fault(from, FaultKind::Malformed);
        }
        if self.rows[from].is_some() {
            return Step::none(); // duplicate row
        }
        // Screen the row before it enters the matrix: the sender can
        // verify the one entry computed with a key it holds (its own
        // index). A row that fails here is provably not `H(m ‖ ·)` over
        // the broadcast payload and would only poison columns. A VECT
        // arriving before `broadcast()` can only come from a corrupt peer
        // (correct processes echo an INIT that does not exist yet).
        let Some(payload) = self.payload.as_ref() else {
            return Step::fault(from, FaultKind::NotEntitled);
        };
        if !mac::verify(payload, &self.keys.key_for(from), &v[self.me]) {
            return Step::fault(from, FaultKind::BadAuthenticator);
        }
        self.rows[from] = Some(v);
        let collected = self.rows.iter().filter(|r| r.is_some()).count();
        if collected < self.group.quorum() {
            return Step::none();
        }
        if collected == self.group.quorum() {
            // `from`'s row closed the n−f row quorum that releases the
            // matrix columns — the last arrival on this echo step.
            if let Some(path) = &self.span_path {
                self.metrics
                    .span_annotate(path, SpanAnnotation::QuorumMet, from as u64);
            }
        }
        // Enough rows: emit column j to every process j. Rows that pass
        // the screen above can still carry invalid entries for OTHER
        // receivers (only corrupt processes can produce such rows), so a
        // first matrix built from the fastest `n - f` rows may fall short
        // of the echo quorum at some receiver. Each straggler row
        // therefore re-emits updated columns — at most `f` extra rounds —
        // until every correct row is in, at which point every column
        // carries at least `n - f ≥ ⌊(n+f)/2⌋ + 1` valid entries.
        let mut step = Step::none();
        for j in self.group.processes() {
            let column: Vec<Option<MacTag>> = self
                .rows
                .iter()
                .map(|row| row.as_ref().map(|r| r[j]))
                .collect();
            step.push_unicast(j, EbMessage::Mat(column));
        }
        step
    }

    fn on_mat(&mut self, from: ProcessId, col: Vec<Option<MacTag>>) -> EbStep {
        if from != self.sender {
            return Step::fault(from, FaultKind::NotEntitled);
        }
        if col.len() != self.group.n() {
            return Step::fault(from, FaultKind::Malformed);
        }
        if self.delivered {
            return Step::none();
        }
        if self.payload.is_some() {
            self.try_deliver(&col)
        } else {
            // INIT not here yet (asynchrony): hold the column.
            self.pending_column = Some(col);
            Step::none()
        }
    }

    fn try_deliver(&mut self, col: &[Option<MacTag>]) -> EbStep {
        let payload = self.payload.as_ref().expect("payload known").clone();
        let valid = mac::count_valid_column_entries(&payload, &self.keys, col);
        if valid >= self.group.echo_threshold() {
            self.delivered = true;
            self.metrics.eb_delivered.inc();
            self.metrics
                .trace(Layer::Eb, "deliver", format!("eb:{}", self.sender), 0);
            if let Some(path) = &self.span_path {
                self.metrics.span_close(path);
            }
            Step::output(payload)
        } else {
            self.metrics.eb_mac_rejected.inc();
            Step::fault(self.sender, FaultKind::BadAuthenticator)
        }
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // indexing by process id is idiomatic here
mod tests {
    use super::*;
    use crate::step::Target;
    use ritas_crypto::KeyTable;

    fn setup(n: usize, sender: ProcessId) -> Vec<EchoBroadcast> {
        let g = Group::new(n).unwrap();
        let table = KeyTable::dealer(n, 42);
        (0..n)
            .map(|me| EchoBroadcast::new(g, me, sender, table.view_of(me)))
            .collect()
    }

    fn payload(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    /// Runs messages to quiescence; returns per-process deliveries.
    fn run(
        insts: &mut [EchoBroadcast],
        from: ProcessId,
        initial: EbStep,
        skip: &[ProcessId],
    ) -> Vec<Option<Bytes>> {
        let n = insts.len();
        let mut delivered = vec![None; n];
        let mut queue: Vec<(ProcessId, ProcessId, EbMessage)> = Vec::new();
        let enqueue = |queue: &mut Vec<_>,
                       from: ProcessId,
                       step: EbStep,
                       delivered: &mut Vec<Option<Bytes>>| {
            for out in step.messages {
                match out.target {
                    Target::All => {
                        for to in 0..n {
                            queue.push((from, to, out.message.clone()));
                        }
                    }
                    Target::One(to) => queue.push((from, to, out.message.clone())),
                }
            }
            for o in step.outputs {
                delivered[from] = Some(o);
            }
        };
        enqueue(&mut queue, from, initial, &mut delivered);
        while let Some((src, dst, msg)) = queue.pop() {
            if skip.contains(&dst) {
                continue;
            }
            let step = insts[dst].handle_message(src, msg);
            enqueue(&mut queue, dst, step, &mut delivered);
        }
        delivered
    }

    #[test]
    fn codec_roundtrip_all_variants() {
        let tags = vec![MacTag([1u8; TAG_LEN]), MacTag([2u8; TAG_LEN])];
        for msg in [
            EbMessage::Init(payload("m")),
            EbMessage::Vect(tags.clone()),
            EbMessage::Mat(vec![Some(tags[0]), None, Some(tags[1])]),
        ] {
            assert_eq!(EbMessage::from_bytes(&msg.to_bytes()).unwrap(), msg);
        }
    }

    #[test]
    fn codec_rejects_huge_vector() {
        let mut w = Writer::new();
        w.u8(TAG_VECT).u32((MAX_VECTOR_LEN + 1) as u32);
        assert!(matches!(
            EbMessage::from_bytes(&w.freeze()),
            Err(WireError::FieldTooLong { .. })
        ));
    }

    #[test]
    fn codec_rejects_bad_present_flag() {
        let mut w = Writer::new();
        w.u8(TAG_MAT).u32(1).u8(7);
        assert!(matches!(
            EbMessage::from_bytes(&w.freeze()),
            Err(WireError::InvalidTag { .. })
        ));
    }

    #[test]
    fn all_processes_deliver_with_correct_sender() {
        let mut insts = setup(4, 0);
        let init = insts[0].broadcast(payload("m")).unwrap();
        let delivered = run(&mut insts, 0, init, &[]);
        for (i, d) in delivered.iter().enumerate() {
            assert_eq!(d.as_ref(), Some(&payload("m")), "process {i}");
        }
    }

    #[test]
    fn sender_delivers_its_own_message() {
        let mut insts = setup(4, 2);
        let init = insts[2].broadcast(payload("own")).unwrap();
        let delivered = run(&mut insts, 2, init, &[]);
        assert_eq!(delivered[2].as_ref(), Some(&payload("own")));
    }

    #[test]
    fn delivery_with_one_unresponsive_receiver() {
        // Process 3 never answers: the sender still gathers n-f = 3 rows.
        let mut insts = setup(4, 0);
        let init = insts[0].broadcast(payload("m")).unwrap();
        let delivered = run(&mut insts, 0, init, &[3]);
        for i in 0..3 {
            assert_eq!(delivered[i].as_ref(), Some(&payload("m")), "process {i}");
        }
        assert!(delivered[3].is_none());
    }

    #[test]
    fn column_with_too_few_valid_hashes_is_rejected() {
        let g = Group::new(4).unwrap();
        let table = KeyTable::dealer(4, 1);
        let mut rx = EchoBroadcast::new(g, 1, 0, table.view_of(1));
        let _ = rx.handle_message(0, EbMessage::Init(payload("m")));
        // A column of garbage tags: 0 valid < ⌊(n+f)/2⌋+1 = 3.
        let col = vec![Some(MacTag([9u8; TAG_LEN])); 4];
        let step = rx.handle_message(0, EbMessage::Mat(col));
        assert!(step.outputs.is_empty());
        assert_eq!(step.faults[0].kind, FaultKind::BadAuthenticator);
        assert!(!rx.is_delivered());
    }

    #[test]
    fn column_at_exactly_echo_threshold_delivers() {
        let g = Group::new(4).unwrap();
        let table = KeyTable::dealer(4, 1);
        let mut rx = EchoBroadcast::new(g, 1, 0, table.view_of(1));
        let _ = rx.handle_message(0, EbMessage::Init(payload("m")));
        // Rows 0, 2, 3 computed honestly (tags H(m ‖ s_{i,1})): exactly
        // ⌊(n+f)/2⌋+1 = 3 valid entries, the delivery threshold.
        let honest = |i: usize| mac::authenticate(b"m", &table.view_of(i).key_for(1));
        let col = vec![Some(honest(0)), None, Some(honest(2)), Some(honest(3))];
        let step = rx.handle_message(0, EbMessage::Mat(col));
        assert_eq!(step.outputs, vec![payload("m")]);
    }

    #[test]
    fn column_below_echo_threshold_is_rejected() {
        // f+1 = 2 valid entries used to deliver; that let an equivocating
        // sender split correct deliverers by counting the receiver's own
        // row (see the module docs). One short of the echo quorum must be
        // rejected.
        let g = Group::new(4).unwrap();
        let table = KeyTable::dealer(4, 1);
        let mut rx = EchoBroadcast::new(g, 1, 0, table.view_of(1));
        let _ = rx.handle_message(0, EbMessage::Init(payload("m")));
        let honest = |i: usize| mac::authenticate(b"m", &table.view_of(i).key_for(1));
        // Sender's row plus the receiver's own row: the classic split
        // column. 2 valid < 3.
        let col = vec![
            Some(honest(0)),
            Some(honest(1)),
            None,
            Some(MacTag([0u8; TAG_LEN])),
        ];
        let step = rx.handle_message(0, EbMessage::Mat(col));
        assert!(step.outputs.is_empty());
        assert_eq!(step.faults[0].kind, FaultKind::BadAuthenticator);
        assert!(!rx.is_delivered());
    }

    #[test]
    fn mat_before_init_is_buffered() {
        let g = Group::new(4).unwrap();
        let table = KeyTable::dealer(4, 1);
        let mut rx = EchoBroadcast::new(g, 1, 0, table.view_of(1));
        let honest = |i: usize| mac::authenticate(b"m", &table.view_of(i).key_for(1));
        // Column entries are indexed by ROW process.
        let col = vec![Some(honest(0)), None, Some(honest(2)), Some(honest(3))];
        let s1 = rx.handle_message(0, EbMessage::Mat(col));
        assert!(s1.outputs.is_empty());
        let s2 = rx.handle_message(0, EbMessage::Init(payload("m")));
        assert_eq!(s2.outputs, vec![payload("m")]);
    }

    #[test]
    fn init_equivocation_faulted() {
        let g = Group::new(4).unwrap();
        let table = KeyTable::dealer(4, 1);
        let mut rx = EchoBroadcast::new(g, 1, 0, table.view_of(1));
        let _ = rx.handle_message(0, EbMessage::Init(payload("a")));
        let step = rx.handle_message(0, EbMessage::Init(payload("b")));
        assert_eq!(step.faults[0].kind, FaultKind::Equivocation);
    }

    #[test]
    fn vect_to_non_sender_faulted() {
        let g = Group::new(4).unwrap();
        let table = KeyTable::dealer(4, 1);
        let mut rx = EchoBroadcast::new(g, 1, 0, table.view_of(1));
        let step = rx.handle_message(2, EbMessage::Vect(vec![MacTag([0; TAG_LEN]); 4]));
        assert_eq!(step.faults[0].kind, FaultKind::NotEntitled);
    }

    #[test]
    fn wrong_length_vect_faulted() {
        let g = Group::new(4).unwrap();
        let table = KeyTable::dealer(4, 1);
        let mut sender = EchoBroadcast::new(g, 0, 0, table.view_of(0));
        let step = sender.handle_message(2, EbMessage::Vect(vec![MacTag([0; TAG_LEN]); 3]));
        assert_eq!(step.faults[0].kind, FaultKind::Malformed);
    }

    #[test]
    fn duplicate_vect_rows_ignored() {
        let g = Group::new(4).unwrap();
        let table = KeyTable::dealer(4, 1);
        let mut sender = EchoBroadcast::new(g, 0, 0, table.view_of(0));
        let _ = sender.broadcast(payload("m")).unwrap();
        let row = |i: usize| mac::hash_vector(b"m", &table.view_of(i));
        let s1 = sender.handle_message(1, EbMessage::Vect(row(1)));
        assert!(s1.is_empty());
        let s2 = sender.handle_message(1, EbMessage::Vect(row(1)));
        assert!(s2.is_empty());
        // Still needs a third distinct row before emitting the matrix.
        let s3 = sender.handle_message(2, EbMessage::Vect(row(2)));
        assert!(s3.is_empty());
        let s4 = sender.handle_message(3, EbMessage::Vect(row(3)));
        assert_eq!(s4.messages.len(), 4); // one column per process
    }

    #[test]
    fn sender_screens_rows_it_can_disprove() {
        // The sender holds the key for its own entry of every row; a row
        // whose sender-entry does not verify is provably bogus and must
        // not enter the matrix (it would only poison columns).
        let g = Group::new(4).unwrap();
        let table = KeyTable::dealer(4, 1);
        let mut sender = EchoBroadcast::new(g, 0, 0, table.view_of(0));
        let _ = sender.broadcast(payload("m")).unwrap();
        let step = sender.handle_message(1, EbMessage::Vect(vec![MacTag([1; TAG_LEN]); 4]));
        assert_eq!(step.faults[0].kind, FaultKind::BadAuthenticator);
        // The slot stays free: an honest retransmission is still accepted.
        let honest = mac::hash_vector(b"m", &table.view_of(1));
        let s2 = sender.handle_message(1, EbMessage::Vect(honest));
        assert!(s2.faults.is_empty());
    }

    #[test]
    fn straggler_row_reemits_columns_until_quorum_everywhere() {
        // A corrupt row can pass the sender's screen (valid entry for the
        // sender's index) while carrying garbage for everyone else. The
        // first matrix then leaves honest receivers below the echo
        // quorum; the straggler's honest row must trigger a fresh, fuller
        // matrix so they still deliver.
        let g = Group::new(4).unwrap();
        let table = KeyTable::dealer(4, 1);
        let mut sender = EchoBroadcast::new(g, 0, 0, table.view_of(0));
        let mut rx = EchoBroadcast::new(g, 1, 0, table.view_of(1));
        let _ = sender.broadcast(payload("m")).unwrap();
        let _ = rx.handle_message(0, EbMessage::Init(payload("m")));
        // Sender's own row 0 (normally looped back via its own INIT).
        let _ = sender.handle_message(
            0,
            EbMessage::Vect(mac::hash_vector(b"m", &table.view_of(0))),
        );
        // Corrupt process 2: entry for the sender is honest, the rest is
        // garbage.
        let mut poisoned = vec![MacTag([9; TAG_LEN]); 4];
        poisoned[0] = mac::authenticate(b"m", &table.view_of(2).key_for(0));
        let _ = sender.handle_message(2, EbMessage::Vect(poisoned));
        // Row 1 (honest) completes the n-f quorum: first matrix goes out,
        // but receiver 1's column holds only two valid entries (rows 0
        // and 1) — below the echo quorum of 3.
        let first = sender.handle_message(
            1,
            EbMessage::Vect(mac::hash_vector(b"m", &table.view_of(1))),
        );
        assert_eq!(first.messages.len(), 4);
        let col_of = |step: &EbStep| match &step.messages[1].message {
            EbMessage::Mat(col) => col.clone(),
            other => panic!("expected MAT, got {other:?}"),
        };
        let d1 = rx.handle_message(0, EbMessage::Mat(col_of(&first)));
        assert!(
            d1.outputs.is_empty(),
            "below-quorum column must not deliver"
        );
        assert!(!rx.is_delivered());
        // Straggler row 3 arrives: the sender re-emits; the new column
        // has three valid entries and receiver 1 delivers.
        let second = sender.handle_message(
            3,
            EbMessage::Vect(mac::hash_vector(b"m", &table.view_of(3))),
        );
        assert_eq!(second.messages.len(), 4, "straggler must re-emit columns");
        let d2 = rx.handle_message(0, EbMessage::Mat(col_of(&second)));
        assert_eq!(d2.outputs, vec![payload("m")]);
    }

    #[test]
    fn mat_from_non_sender_faulted() {
        let g = Group::new(4).unwrap();
        let table = KeyTable::dealer(4, 1);
        let mut rx = EchoBroadcast::new(g, 1, 0, table.view_of(1));
        let step = rx.handle_message(2, EbMessage::Mat(vec![None; 4]));
        assert_eq!(step.faults[0].kind, FaultKind::NotEntitled);
    }

    #[test]
    fn equivocating_sender_cannot_split_deliveries() {
        // A corrupt sender (process 0) sends INIT "m1" to p1 and p2 but
        // INIT "m2" to p3, then builds the best matrices it can for each
        // side. p1/p2 can deliver m1 (three rows over m1: the sender's
        // plus two correct receivers'), but p3 can never collect
        // ⌊(n+f)/2⌋+1 = 3 valid hashes over m2: only the sender's forged
        // row and p3's OWN honest row vouch for it — 2 < 3. The echo
        // broadcast property — correct deliverers deliver the same
        // message — holds.
        let g = Group::new(4).unwrap();
        let table = KeyTable::dealer(4, 13);
        let rx = |me: usize| EchoBroadcast::new(g, me, 0, table.view_of(me));
        let mut p1 = rx(1);
        let mut p2 = rx(2);
        let mut p3 = rx(3);

        let m1 = payload("m1");
        let m2 = payload("m2");
        // Equivocating INITs.
        let s1 = p1.handle_message(0, EbMessage::Init(m1.clone()));
        let s2 = p2.handle_message(0, EbMessage::Init(m1.clone()));
        let s3 = p3.handle_message(0, EbMessage::Init(m2.clone()));
        // Extract the honest VECT rows p1/p2 produced over m1 (sent to
        // the sender, i.e. the adversary).
        let row = |s: &EbStep| match &s.messages[0].message {
            EbMessage::Vect(v) => v.clone(),
            other => panic!("expected VECT, got {other:?}"),
        };
        let row1 = row(&s1);
        let row2 = row(&s2);
        let row3 = row(&s3); // p3's honest row — over m2!
                             // The adversary's own rows for both messages.
        let row0_m1 = mac::hash_vector(&m1, &table.view_of(0));
        let row0_m2 = mac::hash_vector(&m2, &table.view_of(0));

        // Best column it can offer p1: rows {0, 1, 2} over m1 → delivers.
        let col_p1 = vec![Some(row0_m1[1]), Some(row1[1]), Some(row2[1]), None];
        let d1 = p1.handle_message(0, EbMessage::Mat(col_p1));
        assert_eq!(d1.outputs, vec![m1.clone()]);

        // Best column it can offer p3 for m2: its own forged row plus
        // p3's OWN honest row (p3 hashed m2, so that entry verifies). It
        // pads with p1's m1 row, which cannot verify against m2. Under an
        // f+1 threshold this column DID deliver, splitting the correct
        // deliverers; the echo quorum demands a third supporter that does
        // not exist.
        let col_p3 = vec![Some(row0_m2[3]), Some(row1[3]), None, Some(row3[3])];
        let d3 = p3.handle_message(0, EbMessage::Mat(col_p3));
        assert!(
            d3.outputs.is_empty(),
            "p3 must not deliver the equivocated m2"
        );
        assert_eq!(d3.faults[0].kind, FaultKind::BadAuthenticator);
        assert!(!p3.is_delivered());
    }

    #[test]
    fn larger_group_delivers() {
        let mut insts = setup(7, 4);
        let init = insts[4].broadcast(payload("seven")).unwrap();
        let delivered = run(&mut insts, 4, init, &[]);
        for (i, d) in delivered.iter().enumerate() {
            assert_eq!(d.as_ref(), Some(&payload("seven")), "process {i}");
        }
    }
}
