//! Randomized binary consensus — Bracha's protocol (paper §2.4).
//!
//! Each process proposes a bit; all correct processes decide the same bit,
//! and if all correct processes propose `v` the decision is `v`. The
//! protocol is the only randomized layer of the stack: it circumvents FLP
//! with a *local coin* and terminates with probability 1, with no timing
//! assumptions whatsoever.
//!
//! It proceeds in rounds of three steps. In each step every process
//! (reliably) broadcasts a value and waits for `n − f` *valid* values:
//!
//! 1. broadcast `v_i`; set `v_i` to the **majority** of the values
//!    received;
//! 2. broadcast `v_i`; if more than half the received values are equal,
//!    set `v_i` to that value, else `v_i ← ⊥`;
//! 3. broadcast `v_i`; if `≥ 2f+1` received values are some `v ≠ ⊥`,
//!    **decide** `v`; else if `≥ f+1` are `v ≠ ⊥`, adopt `v_i ← v`; else
//!    flip a fair **coin**; in all cases start the next round (a decided
//!    process participates for one more round so laggards can finish).
//!
//! Two implementation aspects deserve attention:
//!
//! * **Validation** ([`validation`]): received values are only *accepted*
//!   once they are congruent with some `n − f` subset of the previous
//!   step's accepted values; messages that cannot yet be justified are
//!   parked. This neutralizes processes that do not follow the protocol —
//!   the mechanism the paper credits for its Byzantine immunity results.
//! * **Step transport**: per the paper, each step's broadcast uses the
//!   underlying *reliable broadcast* ([`StepTransport::ReliableBroadcast`]),
//!   which prevents equivocation inside a step. A cheaper
//!   [`StepTransport::PlainFanout`] mode (one authenticated point-to-point
//!   fan-out per step) is provided **for the crash-fault ablation bench
//!   only** — it does not tolerate Byzantine equivocation.

pub mod validation;

use crate::codec::{Reader, WireError, WireMessage, Writer};
use crate::config::Group;
use crate::error::ProtocolError;
use crate::rb::{RbMessage, ReliableBroadcast};
use crate::step::{FaultKind, Step};
use crate::ProcessId;
use bytes::Bytes;
use ritas_crypto::{Coin, LocalRoundCoin, RoundCoin};
use ritas_metrics::{Layer, Metrics};
use std::collections::BTreeMap;
use validation::{majority, next_round_valid, step2_valid, step3_valid, strict_majority, Tally};

/// A protocol value: `Some(bit)` or `None` for the undefined value ⊥.
pub type Val = Option<bool>;

/// How far ahead of our current round we accept (and buffer) messages.
/// Correct processes are normally within one round of each other; the
/// bound only limits memory a Byzantine process can make us allocate.
const MAX_ROUND_AHEAD: u32 = 64;

/// Transport used for the per-step broadcasts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StepTransport {
    /// Reliable broadcast per step — the paper's configuration, tolerates
    /// Byzantine faults.
    #[default]
    ReliableBroadcast,
    /// One plain fan-out per step — ablation mode; tolerates crash faults
    /// only (an equivocating process can violate agreement).
    PlainFanout,
}

/// Body of a [`BcMessage`]: a reliable-broadcast sub-message or a plain
/// value, depending on the configured [`StepTransport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BcBody {
    /// Reliable broadcast traffic for the step value of `origin`.
    Rbc(RbMessage),
    /// The step value itself (plain fan-out mode).
    Plain(Val),
}

/// A binary consensus message: traffic of the broadcast of `origin`'s
/// value for (`round`, `step`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BcMessage {
    /// Round number (from 1).
    pub round: u32,
    /// Step within the round (1, 2 or 3).
    pub step: u8,
    /// The process whose step value this broadcast carries.
    pub origin: ProcessId,
    /// The payload.
    pub body: BcBody,
}

pub(crate) fn encode_val(v: Val) -> u8 {
    match v {
        Some(false) => 0,
        Some(true) => 1,
        None => 2,
    }
}

pub(crate) fn decode_val(b: u8) -> Result<Val, WireError> {
    match b {
        0 => Ok(Some(false)),
        1 => Ok(Some(true)),
        2 => Ok(None),
        t => Err(WireError::InvalidTag {
            what: "bc.value",
            tag: t,
        }),
    }
}

const BODY_RBC: u8 = 1;
const BODY_PLAIN: u8 = 2;

impl WireMessage for BcMessage {
    fn encode(&self, w: &mut Writer) {
        w.u32(self.round).u8(self.step).u32(self.origin as u32);
        match &self.body {
            BcBody::Rbc(inner) => {
                w.u8(BODY_RBC);
                inner.encode(w);
            }
            BcBody::Plain(v) => {
                w.u8(BODY_PLAIN).u8(encode_val(*v));
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let round = r.u32("bc.round")?;
        let step = r.u8("bc.step")?;
        let origin = r.u32("bc.origin")? as usize;
        let body = match r.u8("bc.body")? {
            BODY_RBC => BcBody::Rbc(RbMessage::decode(r)?),
            BODY_PLAIN => BcBody::Plain(decode_val(r.u8("bc.plain")?)?),
            t => {
                return Err(WireError::InvalidTag {
                    what: "bc.body",
                    tag: t,
                })
            }
        };
        Ok(BcMessage {
            round,
            step,
            origin,
            body,
        })
    }
}

/// Step type of a binary consensus instance: outgoing [`BcMessage`]s plus,
/// at most once, the decided bit.
pub type BcStep = Step<BcMessage, bool>;

/// Per-(round, step) bookkeeping.
#[derive(Debug, Clone)]
struct StepState {
    /// Values accepted (validated) per process.
    accepted: Vec<Option<Val>>,
    /// Values delivered by the step transport but not yet validated.
    pending: Vec<Option<Val>>,
    /// Whether this step's `n − f` threshold has been acted upon.
    fired: bool,
    /// Process whose accepted value first brought this step to quorum.
    quorum_closer: Option<ProcessId>,
}

impl StepState {
    fn new(n: usize) -> Self {
        StepState {
            accepted: vec![None; n],
            pending: vec![None; n],
            fired: false,
            quorum_closer: None,
        }
    }

    fn accepted_count(&self) -> usize {
        self.accepted.iter().filter(|v| v.is_some()).count()
    }

    fn tally(&self) -> Tally {
        let mut t = Tally::default();
        for v in self.accepted.iter().flatten() {
            match v {
                Some(false) => t.zeros += 1,
                Some(true) => t.ones += 1,
                None => t.bottoms += 1,
            }
        }
        t
    }
}

#[derive(Debug, Clone)]
struct RoundState {
    steps: [StepState; 3],
}

impl RoundState {
    fn new(n: usize) -> Self {
        RoundState {
            steps: [StepState::new(n), StepState::new(n), StepState::new(n)],
        }
    }
}

/// State of one binary consensus instance for process `me`.
///
/// The instance is generic-free: the coin is injected as a boxed
/// [`Coin`] so that production, simulation and adversarial tests can plug
/// different sources (see `ritas_crypto::coin`).
///
/// # Example
///
/// Most users reach binary consensus through
/// [`crate::stack::Stack::bc_propose`] or
/// [`crate::node::Node::binary_consensus`]; the state machine itself is
/// constructed per instance:
///
/// ```
/// use ritas::bc::BinaryConsensus;
/// use ritas::config::Group;
/// use ritas_crypto::DeterministicCoin;
///
/// let group = Group::new(4)?;
/// let mut bc = BinaryConsensus::new(group, 0, Box::new(DeterministicCoin::new(1)));
/// let step = bc.propose(true)?;
/// assert!(!step.messages.is_empty(), "round 1 step 1 broadcast");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct BinaryConsensus {
    group: Group,
    me: ProcessId,
    coin: Box<dyn RoundCoin + Send>,
    transport: StepTransport,
    started: bool,
    /// Our value for the in-progress step broadcast.
    current: Val,
    round: u32,
    step: u8,
    decided: Option<bool>,
    decided_round: Option<u32>,
    /// True once we have completed our post-decision round and stopped
    /// initiating new rounds.
    halted: bool,
    rounds: BTreeMap<u32, RoundState>,
    /// Reliable-broadcast sub-instances keyed by (round, step, origin).
    rbc: BTreeMap<(u32, u8, ProcessId), ReliableBroadcast>,
    /// Rounds each process has completed (for statistics only).
    rounds_executed: u32,
    metrics: Metrics,
    /// Span path of this instance; set by the owner at creation.
    span_path: Option<String>,
}

impl core::fmt::Debug for BinaryConsensus {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("BinaryConsensus")
            .field("me", &self.me)
            .field("round", &self.round)
            .field("step", &self.step)
            .field("decided", &self.decided)
            .field("halted", &self.halted)
            .finish_non_exhaustive()
    }
}

impl BinaryConsensus {
    /// Creates an instance with the paper's configuration (reliable
    /// broadcast per step).
    ///
    /// # Panics
    ///
    /// Panics if `me` is outside the group.
    pub fn new(group: Group, me: ProcessId, coin: Box<dyn Coin + Send>) -> Self {
        Self::with_transport(group, me, coin, StepTransport::ReliableBroadcast)
    }

    /// Creates an instance with an explicit step transport (ablations).
    ///
    /// # Panics
    ///
    /// Panics if `me` is outside the group.
    pub fn with_transport(
        group: Group,
        me: ProcessId,
        coin: Box<dyn Coin + Send>,
        transport: StepTransport,
    ) -> Self {
        Self::with_round_coin(group, me, Box::new(LocalRoundCoin(coin)), transport)
    }

    /// Creates an instance with a round-indexed coin — use with
    /// [`ritas_crypto::SharedCoin`] for a Rabin-style common coin, which
    /// keeps the expected round count constant even under an adversarial
    /// message scheduler (paper §5's discussion of the two approaches).
    ///
    /// # Panics
    ///
    /// Panics if `me` is outside the group.
    pub fn with_round_coin(
        group: Group,
        me: ProcessId,
        coin: Box<dyn RoundCoin + Send>,
        transport: StepTransport,
    ) -> Self {
        assert!(group.contains(me), "me out of group");
        BinaryConsensus {
            group,
            me,
            coin,
            transport,
            started: false,
            current: None,
            round: 1,
            step: 1,
            decided: None,
            decided_round: None,
            halted: false,
            rounds: BTreeMap::new(),
            rbc: BTreeMap::new(),
            rounds_executed: 0,
            metrics: Metrics::default(),
            span_path: None,
        }
    }

    /// Attaches the process-wide metric registry; per-step reliable
    /// broadcast sub-instances created afterwards share it.
    pub fn set_metrics(&mut self, metrics: Metrics) {
        self.metrics = metrics;
    }

    /// Assigns this instance's span path and opens its span. Call after
    /// [`BinaryConsensus::set_metrics`], at instance-creation time.
    pub fn set_span_path(&mut self, path: String) {
        self.metrics.span_open(path.clone(), Layer::Bc);
        self.span_path = Some(path);
    }

    fn span_annotate(&self, kind: ritas_metrics::SpanAnnotation, value: u64) {
        if let Some(path) = &self.span_path {
            self.metrics.span_annotate(path, kind, value);
        }
    }

    /// The decision, once taken.
    pub fn decision(&self) -> Option<bool> {
        self.decided
    }

    /// The round in which the decision was taken (1-based), once decided.
    pub fn decided_round(&self) -> Option<u32> {
        self.decided_round
    }

    /// Current round (1-based).
    pub fn round(&self) -> u32 {
        self.round
    }

    /// Proposes a bit and emits the round-1 step-1 broadcast.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::AlreadyStarted`] on a second call.
    pub fn propose(&mut self, value: bool) -> Result<BcStep, ProtocolError> {
        if self.started {
            return Err(ProtocolError::AlreadyStarted);
        }
        self.started = true;
        self.current = Some(value);
        self.metrics.bc_started.inc();
        self.metrics
            .trace(Layer::Bc, "propose", format!("bc:{}", self.me), self.round);
        self.span_annotate(
            ritas_metrics::SpanAnnotation::RoundEntered,
            u64::from(self.round),
        );
        let mut out = Step::none();
        self.broadcast_current(&mut out);
        // Messages from peers may already be buffered and could even
        // complete steps (if we are the last to propose).
        out.extend(self.settle());
        Ok(out)
    }

    /// Handles a protocol message from `from`.
    pub fn handle_message(&mut self, from: ProcessId, message: BcMessage) -> BcStep {
        if !self.group.contains(from) || !self.group.contains(message.origin) {
            self.metrics.bc_rejected.inc();
            return Step::fault(from, FaultKind::NotEntitled);
        }
        if message.round == 0 || !(1..=3).contains(&message.step) {
            self.metrics.bc_rejected.inc();
            return Step::fault(from, FaultKind::Malformed);
        }
        if message.round > self.round.saturating_add(MAX_ROUND_AHEAD) {
            // Memory-bounding: refuse to buffer absurdly distant rounds.
            self.metrics.bc_rejected.inc();
            return Step::fault(from, FaultKind::Unjustified);
        }
        let (round, step, origin) = (message.round, message.step, message.origin);
        let mut out = Step::none();
        match (message.body, self.transport) {
            (BcBody::Rbc(inner), StepTransport::ReliableBroadcast) => {
                let group = self.group;
                let me = self.me;
                let metrics = self.metrics.clone();
                let rbc = self.rbc.entry((round, step, origin)).or_insert_with(|| {
                    let mut rb = ReliableBroadcast::new(group, me, origin);
                    rb.set_metrics(metrics);
                    rb
                });
                let mut sub = rbc.handle_message(from, inner);
                out.faults.append(&mut sub.faults);
                for m in sub.messages {
                    out.messages.push(m.map(|inner| BcMessage {
                        round,
                        step,
                        origin,
                        body: BcBody::Rbc(inner),
                    }));
                }
                for payload in sub.outputs {
                    match Self::decode_step_value(&payload, step) {
                        Ok(v) => self.record_pending(round, step, origin, v),
                        Err(_) => {
                            self.metrics.bc_rejected.inc();
                            out.push_fault(origin, FaultKind::Malformed);
                        }
                    }
                }
            }
            (BcBody::Plain(v), StepTransport::PlainFanout) => {
                if from != origin {
                    self.metrics.bc_rejected.inc();
                    return Step::fault(from, FaultKind::NotEntitled);
                }
                if (step == 1 || step == 2) && v.is_none() {
                    self.metrics.bc_rejected.inc();
                    return Step::fault(from, FaultKind::Malformed);
                }
                self.record_pending(round, step, origin, v);
            }
            // Body does not match the configured transport.
            _ => {
                self.metrics.bc_rejected.inc();
                return Step::fault(from, FaultKind::Malformed);
            }
        }
        out.extend(self.settle());
        out
    }

    /// Decodes a step value from a reliable-broadcast payload, rejecting
    /// ⊥ at steps 1 and 2 where only bits are legal.
    fn decode_step_value(payload: &Bytes, step: u8) -> Result<Val, WireError> {
        if payload.len() != 1 {
            return Err(WireError::Truncated { what: "bc.value" });
        }
        let v = decode_val(payload[0])?;
        if (step == 1 || step == 2) && v.is_none() {
            return Err(WireError::InvalidTag {
                what: "bc.value",
                tag: 2,
            });
        }
        Ok(v)
    }

    fn round_mut(&mut self, round: u32) -> &mut RoundState {
        let n = self.group.n();
        self.rounds
            .entry(round)
            .or_insert_with(|| RoundState::new(n))
    }

    fn record_pending(&mut self, round: u32, step: u8, origin: ProcessId, v: Val) {
        let st = &mut self.round_mut(round).steps[(step - 1) as usize];
        if st.accepted[origin].is_some() || st.pending[origin].is_some() {
            return; // only the first delivered value per slot counts
        }
        st.pending[origin] = Some(v);
    }

    /// Runs validation and progress to a fixpoint.
    fn settle(&mut self) -> BcStep {
        let mut out = Step::none();
        loop {
            let validated = self.revalidate();
            let advanced = self.try_advance(&mut out);
            if !validated && !advanced {
                break;
            }
        }
        out
    }

    /// One pass moving justifiable pending values to accepted.
    /// Returns whether anything moved.
    fn revalidate(&mut self) -> bool {
        let q = self.group.quorum();
        let f = self.group.f();
        let mut moved = false;
        let round_nums: Vec<u32> = self.rounds.keys().copied().collect();
        for r in round_nums {
            for s in 1..=3u8 {
                // Collect candidate (origin, value) pairs to avoid holding
                // two mutable borrows of the rounds map.
                let candidates: Vec<(ProcessId, Val)> = {
                    let st = &self.rounds[&r].steps[(s - 1) as usize];
                    st.pending
                        .iter()
                        .enumerate()
                        .filter_map(|(p, v)| v.map(|v| (p, v)))
                        .collect()
                };
                if candidates.is_empty() {
                    continue;
                }
                let prev_tally: Option<Tally> = match (r, s) {
                    (1, 1) => None, // always valid
                    (r, 1) => self.rounds.get(&(r - 1)).map(|rs| rs.steps[2].tally()),
                    (r, s) => self
                        .rounds
                        .get(&r)
                        .map(|rs| rs.steps[(s - 2) as usize].tally()),
                };
                for (origin, v) in candidates {
                    let valid = match (r, s) {
                        (1, 1) => true,
                        (_, 1) => prev_tally
                            .map(|t| v.map(|b| next_round_valid(&t, b, q, f)).unwrap_or(false))
                            .unwrap_or(false),
                        (_, 2) => prev_tally
                            .map(|t| v.map(|b| step2_valid(&t, b, q)).unwrap_or(false))
                            .unwrap_or(false),
                        (_, 3) => prev_tally.map(|t| step3_valid(&t, v, q)).unwrap_or(false),
                        _ => unreachable!(),
                    };
                    if valid {
                        let st = &mut self.rounds.get_mut(&r).unwrap().steps[(s - 1) as usize];
                        st.pending[origin] = None;
                        st.accepted[origin] = Some(v);
                        // Batched acceptances may overshoot the quorum; the
                        // first origin to reach it is the one that closed it.
                        if st.quorum_closer.is_none() && st.accepted_count() >= q {
                            st.quorum_closer = Some(origin);
                        }
                        moved = true;
                    }
                }
            }
        }
        moved
    }

    /// Fires the transition for the current (round, step) if its threshold
    /// is met. Returns whether a transition fired.
    fn try_advance(&mut self, out: &mut BcStep) -> bool {
        if self.halted || !self.started {
            return false;
        }
        let (r, s) = (self.round, self.step);
        let quorum = self.group.quorum();
        let st = &mut self.round_mut(r).steps[(s - 1) as usize];
        if st.fired || st.accepted_count() < quorum {
            return false;
        }
        st.fired = true;
        let tally = st.tally();
        // Own values are accepted inline (no revalidate pass), so a step
        // completed by our own broadcast has no recorded closer: use `me`.
        let closer = st.quorum_closer.unwrap_or(self.me);
        match s {
            1 => {
                self.current = Some(majority(&tally));
                self.step = 2;
                self.broadcast_current(out);
            }
            2 => {
                self.current = strict_majority(&tally);
                self.step = 3;
                self.broadcast_current(out);
            }
            3 => {
                self.span_annotate(
                    ritas_metrics::SpanAnnotation::RoundQuorum,
                    ritas_metrics::pack_round_quorum(r, closer as u32),
                );
                self.finish_round(&tally, out);
            }
            _ => unreachable!(),
        }
        true
    }

    fn finish_round(&mut self, tally: &Tally, out: &mut BcStep) {
        let threshold_decide = self.group.byzantine_majority();
        let threshold_adopt = self.group.one_correct();
        self.rounds_executed = self.round;

        // Pick the non-⊥ value with the larger support (ties to 0).
        let (lead, lead_count) = if tally.ones > tally.zeros {
            (true, tally.ones)
        } else {
            (false, tally.zeros)
        };

        let next_value = if lead_count >= threshold_decide {
            if self.decided.is_none() {
                self.decided = Some(lead);
                self.decided_round = Some(self.round);
                self.metrics.bc_decided.inc();
                self.metrics.bc_rounds.record(u64::from(self.round));
                self.metrics
                    .trace(Layer::Bc, "decide", format!("bc:{}", self.me), self.round);
                if let Some(path) = &self.span_path {
                    self.metrics.span_close(path);
                }
                out.push_output(lead);
            }
            lead
        } else if lead_count >= threshold_adopt {
            lead
        } else {
            self.metrics.bc_coin_flips.inc();
            self.metrics.trace(
                Layer::Bc,
                "coin-flip",
                format!("bc:{}", self.me),
                self.round,
            );
            let bit = self.coin.flip_round(self.round);
            self.span_annotate(ritas_metrics::SpanAnnotation::CoinFlipped, u64::from(bit));
            bit
        };

        // A decided process participates for exactly one more round so
        // that laggards (which are at most one round behind) can decide,
        // then stops initiating rounds.
        if let Some(dr) = self.decided_round {
            if self.round > dr {
                self.halted = true;
                return;
            }
        }
        self.current = Some(next_value);
        self.round += 1;
        self.step = 1;
        self.span_annotate(
            ritas_metrics::SpanAnnotation::RoundEntered,
            u64::from(self.round),
        );
        self.broadcast_current(out);
    }

    /// Broadcasts our current value for (self.round, self.step).
    fn broadcast_current(&mut self, out: &mut BcStep) {
        let (round, step, origin) = (self.round, self.step, self.me);
        match self.transport {
            StepTransport::ReliableBroadcast => {
                let payload = Bytes::copy_from_slice(&[encode_val(self.current)]);
                let group = self.group;
                let me = self.me;
                let metrics = self.metrics.clone();
                let rbc = self.rbc.entry((round, step, origin)).or_insert_with(|| {
                    let mut rb = ReliableBroadcast::new(group, me, origin);
                    rb.set_metrics(metrics);
                    rb
                });
                let sub = rbc
                    .broadcast(payload)
                    .expect("own step broadcast is unique per (round, step)");
                for m in sub.messages {
                    out.messages.push(m.map(|inner| BcMessage {
                        round,
                        step,
                        origin,
                        body: BcBody::Rbc(inner),
                    }));
                }
            }
            StepTransport::PlainFanout => {
                out.push_broadcast(BcMessage {
                    round,
                    step,
                    origin,
                    body: BcBody::Plain(self.current),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::step::Target;
    use ritas_crypto::{DeterministicCoin, FixedCoin};

    fn coin(seed: u64) -> Box<dyn Coin + Send> {
        Box::new(DeterministicCoin::new(seed))
    }

    /// A tiny synchronous network: delivers all messages (in seeded
    /// pseudo-random order) until quiescence. Returns decisions.
    struct Net {
        insts: Vec<BinaryConsensus>,
        queue: Vec<(ProcessId, ProcessId, BcMessage)>,
        decisions: Vec<Option<bool>>,
        rng_state: u64,
        /// Processes whose outgoing messages are dropped (crashed).
        crashed: Vec<ProcessId>,
    }

    impl Net {
        fn new(n: usize, transport: StepTransport, seed: u64) -> Self {
            let g = Group::new(n).unwrap();
            Net {
                insts: (0..n)
                    .map(|me| {
                        BinaryConsensus::with_transport(g, me, coin(seed ^ me as u64), transport)
                    })
                    .collect(),
                queue: Vec::new(),
                decisions: vec![None; n],
                rng_state: seed.wrapping_mul(0x9E3779B97F4A7C15) | 1,
                crashed: Vec::new(),
            }
        }

        fn next_rand(&mut self) -> u64 {
            let mut x = self.rng_state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.rng_state = x;
            x.wrapping_mul(0x2545F4914F6CDD1D)
        }

        fn absorb(&mut self, from: ProcessId, step: BcStep) {
            if self.crashed.contains(&from) {
                return;
            }
            let n = self.insts.len();
            for out in step.messages {
                match out.target {
                    Target::All => {
                        for to in 0..n {
                            self.queue.push((from, to, out.message.clone()));
                        }
                    }
                    Target::One(to) => self.queue.push((from, to, out.message.clone())),
                }
            }
            for d in step.outputs {
                assert!(self.decisions[from].is_none(), "double decision at {from}");
                self.decisions[from] = Some(d);
            }
        }

        fn propose(&mut self, p: ProcessId, v: bool) {
            let step = self.insts[p].propose(v).unwrap();
            self.absorb(p, step);
        }

        fn run(&mut self) {
            let mut iterations = 0usize;
            while !self.queue.is_empty() {
                iterations += 1;
                assert!(iterations < 2_000_000, "runaway execution");
                let idx = (self.next_rand() as usize) % self.queue.len();
                let (from, to, msg) = self.queue.swap_remove(idx);
                if self.crashed.contains(&to) {
                    continue;
                }
                let step = self.insts[to].handle_message(from, msg);
                self.absorb(to, step);
            }
        }
    }

    #[test]
    fn message_codec_roundtrip() {
        for msg in [
            BcMessage {
                round: 3,
                step: 2,
                origin: 1,
                body: BcBody::Rbc(RbMessage::Init(Bytes::from_static(&[1]))),
            },
            BcMessage {
                round: 1,
                step: 3,
                origin: 0,
                body: BcBody::Plain(None),
            },
        ] {
            assert_eq!(BcMessage::from_bytes(&msg.to_bytes()).unwrap(), msg);
        }
    }

    #[test]
    fn codec_rejects_bad_value() {
        assert!(decode_val(3).is_err());
        assert!(BinaryConsensus::decode_step_value(&Bytes::from_static(&[2]), 1).is_err());
        assert!(BinaryConsensus::decode_step_value(&Bytes::from_static(&[2]), 3).is_ok());
        assert!(BinaryConsensus::decode_step_value(&Bytes::from_static(&[0, 0]), 1).is_err());
    }

    #[test]
    fn unanimous_one_decides_one_in_one_round() {
        let mut net = Net::new(4, StepTransport::ReliableBroadcast, 7);
        for p in 0..4 {
            net.propose(p, true);
        }
        net.run();
        for p in 0..4 {
            assert_eq!(net.decisions[p], Some(true), "process {p}");
            assert_eq!(net.insts[p].decided_round(), Some(1));
        }
    }

    #[test]
    fn unanimous_zero_decides_zero() {
        let mut net = Net::new(4, StepTransport::ReliableBroadcast, 8);
        for p in 0..4 {
            net.propose(p, false);
        }
        net.run();
        for p in 0..4 {
            assert_eq!(net.decisions[p], Some(false));
        }
    }

    #[test]
    fn mixed_proposals_agree() {
        for seed in 0..10 {
            let mut net = Net::new(4, StepTransport::ReliableBroadcast, 100 + seed);
            net.propose(0, true);
            net.propose(1, false);
            net.propose(2, true);
            net.propose(3, false);
            net.run();
            let d0 = net.decisions[0].expect("p0 decided");
            for p in 1..4 {
                assert_eq!(
                    net.decisions[p],
                    Some(d0),
                    "agreement violated, seed {seed}"
                );
            }
        }
    }

    #[test]
    fn majority_proposal_wins_with_unanimity() {
        // 3 of 4 propose 1: decision must be 1 when the fourth is silent
        // (validity w.r.t. correct processes).
        let mut net = Net::new(4, StepTransport::ReliableBroadcast, 21);
        net.crashed.push(3);
        net.propose(0, true);
        net.propose(1, true);
        net.propose(2, true);
        net.run();
        for p in 0..3 {
            assert_eq!(net.decisions[p], Some(true), "process {p}");
        }
    }

    #[test]
    fn crash_fault_still_terminates() {
        for seed in 0..5 {
            let mut net = Net::new(4, StepTransport::ReliableBroadcast, 200 + seed);
            net.crashed.push(2);
            net.propose(0, true);
            net.propose(1, false);
            net.propose(3, true);
            net.run();
            let d = net.decisions[0].expect("decided despite crash");
            assert_eq!(net.decisions[1], Some(d));
            assert_eq!(net.decisions[3], Some(d));
        }
    }

    #[test]
    fn byzantine_always_zero_cannot_block_unanimous_one() {
        // The paper's Byzantine faultload: one process always proposes 0
        // (a legal value) while the correct ones propose 1. Decision: 1.
        for seed in 0..5 {
            let mut net = Net::new(4, StepTransport::ReliableBroadcast, 300 + seed);
            net.propose(0, true);
            net.propose(1, true);
            net.propose(2, true);
            net.propose(3, false); // the attacker
            net.run();
            for p in 0..3 {
                assert_eq!(net.decisions[p], Some(true), "seed {seed} process {p}");
            }
        }
    }

    #[test]
    fn plain_fanout_terminates_under_crash() {
        let mut net = Net::new(4, StepTransport::PlainFanout, 17);
        net.crashed.push(1);
        net.propose(0, true);
        net.propose(2, true);
        net.propose(3, true);
        net.run();
        assert_eq!(net.decisions[0], Some(true));
        assert_eq!(net.decisions[2], Some(true));
        assert_eq!(net.decisions[3], Some(true));
    }

    #[test]
    fn larger_group_unanimous() {
        let mut net = Net::new(7, StepTransport::ReliableBroadcast, 5);
        for p in 0..7 {
            net.propose(p, true);
        }
        net.run();
        for p in 0..7 {
            assert_eq!(net.decisions[p], Some(true));
        }
    }

    #[test]
    fn double_propose_rejected() {
        let g = Group::new(4).unwrap();
        let mut bc = BinaryConsensus::new(g, 0, coin(1));
        let _ = bc.propose(true).unwrap();
        assert_eq!(bc.propose(true).unwrap_err(), ProtocolError::AlreadyStarted);
    }

    #[test]
    fn fixed_coin_adversarial_coins_still_agree() {
        // Worst-case coins (all heads vs all tails across processes) must
        // never break agreement, only possibly delay termination.
        let g = Group::new(4).unwrap();
        let mut net = Net::new(4, StepTransport::ReliableBroadcast, 1);
        net.insts = (0..4)
            .map(|me| {
                BinaryConsensus::new(
                    g,
                    me,
                    Box::new(FixedCoin(me % 2 == 0)) as Box<dyn Coin + Send>,
                )
            })
            .collect();
        net.propose(0, true);
        net.propose(1, false);
        net.propose(2, false);
        net.propose(3, true);
        net.run();
        let d = net.decisions[0].expect("decided");
        for p in 1..4 {
            assert_eq!(net.decisions[p], Some(d));
        }
    }

    #[test]
    fn shared_coin_instances_agree() {
        use ritas_crypto::SharedCoinDealer;
        for seed in 0..5 {
            let g = Group::new(4).unwrap();
            let dealer = SharedCoinDealer::new(99);
            let mut net = Net::new(4, StepTransport::ReliableBroadcast, 400 + seed);
            net.insts = (0..4)
                .map(|me| {
                    BinaryConsensus::with_round_coin(
                        g,
                        me,
                        Box::new(dealer.coin(1)),
                        StepTransport::ReliableBroadcast,
                    )
                })
                .collect();
            net.propose(0, true);
            net.propose(1, false);
            net.propose(2, false);
            net.propose(3, true);
            net.run();
            let d = net.decisions[0].expect("decided");
            for p in 1..4 {
                assert_eq!(net.decisions[p], Some(d), "seed {seed}");
            }
        }
    }

    #[test]
    fn shared_coin_beats_adversarial_local_coins() {
        // With opposing FixedCoins (the worst local-coin draw), a split
        // vote can take several rounds; the same schedule with a shared
        // coin converges as soon as the coin round fires, because all
        // correct processes flip the *same* bit.
        use ritas_crypto::SharedCoinDealer;
        let g = Group::new(4).unwrap();
        let dealer = SharedCoinDealer::new(5);
        let mut net = Net::new(4, StepTransport::ReliableBroadcast, 31);
        net.insts = (0..4)
            .map(|me| {
                BinaryConsensus::with_round_coin(
                    g,
                    me,
                    Box::new(dealer.coin(7)),
                    StepTransport::ReliableBroadcast,
                )
            })
            .collect();
        net.propose(0, true);
        net.propose(1, false);
        net.propose(2, true);
        net.propose(3, false);
        net.run();
        let d = net.decisions[0].expect("decided");
        let max_round = (0..4)
            .filter_map(|p| net.insts[p].decided_round())
            .max()
            .unwrap();
        for p in 1..4 {
            assert_eq!(net.decisions[p], Some(d));
        }
        assert!(max_round <= 3, "shared coin needed {max_round} rounds");
    }

    #[test]
    fn laggard_decides_after_others_halt() {
        // Deliver nothing to process 3 until processes 0-2 have decided
        // and halted; then release its backlog. The one-extra-round
        // participation of decided instances must let the laggard finish.
        let mut net = Net::new(4, StepTransport::ReliableBroadcast, 77);
        let mut held: Vec<(ProcessId, BcMessage)> = Vec::new();
        for p in 0..4 {
            net.propose(p, true);
        }
        // Run while diverting everything addressed to process 3.
        while !net.queue.is_empty() {
            let idx = (net.next_rand() as usize) % net.queue.len();
            let (from, to, msg) = net.queue.swap_remove(idx);
            if to == 3 {
                held.push((from, msg));
                continue;
            }
            let step = net.insts[to].handle_message(from, msg);
            net.absorb(to, step);
        }
        for p in 0..3 {
            assert_eq!(net.decisions[p], Some(true), "fast process {p}");
        }
        assert!(net.decisions[3].is_none());
        // Release the backlog; the laggard's own new messages flow
        // normally (the fast processes still respond to sub-broadcasts).
        for (from, msg) in held {
            let step = net.insts[3].handle_message(from, msg);
            net.absorb(3, step);
        }
        net.run();
        assert_eq!(net.decisions[3], Some(true), "laggard never decided");
    }

    #[test]
    fn far_future_round_rejected() {
        let g = Group::new(4).unwrap();
        let mut bc = BinaryConsensus::new(g, 0, coin(1));
        let step = bc.handle_message(
            1,
            BcMessage {
                round: 1_000_000,
                step: 1,
                origin: 1,
                body: BcBody::Rbc(RbMessage::Init(Bytes::from_static(&[1]))),
            },
        );
        assert_eq!(step.faults[0].kind, FaultKind::Unjustified);
    }

    #[test]
    fn malformed_step_rejected() {
        let g = Group::new(4).unwrap();
        let mut bc = BinaryConsensus::new(g, 0, coin(1));
        let step = bc.handle_message(
            1,
            BcMessage {
                round: 1,
                step: 4,
                origin: 1,
                body: BcBody::Plain(Some(true)),
            },
        );
        assert_eq!(step.faults[0].kind, FaultKind::Malformed);
    }

    #[test]
    fn plain_body_rejected_in_rbc_mode() {
        let g = Group::new(4).unwrap();
        let mut bc = BinaryConsensus::new(g, 0, coin(1));
        let step = bc.handle_message(
            1,
            BcMessage {
                round: 1,
                step: 1,
                origin: 1,
                body: BcBody::Plain(Some(true)),
            },
        );
        assert_eq!(step.faults[0].kind, FaultKind::Malformed);
    }

    #[test]
    fn plain_fanout_rejects_relayed_values() {
        let g = Group::new(4).unwrap();
        let mut bc = BinaryConsensus::with_transport(g, 0, coin(1), StepTransport::PlainFanout);
        let step = bc.handle_message(
            2,
            BcMessage {
                round: 1,
                step: 1,
                origin: 1, // relayed: from != origin
                body: BcBody::Plain(Some(true)),
            },
        );
        assert_eq!(step.faults[0].kind, FaultKind::NotEntitled);
    }
}
