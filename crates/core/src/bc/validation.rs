//! Bracha's message-validation rule (paper §2.4).
//!
//! > "A message received in the first step of the first round is always
//! > considered valid. A message received in any other step k, for k > 1,
//! > is valid if its value is congruent with any subset of n − f values
//! > accepted at step k − 1."
//!
//! A value is *congruent* with a subset when a correct process that had
//! accepted exactly that subset could have produced the value by following
//! the protocol. Because the accepted sets only grow, validity is
//! monotone: a message that is not yet valid may become valid later, so
//! invalid messages are parked, never dropped (unless provably
//! unjustifiable — which we do not attempt to prove; parking is cheap).
//!
//! For binary values these "∃ subset" conditions reduce to closed-form
//! feasibility checks over the counts of accepted values, implemented
//! here. The rules encoded:
//!
//! * **step 1 → step 2**: a step-2 value must be the majority of some
//!   `q = n − f` subset of accepted step-1 values (ties broken to 0, the
//!   same deterministic tie-break the state machine applies);
//! * **step 2 → step 3**: a non-`⊥` step-3 value must hold a strict
//!   majority (`> q/2`) in some `q`-subset; `⊥` requires a subset of at
//!   least `q` values where neither bit holds a strict majority (the
//!   producer may have accepted more than `q` values before its step
//!   fired — delayed validation batches acceptances — so every feasible
//!   set size is considered);
//! * **step 3 → next round's step 1**: the value must be adoptable
//!   (`≥ f+1` copies in some `q`-subset) or the coin branch must be
//!   reachable (a `q`-subset where no non-`⊥` value reaches `f+1`), in
//!   which case any bit is justified.

/// Counts of accepted values at one step.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Tally {
    /// Number of processes whose accepted value is 0.
    pub zeros: usize,
    /// Number of processes whose accepted value is 1.
    pub ones: usize,
    /// Number of processes whose accepted value is ⊥ (step 3 only).
    pub bottoms: usize,
}

impl Tally {
    /// Total accepted values.
    pub fn total(&self) -> usize {
        self.zeros + self.ones + self.bottoms
    }

    /// Count for a binary value.
    pub fn count(&self, v: bool) -> usize {
        if v {
            self.ones
        } else {
            self.zeros
        }
    }
}

/// Whether a step-2 message with value `v` is congruent with some
/// `q`-subset of the step-1 tally (majority rule, ties to 0).
#[must_use]
pub fn step2_valid(step1: &Tally, v: bool, q: usize) -> bool {
    let usable = step1.zeros + step1.ones; // ⊥ cannot appear at step 1
    if usable < q {
        return false;
    }
    if v {
        // 1 wins only with a strict majority of ones.
        step1.ones > q / 2
    } else {
        // 0 wins with at least half (tie-break favours 0).
        step1.zeros >= q.div_ceil(2)
    }
}

/// Whether a step-3 message with value `v` (`None` = ⊥) is congruent with
/// some `q`-subset of the step-2 tally.
#[must_use]
pub fn step3_valid(step2: &Tally, v: Option<bool>, q: usize) -> bool {
    let usable = step2.zeros + step2.ones;
    if usable < q {
        return false;
    }
    match v {
        Some(b) => step2.count(b) > q / 2,
        None => {
            // ⊥ means the producer saw no strict majority. It fires its
            // step with at least `q` accepted values, but delayed
            // validation can batch acceptances, so the producing set may
            // hold MORE than `q` values (e.g. all `n`, tied) — check every
            // feasible set size: a size-`m` subset with no strict majority
            // takes at most ⌊m/2⌋ of each bit.
            (q..=usable).any(|m| step2.zeros.min(m / 2) + step2.ones.min(m / 2) >= m)
        }
    }
}

/// Whether a step-1 message of round `r+1` with value `v` is congruent
/// with some `q`-subset of the round-`r` step-3 tally.
///
/// `f` is the fault threshold: the adopt branch needs `f+1` equal non-`⊥`
/// values, the coin branch needs a subset where no non-`⊥` value reaches
/// `f+1` (then any bit is a legitimate coin flip).
#[must_use]
pub fn next_round_valid(step3: &Tally, v: bool, q: usize, f: usize) -> bool {
    if step3.total() < q {
        return false;
    }
    let adopt = step3.count(v) > f;
    let coin = step3.zeros.min(f) + step3.ones.min(f) + step3.bottoms >= q;
    adopt || coin
}

/// The deterministic majority of a full snapshot of step-1 values (ties
/// broken to 0) — the value a correct process carries into step 2.
#[must_use]
pub fn majority(tally: &Tally) -> bool {
    tally.ones > tally.zeros
}

/// The step-2 → step-3 rule over a snapshot: `Some(v)` if `v` holds a
/// strict majority of the snapshot, otherwise `None` (⊥).
#[must_use]
pub fn strict_majority(tally: &Tally) -> Option<bool> {
    let total = tally.total();
    if 2 * tally.ones > total {
        Some(true)
    } else if 2 * tally.zeros > total {
        Some(false)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(zeros: usize, ones: usize, bottoms: usize) -> Tally {
        Tally {
            zeros,
            ones,
            bottoms,
        }
    }

    // n = 4, f = 1 → q = 3 (the paper's testbed).
    const Q4: usize = 3;
    const F4: usize = 1;

    #[test]
    fn step2_needs_enough_accepted() {
        assert!(!step2_valid(&t(1, 1, 0), false, Q4));
        assert!(!step2_valid(&t(0, 2, 0), true, Q4));
    }

    #[test]
    fn step2_majority_one() {
        // ones = 2 >= ⌊3/2⌋+1 = 2 → a subset {1,1,0} (or {1,1,1}) exists.
        assert!(step2_valid(&t(1, 2, 0), true, Q4));
        assert!(step2_valid(&t(0, 3, 0), true, Q4));
        // Only one 1 can never be a majority of 3.
        assert!(!step2_valid(&t(2, 1, 0), true, Q4));
    }

    #[test]
    fn step2_majority_zero_with_tiebreak() {
        // zeros = 2 >= ⌈3/2⌉ = 2 → subset {0,0,1}.
        assert!(step2_valid(&t(2, 1, 0), false, Q4));
        assert!(!step2_valid(&t(1, 2, 0), false, Q4));
    }

    #[test]
    fn step2_even_quorum_tiebreak() {
        // q = 4 (e.g. n = 5, f = 1): a 2-2 tie resolves to 0, so 0 is
        // justifiable with only 2 zeros, while 1 needs 3 ones.
        let q = 4;
        assert!(step2_valid(&t(2, 2, 0), false, q));
        assert!(!step2_valid(&t(2, 2, 0), true, q));
        assert!(step2_valid(&t(1, 3, 0), true, q));
    }

    #[test]
    fn step3_strict_majority() {
        assert!(step3_valid(&t(1, 2, 0), Some(true), Q4));
        assert!(!step3_valid(&t(2, 1, 0), Some(true), Q4));
        assert!(step3_valid(&t(2, 1, 0), Some(false), Q4));
    }

    #[test]
    fn step3_bottom_needs_a_feasible_tie() {
        // q = 3: any 3 binary values have a strict majority, but a
        // producer that batched acceptances may have fired with MORE than
        // q values — a 2-2 (or 3-3) tie justifies ⊥.
        assert!(step3_valid(&t(2, 2, 0), None, Q4));
        assert!(step3_valid(&t(3, 3, 0), None, Q4));
        // With at most one 0 no tied set of ≥ 3 exists.
        assert!(!step3_valid(&t(1, 2, 0), None, Q4));
        assert!(!step3_valid(&t(1, 5, 0), None, Q4));
    }

    #[test]
    fn step3_bottom_feasible_for_even_quorum() {
        // q = 4: a 2-2 split has no strict majority.
        assert!(step3_valid(&t(2, 2, 0), None, 4));
        assert!(!step3_valid(&t(1, 3, 0), None, 4));
        assert!(step3_valid(&t(2, 3, 0), None, 4));
    }

    #[test]
    fn next_round_adopt_branch() {
        // f+1 = 2 copies of 1 among a 3-subset justify carrying 1.
        assert!(next_round_valid(&t(0, 2, 1), true, Q4, F4));
        assert!(!next_round_valid(&t(2, 1, 0), true, Q4, F4));
    }

    #[test]
    fn next_round_coin_branch_justifies_both() {
        // Subset {0, 1, ⊥}: no value reaches f+1 = 2 → coin flip, any bit.
        let tally = t(1, 1, 1);
        assert!(next_round_valid(&tally, true, Q4, F4));
        assert!(next_round_valid(&tally, false, Q4, F4));
    }

    #[test]
    fn next_round_all_bottom_is_coin() {
        let tally = t(0, 0, 3);
        assert!(next_round_valid(&tally, true, Q4, F4));
        assert!(next_round_valid(&tally, false, Q4, F4));
    }

    #[test]
    fn next_round_unjustifiable_value() {
        // All three accepted step-3 values are 0 and no coin subset
        // exists → 1 can never be justified.
        assert!(!next_round_valid(&t(3, 0, 0), true, Q4, F4));
        assert!(next_round_valid(&t(3, 0, 0), false, Q4, F4));
    }

    #[test]
    fn next_round_needs_enough_values() {
        assert!(!next_round_valid(&t(1, 1, 0), true, Q4, F4));
    }

    #[test]
    fn majority_rules() {
        assert!(majority(&t(1, 2, 0)));
        assert!(!majority(&t(2, 1, 0)));
        assert!(!majority(&t(2, 2, 0))); // tie → 0
    }

    #[test]
    fn strict_majority_rules() {
        assert_eq!(strict_majority(&t(1, 2, 0)), Some(true));
        assert_eq!(strict_majority(&t(2, 1, 0)), Some(false));
        assert_eq!(strict_majority(&t(2, 2, 0)), None);
        assert_eq!(strict_majority(&t(3, 2, 0)), Some(false));
    }

    /// Soundness: whatever a correct process produces from its actual
    /// snapshot must validate against any tally that contains the
    /// snapshot. Brute-force over all snapshots of size q.
    #[test]
    fn validation_soundness_brute_force() {
        let q = Q4;
        // All step-1 snapshots (z zeros, q-z ones).
        for z in 0..=q {
            let snapshot = t(z, q - z, 0);
            let produced = majority(&snapshot);
            // The producing process's snapshot, possibly extended.
            for extra_z in 0..3 {
                for extra_o in 0..3 {
                    let tally = t(z + extra_z, q - z + extra_o, 0);
                    assert!(
                        step2_valid(&tally, produced, q),
                        "step2 soundness failed: snapshot {snapshot:?}, tally {tally:?}"
                    );
                }
            }
        }
        // All step-2 snapshots of size q up to n = q + f: delayed
        // validation can batch acceptances, so a correct process may fire
        // its step with more than q values (this is how ⊥ arises for odd
        // q — a 2-2 tie over all four values).
        for total in q..=(q + F4) {
            for z in 0..=total {
                let snapshot = t(z, total - z, 0);
                let produced = strict_majority(&snapshot);
                let tally = snapshot;
                assert!(
                    step3_valid(&tally, produced, q),
                    "step3 soundness failed: snapshot {snapshot:?}"
                );
            }
        }
        // All step-3 snapshots (z zeros, o ones, rest ⊥).
        for z in 0..=q {
            for o in 0..=(q - z) {
                let snapshot = t(z, o, q - z - o);
                let f = F4;
                // What can a correct process carry into the next round?
                let candidates: Vec<bool> = if snapshot.zeros > f {
                    vec![false]
                } else if snapshot.ones > f {
                    vec![true]
                } else {
                    vec![false, true] // coin
                };
                for v in candidates {
                    assert!(
                        next_round_valid(&snapshot, v, q, f),
                        "next-round soundness failed: snapshot {snapshot:?}, v {v}"
                    );
                }
            }
        }
    }
}
