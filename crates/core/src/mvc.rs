//! Multi-valued consensus (paper §2.5, after Correia et al.).
//!
//! Lifts binary consensus to values of arbitrary length: every process
//! proposes some `v ∈ 𝒱`; the decision is one of the proposed values or
//! the default value ⊥. The implementation follows the RITAS-optimized
//! variant: the `VECT` messages travel by *echo broadcast* instead of
//! reliable broadcast (cheaper; configurable back to reliable broadcast
//! via [`VectTransport`] for the ablation bench), and vector validation is
//! the simplified membership check described in the paper.
//!
//! Protocol outline:
//!
//! 1. reliably broadcast `(INIT, v_i)`; wait for `n − f` `INIT`s, storing
//!    the received values in the vector `V_i`;
//! 2. if some value `v` occurs `≥ n − 2f` times in `V_i`, echo-broadcast
//!    `(VECT, v, V_i)` — `V_i` *justifies* `v`; otherwise echo-broadcast
//!    `(VECT, ⊥)`;
//! 3. wait for `n − f` **valid** `VECT`s. A `VECT` from `p_j` is valid if
//!    `v_j = ⊥`, or if `≥ n − 2f` indices `k` satisfy
//!    `V_i[k] = V_j[k] = v_j` (checked against *my own* received `INIT`s,
//!    which keep arriving and can validate a parked `VECT` later);
//! 4. propose `1` to binary consensus iff no two valid `VECT`s carry
//!    different non-⊥ values **and** `≥ n − 2f` valid `VECT`s carry the
//!    same value; otherwise propose `0`;
//! 5. binary consensus `0` → decide ⊥; `1` → wait for `≥ n − 2f` valid
//!    `VECT`s with the same value `v` and decide `v`.
//!
//! The Byzantine faultload of the paper's evaluation (§4.2) — a process
//! that "always proposes the default value in both INIT and VECT
//! messages" and proposes `0` at the binary consensus layer — is available
//! as [`MultiValuedConsensus::propose_byzantine_bottom`], so the
//! evaluation harness attacks through the real code path.

use crate::bc::{BcMessage, BinaryConsensus, StepTransport};
use crate::codec::{Reader, WireError, WireMessage, Writer};
use crate::config::Group;
use crate::eb::{EbMessage, EchoBroadcast};
use crate::error::ProtocolError;
use crate::rb::{RbMessage, ReliableBroadcast};
use crate::step::{FaultKind, Step};
use crate::ProcessId;
use bytes::Bytes;
use ritas_crypto::{Coin, ProcessKeys};
use ritas_metrics::{Layer, Metrics};

/// Transport used for the `VECT` messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VectTransport {
    /// Matrix echo broadcast — the paper's optimization (default).
    #[default]
    Echo,
    /// Reliable broadcast — the original Correia et al. protocol; costs
    /// one more communication step but gives `VECT`s full totality.
    Reliable,
}

/// A proposal value: `Some(bytes)`, or `None` for the default value ⊥
/// (only ever sent by the Byzantine faultload; correct processes propose
/// real values).
pub type MvcValue = Option<Bytes>;

pub(crate) fn encode_value(w: &mut Writer, v: &MvcValue) {
    match v {
        Some(b) => {
            w.u8(1).bytes(b);
        }
        None => {
            w.u8(0);
        }
    }
}

pub(crate) fn decode_value(r: &mut Reader<'_>) -> Result<MvcValue, WireError> {
    match r.u8("mvc.value.tag")? {
        0 => Ok(None),
        1 => Ok(Some(r.bytes("mvc.value")?)),
        t => Err(WireError::InvalidTag {
            what: "mvc.value.tag",
            tag: t,
        }),
    }
}

/// The payload carried inside a `VECT` broadcast: the echoed value plus
/// the justification vector (the sender's view of the `INIT` values).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VectPayload {
    /// The value the sender claims occurred `≥ n−2f` times (`None` = ⊥).
    pub value: MvcValue,
    /// The sender's `INIT` vector; `None` entries were not received.
    /// Empty when `value` is ⊥ (⊥ needs no justification).
    pub justification: Vec<MvcValue>,
}

/// Decoder bound for justification vectors.
const MAX_JUSTIFICATION: usize = 4096;

impl WireMessage for VectPayload {
    fn encode(&self, w: &mut Writer) {
        encode_value(w, &self.value);
        w.u32(self.justification.len() as u32);
        for v in &self.justification {
            encode_value(w, v);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let value = decode_value(r)?;
        let len = r.u32("mvc.vect.len")? as usize;
        if len > MAX_JUSTIFICATION {
            return Err(WireError::FieldTooLong {
                what: "mvc.vect",
                len,
            });
        }
        let mut justification = Vec::with_capacity(len);
        for _ in 0..len {
            justification.push(decode_value(r)?);
        }
        Ok(VectPayload {
            value,
            justification,
        })
    }
}

/// Body of a `VECT` transmission, matching the configured transport.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VectBody {
    /// Echo broadcast traffic.
    Echo(EbMessage),
    /// Reliable broadcast traffic.
    Reliable(RbMessage),
}

/// Messages of the multi-valued consensus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MvcMessage {
    /// Reliable broadcast traffic of `origin`'s `INIT`.
    Init {
        /// Whose `INIT` broadcast this belongs to.
        origin: ProcessId,
        /// The broadcast traffic.
        inner: RbMessage,
    },
    /// `VECT` broadcast traffic of `origin`.
    Vect {
        /// Whose `VECT` broadcast this belongs to.
        origin: ProcessId,
        /// The broadcast traffic.
        inner: VectBody,
    },
    /// Binary consensus traffic.
    Bin(BcMessage),
}

const TAG_INIT: u8 = 1;
const TAG_VECT_ECHO: u8 = 2;
const TAG_VECT_RB: u8 = 3;
const TAG_BIN: u8 = 4;

impl WireMessage for MvcMessage {
    fn encode(&self, w: &mut Writer) {
        match self {
            MvcMessage::Init { origin, inner } => {
                w.u8(TAG_INIT).u32(*origin as u32);
                inner.encode(w);
            }
            MvcMessage::Vect { origin, inner } => match inner {
                VectBody::Echo(m) => {
                    w.u8(TAG_VECT_ECHO).u32(*origin as u32);
                    m.encode(w);
                }
                VectBody::Reliable(m) => {
                    w.u8(TAG_VECT_RB).u32(*origin as u32);
                    m.encode(w);
                }
            },
            MvcMessage::Bin(m) => {
                w.u8(TAG_BIN);
                m.encode(w);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8("mvc.tag")? {
            TAG_INIT => Ok(MvcMessage::Init {
                origin: r.u32("mvc.origin")? as usize,
                inner: RbMessage::decode(r)?,
            }),
            TAG_VECT_ECHO => Ok(MvcMessage::Vect {
                origin: r.u32("mvc.origin")? as usize,
                inner: VectBody::Echo(EbMessage::decode(r)?),
            }),
            TAG_VECT_RB => Ok(MvcMessage::Vect {
                origin: r.u32("mvc.origin")? as usize,
                inner: VectBody::Reliable(RbMessage::decode(r)?),
            }),
            TAG_BIN => Ok(MvcMessage::Bin(BcMessage::decode(r)?)),
            t => Err(WireError::InvalidTag {
                what: "mvc.tag",
                tag: t,
            }),
        }
    }
}

/// Step type of a multi-valued consensus instance: outgoing messages plus,
/// at most once, the decision (`None` = the default value ⊥).
pub type MvcStep = Step<MvcMessage, MvcValue>;

/// One process's `VECT` broadcast instance (echo or reliable).
#[derive(Debug)]
enum VectInstance {
    Echo(EchoBroadcast),
    Reliable(ReliableBroadcast),
}

/// Configuration for a [`MultiValuedConsensus`] instance.
#[derive(Debug, Clone, Copy, Default)]
pub struct MvcConfig {
    /// Transport for `VECT` messages.
    pub vect_transport: VectTransport,
    /// Transport for the binary consensus steps.
    pub bc_transport: StepTransport,
}

/// State of one multi-valued consensus instance for process `me`.
pub struct MultiValuedConsensus {
    group: Group,
    me: ProcessId,
    keys: ProcessKeys,
    config: MvcConfig,
    started: bool,
    /// Byzantine faultload flag (paper §4.2): send ⊥ everywhere, 0 to BC.
    byzantine_bottom: bool,
    /// INIT reliable broadcasts, one per origin.
    init_rbc: Vec<ReliableBroadcast>,
    /// Delivered INIT values (our vector `V_i`). Outer `Option`:
    /// delivered or not; inner [`MvcValue`]: the value (⊥ possible).
    init_values: Vec<Option<MvcValue>>,
    /// VECT broadcast instances, one per origin.
    vect_inst: Vec<Option<VectInstance>>,
    /// Delivered-but-unvalidated VECT payloads per origin.
    vect_pending: Vec<Option<VectPayload>>,
    /// Validated VECT values per origin.
    vect_valid: Vec<Option<MvcValue>>,
    /// Origins already reported for a justification that contradicts a
    /// reliably-broadcast `INIT` (one report per origin).
    vect_suspected: Vec<bool>,
    sent_vect: bool,
    /// Snapshot flag: the BC proposal has been computed and submitted.
    bc_proposed: bool,
    bc: BinaryConsensus,
    bc_decision: Option<bool>,
    decided: bool,
    decision: Option<MvcValue>,
    metrics: Metrics,
    /// Span path of this instance; set by the owner at creation. Child
    /// instances get `{path}/init:{p}`, `{path}/vect:{p}` and
    /// `{path}/bc`.
    span_path: Option<String>,
}

impl core::fmt::Debug for MultiValuedConsensus {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("MultiValuedConsensus")
            .field("me", &self.me)
            .field("sent_vect", &self.sent_vect)
            .field("bc_proposed", &self.bc_proposed)
            .field("decided", &self.decided)
            .finish_non_exhaustive()
    }
}

impl MultiValuedConsensus {
    /// Creates an instance with the paper's configuration.
    ///
    /// # Panics
    ///
    /// Panics if `me` is out of group or the key view mismatches.
    pub fn new(group: Group, me: ProcessId, keys: ProcessKeys, coin: Box<dyn Coin + Send>) -> Self {
        Self::with_config(group, me, keys, coin, MvcConfig::default())
    }

    /// Creates an instance with explicit transports (ablations).
    ///
    /// # Panics
    ///
    /// Panics if `me` is out of group or the key view mismatches.
    pub fn with_config(
        group: Group,
        me: ProcessId,
        keys: ProcessKeys,
        coin: Box<dyn Coin + Send>,
        config: MvcConfig,
    ) -> Self {
        assert!(group.contains(me), "me out of group");
        assert_eq!(keys.me(), me, "key view mismatch");
        let n = group.n();
        MultiValuedConsensus {
            group,
            me,
            keys,
            config,
            started: false,
            byzantine_bottom: false,
            init_rbc: (0..n)
                .map(|o| ReliableBroadcast::new(group, me, o))
                .collect(),
            init_values: vec![None; n],
            vect_inst: (0..n).map(|_| None).collect(),
            vect_pending: vec![None; n],
            vect_valid: vec![None; n],
            vect_suspected: vec![false; n],
            sent_vect: false,
            bc_proposed: false,
            bc: BinaryConsensus::with_transport(group, me, coin, config.bc_transport),
            bc_decision: None,
            decided: false,
            decision: None,
            metrics: Metrics::default(),
            span_path: None,
        }
    }

    /// Assigns this instance's span path, opens its span and cascades
    /// child paths down the control-block chain (INIT broadcasts, the
    /// binary consensus, and VECT instances as they are created). Call
    /// after [`MultiValuedConsensus::set_metrics`].
    pub fn set_span_path(&mut self, path: String) {
        self.metrics.span_open(path.clone(), Layer::Mvc);
        for (o, rb) in self.init_rbc.iter_mut().enumerate() {
            rb.set_span_path(format!("{path}/init:{o}"));
        }
        self.bc.set_span_path(format!("{path}/bc"));
        self.span_path = Some(path);
    }

    /// Attaches the process-wide metric registry and propagates it to
    /// every sub-protocol instance (INIT broadcasts, VECT broadcasts and
    /// the underlying binary consensus).
    pub fn set_metrics(&mut self, metrics: Metrics) {
        for rb in &mut self.init_rbc {
            rb.set_metrics(metrics.clone());
        }
        for inst in self.vect_inst.iter_mut().flatten() {
            match inst {
                VectInstance::Echo(eb) => eb.set_metrics(metrics.clone()),
                VectInstance::Reliable(rb) => rb.set_metrics(metrics.clone()),
            }
        }
        self.bc.set_metrics(metrics.clone());
        self.metrics = metrics;
    }

    /// The decision, once taken (`Some(None)` = decided ⊥).
    pub fn decision(&self) -> Option<&MvcValue> {
        if self.decided {
            self.decision.as_ref()
        } else {
            None
        }
    }

    /// Whether this instance has decided.
    pub fn is_decided(&self) -> bool {
        self.decided
    }

    /// Number of rounds the underlying binary consensus ran (statistics).
    pub fn bc_rounds(&self) -> Option<u32> {
        self.bc.decided_round()
    }

    /// Proposes `value` and emits the `INIT` reliable broadcast.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::AlreadyStarted`] on a second call.
    pub fn propose(&mut self, value: Bytes) -> Result<MvcStep, ProtocolError> {
        self.propose_value(Some(value))
    }

    /// Runs the Byzantine faultload of the paper's evaluation: propose the
    /// default value ⊥ in `INIT` and `VECT`, and `0` at the binary
    /// consensus layer, "trying to force correct processes to decide on
    /// the default value" (§4.2).
    ///
    /// # Errors
    ///
    /// [`ProtocolError::AlreadyStarted`] on a second call.
    pub fn propose_byzantine_bottom(&mut self) -> Result<MvcStep, ProtocolError> {
        self.byzantine_bottom = true;
        self.propose_value(None)
    }

    fn propose_value(&mut self, value: MvcValue) -> Result<MvcStep, ProtocolError> {
        if self.started {
            return Err(ProtocolError::AlreadyStarted);
        }
        self.started = true;
        self.metrics.mvc_started.inc();
        self.metrics
            .trace(Layer::Mvc, "propose", format!("mvc:{}", self.me), 0);
        let me = self.me;
        let mut payload = Writer::new();
        encode_value(&mut payload, &value);
        let sub = self.init_rbc[me].broadcast(payload.freeze())?;
        let mut out = wrap_init(me, sub);
        out.extend(self.settle());
        Ok(out)
    }

    /// Handles a protocol message from `from`.
    pub fn handle_message(&mut self, from: ProcessId, message: MvcMessage) -> MvcStep {
        if !self.group.contains(from) {
            return Step::fault(from, FaultKind::NotEntitled);
        }
        let mut out = match message {
            MvcMessage::Init { origin, inner } => {
                if !self.group.contains(origin) {
                    return Step::fault(from, FaultKind::NotEntitled);
                }
                let sub = self.init_rbc[origin].handle_message(from, inner);
                let mut out = Step::none();
                let mut delivered = Vec::new();
                for o in sub.outputs.iter() {
                    delivered.push(o.clone());
                }
                out.extend(wrap_init(origin, sub.map_outputs(|_| None)));
                for payload in delivered {
                    match VectOrInit::decode_init(&payload) {
                        Ok(v) => self.on_init_delivered(origin, v),
                        Err(_) => out.push_fault(origin, FaultKind::Malformed),
                    }
                }
                out
            }
            MvcMessage::Vect { origin, inner } => self.on_vect_message(from, origin, inner),
            MvcMessage::Bin(m) => {
                let sub = self.bc.handle_message(from, m);
                let mut out = Step::none();
                let mut decisions = Vec::new();
                for d in sub.outputs.iter() {
                    decisions.push(*d);
                }
                out.extend(wrap_bin(sub.map_outputs(|_| None)));
                for d in decisions {
                    self.on_bc_decision(d);
                }
                out
            }
        };
        out.extend(self.settle());
        out
    }

    fn vect_instance(&mut self, origin: ProcessId) -> &mut VectInstance {
        if self.vect_inst[origin].is_none() {
            let vect_path = self
                .span_path
                .as_ref()
                .map(|base| format!("{base}/vect:{origin}"));
            let inst = match self.config.vect_transport {
                VectTransport::Echo => {
                    let mut eb = EchoBroadcast::new(self.group, self.me, origin, self.keys.clone());
                    eb.set_metrics(self.metrics.clone());
                    if let Some(p) = vect_path {
                        eb.set_span_path(p);
                    }
                    VectInstance::Echo(eb)
                }
                VectTransport::Reliable => {
                    let mut rb = ReliableBroadcast::new(self.group, self.me, origin);
                    rb.set_metrics(self.metrics.clone());
                    if let Some(p) = vect_path {
                        rb.set_span_path(p);
                    }
                    VectInstance::Reliable(rb)
                }
            };
            self.vect_inst[origin] = Some(inst);
        }
        self.vect_inst[origin].as_mut().expect("just created")
    }

    fn on_vect_message(&mut self, from: ProcessId, origin: ProcessId, body: VectBody) -> MvcStep {
        if !self.group.contains(origin) {
            return Step::fault(from, FaultKind::NotEntitled);
        }
        let expected_echo = matches!(self.config.vect_transport, VectTransport::Echo);
        let mut out = Step::none();
        let mut delivered: Vec<Bytes> = Vec::new();
        match (body, expected_echo) {
            (VectBody::Echo(m), true) => {
                let inst = self.vect_instance(origin);
                let VectInstance::Echo(eb) = inst else {
                    unreachable!()
                };
                let mut sub = eb.handle_message(from, m);
                out.faults.append(&mut sub.faults);
                delivered.append(&mut sub.outputs);
                for m in sub.messages {
                    out.messages.push(m.map(|inner| MvcMessage::Vect {
                        origin,
                        inner: VectBody::Echo(inner),
                    }));
                }
            }
            (VectBody::Reliable(m), false) => {
                let inst = self.vect_instance(origin);
                let VectInstance::Reliable(rb) = inst else {
                    unreachable!()
                };
                let mut sub = rb.handle_message(from, m);
                out.faults.append(&mut sub.faults);
                delivered.append(&mut sub.outputs);
                for m in sub.messages {
                    out.messages.push(m.map(|inner| MvcMessage::Vect {
                        origin,
                        inner: VectBody::Reliable(inner),
                    }));
                }
            }
            _ => return Step::fault(from, FaultKind::Malformed),
        }
        for payload in delivered {
            match VectPayload::from_bytes(&payload) {
                Ok(p) => self.on_vect_delivered(origin, p),
                Err(_) => out.push_fault(origin, FaultKind::Malformed),
            }
        }
        out
    }

    fn on_init_delivered(&mut self, origin: ProcessId, value: MvcValue) {
        if self.init_values[origin].is_none() {
            self.init_values[origin] = Some(value);
        }
    }

    fn on_vect_delivered(&mut self, origin: ProcessId, payload: VectPayload) {
        if self.vect_pending[origin].is_none() && self.vect_valid[origin].is_none() {
            self.vect_pending[origin] = Some(payload);
        }
    }

    fn on_bc_decision(&mut self, d: bool) {
        if self.bc_decision.is_none() {
            self.bc_decision = Some(d);
        }
    }

    fn init_count(&self) -> usize {
        self.init_values.iter().filter(|v| v.is_some()).count()
    }

    /// Runs all deferred transitions to a fixpoint.
    fn settle(&mut self) -> MvcStep {
        let mut out = Step::none();
        loop {
            let mut progressed = false;
            progressed |= self.validate_vects(&mut out);
            if let Some(step) = self.maybe_send_vect() {
                out.extend(step);
                progressed = true;
            }
            if let Some(step) = self.maybe_propose_bc() {
                out.extend(step);
                progressed = true;
            }
            if self.maybe_decide(&mut out) {
                progressed = true;
            }
            if !progressed {
                break;
            }
        }
        out
    }

    /// Moves justifiable pending `VECT`s to the validated set.
    ///
    /// Also cross-checks each pending justification against the `INIT`s
    /// we delivered directly: `INIT`s travel by reliable broadcast, so
    /// any two correct processes deliver the same value per origin — a
    /// justification entry that *contradicts* ours (both non-⊥, different
    /// bytes) can only come from a lying `VECT` origin. That lie is what
    /// makes per-receiver conflicting vectors otherwise undetectable:
    /// the vector never validates and would just sit pending forever.
    /// Claiming ⊥ where we saw a value (or vice versa) is legitimate
    /// asynchrony and is not flagged.
    fn validate_vects(&mut self, out: &mut MvcStep) -> bool {
        let mut moved = false;
        for origin in 0..self.group.n() {
            let Some(p) = self.vect_pending[origin].as_ref() else {
                continue;
            };
            if !self.vect_suspected[origin] {
                let lied = (0..self.group.n()).any(|k| {
                    matches!(
                        (self.init_values.get(k), p.justification.get(k)),
                        (Some(Some(Some(mine))), Some(Some(theirs))) if mine != theirs
                    )
                });
                if lied {
                    self.vect_suspected[origin] = true;
                    out.push_fault(origin, FaultKind::Unjustified);
                }
            }
            let valid = match &p.value {
                None => true, // ⊥ needs no justification
                Some(v) => {
                    let matching = (0..self.group.n())
                        .filter(|&k| {
                            let mine = matches!(
                                self.init_values.get(k),
                                Some(Some(Some(b))) if b == v
                            );
                            let theirs = matches!(
                                p.justification.get(k),
                                Some(Some(b)) if b == v
                            );
                            mine && theirs
                        })
                        .count();
                    matching >= self.group.correct_in_quorum()
                }
            };
            if valid {
                let p = self.vect_pending[origin].take().expect("checked above");
                self.vect_valid[origin] = Some(p.value);
                moved = true;
            }
        }
        moved
    }

    /// After `n − f` `INIT`s: compose and broadcast our `VECT` (once).
    fn maybe_send_vect(&mut self) -> Option<MvcStep> {
        if self.sent_vect || !self.started || self.init_count() < self.group.quorum() {
            return None;
        }
        self.sent_vect = true;

        let value: MvcValue = if self.byzantine_bottom {
            None
        } else {
            self.most_common_init()
                .filter(|(_, c)| *c >= self.group.correct_in_quorum())
                .map(|(v, _)| v)
        };
        let payload = VectPayload {
            justification: if value.is_some() {
                self.init_values
                    .iter()
                    .map(|slot| slot.clone().flatten())
                    .collect()
            } else {
                Vec::new()
            },
            value,
        };
        let bytes = payload.to_bytes();
        self.metrics.mvc_vect_bytes.record(bytes.len() as u64);
        let me = self.me;
        let sub = match self.vect_instance(me) {
            VectInstance::Echo(eb) => wrap_vect_echo(me, eb.broadcast(bytes).expect("one vect")),
            VectInstance::Reliable(rb) => wrap_vect_rb(me, rb.broadcast(bytes).expect("one vect")),
        };
        Some(sub)
    }

    /// The most frequent non-⊥ `INIT` value with its count (ties broken by
    /// smallest byte string, deterministically).
    fn most_common_init(&self) -> Option<(Bytes, usize)> {
        let mut best: Option<(Bytes, usize)> = None;
        for slot in self.init_values.iter().flatten().flatten() {
            let count = self
                .init_values
                .iter()
                .flatten()
                .flatten()
                .filter(|v| *v == slot)
                .count();
            match &best {
                Some((bv, bc)) if *bc > count || (*bc == count && bv <= slot) => {}
                _ => best = Some((slot.clone(), count)),
            }
        }
        best
    }

    /// After `n − f` valid `VECT`s: evaluate the condition and propose to
    /// binary consensus (once).
    fn maybe_propose_bc(&mut self) -> Option<MvcStep> {
        if self.bc_proposed || !self.started {
            return None;
        }
        let valid_count = self.vect_valid.iter().filter(|v| v.is_some()).count();
        if valid_count < self.group.quorum() {
            return None;
        }
        self.bc_proposed = true;
        if let Some(path) = &self.span_path {
            self.metrics.span_annotate(
                path,
                ritas_metrics::SpanAnnotation::VectCollected,
                valid_count as u64,
            );
        }

        let proposal = if self.byzantine_bottom {
            false
        } else {
            let values: Vec<&Bytes> = self.vect_valid.iter().flatten().flatten().collect();
            let conflict = values.iter().any(|a| values.iter().any(|b| a != b));
            let supported = values.iter().any(|v| {
                values.iter().filter(|w| w == &v).count() >= self.group.correct_in_quorum()
            });
            !conflict && supported
        };
        let sub = self.bc.propose(proposal).expect("bc proposed once");
        let mut decisions = Vec::new();
        for d in sub.outputs.iter() {
            decisions.push(*d);
        }
        let out = wrap_bin(sub.map_outputs(|_| None));
        for d in decisions {
            self.on_bc_decision(d);
        }
        Some(out)
    }

    /// Applies the decision rule once binary consensus has decided.
    fn maybe_decide(&mut self, out: &mut MvcStep) -> bool {
        if self.decided {
            return false;
        }
        match self.bc_decision {
            Some(false) => {
                self.decided = true;
                self.decision = Some(None);
                self.metrics.mvc_decided_bottom.inc();
                self.metrics
                    .trace(Layer::Mvc, "decide-bottom", format!("mvc:{}", self.me), 0);
                if let Some(path) = &self.span_path {
                    self.metrics.span_close(path);
                }
                out.push_output(None);
                true
            }
            Some(true) => {
                // Wait for n−2f valid VECTs with the same value v.
                let threshold = self.group.correct_in_quorum();
                let mut best: Option<(Bytes, usize)> = None;
                for v in self.vect_valid.iter().flatten().flatten() {
                    let count = self
                        .vect_valid
                        .iter()
                        .flatten()
                        .flatten()
                        .filter(|w| *w == v)
                        .count();
                    match &best {
                        Some((bv, bc)) if *bc > count || (*bc == count && bv <= v) => {}
                        _ => best = Some((v.clone(), count)),
                    }
                }
                if let Some((v, count)) = best {
                    if count >= threshold {
                        self.decided = true;
                        self.decision = Some(Some(v.clone()));
                        self.metrics.mvc_decided_value.inc();
                        self.metrics.trace(
                            Layer::Mvc,
                            "decide-value",
                            format!("mvc:{}", self.me),
                            0,
                        );
                        if let Some(path) = &self.span_path {
                            self.metrics.span_close(path);
                        }
                        out.push_output(Some(v));
                        return true;
                    }
                }
                false
            }
            None => false,
        }
    }
}

/// `INIT` payload decoding helper.
struct VectOrInit;

impl VectOrInit {
    fn decode_init(payload: &Bytes) -> Result<MvcValue, WireError> {
        let mut r = Reader::new(payload);
        let v = decode_value(&mut r)?;
        r.finish()?;
        Ok(v)
    }
}

fn wrap_init(origin: ProcessId, sub: Step<RbMessage, Bytes>) -> MvcStep {
    sub.map_outputs(|_| None)
        .map_messages(|inner| MvcMessage::Init { origin, inner })
}

fn wrap_vect_echo(origin: ProcessId, sub: Step<EbMessage, Bytes>) -> MvcStep {
    sub.map_outputs(|_| None)
        .map_messages(|inner| MvcMessage::Vect {
            origin,
            inner: VectBody::Echo(inner),
        })
}

fn wrap_vect_rb(origin: ProcessId, sub: Step<RbMessage, Bytes>) -> MvcStep {
    sub.map_outputs(|_| None)
        .map_messages(|inner| MvcMessage::Vect {
            origin,
            inner: VectBody::Reliable(inner),
        })
}

fn wrap_bin(sub: Step<BcMessage, bool>) -> MvcStep {
    sub.map_outputs(|_| None).map_messages(MvcMessage::Bin)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::step::Target;
    use ritas_crypto::{DeterministicCoin, KeyTable};

    fn coin(seed: u64) -> Box<dyn Coin + Send> {
        Box::new(DeterministicCoin::new(seed))
    }

    struct Net {
        insts: Vec<MultiValuedConsensus>,
        queue: Vec<(ProcessId, ProcessId, MvcMessage)>,
        decisions: Vec<Option<MvcValue>>,
        rng_state: u64,
        crashed: Vec<ProcessId>,
    }

    impl Net {
        fn new(n: usize, seed: u64, config: MvcConfig) -> Self {
            let g = Group::new(n).unwrap();
            let table = KeyTable::dealer(n, seed);
            Net {
                insts: (0..n)
                    .map(|me| {
                        MultiValuedConsensus::with_config(
                            g,
                            me,
                            table.view_of(me),
                            coin(seed ^ (me as u64) << 8),
                            config,
                        )
                    })
                    .collect(),
                queue: Vec::new(),
                decisions: vec![None; n],
                rng_state: seed.wrapping_mul(0x9E3779B97F4A7C15) | 1,
                crashed: Vec::new(),
            }
        }

        fn next_rand(&mut self) -> u64 {
            let mut x = self.rng_state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.rng_state = x;
            x.wrapping_mul(0x2545F4914F6CDD1D)
        }

        fn absorb(&mut self, from: ProcessId, step: MvcStep) {
            if self.crashed.contains(&from) {
                return;
            }
            let n = self.insts.len();
            for out in step.messages {
                match out.target {
                    Target::All => {
                        for to in 0..n {
                            self.queue.push((from, to, out.message.clone()));
                        }
                    }
                    Target::One(to) => self.queue.push((from, to, out.message.clone())),
                }
            }
            for d in step.outputs {
                assert!(self.decisions[from].is_none(), "double decision at {from}");
                self.decisions[from] = Some(d);
            }
        }

        fn propose(&mut self, p: ProcessId, v: &[u8]) {
            let step = self.insts[p].propose(Bytes::copy_from_slice(v)).unwrap();
            self.absorb(p, step);
        }

        fn propose_byzantine(&mut self, p: ProcessId) {
            let step = self.insts[p].propose_byzantine_bottom().unwrap();
            self.absorb(p, step);
        }

        fn run(&mut self) {
            let mut iterations = 0usize;
            while !self.queue.is_empty() {
                iterations += 1;
                assert!(iterations < 5_000_000, "runaway execution");
                let idx = (self.next_rand() as usize) % self.queue.len();
                let (from, to, msg) = self.queue.swap_remove(idx);
                if self.crashed.contains(&to) {
                    continue;
                }
                let step = self.insts[to].handle_message(from, msg);
                self.absorb(to, step);
            }
        }
    }

    #[test]
    fn vect_payload_codec_roundtrip() {
        let p = VectPayload {
            value: Some(Bytes::from_static(b"v")),
            justification: vec![
                Some(Bytes::from_static(b"v")),
                None,
                Some(Bytes::from_static(b"w")),
            ],
        };
        assert_eq!(VectPayload::from_bytes(&p.to_bytes()).unwrap(), p);
        let bottom = VectPayload {
            value: None,
            justification: vec![],
        };
        assert_eq!(VectPayload::from_bytes(&bottom.to_bytes()).unwrap(), bottom);
    }

    #[test]
    fn message_codec_roundtrip() {
        let msgs = [
            MvcMessage::Init {
                origin: 2,
                inner: RbMessage::Init(Bytes::from_static(b"x")),
            },
            MvcMessage::Vect {
                origin: 0,
                inner: VectBody::Reliable(RbMessage::Echo(Bytes::from_static(b"y"))),
            },
            MvcMessage::Bin(BcMessage {
                round: 1,
                step: 1,
                origin: 3,
                body: crate::bc::BcBody::Rbc(RbMessage::Init(Bytes::from_static(&[1]))),
            }),
        ];
        for m in msgs {
            assert_eq!(MvcMessage::from_bytes(&m.to_bytes()).unwrap(), m);
        }
    }

    #[test]
    fn identical_proposals_decide_that_value() {
        for seed in [1, 2, 3] {
            let mut net = Net::new(4, seed, MvcConfig::default());
            for p in 0..4 {
                net.propose(p, b"agreed");
            }
            net.run();
            for p in 0..4 {
                assert_eq!(
                    net.decisions[p],
                    Some(Some(Bytes::from_static(b"agreed"))),
                    "seed {seed} process {p}"
                );
                assert_eq!(net.insts[p].bc_rounds(), Some(1), "one-round BC expected");
            }
        }
    }

    #[test]
    fn identical_proposals_with_reliable_vect_transport() {
        let mut net = Net::new(
            4,
            9,
            MvcConfig {
                vect_transport: VectTransport::Reliable,
                bc_transport: StepTransport::ReliableBroadcast,
            },
        );
        for p in 0..4 {
            net.propose(p, b"agreed");
        }
        net.run();
        for p in 0..4 {
            assert_eq!(net.decisions[p], Some(Some(Bytes::from_static(b"agreed"))));
        }
    }

    #[test]
    fn divergent_proposals_decide_bottom_or_common() {
        // With four different proposals no value reaches n-2f = 2 INIT
        // occurrences, so every correct process echoes ⊥, proposes 0, and
        // the decision is ⊥.
        let mut net = Net::new(4, 5, MvcConfig::default());
        net.propose(0, b"a");
        net.propose(1, b"b");
        net.propose(2, b"c");
        net.propose(3, b"d");
        net.run();
        for p in 0..4 {
            assert_eq!(net.decisions[p], Some(None), "process {p}");
        }
    }

    #[test]
    fn agreement_under_mixed_proposals() {
        for seed in 0..5 {
            let mut net = Net::new(4, 40 + seed, MvcConfig::default());
            net.propose(0, b"x");
            net.propose(1, b"x");
            net.propose(2, b"y");
            net.propose(3, b"x");
            net.run();
            let d0 = net.decisions[0].clone().expect("decided");
            for p in 1..4 {
                assert_eq!(net.decisions[p], Some(d0.clone()), "seed {seed}");
            }
            // Validity: the decision is a proposed value or ⊥, never "y"
            // alone... it must be x or ⊥ (y cannot gather n-2f support
            // from correct processes... actually y could not reach 2).
            if let Some(v) = d0 {
                assert_eq!(v, Bytes::from_static(b"x"));
            }
        }
    }

    #[test]
    fn crash_fault_terminates() {
        let mut net = Net::new(4, 77, MvcConfig::default());
        net.crashed.push(3);
        net.propose(0, b"v");
        net.propose(1, b"v");
        net.propose(2, b"v");
        net.run();
        for p in 0..3 {
            assert_eq!(net.decisions[p], Some(Some(Bytes::from_static(b"v"))));
        }
    }

    #[test]
    fn byzantine_bottom_cannot_force_default_decision() {
        // The paper's §4.2 Byzantine faultload: the attacker proposes ⊥ in
        // INIT and VECT and 0 at the BC layer; correct processes all
        // propose the same value and still decide it.
        for seed in 0..5 {
            let mut net = Net::new(4, 500 + seed, MvcConfig::default());
            net.propose(0, b"good");
            net.propose(1, b"good");
            net.propose(2, b"good");
            net.propose_byzantine(3);
            net.run();
            for p in 0..3 {
                assert_eq!(
                    net.decisions[p],
                    Some(Some(Bytes::from_static(b"good"))),
                    "seed {seed} process {p}"
                );
            }
        }
    }

    #[test]
    fn double_propose_rejected() {
        let g = Group::new(4).unwrap();
        let table = KeyTable::dealer(4, 0);
        let mut mvc = MultiValuedConsensus::new(g, 0, table.view_of(0), coin(1));
        let _ = mvc.propose(Bytes::from_static(b"v")).unwrap();
        assert_eq!(
            mvc.propose(Bytes::from_static(b"w")).unwrap_err(),
            ProtocolError::AlreadyStarted
        );
    }

    #[test]
    fn larger_group_identical_proposals() {
        let mut net = Net::new(7, 3, MvcConfig::default());
        for p in 0..7 {
            net.propose(p, b"seven");
        }
        net.run();
        for p in 0..7 {
            assert_eq!(net.decisions[p], Some(Some(Bytes::from_static(b"seven"))));
        }
    }
}
