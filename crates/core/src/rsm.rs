//! Byzantine-fault-tolerant **replicated state machines** on top of
//! atomic broadcast — the application pattern the paper's introduction
//! motivates ("consensus … has been shown equivalent to several other
//! distributed problems, such as state machine replication [23]").
//!
//! A [`Replica`] owns a [`Node`] and a deterministic state value; every
//! command submitted anywhere in the group is applied at every replica in
//! the same (FIFO-upgraded) total order, so all replicas stay in the same
//! state with no leader and up to `f` arbitrary faults.
//!
//! * [`Replica::submit`] — fire-and-forget command submission;
//! * [`Replica::submit_sync`] — blocks until the *own* command has been
//!   applied locally (at which point every correct replica applies it at
//!   the same position);
//! * [`Replica::read`] — a local read of the current state (sequentially
//!   consistent: it sees a prefix of the agreed history);
//! * [`Replica::barrier`] — a linearization point: broadcasts a marker
//!   and blocks until it is applied, after which a [`Replica::read`]
//!   reflects everything ordered before the barrier.

use crate::ab::{AbDelivery, MsgId};
use crate::codec::{Reader, WireMessage, Writer};
use crate::fifo::FifoOrder;
use crate::node::{Node, NodeError};
use crate::recovery::scheduler::{
    DeferReason, RecoveryCommand, RotationConfig, RotationEffect, RotationState,
};
use crate::recovery::{
    accept_manifest, milestones, plan_fetch, select_cursor, AntiEntropyError, FillEntry, Hash,
    Manifest, MerkleTree, PeerHints, RecoveryConfig, RecoveryConfigError, Snapshot, SnapshotBundle,
    SnapshotState, XferMessage,
};
use crate::ProcessId;
use bytes::{BufMut, Bytes, BytesMut};
use parking_lot::{Condvar, Mutex};
use ritas_metrics::{FlightKind, Layer, SuspicionKind};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Internal command framing: user commands vs barrier markers.
const TAG_USER: u8 = 1;
const TAG_MARKER: u8 = 2;
/// The first frame a rejoined replica broadcasts after resuming its
/// atomic-broadcast cursor. Every replica's FIFO upgrade restarts the
/// sender's expected rbid at this frame's own id before pushing it —
/// the rejoiner's post-resume counter starts above a slack gap that
/// must not read as a FIFO hole. A Byzantine sender abusing the tag can
/// only skip *its own* pending commands, which is indistinguishable
/// from never having sent them.
const TAG_REJOIN: u8 = 3;
/// A proactive-recovery rotation command (see
/// [`crate::recovery::scheduler`]): the payload is a
/// [`RecoveryCommand`], ordered through the same total order as user
/// commands so every replica applies it to the same [`RotationState`].
/// Replicas without the recovery pipeline ignore the tag.
const TAG_RECOVERY: u8 = 4;

/// Tracks which of our own commands have been applied, compactly
/// (watermark + sparse set over our sequential rbids).
#[derive(Debug, Default)]
struct OwnApplied {
    watermark: u64,
    /// Everything below `base` predates this incarnation (it was covered
    /// by the snapshot the replica rejoined from, or abandoned with the
    /// wiped process): there is no local apply event to wait for.
    base: u64,
    sparse: BTreeSet<u64>,
}

impl OwnApplied {
    fn insert(&mut self, rbid: u64) {
        if rbid < self.watermark {
            return;
        }
        self.sparse.insert(rbid);
        while self.sparse.remove(&self.watermark) {
            self.watermark += 1;
        }
    }

    fn contains(&self, rbid: u64) -> bool {
        rbid < self.watermark || self.sparse.contains(&rbid)
    }

    /// Jumps the watermark over a rejoin gap: rbids below `rbid` belong
    /// to the pre-wipe incarnation and will never be applied *by us* —
    /// they are either in the snapshot we restored or lost with the old
    /// process, and a waiter must not hang on them.
    fn fast_forward(&mut self, rbid: u64) {
        if rbid > self.watermark {
            self.watermark = rbid;
        }
        if rbid > self.base {
            self.base = rbid;
        }
        self.sparse.retain(|&r| r >= rbid);
    }
}

/// How [`Replica::wait_applied_covered`] observed a command's fate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Applied {
    /// The command was applied live on this replica.
    Fresh,
    /// The rbid predates this incarnation's snapshot watermark: it was
    /// resolved — applied through the restored snapshot, or lost with
    /// the wiped process — before this replica rejoined, so its effect
    /// (if any) is already in the state and there is nothing to wait
    /// for. Clients should re-read or re-submit idempotently instead of
    /// treating the gap as an error.
    CoveredBySnapshot,
}

struct Shared<S> {
    state: Mutex<S>,
    applied: Mutex<OwnApplied>,
    applied_cv: Condvar,
    /// Set when the applier thread exits (node shut down): no further
    /// deliveries will ever be applied.
    stopped: std::sync::atomic::AtomicBool,
}

/// One replica of a deterministic state machine.
///
/// # Example
///
/// A replicated counter over an in-memory cluster:
///
/// ```
/// use ritas::node::{Node, SessionConfig};
/// use ritas::rsm::Replica;
/// use bytes::Bytes;
///
/// let nodes = Node::cluster(SessionConfig::new(4)?)?;
/// let replicas: Vec<_> = nodes
///     .into_iter()
///     .map(|n| Replica::new(n, 0u64, |count, _from, cmd| {
///         if cmd == b"incr" {
///             *count += 1;
///         }
///     }))
///     .collect();
/// // Submit from one replica; the command applies at every replica.
/// replicas[2].submit_sync(Bytes::from_static(b"incr"))?;
/// assert_eq!(replicas[2].read(|c| *c), 1);
/// # for r in &replicas { r.shutdown(); }
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Replica<S: Send + 'static> {
    node: Arc<Node>,
    shared: Arc<Shared<S>>,
    applier: Option<JoinHandle<()>>,
    /// Snapshot/log bookkeeping — `Some` only for replicas built with
    /// [`Replica::with_recovery`] / [`Replica::rejoin`].
    recovery: Option<Arc<RecoveryCore>>,
    /// The state-transfer server thread. Behind a shared slot because a
    /// rejoining replica only starts serving once it reaches `Live`
    /// (from the applier thread), while `Drop` must still join it.
    server: Arc<Mutex<Option<JoinHandle<()>>>>,
    /// The proactive-rotation driver thread, if armed (see
    /// [`Replica::start_rotation`]).
    driver: Mutex<Option<JoinHandle<()>>>,
}

impl<S: Send + 'static> core::fmt::Debug for Replica<S> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Replica")
            .field("id", &self.node.id())
            .finish_non_exhaustive()
    }
}

impl<S: Send + 'static> Replica<S> {
    /// Wraps `node` into a replica of `initial` state. `apply` must be
    /// **deterministic** — it runs at every replica with the same command
    /// sequence; any divergence (clocks, randomness, iteration order over
    /// unordered maps) forks the replicated state.
    pub fn new(
        node: Node,
        initial: S,
        mut apply: impl FnMut(&mut S, ProcessId, &[u8]) + Send + 'static,
    ) -> Self {
        let node = Arc::new(node);
        let shared = Arc::new(Shared {
            state: Mutex::new(initial),
            applied: Mutex::new(OwnApplied::default()),
            applied_cv: Condvar::new(),
            stopped: std::sync::atomic::AtomicBool::new(false),
        });
        let me = node.id();
        let applier = {
            let node = Arc::clone(&node);
            let shared = Arc::clone(&shared);
            let n = node.group_size();
            std::thread::spawn(move || {
                let mut fifo = crate::fifo::FifoOrder::new(n);
                loop {
                    let delivery = match node.atomic_recv() {
                        Ok(d) => d,
                        Err(_) => {
                            shared
                                .stopped
                                .store(true, std::sync::atomic::Ordering::SeqCst);
                            shared.applied_cv.notify_all();
                            return;
                        }
                    };
                    // The AB layer delivers whole batches at once; drain
                    // everything that is already ready so the batch applies
                    // under a single state-lock acquisition instead of one
                    // lock round-trip per command.
                    let mut ready: Vec<_> = push_with_reset(&mut fifo, delivery);
                    while let Ok(Some(d)) = node.atomic_try_recv() {
                        ready.extend(push_with_reset(&mut fifo, d));
                    }
                    if ready.is_empty() {
                        continue;
                    }
                    {
                        let mut state = shared.state.lock();
                        for d in &ready {
                            let mut frame = d.payload.as_ref();
                            let tag = frame.first().copied().unwrap_or(0);
                            frame = frame.get(1..).unwrap_or(&[]);
                            if tag == TAG_USER {
                                apply(&mut state, d.id.sender, frame);
                            }
                        }
                    }
                    // Both user commands and markers count as applied.
                    // Hold the applied lock across the notify so a waiter
                    // can never check-then-sleep between our insert and the
                    // wakeup, and notify per drained batch — sync-submit
                    // latency must come from the protocol, not from a poll
                    // interval.
                    node.metrics().rsm_applied_total.add(ready.len() as u64);
                    let mut applied = shared.applied.lock();
                    for d in &ready {
                        if d.id.sender == me {
                            applied.insert(d.id.rbid);
                        }
                    }
                    node.metrics().rsm_applied_watermark.set(applied.watermark);
                    shared.applied_cv.notify_all();
                }
            })
        };
        Replica {
            node,
            shared,
            applier: Some(applier),
            recovery: None,
            server: Arc::new(Mutex::new(None)),
            driver: Mutex::new(None),
        }
    }

    /// This replica's process id.
    pub fn id(&self) -> ProcessId {
        self.node.id()
    }

    /// The underlying node (metrics, link state, debug introspection).
    pub fn node(&self) -> &Node {
        &self.node
    }

    /// Submits a command without waiting for it to apply.
    ///
    /// # Errors
    ///
    /// [`NodeError::Disconnected`] if the node has shut down.
    pub fn submit(&self, command: Bytes) -> Result<MsgId, NodeError> {
        self.node.atomic_broadcast(frame(TAG_USER, &command))
    }

    /// Submits a command and blocks until this replica has applied it
    /// (every correct replica applies it at the same history position).
    ///
    /// # Errors
    ///
    /// [`NodeError::Disconnected`] if the node has shut down.
    pub fn submit_sync(&self, command: Bytes) -> Result<MsgId, NodeError> {
        let id = self.submit(command)?;
        self.wait_applied(id.rbid)?;
        Ok(id)
    }

    /// A linearization barrier: returns once everything ordered before
    /// the barrier has been applied locally.
    ///
    /// # Errors
    ///
    /// [`NodeError::Disconnected`] if the node has shut down.
    pub fn barrier(&self) -> Result<(), NodeError> {
        let id = self.node.atomic_broadcast(frame(TAG_MARKER, &[]))?;
        self.wait_applied(id.rbid)
    }

    /// Reads the current state under the replica lock.
    pub fn read<R>(&self, f: impl FnOnce(&S) -> R) -> R {
        f(&self.shared.state.lock())
    }

    /// Underlying atomic broadcast introspection (monitoring/debugging).
    ///
    /// # Errors
    ///
    /// [`NodeError::Disconnected`] if the node has shut down.
    pub fn ab_debug(&self) -> Result<Option<(crate::ab::AbStats, u32, usize)>, NodeError> {
        self.node.ab_debug()
    }

    /// Shuts the underlying node down.
    pub fn shutdown(&self) {
        self.node.shutdown();
        self.shared.applied_cv.notify_all();
    }

    /// Watermark-aware [`wait_applied`](Replica::submit_sync) variant
    /// for clients of a rejoined replica: an rbid below the snapshot
    /// watermark the replica restored from returns
    /// [`Applied::CoveredBySnapshot`] immediately instead of blocking
    /// forever (the pre-wipe incarnation's commands have no local apply
    /// event), while live rbids wait exactly like `submit_sync`.
    ///
    /// # Errors
    ///
    /// [`NodeError::Disconnected`] if the node has shut down before the
    /// command applied.
    pub fn wait_applied_covered(&self, rbid: u64) -> Result<Applied, NodeError> {
        {
            let applied = self.shared.applied.lock();
            if rbid < applied.base {
                return Ok(Applied::CoveredBySnapshot);
            }
        }
        self.wait_applied(rbid)?;
        Ok(Applied::Fresh)
    }

    fn wait_applied(&self, rbid: u64) -> Result<(), NodeError> {
        let mut applied = self.shared.applied.lock();
        while !applied.contains(rbid) {
            // Bail out once the applier has exited (node shut down): no
            // further deliveries will ever be applied, so the command can
            // never be observed as applied — that is a failure, not a
            // silent success. Never touch the node's delivery queue from
            // here — that would steal deliveries from the applier thread.
            if self
                .shared
                .stopped
                .load(std::sync::atomic::Ordering::SeqCst)
            {
                return Err(NodeError::Disconnected);
            }
            // The applier notifies on every apply; the timeout only
            // covers shutdown racing the stopped-flag store.
            self.shared
                .applied_cv
                .wait_for(&mut applied, std::time::Duration::from_millis(100));
        }
        Ok(())
    }
}

impl<S: Send + 'static> Drop for Replica<S> {
    fn drop(&mut self) {
        self.shutdown();
        // The rotation driver exits on the stopped flag set by shutdown.
        if let Some(h) = self.driver.lock().take() {
            let _ = h.join();
        }
        // Join the applier first: a rejoining applier is the only writer
        // of the server slot, so after it exits the slot is final.
        if let Some(h) = self.applier.take() {
            let _ = h.join();
        }
        if let Some(h) = self.server.lock().take() {
            let _ = h.join();
        }
    }
}

// ---------------------------------------------------------------------------
// Recovery: snapshotting, state transfer, rejoin
// ---------------------------------------------------------------------------

/// Snapshot bundles a serving replica retains. Two, so a rejoiner that
/// accepted the previous boundary's manifest can still fetch it while
/// peers cross the next boundary.
const RETAINED_SNAPSHOTS: usize = 2;

/// Poll granularity on the transfer channel.
const XFER_POLL: Duration = Duration::from_millis(25);
/// How long one manifest-collection round waits for peer responses.
const MANIFEST_ROUND: Duration = Duration::from_millis(300);
/// Per-server timeout for one anti-entropy node/chunk fetch.
const FETCH_TIMEOUT: Duration = Duration::from_millis(500);
/// How long one fill round waits for peer responses.
const FILL_ROUND: Duration = Duration::from_millis(150);
/// After this many fill rounds with no progress, broadcast a marker to
/// force the stream forward so a bridgeable delivery appears.
const IDLE_PROBE_ROUNDS: u32 = 8;

struct LogEntry {
    sender: ProcessId,
    rbid: u64,
    payload: Bytes,
}

struct CoreInner {
    /// Global applied sequence number (markers included).
    applied_seq: u64,
    /// Per-sender rbid the next applied delivery must carry — the
    /// watermark frozen into snapshots.
    applied_next: Vec<u64>,
    /// Applied deliveries above the oldest retained snapshot, by global
    /// sequence — the fill log served to catching-up peers.
    log: BTreeMap<u64, LogEntry>,
    /// Retained snapshot bundles, oldest first.
    snaps: Vec<SnapshotBundle>,
    /// The proactive-recovery rotation coordinator — replicated state,
    /// mutated only by ordered `TAG_RECOVERY` commands and carried
    /// inside snapshots (appended after the application state).
    rotation: RotationState,
}

/// Shared snapshot/log bookkeeping between the applier thread (writer),
/// the transfer server thread (reader) and digest accessors.
struct RecoveryCore {
    cfg: RecoveryConfig,
    /// Fault-injection hook: serve bit-flipped chunk bytes (a Byzantine
    /// snapshot server). Rejoiners must reject them by Merkle proof.
    tamper: AtomicBool,
    inner: Mutex<CoreInner>,
}

impl RecoveryCore {
    fn new(cfg: RecoveryConfig, n: usize) -> Arc<Self> {
        Arc::new(RecoveryCore {
            cfg,
            tamper: AtomicBool::new(false),
            inner: Mutex::new(CoreInner {
                applied_seq: 0,
                applied_next: vec![0; n],
                log: BTreeMap::new(),
                snaps: Vec::new(),
                rotation: RotationState::default(),
            }),
        })
    }
}

/// Feeds one delivery through the FIFO upgrade, honoring rejoin markers
/// (see [`TAG_REJOIN`]).
fn push_with_reset(fifo: &mut FifoOrder, d: AbDelivery) -> Vec<AbDelivery> {
    if d.payload.first() == Some(&TAG_REJOIN) {
        fifo.reset_sender(d.id.sender, d.id.rbid);
    }
    fifo.push(d)
}

fn mark_stopped<S>(shared: &Shared<S>) {
    shared
        .stopped
        .store(true, std::sync::atomic::Ordering::SeqCst);
    shared.applied_cv.notify_all();
}

/// Applies a batch of FIFO-released deliveries and advances the recovery
/// bookkeeping: log append, watermark update, and — at every
/// `snapshot_every` stream boundary — a deterministic snapshot of the
/// state, taken under the same state-lock acquisition so no delivery can
/// interleave between the boundary apply and its digest.
fn apply_ready<S, F>(
    node: &Node,
    shared: &Shared<S>,
    core: &RecoveryCore,
    me: ProcessId,
    apply: &mut F,
    ready: &[AbDelivery],
) where
    S: SnapshotState + Send + 'static,
    F: FnMut(&mut S, ProcessId, &[u8]),
{
    if ready.is_empty() {
        return;
    }
    let n = node.group_size();
    let mut effects: Vec<RotationEffect> = Vec::new();
    let rotation_after;
    {
        let mut state = shared.state.lock();
        let mut c = core.inner.lock();
        for d in ready {
            let body = d.payload.as_ref();
            let tag = body.first().copied().unwrap_or(0);
            if tag == TAG_USER {
                apply(&mut state, d.id.sender, body.get(1..).unwrap_or(&[]));
            } else if tag == TAG_RECOVERY {
                // Rotation commands mutate the replicated coordinator
                // state inside the lock (they are part of the state the
                // snapshot digests); their side effects (key switch,
                // gauges, suspicion clearing) run after it. The AB
                // origin is passed through so `apply` can enforce the
                // sender discipline (victim-only schedule/complete).
                if let Ok(cmd) = RecoveryCommand::from_bytes(body.get(1..).unwrap_or(&[])) {
                    effects.push(c.rotation.apply(&cmd, d.id.sender as u32, n));
                }
            }
            c.applied_seq += 1;
            let seq = c.applied_seq;
            if let Some(next) = c.applied_next.get_mut(d.id.sender) {
                *next = d.id.rbid + 1;
            }
            c.log.insert(
                seq,
                LogEntry {
                    sender: d.id.sender,
                    rbid: d.id.rbid,
                    payload: d.payload.clone(),
                },
            );
            if seq.is_multiple_of(core.cfg.snapshot_every) {
                let mut w = Writer::new();
                state.encode_snapshot(&mut w);
                // The rotation coordinator is replicated state too: a
                // rejoiner must resume the rotation protocol (current
                // epoch, open slot, cursor) exactly where the group is.
                c.rotation.encode(&mut w);
                let snap = Snapshot {
                    seq,
                    next: c.applied_next.clone(),
                    state: w.freeze(),
                };
                let bundle = SnapshotBundle::build(&snap, core.cfg.chunk_size);
                let m = node.metrics();
                m.recovery_snapshots_total.inc();
                m.recovery_snapshot_bytes.set(bundle.bytes.len() as u64);
                m.flight_record(FlightKind::Recovery, me as u32, milestones::SNAPSHOT, seq);
                c.snaps.push(bundle);
                if c.snaps.len() > RETAINED_SNAPSHOTS {
                    c.snaps.remove(0);
                }
                // Truncate the fill log below the oldest snapshot still
                // served: a rejoiner always restores at least that
                // boundary, so earlier entries can never be requested.
                let floor = c.snaps[0].manifest.seq;
                c.log = c.log.split_off(&(floor + 1));
            }
        }
        rotation_after = c.rotation;
    }
    if !effects.is_empty() {
        rotation_side_effects(node, me, &effects, rotation_after, n);
    }
    node.metrics().rsm_applied_total.add(ready.len() as u64);
    let mut applied = shared.applied.lock();
    for d in ready {
        if d.id.sender == me {
            applied.insert(d.id.rbid);
        }
    }
    node.metrics().rsm_applied_watermark.set(applied.watermark);
    shared.applied_cv.notify_all();
}

/// Turns accepted rotation-command effects into their side effects —
/// outside the state lock: the transport key switch, the rotation
/// gauges/counters, flight-recorder milestones, and (on a completed
/// wipe) clearing the rejuvenated replica's pre-wipe suspicion rows.
fn rotation_side_effects(
    node: &Node,
    me: ProcessId,
    effects: &[RotationEffect],
    after: RotationState,
    n: usize,
) {
    let m = node.metrics();
    let pack = |victim: u32, epoch: u64| (u64::from(victim) << 32) | (epoch & 0xffff_ffff);
    for eff in effects {
        match *eff {
            RotationEffect::Scheduled { victim, epoch } => {
                // Every replica switches its sealing keys the moment the
                // accepted schedule applies — the epoch advance *is* the
                // group-wide key rejuvenation.
                node.set_key_epoch(epoch);
                m.rotation_scheduled_total.inc();
                m.flight_record(
                    FlightKind::Recovery,
                    me as u32,
                    milestones::WIPE_SCHEDULED,
                    pack(victim, epoch),
                );
            }
            RotationEffect::Completed { victim, epoch } => {
                m.rotation_rounds_total.inc();
                // The wiped replica restarted from a clean image: its
                // pre-wipe suspicion evidence describes a process that
                // no longer exists.
                m.clear_suspicions_of(victim);
                m.flight_record(
                    FlightKind::Recovery,
                    me as u32,
                    milestones::WIPE_COMPLETED,
                    pack(victim, epoch),
                );
            }
            RotationEffect::Deferred { victim, epoch, .. } => {
                m.rotation_deferrals_total.inc();
                m.flight_record(
                    FlightKind::Recovery,
                    me as u32,
                    milestones::WIPE_DEFERRED,
                    pack(victim, epoch),
                );
            }
            RotationEffect::Rejected => {}
        }
    }
    m.rotation_epoch.set(after.epoch);
    m.rotation_active_victim
        .set(after.active.map_or(0, |(v, _)| u64::from(v) + 1));
    m.rotation_next_victim
        .set(u64::from(after.expected_victim(n)));
}

/// The live applier loop for recovery-enabled replicas.
fn run_live<S, F>(
    node: &Node,
    shared: &Shared<S>,
    core: &RecoveryCore,
    me: ProcessId,
    apply: &mut F,
    mut fifo: FifoOrder,
) where
    S: SnapshotState + Send + 'static,
    F: FnMut(&mut S, ProcessId, &[u8]),
{
    loop {
        let delivery = match node.atomic_recv() {
            Ok(d) => d,
            Err(_) => {
                mark_stopped(shared);
                return;
            }
        };
        let mut ready = push_with_reset(&mut fifo, delivery);
        while let Ok(Some(d)) = node.atomic_try_recv() {
            ready.extend(push_with_reset(&mut fifo, d));
        }
        apply_ready(node, shared, core, me, apply, &ready);
    }
}

/// The state-transfer server: answers manifest, Merkle-node, chunk, fill
/// and batch requests from rejoining peers until the node shuts down.
fn spawn_xfer_server(node: Arc<Node>, core: Arc<RecoveryCore>) -> JoinHandle<()> {
    std::thread::spawn(move || loop {
        let (from, payload) = match node.xfer_recv_timeout(XFER_POLL * 4) {
            Ok(x) => x,
            Err(NodeError::Timeout) => continue,
            Err(_) => return,
        };
        let Ok(msg) = XferMessage::from_bytes(&payload) else {
            // Garbage from a Byzantine peer: drop, don't serve.
            continue;
        };
        if let Some(resp) = serve_xfer(&node, &core, msg) {
            if node.send_xfer(from, resp.to_bytes()).is_err() {
                return;
            }
        }
    })
}

fn serve_xfer(node: &Node, core: &RecoveryCore, msg: XferMessage) -> Option<XferMessage> {
    match msg {
        XferMessage::ManifestReq => {
            // Hints come from the protocol thread; fetched before taking
            // the core lock (no lock is held across the round-trip).
            let hints = node.ab_hints().ok()?;
            let manifest = core.inner.lock().snaps.last().map(|b| b.manifest);
            Some(XferMessage::ManifestResp { manifest, hints })
        }
        XferMessage::NodesReq {
            seq,
            level,
            indices,
        } => {
            let inner = core.inner.lock();
            let hashes = inner
                .snaps
                .iter()
                .find(|b| b.manifest.seq == seq)
                .map(|b| indices.iter().map(|&i| b.tree.node(level, i)).collect())
                .unwrap_or_default();
            drop(inner);
            Some(XferMessage::NodesResp {
                seq,
                level,
                indices,
                hashes,
            })
        }
        XferMessage::ChunkReq { seq, idx } => {
            let inner = core.inner.lock();
            let (mut data, proof) = match inner.snaps.iter().find(|b| b.manifest.seq == seq) {
                Some(b) => (
                    Bytes::copy_from_slice(b.chunk(idx, core.cfg.chunk_size)),
                    b.tree.proof(idx),
                ),
                None => (Bytes::new(), Vec::new()),
            };
            drop(inner);
            if core.tamper.load(Ordering::SeqCst) && !data.is_empty() {
                let mut v = data.to_vec();
                v[0] ^= 0xff;
                data = v.into();
            }
            node.metrics().recovery_chunks_served.inc();
            Some(XferMessage::ChunkResp {
                seq,
                idx,
                data,
                proof,
            })
        }
        XferMessage::FillReq { from_seq, max } => {
            let inner = core.inner.lock();
            let budget = (max as usize).min(core.cfg.fill_batch as usize);
            let mut entries = Vec::new();
            let mut want = from_seq;
            // Strictly contiguous from `from_seq`: a gap (below our log
            // floor, or beyond our applied tip) ends the response.
            while entries.len() < budget {
                match inner.log.get(&want) {
                    Some(e) => {
                        entries.push(FillEntry {
                            seq: want,
                            sender: e.sender as u32,
                            rbid: e.rbid,
                            payload: e.payload.clone(),
                        });
                        want += 1;
                    }
                    None => break,
                }
            }
            drop(inner);
            Some(XferMessage::FillResp { entries })
        }
        XferMessage::BatchReq { ids } => {
            let mut batches = Vec::new();
            for (sender, seq) in ids {
                let id = MsgId {
                    sender: sender as ProcessId,
                    rbid: seq,
                };
                if let Ok(Some(raw)) = node.ab_retained_batch(id) {
                    batches.push((sender, seq, raw));
                }
            }
            Some(XferMessage::BatchResp { batches })
        }
        // Responses only mean something to a rejoin driver; a server
        // receiving one (stray or malicious) ignores it.
        _ => None,
    }
}

/// Marks the rejoin as aborted (node shut down mid-transfer): closes the
/// recovery spans, records the `ABORTED` milestone and releases every
/// waiter. The applier thread returns right after this.
fn abort_rejoin<S>(node: &Node, shared: &Shared<S>) {
    let m = node.metrics();
    m.span_close("recover:sync");
    m.span_close("recover:catchup");
    m.flight_record(
        FlightKind::Recovery,
        node.id() as u32,
        milestones::ABORTED,
        0,
    );
    m.recovery_phase.set(0);
    mark_stopped(shared);
}

fn collect_hints(responses: &HashMap<ProcessId, (Option<Manifest>, PeerHints)>) -> Vec<PeerHints> {
    responses.values().map(|(_, h)| h.clone()).collect()
}

/// The rejoin driver: Syncing → CatchingUp → Live.
///
/// Returns the FIFO state to continue as the live applier, or `None`
/// when the node shut down mid-transfer (the abort path has already
/// stopped the replica).
#[allow(clippy::too_many_lines)]
fn run_rejoin<S, F>(
    node: &Node,
    shared: &Shared<S>,
    core: &RecoveryCore,
    me: ProcessId,
    stale: Option<Bytes>,
    apply: &mut F,
) -> Option<FifoOrder>
where
    S: SnapshotState + Send + 'static,
    F: FnMut(&mut S, ProcessId, &[u8]),
{
    let n = node.group_size();
    let f = (n - 1) / 3;
    let m = node.metrics();
    m.recovery_phase.set(1);
    m.flight_record(FlightKind::Recovery, me as u32, milestones::SYNCING, 0);
    m.span_open("recover:sync", Layer::Node);
    let peers: Vec<ProcessId> = (0..n).filter(|&p| p != me).collect();

    // --- Syncing: collect manifests + stream hints from 2f+1 peers ---
    let mut responses: HashMap<ProcessId, (Option<Manifest>, PeerHints)> = HashMap::new();
    let (accepted, hints) = loop {
        for &p in &peers {
            if node
                .send_xfer(p, XferMessage::ManifestReq.to_bytes())
                .is_err()
            {
                abort_rejoin(node, shared);
                return None;
            }
        }
        let deadline = Instant::now() + MANIFEST_ROUND;
        while Instant::now() < deadline {
            match node.xfer_recv_timeout(XFER_POLL) {
                Ok((from, payload)) => {
                    if let Ok(XferMessage::ManifestResp { manifest, hints }) =
                        XferMessage::from_bytes(&payload)
                    {
                        responses.insert(from, (manifest, hints));
                    }
                }
                Err(NodeError::Timeout) => {
                    if responses.len() == peers.len() {
                        break;
                    }
                }
                Err(_) => {
                    abort_rejoin(node, shared);
                    return None;
                }
            }
        }
        if responses.len() < 2 * f + 1 {
            continue;
        }
        let with_manifest: Vec<(ProcessId, Manifest)> = responses
            .iter()
            .filter_map(|(&p, (om, _))| om.map(|man| (p, man)))
            .collect();
        if let Some(a) = accept_manifest(&with_manifest, f + 1) {
            break (Some(a), collect_hints(&responses));
        }
        // No f+1-matching manifest. If f+1 peers (≥ one correct) have no
        // snapshot yet the cluster is young: rejoin from genesis and let
        // the fill protocol replay the whole log. Otherwise peers are
        // mid-boundary — re-poll until they converge.
        if responses.values().filter(|(om, _)| om.is_none()).count() > f {
            break (None, collect_hints(&responses));
        }
    };

    // --- Fetch the snapshot via Merkle anti-entropy ---
    let snap_next: Vec<u64>;
    let fifo;
    if let Some((manifest, servers)) = accepted {
        let stale_tree = stale
            .as_ref()
            .map(|b| MerkleTree::build(b, core.cfg.chunk_size));
        // Resolve the fetch plan against one server per attempt: the
        // hash chain from the f+1-agreed root exposes a lying server
        // (BadNodes), after which we rotate to the next holder.
        let dead = std::cell::Cell::new(false);
        let mut attempt = 0usize;
        let plan = loop {
            let srv = servers[attempt % servers.len()];
            attempt += 1;
            let fetch = |level: u8, indices: &[u32]| -> Result<Vec<Hash>, AntiEntropyError> {
                let req = XferMessage::NodesReq {
                    seq: manifest.seq,
                    level,
                    indices: indices.to_vec(),
                };
                if node.send_xfer(srv, req.to_bytes()).is_err() {
                    dead.set(true);
                    return Err(AntiEntropyError::FetchFailed);
                }
                let deadline = Instant::now() + FETCH_TIMEOUT;
                while Instant::now() < deadline {
                    match node.xfer_recv_timeout(XFER_POLL) {
                        Ok((_, payload)) => {
                            if let Ok(XferMessage::NodesResp {
                                seq,
                                level: l,
                                indices: idx,
                                hashes,
                            }) = XferMessage::from_bytes(&payload)
                            {
                                if seq == manifest.seq
                                    && l == level
                                    && idx == indices
                                    && hashes.len() == indices.len()
                                {
                                    return Ok(hashes);
                                }
                            }
                        }
                        Err(NodeError::Timeout) => {}
                        Err(_) => {
                            dead.set(true);
                            return Err(AntiEntropyError::FetchFailed);
                        }
                    }
                }
                Err(AntiEntropyError::FetchFailed)
            };
            match plan_fetch(&manifest, stale_tree.as_ref(), fetch) {
                Ok(p) => break p,
                Err(e) => {
                    if dead.get() {
                        abort_rejoin(node, shared);
                        return None;
                    }
                    if e == AntiEntropyError::BadNodes {
                        m.suspect(srv as u32, SuspicionKind::BadChunk);
                        m.recovery_chunk_proof_rejected.inc();
                    }
                }
            }
        };
        m.recovery_chunks_reused.add(plan.reuse.len() as u64);
        let total = manifest.len as usize;
        let mut buf = vec![0u8; total];
        let chunk_span = move |idx: u32| {
            let start = (idx as usize).saturating_mul(core.cfg.chunk_size.max(1));
            let end = (start + core.cfg.chunk_size.max(1)).min(total);
            (start, end)
        };
        for &idx in &plan.reuse {
            let (start, end) = chunk_span(idx);
            if let Some(src) = stale.as_ref().and_then(|b| b.get(start..end)) {
                buf[start..end].copy_from_slice(src);
            }
        }
        for &idx in &plan.need {
            let mut fetched = false;
            // Rotate the starting server by chunk index so one corrupt
            // holder cannot serialize the whole download behind retries.
            'servers: for k in 0..servers.len() * 2 {
                let srv = servers[(idx as usize + k) % servers.len()];
                let req = XferMessage::ChunkReq {
                    seq: manifest.seq,
                    idx,
                };
                if node.send_xfer(srv, req.to_bytes()).is_err() {
                    abort_rejoin(node, shared);
                    return None;
                }
                let deadline = Instant::now() + FETCH_TIMEOUT;
                while Instant::now() < deadline {
                    match node.xfer_recv_timeout(XFER_POLL) {
                        Ok((from, payload)) => {
                            if let Ok(XferMessage::ChunkResp {
                                seq,
                                idx: i,
                                data,
                                proof,
                            }) = XferMessage::from_bytes(&payload)
                            {
                                if seq != manifest.seq || i != idx {
                                    continue;
                                }
                                if MerkleTree::verify_chunk(&manifest.root, idx, &data, &proof) {
                                    let (start, end) = chunk_span(idx);
                                    if data.len() == end - start {
                                        buf[start..end].copy_from_slice(&data);
                                        m.recovery_chunks_fetched.inc();
                                        fetched = true;
                                        continue 'servers;
                                    }
                                }
                                // A chunk that fails its Merkle proof is
                                // hard evidence against the server.
                                m.suspect(from as u32, SuspicionKind::BadChunk);
                                m.recovery_chunk_proof_rejected.inc();
                                continue 'servers;
                            }
                        }
                        Err(NodeError::Timeout) => {}
                        Err(_) => {
                            abort_rejoin(node, shared);
                            return None;
                        }
                    }
                }
                if fetched {
                    break;
                }
            }
            if !fetched {
                // Every holder failed (all Byzantine would contradict
                // the f+1 manifest quorum): abort rather than install a
                // torn snapshot.
                abort_rejoin(node, shared);
                return None;
            }
        }
        // f+1 byte-identical manifests include one from a correct
        // replica, and every chunk verified against that root, so the
        // assembled bytes are a correct replica's snapshot encoding.
        let Ok(snap) = Snapshot::from_bytes(&buf) else {
            abort_rejoin(node, shared);
            return None;
        };
        let mut reader = Reader::new(&snap.state);
        let Ok(decoded) = S::decode_snapshot(&mut reader) else {
            abort_rejoin(node, shared);
            return None;
        };
        // The rotation coordinator rides after the application state in
        // the same snapshot encoding.
        let Ok(rotation) = RotationState::decode(&mut reader) else {
            abort_rejoin(node, shared);
            return None;
        };
        *shared.state.lock() = decoded;
        let mut next = snap.next.clone();
        next.resize(n, 0);
        {
            let mut c = core.inner.lock();
            c.applied_seq = snap.seq;
            c.applied_next = next.clone();
            c.log.clear();
            c.snaps = vec![SnapshotBundle::build(&snap, core.cfg.chunk_size)];
            c.rotation = rotation;
        }
        // Seal outbound frames under the epoch the group had at the
        // snapshot boundary (catch-up replays any later advance). The
        // transport also fast-forwards on verified inbound traffic, so
        // this is a shortcut, not a correctness requirement.
        node.set_key_epoch(rotation.epoch);
        m.recovery_snapshot_bytes.set(manifest.len);
        fifo = FifoOrder::from_watermarks(n, &next);
        snap_next = next;
    } else {
        // Genesis rejoin: no peer has snapshotted yet.
        snap_next = vec![0; n];
        fifo = FifoOrder::new(n);
    }

    // --- Resume the atomic-broadcast cursor and catch up ---
    let cursor = select_cursor(me, n, f, &hints, &snap_next);
    {
        let mut applied = shared.applied.lock();
        applied.fast_forward(cursor.next_rbid);
        m.rsm_applied_watermark.set(applied.watermark);
        shared.applied_cv.notify_all();
    }
    if node.ab_resume(cursor).is_err() {
        abort_rejoin(node, shared);
        return None;
    }
    let resumed_seq = core.inner.lock().applied_seq;
    m.span_close("recover:sync");
    m.recovery_phase.set(2);
    m.flight_record(
        FlightKind::Recovery,
        me as u32,
        milestones::CATCHING_UP,
        resumed_seq,
    );
    m.span_open("recover:catchup", Layer::Node);
    // Announce the resume: every replica's FIFO restarts our rbid
    // sequence at this marker, and — once it lands in a peer's fill log
    // while also sitting in our live buffer — it gives the catch-up loop
    // a guaranteed bridge point even on an otherwise idle stream.
    if node.atomic_broadcast(frame(TAG_REJOIN, &[])).is_err() {
        abort_rejoin(node, shared);
        return None;
    }

    let mut fifo = fifo;
    let mut buffer: Vec<AbDelivery> = Vec::new();
    let mut buffered: HashSet<(ProcessId, u64)> = HashSet::new();
    let mut idle = 0u32;
    'catchup: loop {
        // Buffer live deliveries; they are applied only after the fill
        // stream reaches one of them (never double-applied: the bridge
        // entry itself switches streams *instead of* applying via fill).
        loop {
            match node.atomic_try_recv() {
                Ok(Some(d)) => {
                    buffered.insert((d.id.sender, d.id.rbid));
                    buffer.push(d);
                }
                Ok(None) => break,
                Err(_) => {
                    abort_rejoin(node, shared);
                    return None;
                }
            }
        }
        // Poll every peer for the next stretch of the applied log.
        let from_seq = core.inner.lock().applied_seq + 1;
        let req = XferMessage::FillReq {
            from_seq,
            max: core.cfg.fill_batch,
        }
        .to_bytes();
        for &p in &peers {
            if node.send_xfer(p, req.clone()).is_err() {
                abort_rejoin(node, shared);
                return None;
            }
        }
        let mut fills: HashMap<ProcessId, Vec<FillEntry>> = HashMap::new();
        let deadline = Instant::now() + FILL_ROUND;
        while Instant::now() < deadline {
            match node.xfer_recv_timeout(XFER_POLL) {
                Ok((from, payload)) => {
                    if let Ok(XferMessage::FillResp { entries }) = XferMessage::from_bytes(&payload)
                    {
                        fills.insert(from, entries);
                        if fills.len() == peers.len() {
                            break;
                        }
                    }
                }
                Err(NodeError::Timeout) => {}
                Err(_) => {
                    abort_rejoin(node, shared);
                    return None;
                }
            }
        }
        // Apply f+1-agreed entries strictly in sequence order. An entry
        // counts only when f+1 peers served byte-identical copies — one
        // of them is correct, so the entry is the true delivery at that
        // position of the total order.
        let mut progressed = false;
        loop {
            let want = core.inner.lock().applied_seq + 1;
            let mut groups: Vec<(&FillEntry, usize)> = Vec::new();
            for entries in fills.values() {
                if let Some(e) = entries.iter().find(|e| e.seq == want) {
                    match groups.iter_mut().find(|(g, _)| {
                        g.sender == e.sender && g.rbid == e.rbid && g.payload == e.payload
                    }) {
                        Some(g) => g.1 += 1,
                        None => groups.push((e, 1)),
                    }
                }
            }
            let Some((entry, _)) = groups.into_iter().find(|&(_, count)| count > f) else {
                break;
            };
            let entry = entry.clone();
            // The bridge: the next fill entry is already sitting in the
            // live buffer. From here on the buffer is the complete
            // total-order suffix (live deliveries only start once the
            // resumed AB concludes rounds normally, after which no round
            // is skipped), so switch to it and stop filling.
            if buffered.contains(&(entry.sender as ProcessId, entry.rbid)) {
                break 'catchup;
            }
            let d = AbDelivery {
                id: MsgId {
                    sender: entry.sender as ProcessId,
                    rbid: entry.rbid,
                },
                payload: entry.payload,
            };
            apply_ready(node, shared, core, me, apply, &[d]);
            // Keep the FIFO's view of the sender aligned with what the
            // fill stream applied (fills bypass the FIFO).
            fifo.reset_sender(entry.sender as ProcessId, entry.rbid + 1);
            m.recovery_fills_applied.inc();
            progressed = true;
        }
        // Rounds can conclude on batch ids whose payload dissemination
        // finished before the wipe: fetch the raw batches from peers and
        // inject any copy f+1 of them agree on.
        let missing = match node.ab_missing_payloads() {
            Ok(v) => v,
            Err(_) => {
                abort_rejoin(node, shared);
                return None;
            }
        };
        if !missing.is_empty() {
            let req = XferMessage::BatchReq {
                ids: missing
                    .iter()
                    .map(|id| (id.sender as u32, id.rbid))
                    .collect(),
            }
            .to_bytes();
            for &p in &peers {
                if node.send_xfer(p, req.clone()).is_err() {
                    abort_rejoin(node, shared);
                    return None;
                }
            }
            let mut copies: HashMap<(u32, u64), Vec<Bytes>> = HashMap::new();
            let deadline = Instant::now() + FILL_ROUND;
            while Instant::now() < deadline {
                match node.xfer_recv_timeout(XFER_POLL) {
                    Ok((_, payload)) => {
                        if let Ok(XferMessage::BatchResp { batches }) =
                            XferMessage::from_bytes(&payload)
                        {
                            for (sender, seq, raw) in batches {
                                copies.entry((sender, seq)).or_default().push(raw);
                            }
                        }
                    }
                    Err(NodeError::Timeout) => {}
                    Err(_) => {
                        abort_rejoin(node, shared);
                        return None;
                    }
                }
            }
            for ((sender, seq), raws) in copies {
                let agreed = raws
                    .iter()
                    .find(|raw| raws.iter().filter(|r| r == raw).count() > f);
                if let Some(raw) = agreed {
                    let id = MsgId {
                        sender: sender as ProcessId,
                        rbid: seq,
                    };
                    if node.ab_inject_batch(id, raw.clone()).is_err() {
                        abort_rejoin(node, shared);
                        return None;
                    }
                }
            }
        }
        if progressed {
            idle = 0;
        } else {
            idle += 1;
            if idle >= IDLE_PROBE_ROUNDS {
                idle = 0;
                // Force the stream forward so a delivery we hold live
                // also lands in peers' fill logs.
                if node.atomic_broadcast(frame(TAG_MARKER, &[])).is_err() {
                    abort_rejoin(node, shared);
                    return None;
                }
            }
        }
    }

    // --- Switch to the live buffer ---
    let mut ready = Vec::new();
    for d in buffer {
        // Entries up to the bridge point are duplicates of what the fill
        // stream applied; the FIFO's per-sender watermark drops them.
        ready.extend(push_with_reset(&mut fifo, d));
    }
    apply_ready(node, shared, core, me, apply, &ready);
    let (live_seq, rotation) = {
        let c = core.inner.lock();
        (c.applied_seq, c.rotation)
    };
    m.span_close("recover:catchup");
    m.recovery_phase.set(0);
    m.recovery_completed_total.inc();
    m.flight_record(FlightKind::Recovery, me as u32, milestones::LIVE, live_seq);
    // If this rejoin *is* the open rotation slot, close it: the ordered
    // WipeComplete advances the cursor on every replica and clears our
    // pre-wipe suspicion rows. (A reactive rejoin — no slot, or someone
    // else's — announces nothing.)
    if let Some((victim, epoch)) = rotation.active {
        if victim == me as u32 {
            let cmd = RecoveryCommand::WipeComplete { victim, epoch };
            let _ = node.atomic_broadcast(frame(TAG_RECOVERY, &cmd.to_bytes()));
        }
    }
    Some(fifo)
}

impl<S: SnapshotState + Send + 'static> Replica<S> {
    /// Like [`Replica::new`], but with the recovery pipeline active: the
    /// replica snapshots its state at every `cfg.snapshot_every` stream
    /// boundary (producing a digest comparable across replicas), retains
    /// the last two snapshot bundles plus the post-snapshot delivery
    /// log, and serves the pull-based state-transfer protocol to
    /// rejoining peers.
    ///
    /// # Errors
    ///
    /// Returns a [`RecoveryConfigError`] when `cfg` contains a zero
    /// field (a zero `snapshot_every` would divide by zero at every
    /// stream boundary; zero `chunk_size` / `fill_batch` would wedge
    /// state transfer) — rejected here, before any thread spawns.
    pub fn with_recovery(
        node: Node,
        initial: S,
        cfg: RecoveryConfig,
        apply: impl FnMut(&mut S, ProcessId, &[u8]) + Send + 'static,
    ) -> Result<Self, RecoveryConfigError> {
        cfg.validate()?;
        Ok(Self::build_recovering(
            node, initial, cfg, None, false, apply,
        ))
    }

    /// Rebuilds a wiped replica from its peers: fetches snapshot
    /// manifests from `2f+1` peers, accepts one only at `f+1` matching
    /// digests, downloads the chunks that differ from `stale` (an
    /// optional previously-retained snapshot encoding whose unchanged
    /// Merkle subtrees are reused instead of re-downloaded) with
    /// per-chunk proof verification, then replays the delivery log from
    /// the snapshot watermark and hands over to live deliveries without
    /// applying anything twice. The `node` must come from
    /// [`Node::rejoin`] (its atomic broadcast starts held).
    ///
    /// # Errors
    ///
    /// As [`Replica::with_recovery`]: a zero field in `cfg` is rejected
    /// before any thread spawns.
    pub fn rejoin(
        node: Node,
        initial: S,
        cfg: RecoveryConfig,
        stale: Option<Bytes>,
        apply: impl FnMut(&mut S, ProcessId, &[u8]) + Send + 'static,
    ) -> Result<Self, RecoveryConfigError> {
        cfg.validate()?;
        Ok(Self::build_recovering(
            node, initial, cfg, stale, true, apply,
        ))
    }

    fn build_recovering(
        node: Node,
        initial: S,
        cfg: RecoveryConfig,
        stale: Option<Bytes>,
        rejoining: bool,
        mut apply: impl FnMut(&mut S, ProcessId, &[u8]) + Send + 'static,
    ) -> Self {
        let node = Arc::new(node);
        let shared = Arc::new(Shared {
            state: Mutex::new(initial),
            applied: Mutex::new(OwnApplied::default()),
            applied_cv: Condvar::new(),
            stopped: std::sync::atomic::AtomicBool::new(false),
        });
        let n = node.group_size();
        let me = node.id();
        let core = RecoveryCore::new(cfg, n);
        let server = Arc::new(Mutex::new(None));
        if !rejoining {
            *server.lock() = Some(spawn_xfer_server(Arc::clone(&node), Arc::clone(&core)));
        }
        let applier = {
            let node = Arc::clone(&node);
            let shared = Arc::clone(&shared);
            let core = Arc::clone(&core);
            let server = Arc::clone(&server);
            std::thread::spawn(move || {
                let fifo = if rejoining {
                    match run_rejoin(&node, &shared, &core, me, stale, &mut apply) {
                        Some(fifo) => {
                            // Live: start answering transfer requests
                            // (the driver owned the channel until now).
                            *server.lock() =
                                Some(spawn_xfer_server(Arc::clone(&node), Arc::clone(&core)));
                            fifo
                        }
                        None => return,
                    }
                } else {
                    FifoOrder::new(n)
                };
                run_live(&node, &shared, &core, me, &mut apply, fifo);
            })
        };
        Replica {
            node,
            shared,
            applier: Some(applier),
            recovery: Some(core),
            server,
            driver: Mutex::new(None),
        }
    }

    /// The latest local snapshot digest as `(seq, merkle_root)` — equal
    /// across correct replicas at equal `seq`.
    pub fn snapshot_digest(&self) -> Option<(u64, Hash)> {
        let core = self.recovery.as_ref()?;
        let inner = core.inner.lock();
        inner
            .snaps
            .last()
            .map(|b| (b.manifest.seq, b.manifest.root))
    }

    /// The encoded bytes of the latest local snapshot, if any. A
    /// wiped-but-not-erased replica feeds these back into
    /// [`Replica::rejoin`] as the `stale` image so Merkle anti-entropy
    /// can reuse unchanged chunks instead of re-downloading them.
    pub fn latest_snapshot_bytes(&self) -> Option<Bytes> {
        let core = self.recovery.as_ref()?;
        let inner = core.inner.lock();
        inner.snaps.last().map(|b| b.bytes.clone())
    }

    /// Fault-injection hook: when set, this replica serves bit-flipped
    /// snapshot chunk bytes (a Byzantine snapshot server). Rejoiners
    /// must detect the corruption by Merkle proof and fetch elsewhere.
    pub fn set_chunk_tamper(&self, on: bool) {
        if let Some(core) = &self.recovery {
            core.tamper.store(on, Ordering::SeqCst);
        }
    }

    /// The replicated rotation-coordinator state as of the last applied
    /// command (`None` on replicas without the recovery pipeline).
    pub fn rotation_state(&self) -> Option<RotationState> {
        self.recovery.as_ref().map(|c| c.inner.lock().rotation)
    }

    /// Arms the proactive-recovery rotation driver (see
    /// [`crate::recovery::scheduler`]): a background thread that
    ///
    /// * proposes this replica's own wipe slot (via an ordered
    ///   `ScheduleWipe`) whenever the rotation cursor points at it and
    ///   `cfg.period` has elapsed since the last slot closed;
    /// * reacts to its slot opening — calling `on_wipe(epoch)` so the
    ///   embedding runtime tears this replica down and rejoins it (the
    ///   rejoin pipeline announces `WipeComplete` on reaching Live), or
    ///   deferring with an ordered `DeferWipe` when the stall watchdog
    ///   or accumulated suspicion evidence says the group is already
    ///   degraded;
    /// * clears any peer's slot stuck active past `cfg.abort_after`.
    ///
    /// `on_wipe` must not block and must not drop the replica from
    /// inside the callback (signal the owning thread instead): `Drop`
    /// joins the driver thread that calls it. No-op on replicas without
    /// the recovery pipeline, and at most one driver per replica.
    pub fn start_rotation(&self, cfg: RotationConfig, on_wipe: impl Fn(u64) + Send + 'static) {
        let Some(core) = self.recovery.as_ref().map(Arc::clone) else {
            return;
        };
        let mut slot = self.driver.lock();
        if slot.is_some() {
            return;
        }
        let node = Arc::clone(&self.node);
        let shared = Arc::clone(&self.shared);
        let me = node.id() as u32;
        let n = node.group_size();
        *slot = Some(std::thread::spawn(move || {
            let poll =
                (cfg.period / 8).clamp(Duration::from_millis(10), Duration::from_millis(100));
            // Liveness bookkeeping is all local wall-clock: the *safety*
            // of the protocol never depends on these timers (any command
            // mistimed by them is rejected deterministically everywhere).
            let mut quiet_since = Instant::now();
            let mut slot_seen: Option<((u32, u64), Instant)> = None;
            // A slot already open when the driver arms is never this
            // driver's grant: on a rejoined replica it is its own
            // just-completed recovery (the rejoin pipeline's
            // WipeComplete is still in flight, and reacting to it again
            // would wipe the replica in a loop), and a foreign slot is
            // the established drivers' stuck-slot watchdog duty.
            let mut acted: Option<(u32, u64)> = core.inner.lock().rotation.active;
            let mut closed = (0u64, 0u64);
            loop {
                if shared.stopped.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(poll);
                let (rot, has_snapshot) = {
                    let c = core.inner.lock();
                    (c.rotation, !c.snaps.is_empty())
                };
                let progress = (rot.rounds_completed, rot.deferrals);
                if progress != closed {
                    closed = progress;
                    quiet_since = Instant::now();
                }
                match rot.active {
                    Some(active) => {
                        let since = match slot_seen {
                            Some((s, t)) if s == active => t,
                            _ => {
                                let now = Instant::now();
                                slot_seen = Some((active, now));
                                now
                            }
                        };
                        if acted == Some(active) {
                            continue;
                        }
                        let (victim, epoch) = active;
                        if victim == me {
                            acted = Some(active);
                            // Health gate: rotation must never
                            // *voluntarily* push the group past f
                            // unavailable. (The epoch already advanced at
                            // schedule time, so deferring keeps the key
                            // refresh.)
                            let suspicion: u64 = node
                                .metrics()
                                .suspicions()
                                .iter()
                                .map(|s| s.counts.iter().sum::<u64>())
                                .sum();
                            let reason = if node.is_stalled() {
                                Some(DeferReason::Stalled)
                            } else if suspicion >= cfg.suspicion_defer_threshold {
                                Some(DeferReason::Suspicion)
                            } else {
                                None
                            };
                            match reason {
                                Some(reason) => {
                                    let cmd = RecoveryCommand::DeferWipe {
                                        victim,
                                        epoch,
                                        reason,
                                    };
                                    if node
                                        .atomic_broadcast(frame(TAG_RECOVERY, &cmd.to_bytes()))
                                        .is_err()
                                    {
                                        return;
                                    }
                                }
                                None => on_wipe(epoch),
                            }
                        } else if since.elapsed() >= cfg.abort_after {
                            acted = Some(active);
                            let cmd = RecoveryCommand::DeferWipe {
                                victim,
                                epoch,
                                reason: DeferReason::StuckSlot,
                            };
                            if node
                                .atomic_broadcast(frame(TAG_RECOVERY, &cmd.to_bytes()))
                                .is_err()
                            {
                                return;
                            }
                        }
                    }
                    None => {
                        slot_seen = None;
                        // Never schedule the own wipe before the group has a
                        // snapshot to restore from: a genesis rejoin races the
                        // survivors' log pruning under load and can wedge.
                        // Correct replicas snapshot at the same stream
                        // boundaries, so the local bundle is a sound proxy for
                        // the group's (skew is absorbed by the Syncing
                        // re-poll).
                        if has_snapshot
                            && rot.expected_victim(n) == me
                            && quiet_since.elapsed() >= cfg.period
                        {
                            let cmd = RecoveryCommand::ScheduleWipe {
                                victim: me,
                                epoch: rot.epoch + 1,
                            };
                            if node
                                .atomic_broadcast(frame(TAG_RECOVERY, &cmd.to_bytes()))
                                .is_err()
                            {
                                return;
                            }
                            // Rate-limit re-proposals: if this one is
                            // lost or rejected, wait another full period.
                            quiet_since = Instant::now();
                        }
                    }
                }
            }
        }));
    }
}

fn frame(tag: u8, body: &[u8]) -> Bytes {
    let mut b = BytesMut::with_capacity(1 + body.len());
    b.put_u8(tag);
    b.put_slice(body);
    b.freeze()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::SessionConfig;

    fn counters(n: usize) -> Vec<Replica<i64>> {
        let nodes = Node::cluster(SessionConfig::new(n).unwrap()).unwrap();
        nodes
            .into_iter()
            .map(|node| {
                Replica::new(node, 0i64, |state, _sender, cmd| match cmd {
                    b"incr" => *state += 1,
                    b"decr" => *state -= 1,
                    _ => {}
                })
            })
            .collect()
    }

    #[test]
    fn replicas_converge() {
        let replicas: Vec<_> = counters(4).into_iter().map(std::sync::Arc::new).collect();
        let handles: Vec<_> = replicas
            .iter()
            .map(|r| {
                let r = std::sync::Arc::clone(r);
                std::thread::spawn(move || {
                    for _ in 0..3 {
                        r.submit(Bytes::from_static(b"incr")).unwrap();
                    }
                    if r.id() == 0 {
                        r.submit(Bytes::from_static(b"decr")).unwrap();
                    }
                    // Sync on our last command, then a barrier.
                    r.submit_sync(Bytes::from_static(b"incr")).unwrap();
                    r.barrier().unwrap();
                })
            })
            .collect();
        // Every submitter must finish before any replica shuts down:
        // liveness only tolerates f crashes, so a replica that stops as
        // soon as *it* sees the final value can strand a straggler whose
        // last batch has not been ordered yet.
        for h in handles {
            h.join().unwrap();
        }
        // All barriers passed, so every command is ordered somewhere;
        // with the whole group alive each replica must apply the full
        // prefix. 4 replicas × 4 incr − 1 decr = 15.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        for r in &replicas {
            loop {
                let v = r.read(|s| *s);
                if v == 15 {
                    break;
                }
                assert!(
                    std::time::Instant::now() < deadline,
                    "replica {} stuck at {v}, want 15",
                    r.id()
                );
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
        }
        for r in &replicas {
            r.shutdown();
        }
    }

    #[test]
    fn submit_sync_observes_own_command() {
        let replicas: Vec<_> = counters(4).into_iter().map(std::sync::Arc::new).collect();
        let handles: Vec<_> = replicas
            .iter()
            .map(|r| {
                let r = std::sync::Arc::clone(r);
                std::thread::spawn(move || {
                    r.submit_sync(Bytes::from_static(b"incr")).unwrap();
                    r.read(|s| *s)
                })
            })
            .collect();
        // Join before any shutdown — see replicas_converge.
        let values: Vec<i64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for v in values {
            // At least our own increment must be visible.
            assert!(v >= 1);
        }
        for r in &replicas {
            r.shutdown();
        }
    }

    #[test]
    fn submit_sync_surfaces_shutdown_instead_of_silent_success() {
        use crate::node::{Node, NodeError};
        let mut nodes = Node::cluster(SessionConfig::new(4).unwrap()).unwrap();
        // Keep only replica 0 alive: with 3 of 4 processes gone, atomic
        // broadcast can never gather a quorum, so the command never
        // applies and the waiter blocks until shutdown.
        let node0 = nodes.remove(0);
        drop(nodes);
        let r = std::sync::Arc::new(Replica::new(node0, 0i64, |s: &mut i64, _, _| *s += 1));
        let waiter = {
            let r = std::sync::Arc::clone(&r);
            std::thread::spawn(move || r.submit_sync(Bytes::from_static(b"incr")))
        };
        std::thread::sleep(std::time::Duration::from_millis(100));
        r.shutdown();
        let got = waiter.join().unwrap();
        assert_eq!(
            got.unwrap_err(),
            NodeError::Disconnected,
            "an unapplied command must fail, not silently succeed"
        );
    }

    #[test]
    fn own_applied_compaction() {
        let mut a = OwnApplied::default();
        for rbid in [1u64, 0, 3, 2] {
            a.insert(rbid);
        }
        assert!(a.contains(3));
        assert!(!a.contains(4));
        assert_eq!(a.watermark, 4);
        assert!(a.sparse.is_empty());
    }

    #[test]
    fn own_applied_fast_forward_boundary() {
        let mut a = OwnApplied::default();
        a.insert(0);
        a.insert(5); // sparse
        a.fast_forward(1000);
        // Everything below the rejoin base reads as applied/covered…
        assert_eq!(a.base, 1000);
        assert_eq!(a.watermark, 1000);
        assert!(a.contains(999));
        assert!(!a.contains(1000));
        assert!(a.sparse.is_empty());
        // …and post-resume rbids compact contiguously from the base.
        a.insert(1000);
        assert_eq!(a.watermark, 1001);
        // A stale fast-forward never regresses the watermark.
        a.fast_forward(10);
        assert_eq!(a.base, 1000);
        assert_eq!(a.watermark, 1001);
    }

    /// Satellite: `wait_applied_covered` must resolve pre-snapshot rbids
    /// as `CoveredBySnapshot` immediately (no wait, no error), exactly at
    /// the base boundary, while live rbids behave like `submit_sync`.
    #[test]
    fn wait_applied_covered_boundary() {
        let nodes = Node::cluster(SessionConfig::new(4).unwrap()).unwrap();
        let replicas: Vec<_> = nodes
            .into_iter()
            .map(|node| Replica::new(node, 0u64, |s, _, _| *s += 1))
            .collect();
        // Simulate a rejoin watermark on replica 0.
        replicas[0].shared.applied.lock().fast_forward(50);
        assert_eq!(
            replicas[0].wait_applied_covered(49).unwrap(),
            Applied::CoveredBySnapshot
        );
        // On a replica without a rejoin watermark the call waits for the
        // real apply and reports it as fresh.
        let id = replicas[1].submit_sync(Bytes::from_static(b"x")).unwrap();
        assert_eq!(
            replicas[1].wait_applied_covered(id.rbid).unwrap(),
            Applied::Fresh
        );
        for r in &replicas {
            r.shutdown();
        }
    }

    fn small_recovery_cfg() -> RecoveryConfig {
        RecoveryConfig {
            snapshot_every: 8,
            chunk_size: 64,
            fill_batch: 64,
        }
    }

    fn incr_counter(s: &mut u64, _from: ProcessId, cmd: &[u8]) {
        if cmd == b"incr" {
            *s += 1;
        }
    }

    /// Correct replicas must cut byte-identical snapshots at identical
    /// stream boundaries — the digest is what a rejoiner votes on.
    #[test]
    fn recovery_replicas_snapshot_identically() {
        let config = SessionConfig::new(4).unwrap();
        let nodes = Node::cluster(config).unwrap();
        let replicas: Vec<_> = nodes
            .into_iter()
            .map(|n| Replica::with_recovery(n, 0u64, small_recovery_cfg(), incr_counter).unwrap())
            .collect();
        for _ in 0..20 {
            replicas[0]
                .submit_sync(Bytes::from_static(b"incr"))
                .unwrap();
        }
        for r in &replicas {
            r.barrier().unwrap();
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        loop {
            let digests: Vec<_> = replicas.iter().map(Replica::snapshot_digest).collect();
            if digests.iter().all(|d| d.is_some() && *d == digests[0]) {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "snapshot digests never converged: {digests:?}"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
        assert!(replicas[0].node().metrics().recovery_snapshots_total.get() >= 1);
        for r in &replicas {
            r.shutdown();
        }
    }

    /// The tentpole happy path at the rsm layer: crash + wipe a replica
    /// under traffic, rejoin it through snapshot transfer + catch-up, and
    /// require exact state convergence (any double-apply would overshoot
    /// the counter).
    #[test]
    fn rejoin_via_state_transfer() {
        let config = SessionConfig::new(4).unwrap();
        let (nodes, hub) = Node::cluster_with_hub(&config).unwrap();
        let mut replicas: Vec<_> = nodes
            .into_iter()
            .map(|n| Replica::with_recovery(n, 0u64, small_recovery_cfg(), incr_counter).unwrap())
            .collect();
        for _ in 0..20 {
            replicas[1]
                .submit_sync(Bytes::from_static(b"incr"))
                .unwrap();
        }
        // Fail-stop and wipe replica 3.
        hub.crash(3);
        let victim = replicas.pop().unwrap();
        drop(victim);
        // The survivors keep ordering (n - f = 3 alive).
        for _ in 0..20 {
            replicas[0]
                .submit_sync(Bytes::from_static(b"incr"))
                .unwrap();
        }
        // Rejoin from nothing but the session config.
        let node = Node::rejoin(&config, &hub, 3).unwrap();
        let m = node.metrics().clone();
        let rejoined =
            Replica::rejoin(node, 0u64, small_recovery_cfg(), None, incr_counter).unwrap();
        // Keep the stream moving while the transfer runs.
        for _ in 0..10 {
            replicas[0]
                .submit_sync(Bytes::from_static(b"incr"))
                .unwrap();
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(60);
        loop {
            if m.recovery_completed_total.get() == 1 && rejoined.read(|s| *s) == 50 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "rejoin stuck: completed={} counter={} phase={}",
                m.recovery_completed_total.get(),
                rejoined.read(|s| *s),
                m.recovery_phase.get()
            );
            std::thread::sleep(Duration::from_millis(20));
        }
        assert_eq!(m.recovery_phase.get(), 0, "back to Live");
        assert!(
            m.flight()
                .events()
                .iter()
                .any(|e| e.kind == FlightKind::Recovery && e.a == milestones::LIVE),
            "LIVE milestone recorded"
        );
        // Exactly once: the counter landed exactly on the submitted
        // total on every replica, including the rejoined one.
        for r in replicas.iter().chain([&rejoined]) {
            r.barrier().unwrap();
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        loop {
            let values: Vec<u64> = replicas
                .iter()
                .chain([&rejoined])
                .map(|r| r.read(|s| *s))
                .collect();
            if values.iter().all(|&v| v == 50) {
                // Digest convergence: the rejoined replica's next
                // snapshot boundary must hash identically to a peer's.
                let d0 = replicas[0].snapshot_digest();
                let dr = rejoined.snapshot_digest();
                if d0.is_some() && d0 == dr {
                    break;
                }
            }
            assert!(
                std::time::Instant::now() < deadline,
                "post-rejoin convergence failed: values={values:?} d0={:?} dr={:?}",
                replicas[0].snapshot_digest(),
                rejoined.snapshot_digest()
            );
            std::thread::sleep(Duration::from_millis(20));
        }
        for r in replicas.iter().chain([&rejoined]) {
            r.shutdown();
        }
    }

    /// Satellite: shutting a node down while its state transfer is still
    /// in flight must abort cleanly — the applier thread exits (Drop
    /// joins it; a wedge would hang the test), waiters unblock with an
    /// error, and the ABORTED milestone lands in the flight ring.
    #[test]
    fn rejoin_shutdown_mid_transfer_aborts_cleanly() {
        let config = SessionConfig::new(4).unwrap();
        let (mut nodes, hub) = Node::cluster_with_hub(&config).unwrap();
        // Wipe replica 3; peers 0..2 stay up but run *no* recovery
        // servers, so the rejoiner's manifest requests are never
        // answered and the driver stays in Syncing forever.
        let node3 = nodes.pop().unwrap();
        drop(node3);
        let node = Node::rejoin(&config, &hub, 3).unwrap();
        let m = node.metrics().clone();
        let rejoined = Replica::rejoin(
            node,
            0u64,
            small_recovery_cfg(),
            None,
            |_: &mut u64, _, _| {},
        )
        .unwrap();
        std::thread::sleep(Duration::from_millis(300));
        assert_eq!(m.recovery_phase.get(), 1, "still syncing");
        rejoined.shutdown();
        // A waiter blocked on the recovering replica must surface the
        // shutdown, not hang.
        assert_eq!(
            rejoined.wait_applied_covered(u64::MAX).unwrap_err(),
            NodeError::Disconnected
        );
        drop(rejoined); // joins the applier + (never-started) server
        assert!(
            m.flight()
                .events()
                .iter()
                .any(|e| e.kind == FlightKind::Recovery && e.a == milestones::ABORTED),
            "aborted transfer must leave an ABORTED milestone"
        );
        assert_eq!(m.recovery_phase.get(), 0);
        drop(nodes);
        drop(hub);
    }
}
